"""Shared benchmark utilities.

Every benchmark regenerates one paper table/figure (scaled down for CI) and
prints paper-vs-measured rows. Absolute numbers come from a simulated
substrate; the *shape* (who wins, by roughly what factor) is the target.
"""

import pytest


def report(title: str, result: dict, keys=None) -> None:
    """Print a paper-vs-measured table for a result dict."""
    paper = result.get("paper", {})
    measured = result.get("measured", {})
    print(f"\n=== {title} ===")
    for key in keys or paper:
        pv = paper.get(key, "-")
        mv = measured.get(key, "-")
        if isinstance(pv, float):
            pv = round(pv, 3)
        if isinstance(mv, float):
            mv = round(mv, 3)
        print(f"  {key:<40s} paper={pv!s:>14s}  measured={mv!s:>14s}")


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (experiments are heavy)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                  iterations=1)

    return runner
