"""Shared benchmark utilities.

Every benchmark regenerates one paper table/figure (scaled down for CI) and
prints paper-vs-measured rows. Absolute numbers come from a simulated
substrate; the *shape* (who wins, by roughly what factor) is the target.

Everything collected here is marked ``bench`` (CI runs the suite in a
separate non-blocking job); the heaviest end-to-end figure reproductions
are additionally marked ``slow`` so tiers can be selected with ``-m``.
"""

import contextlib
import pathlib

import numpy as np
import pytest

_BENCH_DIR = pathlib.Path(__file__).parent

#: Modules whose figures drive full cloud simulations (the slow tier).
_SLOW_MODULES = {
    "test_fig6_end_to_end",
    "test_fig8ab_scheduler_tradeoff",
    "test_fig8c_load_balance",
    "test_fig9a_cluster_scaling",
    "test_fig9b_load_scaling",
    "test_fig10a_exec_time",
    "test_fig10b_priorities",
}


def pytest_collection_modifyitems(config, items) -> None:
    for item in items:
        path = pathlib.Path(str(item.fspath))
        if path.parent != _BENCH_DIR:
            continue
        item.add_marker(pytest.mark.bench)
        if path.stem in _SLOW_MODULES:
            item.add_marker(pytest.mark.slow)


def report(title: str, result: dict, keys=None) -> None:
    """Print a paper-vs-measured table for a result dict."""
    paper = result.get("paper", {})
    measured = result.get("measured", {})
    print(f"\n=== {title} ===")
    for key in keys or paper:
        pv = paper.get(key, "-")
        mv = measured.get(key, "-")
        if isinstance(pv, float):
            pv = round(pv, 3)
        if isinstance(mv, float):
            mv = round(mv, 3)
        print(f"  {key:<40s} paper={pv!s:>14s}  measured={mv!s:>14s}")


@contextlib.contextmanager
def nsga_reference_patch():
    """Swap the NSGA-II hot path back to the pre-kernel reference loops.

    Restores the per-individual evaluate loop, the scalar per-violation
    repair loop, the per-front rank/crowding loops, and the
    recompute-from-scratch truncation — the implementations the
    population-flat kernels replaced.  The references consume the same
    RNG streams, so a patched run returns bit-identical results and the
    only difference a before/after timing sees is the kernels.
    """
    from repro.moo import crowding_distance, fast_non_dominated_sort
    from repro.moo.nsga2 import NSGA2
    from repro.scheduler.formulation import (
        SchedulingProblem,
        evaluate_reference,
        repair_reference,
    )

    def ref_evaluate(self, X):
        return evaluate_reference(self.data, X)

    def ref_repair(self, X):
        lists = self.__dict__.get("_ref_feasible_lists")
        if lists is None:
            # The pre-kernel problem built these once in __init__; cache
            # per instance so the "before" arm isn't charged for rebuilds.
            lists = [
                np.where(self.data.feasible[i])[0]
                for i in range(self.data.num_jobs)
            ]
            self.__dict__["_ref_feasible_lists"] = lists
        return repair_reference(self.data, X, self._rng, lists)

    def ref_rank_and_crowd(self, F):
        fronts = fast_non_dominated_sort(F)
        rank = np.empty(len(F), dtype=np.int64)
        crowd = np.empty(len(F))
        for r, front in enumerate(fronts):
            rank[front] = r
            crowd[front] = crowding_distance(F[front])
        return rank, crowd

    def ref_truncate(self, X, F):
        fronts = fast_non_dominated_sort(F)
        chosen, count = [], 0
        for front in fronts:
            if count + len(front) <= self.pop_size:
                chosen.append(front)
                count += len(front)
            else:
                crowd = crowding_distance(F[front])
                order = np.argsort(-crowd, kind="stable")
                chosen.append(front[order[: self.pop_size - count]])
                break
        idx = np.concatenate(chosen)
        Xs, Fs = X[idx], F[idx]
        rank, crowd = self._rank_and_crowd(Fs)
        return Xs, Fs, rank, crowd

    saved = (
        SchedulingProblem.evaluate,
        SchedulingProblem.repair,
        NSGA2._rank_and_crowd,
        NSGA2._truncate,
    )
    try:
        SchedulingProblem.evaluate = ref_evaluate
        SchedulingProblem.repair = ref_repair
        NSGA2._rank_and_crowd = ref_rank_and_crowd
        NSGA2._truncate = ref_truncate
        yield
    finally:
        (
            SchedulingProblem.evaluate,
            SchedulingProblem.repair,
            NSGA2._rank_and_crowd,
            NSGA2._truncate,
        ) = saved


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (experiments are heavy)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                  iterations=1)

    return runner
