"""Shared benchmark utilities.

Every benchmark regenerates one paper table/figure (scaled down for CI) and
prints paper-vs-measured rows. Absolute numbers come from a simulated
substrate; the *shape* (who wins, by roughly what factor) is the target.

Everything collected here is marked ``bench`` (CI runs the suite in a
separate non-blocking job); the heaviest end-to-end figure reproductions
are additionally marked ``slow`` so tiers can be selected with ``-m``.
"""

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).parent

#: Modules whose figures drive full cloud simulations (the slow tier).
_SLOW_MODULES = {
    "test_fig6_end_to_end",
    "test_fig8ab_scheduler_tradeoff",
    "test_fig8c_load_balance",
    "test_fig9a_cluster_scaling",
    "test_fig9b_load_scaling",
    "test_fig10a_exec_time",
    "test_fig10b_priorities",
}


def pytest_collection_modifyitems(config, items) -> None:
    for item in items:
        path = pathlib.Path(str(item.fspath))
        if path.parent != _BENCH_DIR:
            continue
        item.add_marker(pytest.mark.bench)
        if path.stem in _SLOW_MODULES:
            item.add_marker(pytest.mark.slow)


def report(title: str, result: dict, keys=None) -> None:
    """Print a paper-vs-measured table for a result dict."""
    paper = result.get("paper", {})
    measured = result.get("measured", {})
    print(f"\n=== {title} ===")
    for key in keys or paper:
        pv = paper.get(key, "-")
        mv = measured.get(key, "-")
        if isinstance(pv, float):
            pv = round(pv, 3)
        if isinstance(mv, float):
            mv = round(mv, 3)
        print(f"  {key:<40s} paper={pv!s:>14s}  measured={mv!s:>14s}")


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (experiments are heavy)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                  iterations=1)

    return runner
