"""Fig 9(a): mean JCT vs quantum cluster size (4/8/16 QPUs)."""

from conftest import report
from repro.experiments import fig9a_cluster_scaling


def test_fig9a_cluster_scaling(once):
    result = once(fig9a_cluster_scaling, scale=0.1)
    report("Fig 9a: JCT vs cluster size", result)
    m = result["measured"]
    print(f"  mean JCT by size: {m['mean_jct_by_size']}")
    jcts = m["mean_jct_by_size"]
    sizes = sorted(jcts)
    # More QPUs -> lower JCT, monotonically (paper: -52.8 % and -81 %).
    assert jcts[sizes[-1]] < jcts[sizes[0]]
    assert m["improvement_4_to_16_pct"] > m["improvement_4_to_8_pct"] > 0.0
