"""Fig 9(c): per-stage scheduler runtime vs cluster size."""

from conftest import report
from repro.experiments import fig9c_stage_runtimes


def test_fig9c_stage_runtimes(once):
    result = once(fig9c_stage_runtimes)
    report("Fig 9c: stage runtimes vs cluster size", result)
    for size, stages in result["measured"]["stage_seconds_by_size"].items():
        print(f"  {size:>2d} QPUs: {stages}")
    m = result["measured"]
    # Paper: only pre-processing grows with fleet size; optimization and
    # selection stay ~flat (the formulation is O(N) in jobs, not QPUs).
    assert m["preprocess_grows"]
    assert m["optimize_flat"]
