"""Fig 9(c): per-stage scheduler runtime vs cluster size."""

import json
import pathlib

from conftest import nsga_reference_patch, report
from repro.experiments import fig9c_stage_runtimes

ARTIFACT_DIR = pathlib.Path(__file__).parent / "artifacts"


def test_fig9c_stage_runtimes(once):
    result = once(fig9c_stage_runtimes)
    report("Fig 9c: stage runtimes vs cluster size", result)
    for size, stages in result["measured"]["stage_seconds_by_size"].items():
        print(f"  {size:>2d} QPUs: {stages}")

    # Before/after of the vectorized NSGA-II kernels on the optimize
    # stage: re-run the mid-size point with the pre-kernel reference
    # loops patched back in.  Same seeds, same schedule — only the
    # optimize-stage wall clock moves.
    with nsga_reference_patch():
        before = fig9c_stage_runtimes(sizes=(8,))
    opt_before = before["measured"]["stage_seconds_by_size"][8]["optimize"]
    opt_after = result["measured"]["stage_seconds_by_size"][8]["optimize"]
    print(
        f"  optimize stage @8 QPUs: reference {opt_before:.4f}s "
        f"-> kernels {opt_after:.4f}s"
    )

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "fig9c_stage_runtimes.json"
    artifact.write_text(
        json.dumps(
            {
                "stage_seconds_by_size": {
                    str(k): v
                    for k, v in result["measured"][
                        "stage_seconds_by_size"
                    ].items()
                },
                "optimize_stage_8qpus": {
                    "before_kernels_seconds": round(opt_before, 4),
                    "after_kernels_seconds": round(opt_after, 4),
                    "speedup": round(opt_before / max(opt_after, 1e-9), 2),
                },
            },
            indent=2,
        )
        + "\n"
    )

    m = result["measured"]
    # Paper: only pre-processing grows with fleet size; optimization and
    # selection stay ~flat (the formulation is O(N) in jobs, not QPUs).
    assert m["preprocess_grows"]
    assert m["optimize_flat"]
