"""Fig 8(c): per-QPU load at 1500/3000/4500 jobs/hour."""

from conftest import report
from repro.experiments import fig8c_load_balance


def test_fig8c_load_balance(once):
    result = once(fig8c_load_balance, scale=0.2)
    report("Fig 8c: QPU load balance", result)
    for rate, info in result["measured"]["per_rate"].items():
        print(f"  {rate} j/h: spread27q={info['load_spread_pct_27q']:.1f}% "
              f"cv={info['load_cv']:.2f} used={info['qpus_used']}/8 "
              f"loads={info['per_qpu_busy_seconds']}")
    # Balance improves as load saturates the fleet: the spread across the
    # six same-model 27q devices shrinks monotonically with offered load,
    # and at the saturated point every QPU carries work. (The paper's
    # fleet saturates at 1500 j/h; our service-time calibration saturates
    # near 3x that, so the paper-comparable operating point is the top
    # rate — see EXPERIMENTS.md.)
    rates = result["measured"]["per_rate"]
    ordered = [rates[r]["load_spread_pct_27q"] for r in sorted(rates)]
    assert ordered[-1] < ordered[0]  # spread shrinks with load
    assert ordered[-1] < 95.0
    top = rates[max(rates)]
    assert top["qpus_used"] == 8
