"""Fig 10(b): MCDM preference vectors pick matching front solutions."""

from conftest import report
from repro.experiments import fig10b_priorities


def test_fig10b_priorities(once):
    result = once(fig10b_priorities)
    report("Fig 10b: JCT/balanced/fidelity priorities", result)
    picks = result["measured"]["picks"]
    for pref, vals in picks.items():
        print(f"  {pref:<9s} mean_jct={vals['mean_jct']:.0f}s "
              f"mean_fid={vals['mean_fidelity']:.3f}")
    # Orderings must match the paper: JCT priority minimizes JCT,
    # fidelity priority maximizes fidelity, balanced sits between.
    assert picks["jct"]["mean_jct"] <= picks["balanced"]["mean_jct"]
    assert picks["balanced"]["mean_jct"] <= picks["fidelity"]["mean_jct"]
    assert picks["fidelity"]["mean_fidelity"] >= picks["balanced"]["mean_fidelity"]
    assert picks["balanced"]["mean_fidelity"] >= picks["jct"]["mean_fidelity"]
    m = result["measured"]
    assert m["jct_priority_saving_pct"] > 10.0  # paper: 67 %
