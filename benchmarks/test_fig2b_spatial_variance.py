"""Fig 2(b): spatial performance variance of GHZ-12 across QPUs."""

from conftest import report
from repro.experiments import fig2b_spatial_variance


def test_fig2b_spatial_variance(once):
    result = once(fig2b_spatial_variance)
    report("Fig 2b: GHZ-12 fidelity across QPUs", result)
    m = result["measured"]
    assert m["best_qpu"] == "auckland"
    assert m["best_over_worst_pct"] > 10.0  # paper: 38 %
    assert m["auckland"] > m["algiers"]
