"""Fig 2(a): circuit cutting's fidelity and runtime impact."""

from conftest import report
from repro.experiments import fig2a_circuit_cutting


def test_fig2a_circuit_cutting(once):
    result = once(fig2a_circuit_cutting)
    report(
        "Fig 2a: circuit cutting (12q point; paper headline is 24q)",
        result,
        keys=["fidelity_gain_24q", "quantum_runtime_x_24q",
              "classical_runtime_x_24q"],
    )
    m = result["measured"]
    print(f"  measured@12q: fid {m['fid_uncut']:.3f} -> {m['fid_cut']:.3f} "
          f"(gain x{m['fidelity_gain_x']:.2f}), quantum x{m['quantum_runtime_x']:.1f}, "
          f"classical x{m['classical_runtime_x']:.1f}")
    # Shape assertions: cutting improves fidelity and costs extra runtime.
    assert m["fid_cut"] > m["fid_uncut"]
    assert m["quantum_runtime_x"] > 2.0
    assert m["classical_runtime_x"] > 1.0
