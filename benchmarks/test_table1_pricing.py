"""Table 1: IBM Cloud pricing model."""

from conftest import report
from repro.experiments import table1_pricing


def test_table1_pricing(once):
    result = once(table1_pricing)
    report("Table 1: IBM Cloud pricing", result)
    m = result["measured"]
    assert 3000 <= m["qpu_per_hour"] <= 6000
    assert m["qpu_vs_highend_orders_of_magnitude"] == 2
    assert m["classical_trade_cheaper"]
