"""Fig 7(a): Pareto front of fidelity-runtime resource plans (QAOA-20)."""

from conftest import report
from repro.experiments import fig7a_resource_plans


def test_fig7a_resource_plans(once):
    result = once(fig7a_resource_plans)
    report("Fig 7a: resource-plan Pareto front (20q QAOA max-cut)", result)
    m = result["measured"]
    for p in m["plans"]:
        print(f"  plan {p['mitigation']:<18s} {p['tier']:<12s} "
              f"fid={p['fidelity']:.3f} t={p['total_seconds']:.1f}s "
              f"${p['cost_usd']:.0f}")
    assert m["num_plans"] >= 2
    # The front must offer a meaningful runtime saving for a small
    # fidelity concession (paper: -34.6 % runtime for -3.6 % fidelity).
    assert m["second_best_runtime_saving_pct"] > 5.0
    assert m["second_best_fid_loss_pct"] < 15.0
