"""Ablation benches for the design choices called out in DESIGN.md §5:
NSGA-II vs random search, triggers, and template-vs-per-QPU estimation."""

import numpy as np

from repro.backends import default_fleet
from repro.cloud.job import QuantumJob
from repro.moo import NSGA2, Termination, pareto_front_mask
from repro.scheduler import SchedulingTrigger
from repro.scheduler.formulation import SchedulingProblem
from repro.workloads import WorkloadSampler


def _problem(seed=0, n_jobs=40, n_qpus=6):
    rng = np.random.default_rng(seed)
    from repro.scheduler.formulation import SchedulingInput

    data = SchedulingInput(
        fidelity=rng.uniform(0.4, 0.95, (n_jobs, n_qpus)),
        exec_seconds=rng.uniform(5, 40, (n_jobs, n_qpus)),
        waiting_seconds=rng.uniform(0, 600, n_qpus),
        feasible=np.ones((n_jobs, n_qpus), dtype=bool),
    )
    return SchedulingProblem(data, seed=seed)


def _hypervolume(F, ref=(1e5, 1.0)):
    """2-D hypervolume dominated by the front (larger = better)."""
    front = F[pareto_front_mask(F)]
    order = np.argsort(front[:, 0])
    front = front[order]
    hv, prev_x = 0.0, ref[0]
    for x, y in front[::-1]:
        hv += max(0.0, (prev_x - x)) * max(0.0, ref[1] - y)
        prev_x = x
    return hv


def test_ablation_nsga2_vs_random_search(once):
    """NSGA-II must dominate random search at equal evaluation budget."""

    def run():
        problem = _problem(seed=3)
        result = NSGA2(pop_size=40, seed=1).minimize(
            problem, Termination(max_generations=30)
        )
        budget = result.evaluations
        rng = np.random.default_rng(1)
        X = problem.sample(budget, rng)
        F_rand = problem.evaluate(X)
        return _hypervolume(result.F), _hypervolume(F_rand)

    hv_nsga, hv_rand = once(run)
    print(f"\n=== Ablation: NSGA-II vs random search ===")
    print(f"  hypervolume: nsga2={hv_nsga:.3e} random={hv_rand:.3e}")
    assert hv_nsga >= hv_rand


def test_ablation_scheduling_triggers(once):
    """Queue-size triggers bound batch latency; time triggers bound idleness."""

    def run():
        trig = SchedulingTrigger(queue_limit=50, interval_seconds=120)
        fires_queue = sum(
            1 for q in range(1, 200) if trig.should_fire(q, now=0.0)
        )
        trig2 = SchedulingTrigger(queue_limit=10**9, interval_seconds=120)
        trig2.fired(0.0)
        fires_time = sum(
            1 for t in np.arange(0, 600, 60) if trig2.should_fire(1, now=float(t))
        )
        return fires_queue, fires_time

    fq, ft = once(run)
    print(f"\n=== Ablation: triggers === queue-fires={fq} time-fires={ft}")
    assert fq > 0 and ft > 0


def test_ablation_template_vs_per_qpu_estimation(once):
    """Template averaging trades a little accuracy for per-model cost."""
    from repro.experiments.common import trained_estimator
    from repro.backends import build_templates
    from repro.cloud import ExecutionModel

    def run():
        est = trained_estimator(seed=7)
        fleet = default_fleet(seed=7, names=["auckland", "cairo", "algiers"])
        templates = build_templates(fleet)
        em = ExecutionModel(seed=13)
        rng = np.random.default_rng(0)
        sampler = WorkloadSampler(seed=5, max_qubits=27, mean_qubits=8)
        err_per_qpu, err_template = [], []
        template = templates["falcon_r5_27"]
        for s in sampler.sample_many(40):
            job = QuantumJob.from_circuit(s.circuit, shots=s.shots,
                                          keep_circuit=False)
            qpu = fleet[int(rng.integers(len(fleet)))]
            real = em.execute(job, qpu.calibration, qpu.model, rng)
            f_qpu = est.estimators.estimate_fidelity(
                job.metrics, job.shots, "none", qpu.calibration
            )
            f_tmpl = est.estimators.estimate_fidelity(
                job.metrics, job.shots, "none", template.calibration
            )
            err_per_qpu.append(abs(f_qpu - real.fidelity))
            err_template.append(abs(f_tmpl - real.fidelity))
        return float(np.mean(err_per_qpu)), float(np.mean(err_template))

    e_qpu, e_tmpl = once(run)
    print(f"\n=== Ablation: per-QPU vs template estimation ===")
    print(f"  mean |err|: per-qpu={e_qpu:.3f} template={e_tmpl:.3f}")
    # Template estimation is coarser but must stay in the same regime.
    assert e_tmpl < max(0.25, 3.0 * e_qpu)
