"""Fig 7(b, c): estimation-error CDFs, regression vs numerical baseline."""

import numpy as np

from conftest import report
from repro.experiments import fig7bc_estimation_error


def test_fig7bc_estimation_error(once):
    result = once(fig7bc_estimation_error, num_jobs=200)
    report("Fig 7b/c: estimation error", result, keys=[
        "fid_err_lt_0.1_frac", "runtime_err_lt_500ms_frac",
    ])
    m = result["measured"]
    print(f"  fid err<0.1: regression={m['fid_err_lt_0.1_frac_regression']:.2f} "
          f"numerical={m['fid_err_lt_0.1_frac_numerical']:.2f}")
    print(f"  run err<0.5s: regression={m['runtime_err_lt_500ms_frac_regression']:.2f} "
          f"numerical={m['runtime_err_lt_500ms_frac_numerical']:.2f}")
    # Paper: ~75 % of fidelity estimates within 0.1; regression >= numerical.
    assert m["fid_err_lt_0.1_frac_regression"] >= 0.70
    assert m["regression_beats_numerical"]
    assert (m["runtime_err_lt_500ms_frac_regression"]
            > m["runtime_err_lt_500ms_frac_numerical"])
    # CDFs are monotone by construction; check median ordering too.
    cdf = result["cdf_data"]
    assert np.median(cdf["run_err_regression"]) < np.median(cdf["run_err_numerical"])
