"""Fig 6: end-to-end Qonductor vs FCFS (fidelity, JCT, utilization)."""

from conftest import report
from repro.experiments import fig6_end_to_end


def test_fig6_end_to_end(once):
    result = once(fig6_end_to_end, scale=0.2)
    report("Fig 6: end-to-end vs FCFS (scale=0.2 of the paper's hour)", result)
    m = result["measured"]
    print(f"  qonductor: {m['qonductor']}")
    print(f"  fcfs:      {m['fcfs']}")
    # Shape: Qonductor trades a small fidelity drop for lower JCT and
    # higher utilization; gaps grow with simulation horizon.
    assert m["jct_reduction_pct"] > 0.0
    assert m["utilization_increase_pct"] > 0.0
    assert m["fidelity_drop_pct"] < 12.0
    # Load balance: Qonductor spreads work far more evenly than FCFS's
    # best-device hotspotting (coefficient of variation of busy time).
    assert m["qonductor"]["load_cv"] < m["fcfs"]["load_cv"]
