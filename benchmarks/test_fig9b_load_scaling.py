"""Fig 9(b): scheduler queue stability up to 3x the IBM load."""

from conftest import report
from repro.experiments import fig9b_load_scaling


def test_fig9b_load_scaling(once):
    result = once(fig9b_load_scaling, scale=0.1)
    report("Fig 9b: queue stability vs load", result)
    for rate, info in result["measured"]["per_rate"].items():
        print(f"  {rate} j/h: max_queue={info['max_queue']} "
              f"mean={info['mean_queue']:.1f} stable={info['stable']}")
    # The scheduler must remain stable at 3x the baseline load.
    assert result["measured"]["stable_up_to_rate"] >= 4500
