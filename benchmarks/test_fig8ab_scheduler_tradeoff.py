"""Fig 8(a, b): per-cycle Pareto front vs the chosen solution."""

from conftest import report
from repro.experiments import fig8ab_tradeoff


def test_fig8ab_scheduler_tradeoff(once):
    result = once(fig8ab_tradeoff, num_cycles=12)
    report("Fig 8a/b: JCT & fidelity of scheduled jobs", result)
    m = result["measured"]
    # Chosen solutions sit well below the front's max JCT while giving up
    # only a few percent of the front's max fidelity (paper: 34 % / 4 %).
    assert m["jct_below_max_pct"] > 15.0
    assert m["fid_below_max_pct"] < 10.0
