"""Fig 2(c): QPU queue-size imbalance over a week."""

from conftest import report
from repro.experiments import fig2c_load_imbalance


def test_fig2c_load_imbalance(once):
    result = once(fig2c_load_imbalance)
    report("Fig 2c: queue imbalance", result)
    m = result["measured"]
    print(f"  daily max/min queue ratios: {m['daily_ratios']}")
    assert m["max_queue_ratio"] > 20.0  # paper: ~100x
