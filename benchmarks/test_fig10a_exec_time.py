"""Fig 10(a): mean execution time of scheduled jobs vs front extremes."""

from conftest import report
from repro.experiments import fig10a_exec_time


def test_fig10a_exec_time(once):
    result = once(fig10a_exec_time, num_cycles=12)
    report("Fig 10a: mean execution time of scheduled jobs", result)
    m = result["measured"]
    print(f"  chosen={m['mean_exec_chosen']:.2f}s "
          f"front=[{m['mean_exec_front_min']:.2f}, {m['mean_exec_front_max']:.2f}]s")
    # Shape: the chosen solution's execution time sits below the front max
    # (paper: 63.4 % lower; our per-device speed spread is narrower).
    assert m["exec_below_max_pct"] > 2.0
    assert m["mean_exec_chosen"] < m["mean_exec_front_max"]
