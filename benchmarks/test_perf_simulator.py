"""Micro-benchmark for the event-driven cloud core.

Not a paper figure: this harness records throughput (events/sec) and
estimate-cache hit rate for the simulator hot path and writes a JSON
artifact so the perf trajectory is tracked across PRs (CI uploads it from
the non-blocking benchmark job).

The 10k-job stress scenario is the load level the old batch time-stepping
loop could not finish in reasonable time: per-sample rescans of the whole
arrived stream plus per-(job, QPU) estimator calls made it quadratic-ish
in practice. The event core schedules it in seconds.
"""

import json
import pathlib
import time

from conftest import report
from repro.backends.fleet import fleet_of_size
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
    ThresholdRebalancePolicy,
)
from repro.experiments.common import trained_estimator
from repro.experiments.rebalance import skew_scenario
from repro.scheduler import FCFSPolicy, QonductorScheduler, SchedulingTrigger

ARTIFACT_DIR = pathlib.Path(__file__).parent / "artifacts"

#: Round shot counts, as real cloud users request them; this is what makes
#: the content-addressed estimate cache hit across jobs.
SHOTS_GRID = (1024, 2048, 4096, 8192)


def _run_stress(num_jobs: int, *, num_qpus: int = 8, seed: int = 3):
    """Drive ~num_jobs arrivals through the Qonductor scheduling stack."""
    rate = 20_000.0  # jobs/hour: far past the paper's 3x stability point
    duration = num_jobs / rate * 3600.0
    estimator = trained_estimator(seed=7)
    cached = estimator.cached()
    gen = LoadGenerator(
        mean_rate_per_hour=rate,
        diurnal=False,
        shots_grid=SHOTS_GRID,
        seed=seed,
    )
    apps = gen.generate(duration)
    sim = CloudSimulator(
        fleet_of_size(num_qpus, seed=7),
        QonductorScheduler(cached, seed=seed, max_generations=10),
        ExecutionModel(seed=11),
        trigger=SchedulingTrigger(),
        config=SimulationConfig(
            duration_seconds=duration,
            recalibrate_every_seconds=duration / 2.0,
            seed=seed,
        ),
    )
    t0 = time.perf_counter()
    metrics = sim.run(apps)
    wall = time.perf_counter() - t0
    return apps, metrics, cached, wall


def test_perf_event_core_10k_jobs():
    apps, metrics, cached, wall = _run_stress(10_000)
    scheduled = metrics.dispatched_jobs + metrics.unschedulable_jobs
    result = {
        "paper": {},
        "measured": {
            "jobs": len(apps),
            "scheduled_jobs": scheduled,
            "wall_seconds": round(wall, 3),
            "events_processed": metrics.events_processed,
            "events_per_second": round(metrics.events_per_second, 1),
            "jobs_per_second": round(scheduled / max(wall, 1e-9), 1),
            "scheduling_cycles": metrics.scheduling_cycles,
            "estimate_cache": metrics.estimate_cache,
        },
    }
    report("Perf: event core, 10k-job stress", result,
           keys=list(result["measured"]))

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_simulator.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    # The old loop needed minutes here; keep a generous regression gate.
    assert len(apps) > 9_000
    assert scheduled == len(apps)
    assert wall < 120.0
    assert metrics.events_processed > len(apps)  # arrivals + completions + ticks
    # Round shot counts + repeated circuit shapes must produce real reuse.
    assert metrics.estimate_cache["hit_rate"] > 0.2


def test_perf_sharded_100k_jobs():
    """Cloud-scale stress: 100k streamed jobs over a 64-QPU, 8-shard fleet.

    Arrivals are pulled lazily from ``iter_arrivals`` (never materialized)
    and drawn from a 512-program resubmission pool, so peak memory is
    independent of the job count; the least-loaded balancer spreads work
    over per-shard FCFS schedulers sharing one estimate cache.
    """
    rate = 200_000.0  # jobs/hour — two orders past the paper's IBM band
    num_jobs = 100_000
    num_shards = 8
    duration = num_jobs / rate * 3600.0
    estimator = trained_estimator(seed=7)
    cached = estimator.cached()
    gen = LoadGenerator(
        mean_rate_per_hour=rate,
        diurnal=False,
        shots_grid=SHOTS_GRID,
        circuit_pool_size=512,
        seed=3,
    )
    sim = CloudSimulator.sharded(
        fleet_of_size(64, seed=7),
        FCFSPolicy(cached),
        num_shards=num_shards,
        balancer="least_loaded",
        execution_model=ExecutionModel(seed=11),
        config=SimulationConfig(
            duration_seconds=duration,
            recalibrate_every_seconds=duration / 2.0,
            seed=3,
        ),
    )
    t0 = time.perf_counter()
    metrics = sim.run(gen.iter_arrivals(duration))
    wall = time.perf_counter() - t0

    scheduled = metrics.dispatched_jobs + metrics.unschedulable_jobs
    result = {
        "paper": {},
        "measured": {
            "jobs": scheduled,
            "num_qpus": 64,
            "num_shards": metrics.num_shards,
            "wall_seconds": round(wall, 3),
            "events_processed": metrics.events_processed,
            "events_per_second": round(metrics.events_per_second, 1),
            "jobs_per_second": round(scheduled / max(wall, 1e-9), 1),
            "peak_inflight_apps": metrics.peak_inflight_apps,
            "per_shard_jobs": metrics.per_shard_jobs,
            "estimate_cache": metrics.estimate_cache,
        },
    }
    report("Perf: sharded fleet, 100k-job stress", result,
           keys=[k for k in result["measured"] if k != "per_shard_jobs"])

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_sharded_100k.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    assert scheduled > 95_000
    assert wall < 60.0
    # Streaming: in-flight applications, not the stream, bound memory.
    assert metrics.peak_inflight_apps <= 10
    # Aggregate state is O(1): completions fold into running sums (value-
    # exact vs a full rescan, enforced per sample point in
    # tests/test_event_core.py), so the only per-run aggregate containers
    # are the sampled series, which track the cadence — never the 100k
    # completions.
    max_samples = int(duration // sim.config.sample_every_seconds) + 2
    assert len(metrics.mean_completion_time.values) <= max_samples
    assert len(metrics.mean_fidelity.values) <= max_samples
    # Every shard took a share of the fleet-wide load.
    assert len(metrics.per_shard_jobs) == num_shards
    assert all(v > 0 for v in metrics.per_shard_jobs.values())
    # The resubmission pool must keep the shared estimate cache hot.
    assert metrics.estimate_cache["hit_rate"] > 0.8


# ---------------------------------------------------------------------------
# Skewed-width + flash-outage stress: work stealing vs static shards
# ---------------------------------------------------------------------------

def _run_skew(rebalance):
    """One arm of the shared skew + flash-outage scenario, at CI scale.

    Every job fits the mid shard tightest, so static routing saturates it
    (~1.2x its service rate) while the wide shard idles; halfway through,
    a flash outage takes two mid QPUs down for 30 minutes.  Work stealing
    is the only mechanism that moves the resulting backlog.
    """
    duration = 7200.0
    gen, sim = skew_scenario(
        rebalance=rebalance,
        duration_seconds=duration,
        outage_start=1800.0,
        outage_seconds=1800.0,
        shots_grid=SHOTS_GRID,
        seed=3,
    )
    t0 = time.perf_counter()
    metrics = sim.run(gen.iter_arrivals(duration))
    return metrics, time.perf_counter() - t0, duration, sim


def test_perf_rebalance_skew_outage():
    static, static_wall, duration, static_sim = _run_skew(None)
    steal, steal_wall, _, _ = _run_skew(
        ThresholdRebalancePolicy(min_gap=8, interval_seconds=30.0)
    )
    s_static, s_steal = static.summary(), steal.summary()
    result = {
        "paper": {},
        "measured": {
            "jobs": static.dispatched_jobs + static.unschedulable_jobs,
            "outage_events": steal.outage_events,
            "static": {
                "load_cv": round(s_static["load_cv"], 4),
                "final_mean_jct": round(s_static["final_mean_jct"], 1),
                "wall_seconds": round(static_wall, 3),
            },
            "work_stealing": {
                "load_cv": round(s_steal["load_cv"], 4),
                "final_mean_jct": round(s_steal["final_mean_jct"], 1),
                "jobs_migrated": steal.jobs_migrated,
                "rebalance_cycles": steal.rebalance_cycles,
                "per_shard_steals": {
                    str(k): v for k, v in steal.per_shard_steals.items()
                },
                "wall_seconds": round(steal_wall, 3),
            },
        },
    }
    report(
        "Perf: work stealing under skewed widths + flash outage",
        result,
        keys=["jobs", "outage_events", "static", "work_stealing"],
    )

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_rebalance_skew.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    # Both runs saw the same stream and the same outage.
    assert static.outage_events == steal.outage_events == 2
    assert static.recovery_events == 2
    assert (
        steal.dispatched_jobs + steal.unschedulable_jobs
        == static.dispatched_jobs + static.unschedulable_jobs
    )
    # Work stealing actually moved pending jobs across shards...
    assert steal.jobs_migrated > 0
    assert steal.rebalance_cycles > 0
    # ...and that cut both the busy-seconds imbalance and the final mean
    # JCT versus the static partition.
    assert s_steal["load_cv"] < s_static["load_cv"]
    assert s_steal["final_mean_jct"] < s_static["final_mean_jct"]
    # The static mid shard hotspot is the pathology being fixed: with
    # stealing, the wide shard executes a real share of the work.
    wide_jobs = sum(
        v for k, v in steal.per_qpu_jobs.items() if k.startswith("wide")
    )
    assert wide_jobs > 0
    # O(1) aggregate bound holds here too (sampled series track cadence).
    max_samples = int(duration // static_sim.config.sample_every_seconds) + 2
    assert len(static.mean_completion_time.values) <= max_samples
    assert len(steal.mean_completion_time.values) <= max_samples
