"""Micro-benchmark for the event-driven cloud core.

Not a paper figure: this harness records throughput (events/sec) and
estimate-cache hit rate for the simulator hot path and writes a JSON
artifact so the perf trajectory is tracked across PRs (CI uploads it from
the non-blocking benchmark job).

The 10k-job stress scenario is the load level the old batch time-stepping
loop could not finish in reasonable time: per-sample rescans of the whole
arrived stream plus per-(job, QPU) estimator calls made it quadratic-ish
in practice. The event core schedules it in seconds.
"""

import json
import os
import pathlib
import time

from conftest import report
from repro.backends.fleet import fleet_of_size
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
    ThresholdRebalancePolicy,
)
from repro.experiments.common import trained_estimator
from repro.experiments.rebalance import skew_scenario
from repro.experiments.tenant import tenant_study
from repro.scheduler import FCFSPolicy, QonductorScheduler, SchedulingTrigger
from repro.scheduler.cycle import run_optimization

ARTIFACT_DIR = pathlib.Path(__file__).parent / "artifacts"

#: Estimate-cache warm-start file: the CI stress job persists it across
#: runs (actions/cache), so every run after the first starts with the
#: previous run's memo table (epoch keys keep stale entries unservable).
WARMSTART_PATH = ARTIFACT_DIR / "estimate_cache_warmstart.json"

#: Round shot counts, as real cloud users request them; this is what makes
#: the content-addressed estimate cache hit across jobs.
SHOTS_GRID = (1024, 2048, 4096, 8192)


def _run_stress(num_jobs: int, *, num_qpus: int = 8, seed: int = 3):
    """Drive ~num_jobs arrivals through the Qonductor scheduling stack."""
    rate = 20_000.0  # jobs/hour: far past the paper's 3x stability point
    duration = num_jobs / rate * 3600.0
    estimator = trained_estimator(seed=7)
    cached = estimator.cached()
    gen = LoadGenerator(
        mean_rate_per_hour=rate,
        diurnal=False,
        shots_grid=SHOTS_GRID,
        seed=seed,
    )
    apps = gen.generate(duration)
    sim = CloudSimulator(
        fleet_of_size(num_qpus, seed=7),
        QonductorScheduler(cached, seed=seed, max_generations=10),
        ExecutionModel(seed=11),
        trigger=SchedulingTrigger(),
        config=SimulationConfig(
            duration_seconds=duration,
            recalibrate_every_seconds=duration / 2.0,
            seed=seed,
        ),
    )
    t0 = time.perf_counter()
    metrics = sim.run(apps)
    wall = time.perf_counter() - t0
    return apps, metrics, cached, wall


def test_perf_event_core_10k_jobs():
    apps, metrics, cached, wall = _run_stress(10_000)
    scheduled = metrics.dispatched_jobs + metrics.unschedulable_jobs
    result = {
        "paper": {},
        "measured": {
            "jobs": len(apps),
            "scheduled_jobs": scheduled,
            "wall_seconds": round(wall, 3),
            "events_processed": metrics.events_processed,
            "events_per_second": round(metrics.events_per_second, 1),
            "jobs_per_second": round(scheduled / max(wall, 1e-9), 1),
            "scheduling_cycles": metrics.scheduling_cycles,
            "estimate_cache": metrics.estimate_cache,
        },
    }
    report("Perf: event core, 10k-job stress", result,
           keys=list(result["measured"]))

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_simulator.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    # The old loop needed minutes here; keep a generous regression gate.
    assert len(apps) > 9_000
    assert scheduled == len(apps)
    assert wall < 120.0
    assert metrics.events_processed > len(apps)  # arrivals + completions + ticks
    # Round shot counts + repeated circuit shapes must produce real reuse.
    assert metrics.estimate_cache["hit_rate"] > 0.2


def test_perf_sharded_100k_jobs():
    """Cloud-scale stress: 100k streamed jobs over a 64-QPU, 8-shard fleet.

    Arrivals are pulled lazily from ``iter_arrivals`` (never materialized)
    and drawn from a 512-program resubmission pool, so peak memory is
    independent of the job count; the least-loaded balancer spreads work
    over per-shard FCFS schedulers sharing one estimate cache.
    """
    rate = 200_000.0  # jobs/hour — two orders past the paper's IBM band
    num_jobs = 100_000
    num_shards = 8
    duration = num_jobs / rate * 3600.0
    estimator = trained_estimator(seed=7)
    cached = estimator.cached()
    # Warm-start from the previous CI run's memo table when the stress
    # job's cache restored one (a stale or incompatible file just means a
    # cold start, never a wrong estimate — keys carry the epoch).
    warm_entries = 0
    if WARMSTART_PATH.exists():
        try:
            warm_entries = cached.load(WARMSTART_PATH)
        except (ValueError, KeyError, json.JSONDecodeError):
            warm_entries = 0
    gen = LoadGenerator(
        mean_rate_per_hour=rate,
        diurnal=False,
        shots_grid=SHOTS_GRID,
        circuit_pool_size=512,
        seed=3,
    )
    sim = CloudSimulator.sharded(
        fleet_of_size(64, seed=7),
        FCFSPolicy(cached),
        num_shards=num_shards,
        balancer="least_loaded",
        execution_model=ExecutionModel(seed=11),
        config=SimulationConfig(
            duration_seconds=duration,
            recalibrate_every_seconds=duration / 2.0,
            seed=3,
        ),
    )
    t0 = time.perf_counter()
    metrics = sim.run(gen.iter_arrivals(duration))
    wall = time.perf_counter() - t0

    scheduled = metrics.dispatched_jobs + metrics.unschedulable_jobs
    result = {
        "paper": {},
        "measured": {
            "jobs": scheduled,
            "num_qpus": 64,
            "num_shards": metrics.num_shards,
            "wall_seconds": round(wall, 3),
            "events_processed": metrics.events_processed,
            "events_per_second": round(metrics.events_per_second, 1),
            "jobs_per_second": round(scheduled / max(wall, 1e-9), 1),
            "peak_inflight_apps": metrics.peak_inflight_apps,
            "per_shard_jobs": metrics.per_shard_jobs,
            "estimate_cache": metrics.estimate_cache,
            "warm_start_entries_loaded": warm_entries,
        },
    }
    report("Perf: sharded fleet, 100k-job stress", result,
           keys=[k for k in result["measured"] if k != "per_shard_jobs"])

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_sharded_100k.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")
    # Persist the memo table for the next CI run's warm start.
    saved = cached.save(WARMSTART_PATH)
    assert saved > 0

    assert scheduled > 95_000
    assert wall < 60.0
    # Streaming: in-flight applications, not the stream, bound memory.
    assert metrics.peak_inflight_apps <= 10
    # Aggregate state is O(1): completions fold into running sums (value-
    # exact vs a full rescan, enforced per sample point in
    # tests/test_event_core.py), so the only per-run aggregate containers
    # are the sampled series, which track the cadence — never the 100k
    # completions.
    max_samples = int(duration // sim.config.sample_every_seconds) + 2
    assert len(metrics.mean_completion_time.values) <= max_samples
    assert len(metrics.mean_fidelity.values) <= max_samples
    # Every shard took a share of the fleet-wide load.
    assert len(metrics.per_shard_jobs) == num_shards
    assert all(v > 0 for v in metrics.per_shard_jobs.values())
    # The resubmission pool must keep the shared estimate cache hot.
    assert metrics.estimate_cache["hit_rate"] > 0.8


# ---------------------------------------------------------------------------
# Parallel scheduling engine: worker-pool NSGA-II cycles vs serial
# ---------------------------------------------------------------------------

def _run_parallel_cycles(executor, *, num_shards=4, duration=1500.0):
    """One arm of the parallel-engine comparison.

    A 4-shard Qonductor fleet with deadline-driven triggers (huge queue
    limit), so all shards' cycles land on one shared 120 s cadence and
    every TRIGGER batch is ``num_shards`` wide; arrivals are Markov-
    modulated (flash-crowd bursts at 6x the calm rate) so queue depths —
    and thus NSGA-II cost — swing the way a worst-case stream would.
    """
    estimator = trained_estimator(seed=7)
    cached = estimator.cached()
    gen = LoadGenerator(
        mean_rate_per_hour=9600.0,
        diurnal=False,
        arrival_process="mmpp",
        burst_rate_multiplier=6.0,
        mean_burst_seconds=90.0,
        mean_calm_seconds=360.0,
        shots_grid=SHOTS_GRID,
        seed=3,
    )
    sim = CloudSimulator.sharded(
        fleet_of_size(16, seed=7),
        QonductorScheduler(cached, seed=3, max_generations=20),
        num_shards=num_shards,
        balancer="least_loaded",
        execution_model=ExecutionModel(seed=11),
        trigger_factory=lambda i: SchedulingTrigger(
            queue_limit=100_000, interval_seconds=120.0
        ),
        config=SimulationConfig(duration_seconds=duration, seed=3),
        cycle_executor=executor,
    )
    t0 = time.perf_counter()
    metrics = sim.run(gen.generate(duration))
    return metrics, time.perf_counter() - t0


def _cache_sweep(max_entries_grid=(64, 256, 1024, 4096, 16384)):
    """Hit rate vs ``max_entries`` on a realistic round-shots stream.

    Replays the same scheduling-shaped request sequence (batches of
    pending jobs scored against the full fleet via ``estimate_block``,
    drawn from a resubmission pool with round shot counts — the regime
    the cache exists for) against fresh caches of different capacities,
    isolating the eviction policy from everything else.  The working set
    is ~pool x fleet keys, so the sweep brackets it: small caps thrash
    under generational eviction, caps past the working set converge.
    """
    estimator = trained_estimator(seed=7)
    fleet = fleet_of_size(8, seed=7)
    gen = LoadGenerator(
        mean_rate_per_hour=20_000.0,
        diurnal=False,
        shots_grid=SHOTS_GRID,
        circuit_pool_size=256,
        seed=13,
    )
    apps = gen.generate(1800.0)
    batches = [
        [a.quantum_job for a in apps[i : i + 50]]
        for i in range(0, len(apps), 50)
    ]
    sweep = {}
    for max_entries in max_entries_grid:
        cached = estimator.cached(max_entries=max_entries)
        for batch in batches:
            cached.estimate_block(batch, fleet)
        sweep[max_entries] = {
            "hit_rate": round(cached.stats.hit_rate, 4),
            "lookups": cached.stats.lookups,
            "entries": len(cached.cache),
        }
    return sweep


def test_perf_parallel_cycles():
    """The tentpole gate: worker-pool NSGA-II cycles must be bit-identical
    to serial execution and >=2x faster on the optimization stage when
    the host has the cores (CI runners do; the gate is skipped below 4)."""
    serial, serial_wall = _run_parallel_cycles("serial")
    parallel, parallel_wall = _run_parallel_cycles("process")
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")  # affinity-aware on Linux/CI
        else (os.cpu_count() or 1)
    )

    opt_serial = serial.stage_seconds["optimize_wall"]
    opt_parallel = parallel.stage_seconds["optimize_wall"]
    speedup = opt_serial / max(opt_parallel, 1e-9)
    sweep = _cache_sweep()
    result = {
        "paper": {},
        "measured": {
            "jobs": serial.dispatched_jobs + serial.unschedulable_jobs,
            "num_shards": serial.num_shards,
            "cpus": cpus,
            "scheduling_cycles": serial.scheduling_cycles,
            "cycle_batches": serial.cycle_batches,
            "max_batch_cycles": serial.max_batch_cycles,
            "optimize_stage_speedup": round(speedup, 2),
            "serial": {
                "wall_seconds": round(serial_wall, 3),
                "stage_seconds": {
                    k: round(v, 3) for k, v in serial.stage_seconds.items()
                },
            },
            "parallel": {
                "backend": "process",
                "wall_seconds": round(parallel_wall, 3),
                "stage_seconds": {
                    k: round(v, 3) for k, v in parallel.stage_seconds.items()
                },
            },
            "bit_identical": (
                serial.deterministic_state() == parallel.deterministic_state()
            ),
            "cache_hit_rate_vs_max_entries": {
                str(k): v for k, v in sweep.items()
            },
        },
    }
    report(
        "Perf: parallel scheduling engine (worker-pool NSGA-II cycles)",
        result,
        keys=[
            "jobs", "num_shards", "cpus", "scheduling_cycles",
            "cycle_batches", "max_batch_cycles", "optimize_stage_speedup",
            "bit_identical",
        ],
    )

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_parallel_cycles.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    # Determinism is unconditional: whichever worker ran which cycle,
    # the folded-in SimulationMetrics must be bit-identical to serial.
    assert serial.deterministic_state() == parallel.deterministic_state()
    # The batches really were 4 cycles wide (aligned deadlines) and the
    # optimization stage dominated, so there was real work to overlap.
    assert serial.max_batch_cycles >= 4
    assert opt_serial > 0.3 * serial_wall
    # Capacity sweep: a too-small cache thrashes, a cap past the working
    # set serves the stream almost entirely from memo.
    rates = [sweep[k]["hit_rate"] for k in sorted(sweep)]
    assert all(b >= a for a, b in zip(rates, rates[1:]))
    assert rates[-1] > 0.8
    # S1: the segmented LRU degrades gracefully below the working set.
    # The generational halving it replaced flushed the oldest half-table
    # wholesale, so a cap around half the working set (~1.9k keys here)
    # cycled to a near-zero hit rate — the cliff; the SLRU's protected
    # segment keeps the re-referenced hot keys serving instead.
    working_set = sweep[max(sweep)]["entries"]
    below = [k for k in sweep if k < working_set]
    assert below, "sweep grid no longer brackets the working set"
    assert sweep[max(below)]["hit_rate"] > 0.4
    # The wall-clock gate only means something with cores to spend.
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"optimization stage speedup {speedup:.2f}x < 2x "
            f"({opt_serial:.2f}s serial vs {opt_parallel:.2f}s parallel "
            f"on {cpus} CPUs)"
        )


# ---------------------------------------------------------------------------
# Pipelined engine: ε-coalescing + modeled latency vs the synchronous path
# ---------------------------------------------------------------------------

def _run_pipelined(executor, *, duration=1200.0, **knobs):
    """One arm of the pipelined-engine comparison.

    Unlike ``_run_parallel_cycles`` the triggers here are queue-limit
    driven (huge deadline), so each shard fires on its *own* arrivals at
    distinct instants — exactly the stream where the synchronous path
    degenerates to batches of one (run inline, zero overlap) and only
    ε-window coalescing plus fold deferral can recover parallelism.
    """
    estimator = trained_estimator(seed=7)
    cached = estimator.cached()
    gen = LoadGenerator(
        mean_rate_per_hour=9600.0,
        diurnal=False,
        arrival_process="mmpp",
        burst_rate_multiplier=6.0,
        mean_burst_seconds=90.0,
        mean_calm_seconds=360.0,
        shots_grid=SHOTS_GRID,
        seed=3,
    )
    sim = CloudSimulator.sharded(
        fleet_of_size(16, seed=7),
        QonductorScheduler(cached, seed=3, max_generations=20),
        num_shards=4,
        balancer="least_loaded",
        execution_model=ExecutionModel(seed=11),
        trigger_factory=lambda i: SchedulingTrigger(
            queue_limit=15, interval_seconds=100_000.0
        ),
        config=SimulationConfig(duration_seconds=duration, seed=3),
        cycle_executor=executor,
        **knobs,
    )
    t0 = time.perf_counter()
    metrics = sim.run(gen.generate(duration))
    return metrics, time.perf_counter() - t0


def test_perf_pipelined_cycles():
    """The pipelined-engine gate: on a bursty arrival-driven stream,
    ε-window coalescing + modeled scheduler latency + async submission
    must beat the synchronous path by >=1.5x wall clock when the host has
    the cores (>=4), while staying bit-identical to a serial run of the
    same configuration."""
    knobs = dict(
        trigger_epsilon=10.0, cycle_latency=15.0, pipeline=True
    )
    sync, sync_wall = _run_pipelined("process")
    piped, piped_wall = _run_pipelined("process", **knobs)
    serial_ref, _ = _run_pipelined("serial", **knobs)
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )
    speedup = sync_wall / max(piped_wall, 1e-9)

    result = {
        "paper": {},
        "measured": {
            "jobs": sync.dispatched_jobs + sync.unschedulable_jobs,
            "num_shards": sync.num_shards,
            "cpus": cpus,
            "wall_speedup": round(speedup, 2),
            "synchronous": {
                "wall_seconds": round(sync_wall, 3),
                "scheduling_cycles": sync.scheduling_cycles,
                "cycle_batches": sync.cycle_batches,
                "max_batch_cycles": sync.max_batch_cycles,
                "stage_seconds": {
                    k: round(v, 3) for k, v in sync.stage_seconds.items()
                },
            },
            "pipelined": {
                "backend": "process",
                "trigger_epsilon": knobs["trigger_epsilon"],
                "cycle_latency": knobs["cycle_latency"],
                "wall_seconds": round(piped_wall, 3),
                "scheduling_cycles": piped.scheduling_cycles,
                "cycle_batches": piped.cycle_batches,
                "max_batch_cycles": piped.max_batch_cycles,
                "epsilon_merged_triggers": piped.epsilon_merged_triggers,
                "pipelined_batches": piped.pipelined_batches,
                "fold_lag_seconds": round(piped.fold_lag_seconds, 1),
                "stage_seconds": {
                    k: round(v, 3) for k, v in piped.stage_seconds.items()
                },
            },
            "bit_identical_to_serial": (
                piped.deterministic_state()
                == serial_ref.deterministic_state()
            ),
        },
    }
    report(
        "Perf: pipelined engine (ε-coalescing + modeled latency)",
        result,
        keys=[
            "jobs", "num_shards", "cpus", "wall_speedup",
            "bit_identical_to_serial",
        ],
    )

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_pipelined_cycles.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    # Determinism is unconditional: the pipelined process run must match
    # a serial run of the identical configuration bit for bit.
    assert piped.deterministic_state() == serial_ref.deterministic_state()
    # The scenario really exercised the new machinery: the synchronous
    # arrival path ran batches of one, the ε window merged cross-shard
    # triggers into multi-cycle batches, and folds lagged their submits.
    # (The one exception is the horizon flush, which folds every still-
    # backlogged shard as a single final batch.)
    assert sync.scheduling_cycles - sync.cycle_batches <= sync.num_shards - 1
    assert piped.epsilon_merged_triggers > 0
    assert piped.pipelined_batches > 0
    assert piped.max_batch_cycles >= 2
    # Coalescing defers work; it must not lose it.
    assert (
        piped.dispatched_jobs
        + piped.unschedulable_jobs
        + piped.pending_at_horizon
        == sync.dispatched_jobs
        + sync.unschedulable_jobs
        + sync.pending_at_horizon
    )
    # The wall-clock gate only means something with cores to spend.
    if cpus >= 4:
        assert speedup >= 1.5, (
            f"pipelined wall speedup {speedup:.2f}x < 1.5x "
            f"({sync_wall:.2f}s sync vs {piped_wall:.2f}s pipelined "
            f"on {cpus} CPUs)"
        )


# ---------------------------------------------------------------------------
# Skewed-width + flash-outage stress: work stealing vs static shards
# ---------------------------------------------------------------------------

def _run_skew(rebalance):
    """One arm of the shared skew + flash-outage scenario, at CI scale.

    Every job fits the mid shard tightest, so static routing saturates it
    (~1.2x its service rate) while the wide shard idles; halfway through,
    a flash outage takes two mid QPUs down for 30 minutes.  Work stealing
    is the only mechanism that moves the resulting backlog.
    """
    duration = 7200.0
    gen, sim = skew_scenario(
        rebalance=rebalance,
        duration_seconds=duration,
        outage_start=1800.0,
        outage_seconds=1800.0,
        shots_grid=SHOTS_GRID,
        seed=3,
    )
    t0 = time.perf_counter()
    metrics = sim.run(gen.iter_arrivals(duration))
    return metrics, time.perf_counter() - t0, duration, sim


def test_perf_rebalance_skew_outage():
    static, static_wall, duration, static_sim = _run_skew(None)
    steal, steal_wall, _, _ = _run_skew(
        ThresholdRebalancePolicy(min_gap=8, interval_seconds=30.0)
    )
    s_static, s_steal = static.summary(), steal.summary()
    result = {
        "paper": {},
        "measured": {
            "jobs": static.dispatched_jobs + static.unschedulable_jobs,
            "outage_events": steal.outage_events,
            "static": {
                "load_cv": round(s_static["load_cv"], 4),
                "final_mean_jct": round(s_static["final_mean_jct"], 1),
                "wall_seconds": round(static_wall, 3),
            },
            "work_stealing": {
                "load_cv": round(s_steal["load_cv"], 4),
                "final_mean_jct": round(s_steal["final_mean_jct"], 1),
                "jobs_migrated": steal.jobs_migrated,
                "rebalance_cycles": steal.rebalance_cycles,
                "per_shard_steals": {
                    str(k): v for k, v in steal.per_shard_steals.items()
                },
                "wall_seconds": round(steal_wall, 3),
            },
        },
    }
    report(
        "Perf: work stealing under skewed widths + flash outage",
        result,
        keys=["jobs", "outage_events", "static", "work_stealing"],
    )

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_rebalance_skew.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    # Both runs saw the same stream and the same outage.
    assert static.outage_events == steal.outage_events == 2
    assert static.recovery_events == 2
    assert (
        steal.dispatched_jobs + steal.unschedulable_jobs
        == static.dispatched_jobs + static.unschedulable_jobs
    )
    # Work stealing actually moved pending jobs across shards...
    assert steal.jobs_migrated > 0
    assert steal.rebalance_cycles > 0
    # ...and that cut both the busy-seconds imbalance and the final mean
    # JCT versus the static partition.
    assert s_steal["load_cv"] < s_static["load_cv"]
    assert s_steal["final_mean_jct"] < s_static["final_mean_jct"]
    # The static mid shard hotspot is the pathology being fixed: with
    # stealing, the wide shard executes a real share of the work.
    wide_jobs = sum(
        v for k, v in steal.per_qpu_jobs.items() if k.startswith("wide")
    )
    assert wide_jobs > 0
    # O(1) aggregate bound holds here too (sampled series track cadence).
    max_samples = int(duration // static_sim.config.sample_every_seconds) + 2
    assert len(static.mean_completion_time.values) <= max_samples
    assert len(steal.mean_completion_time.values) <= max_samples


# ---------------------------------------------------------------------------
# Tenant isolation: one abusive tenant vs the admission front door
# ---------------------------------------------------------------------------

def test_perf_tenant_isolation():
    """The tenancy gate: one flooding tenant (half the offered load) on a
    bursty mmpp stream with a mid-run flash outage must not be able to
    wreck the premium tenant's tail once the front door is on.

    Three arms on matched seeds (``repro.experiments.tenant_study``):
    the no-abuser reference, the unprotected flood, and the flood behind
    an ``AdmissionController`` + tier-weighted scheduling.  The claim
    held here: admission keeps the premium (tier-0) p95 JCT within 15%
    of the no-abuser reference, and Jain's fairness index improves over
    the unprotected run.
    """
    t0 = time.perf_counter()
    study = tenant_study()
    wall = time.perf_counter() - t0

    arms, iso = study["arms"], study["isolation"]
    result = {
        "paper": {"single_tenant_queue": True},
        "measured": {
            "scenario": study["scenario"],
            "wall_seconds": round(wall, 3),
            "isolation": iso,
            "arms": {
                name: {k: v for k, v in arm.items() if k != "per_tenant"}
                for name, arm in arms.items()
            },
        },
    }
    report(
        "Perf: tenant isolation (abusive tenant + burst + flash outage)",
        result,
        keys=["scenario", "wall_seconds", "isolation"],
    )

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_tenant_isolation.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    # The scenario actually bit: the abuser flooded (front door engaged)
    # and every arm saw the flash outage's extra scheduling pressure.
    on = arms["admission_on"]
    assert on["admission_rejected"] + on["admission_degraded"] > 0
    assert arms["admission_off"]["admission_rejected"] == 0
    for arm in arms.values():
        assert arm["tier0_completed"] > 50  # p95 is over a real sample
    # Isolation: with admission on, the premium tenant's p95 JCT sits
    # within 15% of the world where the abuser doesn't exist at all...
    assert iso["tier0_p95_degradation_pct"] <= 15.0, (
        f"premium p95 degraded {iso['tier0_p95_degradation_pct']:+.1f}% "
        f"vs no-abuser reference ({iso['tier0_p95_no_abuser']:.0f}s -> "
        f"{iso['tier0_p95_admission_on']:.0f}s)"
    )
    # ...and fairness across tenants improves over the unprotected run.
    assert iso["jain_admission_on"] > iso["jain_admission_off"], (
        f"Jain {iso['jain_admission_off']:.4f} -> "
        f"{iso['jain_admission_on']:.4f} did not improve"
    )


# ---------------------------------------------------------------------------
# Batched estimate blocks vs the per-pair estimator loop
# ---------------------------------------------------------------------------

def test_perf_batched_estimates():
    """The estimate-source gate: scoring a 200-job x 16-QPU block through
    ``estimate_block`` must beat the per-pair ``estimate_for_qpu`` loop it
    replaced by >=3x (the batch path runs one vectorized model pass per
    QPU instead of 200 x 16 feature builds and predictions)."""
    from repro.cloud import AnalyticEstimateSource
    from repro.cloud.job import QuantumJob, feasibility_matrix
    from repro.workloads import WorkloadSampler

    num_jobs, num_qpus = 200, 16
    estimator = trained_estimator(seed=7)
    fleet = fleet_of_size(num_qpus, seed=7)
    sampler = WorkloadSampler(
        mean_qubits=8, std_qubits=4, max_qubits=27,
        shots_choices=SHOTS_GRID, seed=9,
    )
    jobs = [
        QuantumJob.from_circuit(
            s.circuit,
            shots=s.shots,
            mitigation="zne+rem" if s.uses_mitigation else "none",
        )
        for s in sampler.sample_many(num_jobs)
    ]
    feas = feasibility_matrix(jobs, fleet)

    # Warm both paths once so one-time costs (feature caches, the ESP
    # feature extraction memo) don't skew either side.
    estimator.estimate_block(jobs, fleet, feas)
    estimator.estimate_for_qpu(jobs[0], fleet[0])

    t0 = time.perf_counter()
    fid_pair = [
        [
            estimator.estimate_for_qpu(j, q)[0] if feas[i, k] else 0.0
            for k, q in enumerate(fleet)
        ]
        for i, j in enumerate(jobs)
    ]
    pair_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    fid_block, _ = estimator.estimate_block(jobs, fleet, feas)
    block_seconds = time.perf_counter() - t0

    import numpy as np

    np.testing.assert_allclose(
        fid_block, np.array(fid_pair), rtol=0, atol=1e-12
    )
    speedup = pair_seconds / max(block_seconds, 1e-9)

    # The analytic source gets the same treatment (informational: it is
    # the training-free path, not the scheduling default).
    analytic = AnalyticEstimateSource()
    analytic.estimate_block(jobs[:20], fleet[:2])
    t0 = time.perf_counter()
    analytic.estimate_block(jobs, fleet, feas)
    analytic_block_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    for i, j in enumerate(jobs[:40]):
        for k, q in enumerate(fleet):
            if feas[i, k]:
                analytic(j, q)
    analytic_pair_seconds = (time.perf_counter() - t0) * (num_jobs / 40)

    result = {
        "paper": {},
        "measured": {
            "jobs": num_jobs,
            "num_qpus": num_qpus,
            "feasible_pairs": int(feas.sum()),
            "trained_pair_seconds": round(pair_seconds, 4),
            "trained_block_seconds": round(block_seconds, 4),
            "trained_block_speedup": round(speedup, 2),
            "analytic_block_seconds": round(analytic_block_seconds, 4),
            "analytic_pair_seconds_est": round(analytic_pair_seconds, 4),
            "analytic_block_speedup_est": round(
                analytic_pair_seconds / max(analytic_block_seconds, 1e-9), 2
            ),
        },
    }
    report("Perf: batched estimate blocks", result,
           keys=list(result["measured"]))

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_batched_estimates.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    assert speedup >= 3.0, (
        f"estimate_block speedup {speedup:.2f}x < 3x "
        f"({pair_seconds:.3f}s per-pair vs {block_seconds:.3f}s block)"
    )


# ---------------------------------------------------------------------------
# Vectorized NSGA-II kernels + cross-cycle Pareto warm-starting
# ---------------------------------------------------------------------------

def _best_of(fn, *, repeats=5, inner=20):
    """Best mean-of-``inner`` over ``repeats`` batches (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def _warm_cycle_scenario(warm_start, jobs, fleet, *, cycles=8, seed=3):
    """Drive ``cycles`` scheduling cycles over a churning pending queue.

    Estimates come from a low-cardinality closed form (fidelity depends
    only on circuit width and QPU name length), which is the regime where
    the tolerance window actually fires before the generation cap — the
    trained estimator's richer estimate surface keeps the ideal point
    moving and every run exhausts ``max_generations``, telling the
    warm-start comparison nothing.  Churn keeps 2/3 of the queue pending
    across cycles (the paper's steady state), so most genes carry over.
    ``jobs`` must be shared across arms: cross-arm schedule comparisons
    go by ``job_id``, which is allocated globally at job creation.
    """

    def structured_est(job, qpu):
        return 0.5 + 0.4 / (1 + job.num_qubits + len(qpu.name)), (
            10.0 + job.num_qubits
        )

    sched = QonductorScheduler(
        structured_est, seed=seed, max_generations=60, warm_start=warm_start
    )
    pending, fresh = list(jobs[:60]), 60
    generations, schedules = [], []
    for _ in range(cycles):
        plan = sched.begin_cycle(
            pending, fleet, {q.name: 0.0 for q in fleet}
        )
        res = run_optimization(plan.task)
        schedule = sched.finish_cycle(plan, res)
        generations.append(res.generations)
        schedules.append(
            [(d.job.job_id, d.qpu_name) for d in schedule.decisions]
        )
        pending = pending[20:] + jobs[fresh : fresh + 10]
        fresh += 10
    return generations, schedules


def test_perf_nsga_kernels():
    """The vectorized-MOO gate: the population-flat evaluate kernel must
    beat the per-individual reference loop by >=5x at a realistic cycle
    shape (single-thread vectorization — no core count required), while
    staying bit-identical; the artifact additionally records end-to-end
    ``run_optimization`` wall clock with and without the kernels and the
    warm-vs-cold generation counts of a churning multi-cycle scenario."""
    import numpy as np

    from conftest import nsga_reference_patch
    from repro.cloud.job import QuantumJob
    from repro.scheduler.formulation import (
        SchedulingInput,
        evaluate_population,
        evaluate_reference,
        repair_population,
        repair_reference,
    )
    from repro.workloads import WorkloadSampler

    # -- 1. population-evaluate kernel vs per-individual reference ------
    pop, n, q = 128, 100, 16
    rng = np.random.default_rng(0)
    data = SchedulingInput(
        fidelity=rng.random((n, q)) * 0.4 + 0.6,
        exec_seconds=rng.random((n, q)) * 100 + 1,
        waiting_seconds=rng.random(q) * 50,
        feasible=rng.random((n, q)) < 0.7,
    )
    X = rng.integers(0, q, size=(pop, n))
    assert np.array_equal(
        evaluate_population(data, X), evaluate_reference(data, X)
    )
    r1, r2 = np.random.default_rng(1), np.random.default_rng(1)
    assert np.array_equal(
        repair_population(data, X.copy(), r1),
        repair_reference(data, X.copy(), r2),
    )
    ref_seconds = _best_of(lambda: evaluate_reference(data, X))
    kernel_seconds = _best_of(lambda: evaluate_population(data, X))
    evaluate_speedup = ref_seconds / max(kernel_seconds, 1e-12)

    # -- 2. end-to-end run_optimization, kernels vs reference loops -----
    estimator = trained_estimator(seed=7).cached()
    fleet = fleet_of_size(8, seed=7)
    sampler = WorkloadSampler(
        mean_qubits=8, std_qubits=4, max_qubits=27,
        shots_choices=SHOTS_GRID, seed=9,
    )
    pending = [
        QuantumJob.from_circuit(s.circuit, shots=s.shots, keep_circuit=False)
        for s in sampler.sample_many(150)
    ]
    sched = QonductorScheduler(estimator, seed=3, max_generations=60)
    plan = sched.begin_cycle(pending, fleet, {b.name: 0.0 for b in fleet})
    task = plan.task

    after_seconds, after = float("inf"), None
    for _ in range(3):
        t0 = time.perf_counter()
        after = run_optimization(task)
        after_seconds = min(after_seconds, time.perf_counter() - t0)
    before_seconds, before = float("inf"), None
    with nsga_reference_patch():
        for _ in range(3):
            t0 = time.perf_counter()
            before = run_optimization(task)
            before_seconds = min(before_seconds, time.perf_counter() - t0)
    # The references consume identical RNG streams: same result, slower.
    assert np.array_equal(before.X, after.X)
    assert np.array_equal(before.F, after.F)
    assert before.generations == after.generations

    # -- 3. cross-cycle Pareto warm-starting (opt-in) -------------------
    churn_sampler = WorkloadSampler(
        mean_qubits=8, std_qubits=4, max_qubits=27, seed=9
    )
    churn_jobs = [
        QuantumJob.from_circuit(s.circuit, shots=s.shots, keep_circuit=False)
        for s in churn_sampler.sample_many(200)
    ]
    cold_gens, cold_schedules = _warm_cycle_scenario(
        False, churn_jobs, fleet
    )
    warm_gens, warm_schedules = _warm_cycle_scenario(True, churn_jobs, fleet)
    warm_gens2, warm_schedules2 = _warm_cycle_scenario(
        True, churn_jobs, fleet
    )

    result = {
        "paper": {},
        "measured": {
            "evaluate_kernel": {
                "pop": pop, "jobs": n, "qpus": q,
                "reference_ms": round(ref_seconds * 1e3, 4),
                "kernel_ms": round(kernel_seconds * 1e3, 4),
                "speedup": round(evaluate_speedup, 2),
            },
            "run_optimization": {
                "jobs": task.data.num_jobs,
                "qpus": task.data.num_qpus,
                "pop_size": task.pop_size,
                "generations": after.generations,
                "before_ms": round(before_seconds * 1e3, 2),
                "after_ms": round(after_seconds * 1e3, 2),
                "speedup": round(
                    before_seconds / max(after_seconds, 1e-12), 2
                ),
                "bit_identical": True,
            },
            "warm_start": {
                "cycles": len(cold_gens),
                "cold_generations": cold_gens,
                "warm_generations": warm_gens,
                "cold_total": sum(cold_gens),
                "warm_total": sum(warm_gens),
                "deterministic": bool(
                    warm_gens == warm_gens2
                    and warm_schedules == warm_schedules2
                ),
            },
        },
    }
    report(
        "Perf: vectorized NSGA-II kernels + Pareto warm-starting",
        result,
        keys=list(result["measured"]),
    )

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_nsga_kernels.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    # The tentpole gate: single-thread vectorization, not parallelism.
    assert evaluate_speedup >= 5.0, (
        f"population-evaluate speedup {evaluate_speedup:.2f}x < 5x "
        f"({ref_seconds * 1e3:.3f}ms reference vs "
        f"{kernel_seconds * 1e3:.3f}ms kernel)"
    )
    # Warm-starting is opt-in and must change nothing structural: it is
    # deterministic, and the first cycle (no memory yet) is identical to
    # the cold run bit for bit.
    assert result["measured"]["warm_start"]["deterministic"]
    assert warm_schedules[0] == cold_schedules[0]
    assert warm_gens[0] == cold_gens[0]
