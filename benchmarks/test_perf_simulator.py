"""Micro-benchmark for the event-driven cloud core.

Not a paper figure: this harness records throughput (events/sec) and
estimate-cache hit rate for the simulator hot path and writes a JSON
artifact so the perf trajectory is tracked across PRs (CI uploads it from
the non-blocking benchmark job).

The 10k-job stress scenario is the load level the old batch time-stepping
loop could not finish in reasonable time: per-sample rescans of the whole
arrived stream plus per-(job, QPU) estimator calls made it quadratic-ish
in practice. The event core schedules it in seconds.
"""

import json
import pathlib
import time

from conftest import report
from repro.backends.fleet import fleet_of_size
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
)
from repro.experiments.common import trained_estimator
from repro.scheduler import FCFSPolicy, QonductorScheduler, SchedulingTrigger

ARTIFACT_DIR = pathlib.Path(__file__).parent / "artifacts"

#: Round shot counts, as real cloud users request them; this is what makes
#: the content-addressed estimate cache hit across jobs.
SHOTS_GRID = (1024, 2048, 4096, 8192)


def _run_stress(num_jobs: int, *, num_qpus: int = 8, seed: int = 3):
    """Drive ~num_jobs arrivals through the Qonductor scheduling stack."""
    rate = 20_000.0  # jobs/hour: far past the paper's 3x stability point
    duration = num_jobs / rate * 3600.0
    estimator = trained_estimator(seed=7)
    cached = estimator.cached()
    gen = LoadGenerator(
        mean_rate_per_hour=rate,
        diurnal=False,
        shots_grid=SHOTS_GRID,
        seed=seed,
    )
    apps = gen.generate(duration)
    sim = CloudSimulator(
        fleet_of_size(num_qpus, seed=7),
        QonductorScheduler(cached, seed=seed, max_generations=10),
        ExecutionModel(seed=11),
        trigger=SchedulingTrigger(),
        config=SimulationConfig(
            duration_seconds=duration,
            recalibrate_every_seconds=duration / 2.0,
            seed=seed,
        ),
    )
    t0 = time.perf_counter()
    metrics = sim.run(apps)
    wall = time.perf_counter() - t0
    return apps, metrics, cached, wall


def test_perf_event_core_10k_jobs():
    apps, metrics, cached, wall = _run_stress(10_000)
    scheduled = metrics.completed_jobs + metrics.unschedulable_jobs
    result = {
        "paper": {},
        "measured": {
            "jobs": len(apps),
            "scheduled_jobs": scheduled,
            "wall_seconds": round(wall, 3),
            "events_processed": metrics.events_processed,
            "events_per_second": round(metrics.events_per_second, 1),
            "jobs_per_second": round(scheduled / max(wall, 1e-9), 1),
            "scheduling_cycles": metrics.scheduling_cycles,
            "estimate_cache": metrics.estimate_cache,
        },
    }
    report("Perf: event core, 10k-job stress", result,
           keys=list(result["measured"]))

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_simulator.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    # The old loop needed minutes here; keep a generous regression gate.
    assert len(apps) > 9_000
    assert scheduled == len(apps)
    assert wall < 120.0
    assert metrics.events_processed > len(apps)  # arrivals + completions + ticks
    # Round shot counts + repeated circuit shapes must produce real reuse.
    assert metrics.estimate_cache["hit_rate"] > 0.2


def test_perf_sharded_100k_jobs():
    """Cloud-scale stress: 100k streamed jobs over a 64-QPU, 8-shard fleet.

    Arrivals are pulled lazily from ``iter_arrivals`` (never materialized)
    and drawn from a 512-program resubmission pool, so peak memory is
    independent of the job count; the least-loaded balancer spreads work
    over per-shard FCFS schedulers sharing one estimate cache.
    """
    rate = 200_000.0  # jobs/hour — two orders past the paper's IBM band
    num_jobs = 100_000
    num_shards = 8
    duration = num_jobs / rate * 3600.0
    estimator = trained_estimator(seed=7)
    cached = estimator.cached()
    gen = LoadGenerator(
        mean_rate_per_hour=rate,
        diurnal=False,
        shots_grid=SHOTS_GRID,
        circuit_pool_size=512,
        seed=3,
    )
    sim = CloudSimulator.sharded(
        fleet_of_size(64, seed=7),
        FCFSPolicy(cached),
        num_shards=num_shards,
        balancer="least_loaded",
        execution_model=ExecutionModel(seed=11),
        config=SimulationConfig(
            duration_seconds=duration,
            recalibrate_every_seconds=duration / 2.0,
            seed=3,
        ),
    )
    t0 = time.perf_counter()
    metrics = sim.run(gen.iter_arrivals(duration))
    wall = time.perf_counter() - t0

    scheduled = metrics.completed_jobs + metrics.unschedulable_jobs
    result = {
        "paper": {},
        "measured": {
            "jobs": scheduled,
            "num_qpus": 64,
            "num_shards": metrics.num_shards,
            "wall_seconds": round(wall, 3),
            "events_processed": metrics.events_processed,
            "events_per_second": round(metrics.events_per_second, 1),
            "jobs_per_second": round(scheduled / max(wall, 1e-9), 1),
            "peak_inflight_apps": metrics.peak_inflight_apps,
            "per_shard_jobs": metrics.per_shard_jobs,
            "estimate_cache": metrics.estimate_cache,
        },
    }
    report("Perf: sharded fleet, 100k-job stress", result,
           keys=[k for k in result["measured"] if k != "per_shard_jobs"])

    ARTIFACT_DIR.mkdir(exist_ok=True)
    artifact = ARTIFACT_DIR / "perf_sharded_100k.json"
    artifact.write_text(json.dumps(result["measured"], indent=2) + "\n")

    assert scheduled > 95_000
    assert wall < 60.0
    # Streaming: in-flight applications, not the stream, bound memory.
    assert metrics.peak_inflight_apps <= 10
    # Every shard took a share of the fleet-wide load.
    assert len(metrics.per_shard_jobs) == num_shards
    assert all(v > 0 for v in metrics.per_shard_jobs.values())
    # The resubmission pool must keep the shared estimate cache hot.
    assert metrics.estimate_cache["hit_rate"] > 0.8
