"""Scheduler tests: Eq. 1 formulation, the three-stage quantum scheduler,
classical filter-score scheduling, baselines, triggers, and calibration
crossovers."""

import numpy as np
import pytest

from repro.backends import default_fleet
from repro.cloud.job import QuantumJob
from repro.scheduler import (
    ClassicalNode,
    ClassicalRequest,
    ClassicalScheduler,
    FCFSPolicy,
    LeastBusyPolicy,
    QonductorScheduler,
    RandomPolicy,
    SchedulingInput,
    SchedulingProblem,
    SchedulingTrigger,
    reevaluate_post_calibration,
    split_at_calibration,
)
from repro.workloads import ghz_linear


def _make_input(n_jobs=6, n_qpus=3, seed=0):
    rng = np.random.default_rng(seed)
    fid = rng.uniform(0.4, 0.95, (n_jobs, n_qpus))
    sec = rng.uniform(5, 40, (n_jobs, n_qpus))
    wait = rng.uniform(0, 200, n_qpus)
    feas = np.ones((n_jobs, n_qpus), dtype=bool)
    return SchedulingInput(fid, sec, wait, feas)


def _fake_estimate(job, qpu):
    """Deterministic estimate keyed on device quality (for policy tests)."""
    quality = qpu.calibration.quality_factor
    return 1.0 / (1.0 + quality), 10.0 + job.num_qubits


class TestFormulation:
    def test_input_validation(self):
        with pytest.raises(ValueError):
            SchedulingInput(
                np.ones((2, 2)), np.ones((2, 3)), np.zeros(2), np.ones((2, 2), bool)
            )
        feas = np.zeros((2, 2), dtype=bool)
        with pytest.raises(ValueError, match="no feasible"):
            SchedulingInput(np.ones((2, 2)), np.ones((2, 2)), np.zeros(2), feas)

    def test_evaluate_objectives(self):
        data = _make_input()
        prob = SchedulingProblem(data)
        X = np.zeros((1, data.num_jobs), dtype=np.int64)  # all on QPU 0
        F = prob.evaluate(X)
        expected_jct = data.waiting_seconds[0] + data.exec_seconds[:, 0].sum()
        assert F[0, 0] == pytest.approx(expected_jct)
        assert F[0, 1] == pytest.approx(1.0 - data.fidelity[:, 0].mean())

    def test_repair_enforces_feasibility(self):
        data = _make_input()
        data.feasible[2, 0] = False
        prob = SchedulingProblem(data)
        X = np.zeros((4, data.num_jobs), dtype=np.int64)
        repaired = prob.repair(X)
        assert np.all(repaired[:, 2] != 0)

    def test_sample_seeds_extremes(self):
        data = _make_input(n_jobs=10)
        prob = SchedulingProblem(data)
        X = prob.sample(8, np.random.default_rng(0))
        # First individual = per-job argmax fidelity.
        assert np.array_equal(X[0], np.argmax(data.fidelity, axis=1))

    def test_assignment_stats_keys(self):
        data = _make_input()
        prob = SchedulingProblem(data)
        stats = prob.assignment_stats(np.zeros(data.num_jobs, dtype=np.int64))
        for key in ("mean_jct", "mean_fidelity", "mean_exec_seconds", "per_qpu_load"):
            assert key in stats


class TestQonductorScheduler:
    @pytest.fixture(scope="class")
    def fleet(self):
        return default_fleet(seed=7, names=["auckland", "algiers", "lagos"])

    def _jobs(self, n=12, width=5):
        return [
            QuantumJob.from_circuit(ghz_linear(width), shots=1000, keep_circuit=False)
            for _ in range(n)
        ]

    def test_all_jobs_assigned(self, fleet):
        sched = QonductorScheduler(_fake_estimate, seed=1, max_generations=10)
        result = sched.schedule(self._jobs(), fleet, {})
        assert len(result.decisions) == 12
        assert not result.unschedulable
        names = {q.name for q in fleet}
        assert all(d.qpu_name in names for d in result.decisions)

    def test_oversized_jobs_rejected(self, fleet):
        sched = QonductorScheduler(_fake_estimate, seed=1, max_generations=5)
        jobs = self._jobs(2, width=5) + [
            QuantumJob.from_circuit(ghz_linear(40), keep_circuit=False)
        ]
        result = sched.schedule(jobs, fleet, {})
        assert len(result.unschedulable) == 1
        assert len(result.decisions) == 2

    def test_size_constraint_respected(self, fleet):
        # 12-qubit jobs cannot land on 7-qubit lagos.
        sched = QonductorScheduler(_fake_estimate, seed=2, max_generations=10)
        jobs = self._jobs(8, width=12)
        result = sched.schedule(jobs, fleet, {})
        assert all(d.qpu_name != "lagos" for d in result.decisions)

    def test_preference_changes_choice(self, fleet):
        jobs = self._jobs(20, width=5)
        waiting = {"auckland": 2000.0, "algiers": 0.0, "lagos": 0.0}
        fid_sched = QonductorScheduler(
            _fake_estimate, preference="fidelity", seed=3, max_generations=20
        )
        jct_sched = QonductorScheduler(
            _fake_estimate, preference="jct", seed=3, max_generations=20
        )
        r_fid = fid_sched.schedule(list(jobs), fleet, dict(waiting))
        r_jct = jct_sched.schedule(list(jobs), fleet, dict(waiting))
        assert r_fid.stats["mean_fidelity"] >= r_jct.stats["mean_fidelity"]
        assert r_jct.stats["mean_jct"] <= r_fid.stats["mean_jct"]

    def test_stage_timings_present(self, fleet):
        sched = QonductorScheduler(_fake_estimate, seed=1, max_generations=5)
        result = sched.schedule(self._jobs(4), fleet, {})
        assert set(result.stage_seconds) == {"preprocess", "optimize", "select"}
        assert all(v >= 0 for v in result.stage_seconds.values())

    def test_empty_queue(self, fleet):
        sched = QonductorScheduler(_fake_estimate, seed=1)
        result = sched.schedule([], fleet, {})
        assert result.decisions == [] and result.chosen_index == -1

    def test_front_properties(self, fleet):
        sched = QonductorScheduler(_fake_estimate, seed=1, max_generations=10)
        result = sched.schedule(self._jobs(10), fleet, {})
        assert result.front_max_jct >= result.front_min_jct
        assert result.front_max_fidelity >= result.front_min_fidelity
        assert len(result.front_exec_seconds) == len(result.front_F)


class TestWarmStart:
    """Cross-cycle Pareto warm-starting on the Qonductor scheduler."""

    @pytest.fixture(scope="class")
    def fleet(self):
        return default_fleet(seed=7, names=["auckland", "algiers", "lagos"])

    def _jobs(self, n=10, width=5):
        return [
            QuantumJob.from_circuit(
                ghz_linear(width), shots=1000, keep_circuit=False
            )
            for _ in range(n)
        ]

    def _run_cycle(self, sched, jobs, qpus):
        from repro.scheduler.cycle import run_optimization

        plan = sched.begin_cycle(jobs, qpus, {})
        result = run_optimization(plan.task) if plan.task else None
        sched.finish_cycle(plan, result)
        return plan

    def test_off_by_default(self, fleet):
        sched = QonductorScheduler(_fake_estimate, seed=1, max_generations=4)
        jobs = self._jobs()
        self._run_cycle(sched, jobs, fleet)
        plan = sched.begin_cycle(jobs, fleet, {})
        assert plan.task.warm_X is None

    def test_first_cycle_has_no_memory(self, fleet):
        sched = QonductorScheduler(
            _fake_estimate, seed=1, max_generations=4, warm_start=True
        )
        plan = sched.begin_cycle(self._jobs(), fleet, {})
        assert plan.task.warm_X is None

    def test_second_cycle_carries_feasible_rows(self, fleet):
        sched = QonductorScheduler(
            _fake_estimate, seed=1, max_generations=4, warm_start=True
        )
        jobs = self._jobs()
        self._run_cycle(sched, jobs, fleet)
        # Half the batch persists, half is new.
        next_jobs = jobs[:5] + self._jobs(5)
        plan = sched.begin_cycle(next_jobs, fleet, {})
        warm = plan.task.warm_X
        assert warm is not None
        assert warm.shape[1] == len(plan.schedulable)
        assert warm.shape[0] <= sched.pop_size - 2
        data = plan.task.data
        known = warm >= 0
        assert known.any()
        cols = np.broadcast_to(np.arange(warm.shape[1]), warm.shape)
        assert data.feasible[cols[known], warm[known]].all()
        # New jobs (columns 5..) carry nothing.
        assert (warm[:, 5:] == -1).all()

    def test_carried_genes_follow_qpu_names(self, fleet):
        """Warm genes remap by QPU *name*: reordering the fleet between
        cycles moves every carried gene to the QPU's new column."""
        sched = QonductorScheduler(
            _fake_estimate, seed=1, max_generations=4, warm_start=True
        )
        jobs = self._jobs()
        self._run_cycle(sched, jobs, fleet)
        prev_X, prev_job_ids, prev_names = sched._warm_memory
        reordered = list(reversed(fleet))
        plan = sched.begin_cycle(jobs, reordered, {})
        warm = plan.task.warm_X
        new_index = {q.name: k for k, q in enumerate(reordered)}
        col_of = {jid: c for c, jid in enumerate(prev_job_ids)}
        for i, job in enumerate(plan.schedulable):
            for r in range(warm.shape[0]):
                prev_gene = prev_X[r, col_of[job.job_id]]
                expected = new_index[prev_names[prev_gene]]
                if plan.task.data.feasible[i, expected]:
                    assert warm[r, i] == expected

    def test_warm_run_optimization_deterministic(self, fleet):
        from repro.scheduler.cycle import run_optimization

        sched = QonductorScheduler(
            _fake_estimate, seed=1, max_generations=6, warm_start=True
        )
        jobs = self._jobs()
        self._run_cycle(sched, jobs, fleet)
        plan = sched.begin_cycle(jobs[:7] + self._jobs(3), fleet, {})
        assert plan.task.warm_X is not None
        a = run_optimization(plan.task)
        b = run_optimization(plan.task)
        assert np.array_equal(a.X, b.X) and np.array_equal(a.F, b.F)
        assert a.generations == b.generations

    def test_spawn_propagates_warm_start_flag(self, fleet):
        sched = QonductorScheduler(
            _fake_estimate, seed=1, warm_start=True
        )
        assert sched.spawn(2).warm_start is True
        assert QonductorScheduler(_fake_estimate, seed=1).spawn(2).warm_start is False


class TestClassicalScheduler:
    def _nodes(self):
        return [
            ClassicalNode("small", cores=4, memory_gb=8),
            ClassicalNode("big", cores=32, memory_gb=128, gpus=2, tier="highend_vm"),
        ]

    def test_filter_by_resources(self):
        sched = ClassicalScheduler(self._nodes())
        assert [n.name for n in sched.filter(ClassicalRequest(cores=8))] == ["big"]
        assert sched.filter(ClassicalRequest(gpus=4)) == []

    def test_filter_by_tier(self):
        sched = ClassicalScheduler(self._nodes())
        nodes = sched.filter(ClassicalRequest(tier="highend_vm"))
        assert [n.name for n in nodes] == ["big"]

    def test_schedule_allocates_and_release(self):
        sched = ClassicalScheduler(self._nodes())
        req = ClassicalRequest(cores=4, memory_gb=8)
        node = sched.schedule(req)
        assert node is not None and node.alloc_cores == 4
        sched.release(node.name, req)
        assert node.alloc_cores == 0

    def test_least_allocated_spreads(self):
        sched = ClassicalScheduler(self._nodes())
        req = ClassicalRequest(cores=2, memory_gb=2)
        first = sched.schedule(req)
        assert first.name == "big"  # emptiest by fraction

    def test_exhaustion_returns_none(self):
        sched = ClassicalScheduler([ClassicalNode("tiny", cores=1, memory_gb=1)])
        assert sched.schedule(ClassicalRequest(cores=2)) is None

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            ClassicalScheduler(self._nodes(), policy="nope")

    def test_release_unknown_node(self):
        sched = ClassicalScheduler(self._nodes())
        with pytest.raises(KeyError):
            sched.release("nope", ClassicalRequest())


class TestBaselinePolicies:
    @pytest.fixture(scope="class")
    def fleet(self):
        return default_fleet(seed=7, names=["auckland", "algiers", "lagos"])

    def test_fcfs_picks_best_fidelity(self, fleet):
        policy = FCFSPolicy(_fake_estimate)
        job = QuantumJob.from_circuit(ghz_linear(10), keep_circuit=False)
        [(j, name)] = policy.assign([job], fleet, {})
        # auckland has the lowest quality factor -> highest fake fidelity.
        assert name == "auckland"

    def test_fcfs_infeasible_returns_none(self, fleet):
        policy = FCFSPolicy(_fake_estimate)
        job = QuantumJob.from_circuit(ghz_linear(50), keep_circuit=False)
        [(j, name)] = policy.assign([job], fleet, {})
        assert name is None

    def test_least_busy_spreads_batch(self, fleet):
        policy = LeastBusyPolicy(_fake_estimate)
        jobs = [
            QuantumJob.from_circuit(ghz_linear(5), keep_circuit=False)
            for _ in range(6)
        ]
        assignments = policy.assign(jobs, fleet, {q.name: 0.0 for q in fleet})
        used = {name for _, name in assignments}
        assert len(used) >= 2

    def test_random_policy_feasible_only(self, fleet):
        policy = RandomPolicy(seed=0)
        jobs = [
            QuantumJob.from_circuit(ghz_linear(12), keep_circuit=False)
            for _ in range(10)
        ]
        for _, name in policy.assign(jobs, fleet, {}):
            assert name in ("auckland", "algiers")  # lagos too small


class TestTrigger:
    def test_queue_limit_fires(self):
        trig = SchedulingTrigger(queue_limit=10, interval_seconds=1e9)
        assert not trig.should_fire(9, now=0.0)
        assert trig.should_fire(10, now=0.0)

    def test_time_based_fires(self):
        trig = SchedulingTrigger(queue_limit=1000, interval_seconds=120)
        trig.fired(0.0)
        assert not trig.should_fire(1, now=60.0)
        assert trig.should_fire(1, now=121.0)

    def test_empty_queue_never_fires(self):
        trig = SchedulingTrigger(queue_limit=1, interval_seconds=1)
        assert not trig.should_fire(0, now=1e9)


class TestCalibrationCrossover:
    def _schedule(self, fleet):
        sched = QonductorScheduler(_fake_estimate, seed=4, max_generations=8)
        jobs = [
            QuantumJob.from_circuit(ghz_linear(5), keep_circuit=False)
            for _ in range(10)
        ]
        return sched.schedule(jobs, fleet, {q.name: 0.0 for q in fleet})

    def test_split_partitions_all_decisions(self):
        fleet = default_fleet(seed=7, names=["auckland", "algiers"])
        schedule = self._schedule(fleet)
        pre, post = split_at_calibration(schedule, {}, boundary_seconds_from_now=30.0)
        assert len(pre) + len(post) == len(schedule.decisions)

    def test_boundary_zero_puts_all_post(self):
        fleet = default_fleet(seed=7, names=["auckland", "algiers"])
        schedule = self._schedule(fleet)
        pre, post = split_at_calibration(schedule, {}, boundary_seconds_from_now=0.0)
        assert not pre and len(post) == len(schedule.decisions)

    def test_reevaluation_moves_jobs_on_quality_flip(self):
        fleet = default_fleet(seed=7, names=["auckland", "algiers"])
        schedule = self._schedule(fleet)

        # After "recalibration", algiers becomes dramatically better.
        def flipped(job, qpu):
            return (0.95, 5.0) if qpu.name == "algiers" else (0.3, 5.0)

        report = reevaluate_post_calibration(
            schedule, fleet, {}, boundary_seconds_from_now=0.0, estimate_fn=flipped
        )
        assert report.reassigned >= 1
        assert all(d.qpu_name == "algiers" for d in report.post_boundary)


class TestRecalibrationHook:
    def test_hook_invoked_with_fleet(self):
        fleet = default_fleet(seed=7, names=["lagos"])
        seen = []
        sched = QonductorScheduler(
            _fake_estimate, seed=0, on_recalibrate=seen.append
        )
        sched.on_recalibration(fleet)
        assert seen == [fleet]

    def test_hook_optional(self):
        sched = QonductorScheduler(_fake_estimate, seed=0)
        sched.on_recalibration([])  # no-op must not raise

    def test_simulator_wires_hook(self):
        from repro.cloud import CloudSimulator, ExecutionModel, SimulationConfig

        fleet = default_fleet(seed=7, names=["lagos"])
        calls = []
        sim = CloudSimulator(
            fleet,
            QonductorScheduler(
                _fake_estimate, seed=0, max_generations=5,
                on_recalibrate=lambda qpus: calls.append(len(qpus)),
            ),
            ExecutionModel(seed=1),
            config=SimulationConfig(
                duration_seconds=250.0, recalibrate_every_seconds=100.0, seed=1
            ),
        )
        sim.run([])
        assert len(calls) >= 2 and calls[0] == 1
