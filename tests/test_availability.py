"""Dynamic-availability tests: the availability model's deterministic
event schedule (maintenance + outages, merged intervals, ordering) and
the simulator integration — flipping ``QPU.online`` mid-run must redirect
routing (online-aware ``FleetShard.fits``), feed the outage/downtime
counters, and leave in-flight work untouched."""

import pytest

from repro.backends import default_fleet
from repro.cloud import (
    AvailabilityModel,
    CloudSimulator,
    ExecutionModel,
    FleetShard,
    LoadGenerator,
    MaintenanceWindow,
    QuantumJob,
    QubitFitBalancer,
    RoundRobinBalancer,
    SimulatedQPU,
    SimulationConfig,
    flash_outage,
)
from repro.scheduler import FCFSPolicy
from repro.workloads import ghz_linear


def _fake_estimate(job, qpu):
    return 0.5 + 0.4 / (1 + job.num_qubits + len(qpu.name)), 12.0


def _job(width: int) -> QuantumJob:
    return QuantumJob.from_circuit(ghz_linear(width), keep_circuit=False)


class TestAvailabilityModel:
    def test_maintenance_window_events(self):
        model = AvailabilityModel(
            windows=[MaintenanceWindow("a", 100.0, 200.0)]
        )
        events = model.schedule(["a", "b"], 1000.0)
        assert [(e.time, e.qpu_name, e.online) for e in events] == [
            (100.0, "a", False),
            (200.0, "a", True),
        ]
        assert events[0].cause == "maintenance"

    def test_window_past_horizon_truncated(self):
        model = AvailabilityModel(
            windows=[
                MaintenanceWindow("a", 100.0, 900.0),  # recovery cut off
                MaintenanceWindow("b", 600.0, 700.0),  # entirely outside
            ]
        )
        events = model.schedule(["a", "b"], 500.0)
        assert [(e.qpu_name, e.online) for e in events] == [("a", False)]

    def test_overlapping_windows_merge(self):
        """Overlaps collapse to one offline interval — no mid-flap."""
        model = AvailabilityModel(
            windows=[
                MaintenanceWindow("a", 100.0, 300.0),
                MaintenanceWindow("a", 200.0, 400.0),
            ]
        )
        events = model.schedule(["a"], 1000.0)
        assert [(e.time, e.online) for e in events] == [
            (100.0, False),
            (400.0, True),
        ]

    def test_outage_then_recovery_ordering(self):
        """Random outages: per QPU the flips strictly alternate
        offline -> online and the merged stream is time-sorted."""
        model = AvailabilityModel(
            mean_time_between_outages_s=1200.0,
            mean_outage_seconds=300.0,
            seed=5,
        )
        events = model.schedule(["a", "b", "c"], 36_000.0)
        assert events, "expected some outages over 10 simulated hours"
        assert all(
            events[i].time <= events[i + 1].time
            for i in range(len(events) - 1)
        )
        by_qpu: dict[str, list] = {}
        for e in events:
            by_qpu.setdefault(e.qpu_name, []).append(e)
        for flips in by_qpu.values():
            expected_online = False  # first flip is always an outage
            for e in flips:
                assert e.online is expected_online
                expected_online = not expected_online

    def test_outages_deterministic_and_per_qpu_streams(self):
        kw = dict(
            mean_time_between_outages_s=600.0,
            mean_outage_seconds=120.0,
            seed=9,
        )
        a = AvailabilityModel(**kw).schedule(["x", "y"], 7200.0)
        b = AvailabilityModel(**kw).schedule(["x", "y"], 7200.0)
        assert a == b
        # Substreams are keyed on the device *name*: neither adding a
        # device nor re-ordering the fleet (re-sharding does) reshuffles
        # an existing device's schedule.
        c = AvailabilityModel(**kw).schedule(["x", "y", "z"], 7200.0)
        d = AvailabilityModel(**kw).schedule(["y", "x"], 7200.0)
        for events in (c, d):
            assert [e for e in events if e.qpu_name == "x"] == [
                e for e in a if e.qpu_name == "x"
            ]

    def test_flash_outage_helper(self):
        model = flash_outage(["a", "b"], start=50.0, duration_seconds=25.0)
        events = model.schedule(["a", "b"], 1000.0)
        assert [(e.time, e.qpu_name, e.online) for e in events] == [
            (50.0, "a", False),
            (50.0, "b", False),
            (75.0, "a", True),
            (75.0, "b", True),
        ]
        # A correlated failure is an outage, not planned maintenance.
        assert all(e.cause == "outage" for e in events)

    def test_validation(self):
        with pytest.raises(ValueError):
            MaintenanceWindow("a", 10.0, 10.0)
        with pytest.raises(ValueError):
            AvailabilityModel(mean_time_between_outages_s=-1.0)
        with pytest.raises(ValueError):
            AvailabilityModel(mean_outage_seconds=0.0)

    def test_unknown_window_qpu_raises(self):
        """A typo'd device name must fail loudly, not silently produce
        an always-online run."""
        model = flash_outage(["mid0"], start=1.0, duration_seconds=1.0)
        with pytest.raises(ValueError, match="mid0"):
            model.schedule(["mid00", "mid01"], 100.0)


class TestOnlineAwareRouting:
    def _shards(self):
        shards = []
        for i, names in enumerate([["auckland"], ["lagos"]]):  # 27q / 7q
            backends = [
                SimulatedQPU(q)
                for q in default_fleet(seed=7, names=list(names))
            ]
            shards.append(FleetShard(i, backends, FCFSPolicy(_fake_estimate)))
        return shards

    def test_offline_wide_qpu_redirects_routing(self):
        """Regression: ``fits`` must see ``QPU.online``.  A wide job's
        only wide QPU going offline means no shard fits — the balancer
        falls back instead of insisting on the dead wide shard."""
        shards = self._shards()
        wide = _job(16)
        assert shards[0].fits(wide) and shards[0].max_qubits == 27
        shards[0].backends[0].qpu.online = False
        assert shards[0].max_qubits == 0
        assert not shards[0].fits(wide)
        # Narrow jobs now route to the surviving narrow shard only.
        balancer = RoundRobinBalancer()
        picks = [balancer.route(_job(5), shards, 0.0).shard_id
                 for _ in range(4)]
        assert picks == [1, 1, 1, 1]
        # Tightest-fit routing skips the offline wide shard too.
        assert QubitFitBalancer().route(_job(5), shards, 0.0).shard_id == 1
        # Recovery restores the original behavior.
        shards[0].backends[0].qpu.online = True
        assert shards[0].fits(wide)

    def test_all_offline_falls_back_to_rejection(self):
        """With every QPU down nothing fits; the job is still routed and
        the owning scheduler rejects it, like the unsharded path."""
        shards = self._shards()
        for shard in shards:
            for b in shard.backends:
                b.qpu.online = False
        shard = RoundRobinBalancer().route(_job(5), shards, 0.0)
        assert shard is shards[0]  # deterministic fallback pick


class TestSimulatorIntegration:
    NAMES = ("auckland", "lagos")  # 27q wide + 7q narrow

    def _run(self, availability, *, duration=900.0, rate=600):
        gen = LoadGenerator(
            mean_rate_per_hour=rate, max_qubits=27, seed=4
        )
        fleet = default_fleet(seed=7, names=self.NAMES)
        sim = CloudSimulator(
            fleet,
            FCFSPolicy(_fake_estimate),
            ExecutionModel(seed=5),
            config=SimulationConfig(duration_seconds=duration, seed=5),
            availability=availability,
        )
        return fleet, sim.run(gen.generate(duration))

    def test_outage_counters_and_downtime(self):
        fleet, m = self._run(
            flash_outage(["auckland"], start=300.0, duration_seconds=200.0)
        )
        assert m.outage_events == 1
        assert m.recovery_events == 1
        assert m.qpu_downtime_seconds["auckland"] == pytest.approx(200.0)
        assert fleet[0].online  # recovered by the end of the run

    def test_still_down_at_horizon_accrues_downtime(self):
        fleet, m = self._run(
            flash_outage(["auckland"], start=600.0, duration_seconds=10_000.0)
        )
        assert m.outage_events == 1
        assert m.recovery_events == 0
        assert m.qpu_downtime_seconds["auckland"] == pytest.approx(300.0)
        assert not fleet[0].online

    def test_wide_jobs_fail_during_wide_outage(self):
        """While the only wide QPU is down, wide jobs become
        unschedulable; narrow jobs keep running on the narrow device."""
        _, baseline = self._run(None)
        _, outage = self._run(
            flash_outage(["auckland"], start=0.0, duration_seconds=10_000.0)
        )
        assert baseline.unschedulable_jobs == 0
        assert outage.unschedulable_jobs > 0
        assert outage.dispatched_jobs > 0  # narrow jobs still served
        assert outage.per_qpu_jobs["auckland"] == 0
        assert (
            outage.dispatched_jobs + outage.unschedulable_jobs
            == baseline.dispatched_jobs
        )

    def test_pending_jobs_survive_transient_full_outage(self):
        """Jobs queued on a batched shard whose only device is down at
        trigger time must wait for recovery, not be failed: the outage
        is transient, and only permanently-too-wide jobs fail."""
        from repro.scheduler import BatchedFCFSPolicy, SchedulingTrigger
        from repro.workloads import ghz_linear as _ghz
        from repro.cloud import HybridApplication

        fleet = default_fleet(seed=7, names=["auckland"])
        apps = [
            HybridApplication(
                quantum_job=QuantumJob.from_circuit(
                    _ghz(6), keep_circuit=False
                ),
                arrival_time=10.0 * (i + 1),
            )
            for i in range(5)
        ]
        for a in apps:
            a.quantum_job.arrival_time = a.arrival_time
        too_wide = HybridApplication(
            quantum_job=QuantumJob.from_circuit(
                _ghz(40), keep_circuit=False
            ),
            arrival_time=15.0,
        )
        too_wide.quantum_job.arrival_time = 15.0
        sim = CloudSimulator(
            fleet,
            BatchedFCFSPolicy(_fake_estimate),
            ExecutionModel(seed=5),
            trigger=SchedulingTrigger(queue_limit=100, interval_seconds=60),
            config=SimulationConfig(duration_seconds=900.0, seed=5),
            availability=flash_outage(
                ["auckland"], start=0.0, duration_seconds=400.0
            ),
        )
        m = sim.run(apps + [too_wide])
        # Triggers fired during the outage (t=60..360) held the queue;
        # after recovery everything feasible dispatched on the device.
        assert m.unschedulable_jobs == 1  # the 40q job only
        assert m.dispatched_jobs == len(apps)
        assert m.per_qpu_jobs["auckland"] == len(apps)
        assert all(
            a.quantum_job.start_time >= 400.0 for a in apps
        )

    def test_unrecovered_outage_reports_pending_at_horizon(self):
        """Jobs held through an outage that outlives the run must show
        up in ``pending_at_horizon`` — every arrival lands in exactly
        one of dispatched / unschedulable / pending."""
        from repro.cloud import HybridApplication
        from repro.scheduler import BatchedFCFSPolicy, SchedulingTrigger
        from repro.workloads import ghz_linear as _ghz

        fleet = default_fleet(seed=7, names=["auckland"])
        apps = []
        for i in range(5):
            job = QuantumJob.from_circuit(_ghz(6), keep_circuit=False)
            job.arrival_time = 10.0 * (i + 1)
            apps.append(
                HybridApplication(
                    quantum_job=job, arrival_time=job.arrival_time
                )
            )
        sim = CloudSimulator(
            fleet,
            BatchedFCFSPolicy(_fake_estimate),
            ExecutionModel(seed=5),
            trigger=SchedulingTrigger(queue_limit=100, interval_seconds=60),
            config=SimulationConfig(duration_seconds=900.0, seed=5),
            availability=flash_outage(
                ["auckland"], start=0.0, duration_seconds=1e9
            ),
        )
        m = sim.run(apps)
        assert m.dispatched_jobs == 0
        assert m.unschedulable_jobs == 0
        assert m.pending_at_horizon == len(apps)
        assert m.summary()["pending_at_horizon"] == len(apps)

    def test_routing_prefers_capable_offline_shard(self):
        """When nothing fits *right now*, the balancer must prefer a
        shard whose (offline) hardware could recover and serve the job
        over a shard that could never run it — otherwise the job is
        permanently failed on too-narrow hardware."""
        from repro.scheduler import BatchedFCFSPolicy

        by_name = {
            q.name: q
            for q in default_fleet(
                seed=7, names=["auckland", "lagos", "guadalupe"]
            )
        }
        policy = BatchedFCFSPolicy(_fake_estimate)
        shards = [
            FleetShard(
                0,
                [SimulatedQPU(by_name["auckland"]),
                 SimulatedQPU(by_name["lagos"])],
                policy.spawn(0),
            ),
            FleetShard(1, [SimulatedQPU(by_name["guadalupe"])],
                       policy.spawn(1)),
        ]
        by_name["auckland"].online = False  # the only 27q device
        by_name["guadalupe"].online = False
        wide = _job(20)  # fits auckland's hardware only
        assert not any(s.fits(wide) for s in shards)
        for balancer in (RoundRobinBalancer(), QubitFitBalancer()):
            assert balancer.route(wide, shards, 0.0) is shards[0]

    def test_no_availability_model_is_noop(self):
        """availability=None adds no events: identical to the PR 3 run."""
        _, a = self._run(None)
        gen = LoadGenerator(mean_rate_per_hour=600, max_qubits=27, seed=4)
        fleet = default_fleet(seed=7, names=self.NAMES)
        sim = CloudSimulator(
            fleet,
            FCFSPolicy(_fake_estimate),
            ExecutionModel(seed=5),
            config=SimulationConfig(duration_seconds=900.0, seed=5),
        )
        b = sim.run(gen.generate(900.0))
        assert a.events_processed == b.events_processed
        assert a.per_qpu_busy_seconds == b.per_qpu_busy_seconds
        assert a.outage_events == b.outage_events == 0
