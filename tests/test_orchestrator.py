"""Orchestrator tests: workflows, images, registry, monitor, membership,
Raft, workers, job manager, and the four-call Qonductor API."""

import pytest

from repro.backends import default_fleet
from repro.orchestrator import (
    ExecutionConfig,
    HeartbeatTracker,
    HybridWorkflow,
    HybridWorkflowImage,
    Qonductor,
    RaftCluster,
    ResourceRequest,
    Role,
    StepKind,
    SystemMonitor,
    WorkflowRegistry,
    WorkflowStep,
)
from repro.workloads import ghz_linear

FLEET = ["auckland", "lagos"]


@pytest.fixture(scope="module")
def qonductor():
    return Qonductor(
        default_fleet(seed=7, names=FLEET), estimator_records=400, seed=2
    )


class TestWorkflow:
    def test_linear_builder_orders_steps(self):
        steps = [
            WorkflowStep("pre", StepKind.CLASSICAL),
            WorkflowStep("q", StepKind.QUANTUM, circuit=ghz_linear(3)),
            WorkflowStep("post", StepKind.CLASSICAL),
        ]
        wf = HybridWorkflow.linear("test", steps)
        assert [s.name for s in wf.topological_steps()] == ["pre", "q", "post"]
        assert len(wf.quantum_steps()) == 1

    def test_quantum_step_requires_circuit(self):
        with pytest.raises(ValueError):
            WorkflowStep("q", StepKind.QUANTUM)

    def test_cycle_rejected(self):
        wf = HybridWorkflow("c")
        a = wf.add_step(WorkflowStep("a", StepKind.CLASSICAL))
        b = wf.add_step(WorkflowStep("b", StepKind.CLASSICAL), after=[a])
        import networkx as nx

        wf.graph.add_edge(b.step_id, a.step_id)
        with pytest.raises(ValueError):
            wf.validate()

    def test_unknown_dependency(self):
        wf = HybridWorkflow("d")
        loose = WorkflowStep("x", StepKind.CLASSICAL)
        with pytest.raises(ValueError):
            wf.add_step(WorkflowStep("y", StepKind.CLASSICAL), after=[loose])

    def test_empty_workflow_invalid(self):
        with pytest.raises(ValueError):
            HybridWorkflow("e").validate()


class TestImagesAndRegistry:
    def test_config_from_listing1_dict(self):
        data = {
            "spec": {
                "containers": [
                    {"resources": {"limits": {"nvidia.com/gpu": 1}}},
                    {
                        "resources": {
                            "limits": {"quantum.ibm.com/qpu": 1, "qubits": 20}
                        }
                    },
                ]
            }
        }
        cfg = ExecutionConfig.from_dict(data)
        assert cfg.requests[0].gpus == 1
        assert cfg.requests[1].qpus == 1 and cfg.requests[1].min_qubits == 20
        assert cfg.min_qubits == 20

    def test_resource_request_validation(self):
        with pytest.raises(ValueError):
            ResourceRequest(qpus=-1)

    def test_registry_roundtrip(self):
        reg = WorkflowRegistry()
        wf = HybridWorkflow.linear(
            "w", [WorkflowStep("c", StepKind.CLASSICAL)]
        )
        image = HybridWorkflowImage(workflow=wf, config=ExecutionConfig())
        key = reg.register(image)
        assert reg.get(key) is image
        assert reg.get("w") is image  # untagged lookup
        assert "w" in reg and len(reg) == 1
        reg.remove(key)
        with pytest.raises(KeyError):
            reg.get(key)


class TestMonitor:
    def test_put_get_versions(self):
        mon = SystemMonitor()
        r1 = mon.put("ns", "k", 1)
        r2 = mon.put("ns", "k", 2)
        assert r2 > r1
        assert mon.get("ns", "k") == 2
        assert mon.version("ns", "k") == r2

    def test_delete_and_default(self):
        mon = SystemMonitor()
        mon.put("ns", "k", 1)
        assert mon.delete("ns", "k")
        assert not mon.delete("ns", "k")
        assert mon.get("ns", "k", default="d") == "d"

    def test_watchers_notified(self):
        mon = SystemMonitor()
        events = []
        mon.watch(events.append)
        mon.put("a", "x", 1)
        mon.delete("a", "x")
        assert len(events) == 2 and events[1].deleted

    def test_snapshot_restore(self):
        mon = SystemMonitor()
        mon.put("ns", "k", {"v": 1})
        snap = mon.snapshot()
        other = SystemMonitor()
        other.restore(snap)
        assert other.get("ns", "k") == {"v": 1}
        assert other.revision == mon.revision


class TestMembership:
    def test_suspects_after_delta(self):
        hb = HeartbeatTracker(delta_seconds=5.0)
        hb.register("a", now=0.0)
        hb.register("b", now=0.0)
        hb.heartbeat("a", now=8.0)
        assert hb.suspects(now=9.0) == ["b"]
        assert hb.alive(now=9.0) == ["a"]

    def test_unknown_node(self):
        hb = HeartbeatTracker()
        with pytest.raises(KeyError):
            hb.heartbeat("ghost", 0.0)


class TestRaft:
    def test_initial_leader(self):
        cluster = RaftCluster(f=1, seed=0)
        assert cluster.leader().name == "replica0"
        assert len(cluster.nodes) == 3

    def test_failover_elects_new_leader(self):
        cluster = RaftCluster(f=1, seed=0)
        cluster.fail("replica0")
        leader = cluster.ensure_leader()
        assert leader is not None and leader.name != "replica0"
        assert leader.role is Role.LEADER

    def test_no_quorum_no_leader(self):
        cluster = RaftCluster(f=1, seed=0)
        cluster.fail("replica0")
        cluster.fail("replica1")
        assert cluster.ensure_leader() is None

    def test_recovered_node_rejoins_as_follower(self):
        cluster = RaftCluster(f=1, seed=0)
        cluster.fail("replica0")
        cluster.ensure_leader()
        cluster.recover("replica0")
        node = cluster.node("replica0")
        assert node.role is Role.FOLLOWER
        assert node.term == cluster.leader().term

    def test_replication_ships_state(self):
        cluster = RaftCluster(f=1, seed=0)
        acks = cluster.replicate({"x": 1})
        assert acks == 3
        assert all(n.state == {"x": 1} for n in cluster.nodes)

    def test_one_vote_per_term(self):
        cluster = RaftCluster(f=1, seed=0)
        voter = cluster.node("replica2")
        assert voter.request_vote("a", term=5)
        assert not voter.request_vote("b", term=5)
        assert voter.request_vote("b", term=6)


class TestQonductorAPI:
    def test_create_deploy_invoke_results(self, qonductor):
        steps = [
            qonductor.classical_step(name="pre", seconds=0.2),
            qonductor.quantum_step(ghz_linear(5), name="ghz", shots=1000,
                                   mitigation="rem"),
            qonductor.classical_step(name="post", seconds=0.3),
        ]
        key = qonductor.create_workflow(steps, name="wf-test")
        assert key in qonductor.list_images()
        wid = qonductor.invoke(key)
        assert qonductor.workflow_status(wid) == "completed"
        results = qonductor.workflow_results(wid)
        kinds = [s["kind"] for s in results["steps"].values()]
        assert kinds == ["classical", "quantum", "classical"]
        qstep = [s for s in results["steps"].values() if s["kind"] == "quantum"][0]
        assert 0.0 <= qstep["fidelity"] <= 1.0
        assert qstep["qpu"] in FLEET

    def test_deploy_rejects_oversized(self, qonductor):
        key = qonductor.create_workflow(
            [qonductor.quantum_step(ghz_linear(40), name="big")], name="too-big"
        )
        with pytest.raises(ValueError, match="qubits"):
            qonductor.deploy(key)

    def test_unknown_workflow_id(self, qonductor):
        with pytest.raises(KeyError):
            qonductor.workflow_status(999_999)

    def test_estimate_resources(self, qonductor):
        plans = qonductor.estimate_resources(ghz_linear(6), shots=2000, num_plans=3)
        assert plans and all(0 <= p.est_fidelity <= 1 for p in plans)

    def test_state_replicated_after_invoke(self, qonductor):
        key = qonductor.create_workflow(
            [qonductor.quantum_step(ghz_linear(3), name="q")], name="repl"
        )
        qonductor.invoke(key)
        leader = qonductor.control_plane.leader()
        assert leader.state["revision"] == qonductor.monitor.revision

    def test_leader_failover_keeps_serving(self, qonductor):
        qonductor.control_plane.fail(qonductor.control_plane.leader().name)
        key = qonductor.create_workflow(
            [qonductor.quantum_step(ghz_linear(3), name="q")], name="failover"
        )
        wid = qonductor.invoke(key)
        assert qonductor.workflow_status(wid) == "completed"
        assert qonductor.control_plane.leader() is not None

    def test_monitor_holds_device_state(self, qonductor):
        static = qonductor.monitor.items("qpu_static")
        assert set(static) == set(FLEET)
        assert static["lagos"]["num_qubits"] == 7


class TestCodegen:
    """§5: the workflow manager's hybrid-code splitting."""

    def _namespace(self):
        from repro.orchestrator import classical_task, quantum_task

        @classical_task(name="pre", seconds=0.2)
        def pre():
            return "generated"

        @quantum_task(name="run", shots=1000, mitigation="rem", after=["pre"])
        def run():
            return ghz_linear(4)

        @classical_task(name="post", seconds=0.4, after=["run"])
        def post():
            return "reconstructed"

        return {"pre": pre, "run": run, "post": post}

    def test_build_workflow_orders_by_dependencies(self):
        from repro.orchestrator import build_workflow

        wf = build_workflow(self._namespace(), name="split")
        names = [s.name for s in wf.topological_steps()]
        assert names.index("pre") < names.index("run") < names.index("post")
        q = wf.quantum_steps()[0]
        assert q.shots == 1000 and q.mitigation == "rem"
        assert q.circuit.num_qubits == 4

    def test_built_workflow_executes(self, qonductor):
        from repro.orchestrator import build_workflow

        wf = build_workflow(self._namespace(), name="split-exec")
        key = qonductor.create_workflow(wf, name="split-exec")
        wid = qonductor.invoke(key)
        assert qonductor.workflow_status(wid) == "completed"

    def test_unknown_dependency_rejected(self):
        from repro.orchestrator import build_workflow, classical_task

        @classical_task(name="a", after=["ghost"])
        def a():
            pass

        with pytest.raises(ValueError, match="unknown task"):
            build_workflow({"a": a})

    def test_cycle_rejected(self):
        from repro.orchestrator import build_workflow, classical_task

        @classical_task(name="a", after=["b"])
        def a():
            pass

        @classical_task(name="b", after=["a"])
        def b():
            pass

        with pytest.raises(ValueError, match="cycle"):
            build_workflow({"a": a, "b": b})

    def test_quantum_task_must_return_circuit(self):
        from repro.orchestrator import build_workflow, quantum_task

        @quantum_task(name="bad")
        def bad():
            return 42

        with pytest.raises(TypeError, match="Circuit"):
            build_workflow({"bad": bad})

    def test_empty_namespace_rejected(self):
        from repro.orchestrator import build_workflow

        with pytest.raises(ValueError, match="no @quantum_task"):
            build_workflow({})

    def test_duplicate_names_rejected(self):
        from repro.orchestrator import build_workflow, classical_task

        @classical_task(name="same")
        def a():
            pass

        @classical_task(name="same")
        def b():
            pass

        with pytest.raises(ValueError, match="duplicate"):
            build_workflow({"a": a, "b": b})
