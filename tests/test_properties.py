"""Property-based tests (hypothesis) on core data structures & invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, compute_metrics
from repro.mitigation import fold_to_factor, zne_infer_probs
from repro.mitigation.rem import _simplex_project
from repro.moo.mcdm import pseudo_weights, select_by_preference
from repro.moo.sorting import crowding_distance, fast_non_dominated_sort, pareto_front_mask
from repro.simulation import (
    hellinger_fidelity,
    ideal_probabilities,
    total_variation_distance,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

_gate_1q = st.sampled_from(["h", "x", "s", "t", "sx"])
_angles = st.floats(-6.28, 6.28, allow_nan=False)


@st.composite
def random_circuits(draw, max_qubits=5, max_ops=25):
    n = draw(st.integers(2, max_qubits))
    circ = Circuit(n)
    for _ in range(draw(st.integers(1, max_ops))):
        kind = draw(st.integers(0, 3))
        q = draw(st.integers(0, n - 1))
        if kind == 0:
            circ.add(draw(_gate_1q), [q])
        elif kind == 1:
            circ.rz(draw(_angles), q)
        elif kind == 2:
            circ.ry(draw(_angles), q)
        else:
            p = draw(st.integers(0, n - 1))
            if p != q:
                circ.cx(q, p)
    return circ


@st.composite
def prob_vectors(draw, max_bits=4):
    n = draw(st.integers(1, max_bits))
    vals = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False),
            min_size=2**n,
            max_size=2**n,
        ).filter(lambda v: sum(v) > 1e-6)
    )
    arr = np.array(vals)
    return arr / arr.sum()


@st.composite
def objective_matrices(draw, max_rows=12):
    rows = draw(st.integers(2, max_rows))
    data = draw(
        st.lists(
            st.tuples(
                st.floats(0, 100, allow_nan=False),
                st.floats(0, 100, allow_nan=False),
            ),
            min_size=rows,
            max_size=rows,
        )
    )
    return np.array(data)


# ----------------------------------------------------------------------
# circuit invariants
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(random_circuits())
def test_depth_never_exceeds_size(circ):
    m = compute_metrics(circ)
    assert 0 <= m.depth <= m.size


@settings(max_examples=40, deadline=None)
@given(random_circuits())
def test_statevector_normalized(circ):
    probs = ideal_probabilities(circ)
    assert abs(probs.sum() - 1.0) < 1e-9


@settings(max_examples=30, deadline=None)
@given(random_circuits(max_qubits=4, max_ops=15))
def test_inverse_composition_is_identity(circ):
    roundtrip = circ.copy().compose(circ.inverse())
    probs = ideal_probabilities(roundtrip)
    assert probs[0] > 1.0 - 1e-9


@settings(max_examples=30, deadline=None)
@given(random_circuits(max_qubits=4, max_ops=12), st.floats(1.0, 5.0))
def test_folding_preserves_distribution(circ, factor):
    folded = fold_to_factor(circ, factor)
    f = hellinger_fidelity(ideal_probabilities(folded), ideal_probabilities(circ))
    assert f > 1.0 - 1e-6


# ----------------------------------------------------------------------
# distribution metrics
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(prob_vectors(), prob_vectors())
def test_hellinger_bounds_and_symmetry(p, q):
    if len(p) != len(q):
        return
    f_pq = hellinger_fidelity(p, q)
    f_qp = hellinger_fidelity(q, p)
    assert 0.0 <= f_pq <= 1.0
    assert abs(f_pq - f_qp) < 1e-9


@settings(max_examples=50, deadline=None)
@given(prob_vectors())
def test_self_fidelity_is_one(p):
    assert abs(hellinger_fidelity(p, p) - 1.0) < 1e-9
    assert total_variation_distance(p, p) < 1e-12


# ----------------------------------------------------------------------
# mitigation post-processing invariants
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(prob_vectors(max_bits=3), prob_vectors(max_bits=3), prob_vectors(max_bits=3))
def test_zne_inference_returns_distribution(p1, p2, p3):
    if not (len(p1) == len(p2) == len(p3)):
        return
    out = zne_infer_probs([1.0, 3.0, 5.0], [p1, p2, p3])
    assert abs(out.sum() - 1.0) < 1e-9
    assert np.all(out >= -1e-12)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(-2, 2, allow_nan=False), min_size=2, max_size=16)
)
def test_simplex_projection(vec):
    out = _simplex_project(np.array(vec))
    assert abs(out.sum() - 1.0) < 1e-9
    assert np.all(out >= 0)


# ----------------------------------------------------------------------
# multi-objective invariants
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(objective_matrices())
def test_fronts_partition_population(F):
    fronts = fast_non_dominated_sort(F)
    flat = np.concatenate(fronts)
    assert sorted(flat.tolist()) == list(range(len(F)))


@settings(max_examples=50, deadline=None)
@given(objective_matrices())
def test_first_front_is_non_dominated(F):
    fronts = fast_non_dominated_sort(F)
    mask = pareto_front_mask(F)
    assert set(fronts[0]) == set(np.where(mask)[0])


@settings(max_examples=50, deadline=None)
@given(objective_matrices())
def test_crowding_non_negative(F):
    d = crowding_distance(F)
    assert np.all(d >= 0)


@settings(max_examples=50, deadline=None)
@given(objective_matrices())
def test_pseudo_weights_valid(F):
    w = pseudo_weights(F)
    assert np.all(w >= -1e-12)
    assert np.allclose(w.sum(axis=1), 1.0)


@settings(max_examples=50, deadline=None)
@given(objective_matrices(), st.floats(0.01, 0.99))
def test_selection_always_in_range(F, p):
    idx = select_by_preference(F, (p, 1.0 - p))
    assert 0 <= idx < len(F)
