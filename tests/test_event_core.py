"""Event-queue and estimate-cache tests for the event-driven cloud core.

Covers: determinism under seeded arrivals, completion-event aggregates
matching the definitional (rescan) metrics, idle trigger cadence, cache
keying/invalidation on recalibration, eviction bounds, and equivalence of
scheduler decisions with and without the cache on a small fleet.
"""

import numpy as np
import pytest

from repro.backends import default_fleet
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    QuantumJob,
    SimulationConfig,
)
from repro.estimator import CachedEstimator, EstimateCache
from repro.experiments.common import trained_estimator
from repro.scheduler import FCFSPolicy, QonductorScheduler, SchedulingTrigger
from repro.workloads import WorkloadSampler, ghz_linear


def _fake_estimate(job, qpu):
    # Varies by pair so assignment decisions are not degenerate.
    return 0.5 + 0.4 / (1 + job.num_qubits + len(qpu.name)), 12.0


def _run(policy_maker, *, seed=4, duration=900.0, rate=600, recal=None):
    gen = LoadGenerator(mean_rate_per_hour=rate, max_qubits=27, seed=seed)
    apps = gen.generate(duration)
    fleet = default_fleet(seed=7, names=["auckland", "algiers", "lagos"])
    sim = CloudSimulator(
        fleet,
        policy_maker(),
        ExecutionModel(seed=5),
        trigger=SchedulingTrigger(queue_limit=20, interval_seconds=60),
        config=SimulationConfig(
            duration_seconds=duration, seed=5, recalibrate_every_seconds=recal
        ),
    )
    return apps, sim.run(apps)


class TestEventCore:
    def test_deterministic_under_seeded_arrivals(self):
        series = []
        for _ in range(2):
            _, m = _run(lambda: FCFSPolicy(_fake_estimate))
            series.append(m)
        a, b = series
        assert a.completed_jobs == b.completed_jobs
        assert a.events_processed == b.events_processed
        for attr in (
            "mean_fidelity",
            "mean_completion_time",
            "mean_utilization",
            "scheduler_queue_size",
        ):
            at, av = getattr(a, attr).as_arrays()
            bt, bv = getattr(b, attr).as_arrays()
            assert np.array_equal(at, bt) and np.array_equal(av, bv)

    def test_completion_aggregates_match_rescan(self):
        """Running aggregates must equal the definitional rescan metrics."""
        duration = 900.0
        apps, m = _run(lambda: FCFSPolicy(_fake_estimate), duration=duration)
        done = [
            a
            for a in apps
            if a.finish_time is not None and a.finish_time <= duration
        ]
        assert done, "scenario must finish some apps inside the horizon"
        expect_jct = float(np.mean([a.completion_time for a in done]))
        expect_fid = float(
            np.mean([a.quantum_job.fidelity for a in done])
        )
        assert m.mean_completion_time.last() == pytest.approx(expect_jct)
        assert m.mean_fidelity.last() == pytest.approx(expect_fid)
        # Every intermediate sample must equal the prefix rescan too —
        # this is what pins the aggregates to *running* sums/counts: a
        # wrong-window or stale implementation matches the final value
        # by luck far more easily than every point of the series.
        times, values = m.mean_completion_time.as_arrays()
        assert len(times) >= 3
        for t, v in zip(times, values):
            prefix = [
                a.completion_time
                for a in apps
                if a.finish_time is not None and a.finish_time <= t
            ]
            assert v == pytest.approx(float(np.mean(prefix)))

    def test_completed_counts_only_in_horizon_finishers(self):
        """Regression: jobs were counted completed at *dispatch*, so a
        job finishing past the horizon still inflated ``completed_jobs``.
        Completion now means the COMPLETION event folded inside the run;
        everything handed to a device is ``dispatched_jobs``."""
        duration = 900.0
        apps, m = _run(lambda: FCFSPolicy(_fake_estimate), duration=duration)
        in_horizon = [
            a
            for a in apps
            if a.finish_time is not None and a.finish_time <= duration
        ]
        assert m.completed_jobs == len(in_horizon)
        assert m.dispatched_jobs + m.unschedulable_jobs == len(apps)
        # The scenario is loaded enough that some dispatched work drains
        # after the horizon — the two counters must actually differ.
        assert m.completed_jobs < m.dispatched_jobs
        assert m.summary()["dispatched_jobs"] == m.dispatched_jobs

    def test_immediate_path_counts_cycles_per_call(self):
        """Regression: the per-arrival path charged one scheduling cycle
        *per job* while the batched path charges one per cycle, skewing
        baseline-vs-Qonductor cycle comparisons (Fig. 8/9).  One
        ``assign`` call over a batch is one cycle."""
        from repro.cloud import SimulationMetrics
        from repro.workloads import ghz_linear as _ghz

        fleet = default_fleet(seed=7, names=["auckland", "lagos"])
        sim = CloudSimulator(
            fleet,
            FCFSPolicy(_fake_estimate),
            ExecutionModel(seed=5),
            config=SimulationConfig(duration_seconds=600.0, seed=5),
        )
        m = SimulationMetrics()
        jobs = [
            QuantumJob.from_circuit(_ghz(4), keep_circuit=False)
            for _ in range(3)
        ]
        sim._schedule_immediate(
            sim.shards[0], jobs, 0.0, m, {}, lambda app: None
        )
        assert m.scheduling_cycles == 1
        assert m.dispatched_jobs == 3

    def test_event_counts(self):
        apps, m = _run(lambda: FCFSPolicy(_fake_estimate))
        # Arrivals + at least the in-horizon completions + samples.
        assert m.events_processed > len(apps)
        assert m.wall_seconds > 0
        assert m.events_per_second > 0

    def test_idle_trigger_cadence(self):
        """With no arrivals the trigger ticks but never schedules."""
        fleet = default_fleet(seed=7, names=["lagos"])
        sim = CloudSimulator(
            fleet,
            QonductorScheduler(_fake_estimate, seed=1, max_generations=5),
            ExecutionModel(seed=5),
            trigger=SchedulingTrigger(queue_limit=10, interval_seconds=60),
            config=SimulationConfig(duration_seconds=600.0, seed=1),
        )
        m = sim.run([])
        assert m.scheduling_cycles == 0
        assert m.completed_jobs == 0
        # 9 trigger deadlines (60..540) + 4 samples (120..480) inside t<600.
        assert m.events_processed == 13

    def test_recalibration_still_fires(self):
        fleet = default_fleet(seed=7, names=["lagos"])
        sim = CloudSimulator(
            fleet,
            FCFSPolicy(_fake_estimate),
            ExecutionModel(seed=5),
            config=SimulationConfig(
                duration_seconds=300.0, recalibrate_every_seconds=100.0, seed=1
            ),
        )
        sim.run([])
        assert fleet[0].cycle >= 2


class TestEstimateCache:
    def test_hits_on_repeat_and_epoch_invalidation(self):
        calls = []

        def base(job, qpu):
            calls.append((job.job_id, qpu.name))
            return 0.9, 10.0

        qpu = default_fleet(seed=7, names=["lagos"])[0]
        cached = CachedEstimator(base)
        job = QuantumJob.from_circuit(ghz_linear(5), shots=1024)
        assert cached(job, qpu) == (0.9, 10.0)
        assert cached(job, qpu) == (0.9, 10.0)
        assert len(calls) == 1  # second lookup hit
        # Same circuit shape in a different job object: content-addressed.
        twin = QuantumJob.from_circuit(ghz_linear(5), shots=1024)
        cached(twin, qpu)
        assert len(calls) == 1
        # A new calibration epoch must miss.
        qpu.recalibrate()
        cached(job, qpu)
        assert len(calls) == 2
        assert cached.stats.hits == 2 and cached.stats.misses == 2

    def test_on_recalibration_invalidates(self):
        qpu = default_fleet(seed=7, names=["lagos"])[0]
        cached = CachedEstimator(lambda j, q: (0.8, 5.0))
        job = QuantumJob.from_circuit(ghz_linear(4), shots=2048)
        cached(job, qpu)
        assert len(cached.cache) == 1
        cached.on_recalibration([qpu])
        assert len(cached.cache) == 0
        assert cached.stats.invalidations == 1

    def test_eviction_bound(self):
        cache = EstimateCache(max_entries=10)
        for i in range(25):
            cache.put(("fp", i), (0.5, 1.0))
        assert len(cache) <= 10
        # Newest entries survive the generational eviction.
        assert cache.get(("fp", 24)) is not None

    def test_eviction_bound_degenerate(self):
        cache = EstimateCache(max_entries=1)
        for i in range(5):
            cache.put(("fp", i), (0.5, 1.0))
        assert len(cache) == 1
        assert cache.get(("fp", 4)) is not None

    def test_working_set_below_capacity_never_evicts(self):
        """A working set under ``max_entries`` reaches steady state: one
        miss per distinct shape, every revisit a hit, no eviction churn."""
        calls = []

        def base(job, qpu):
            calls.append(job.job_id)
            return 0.9, 10.0

        qpu = default_fleet(seed=7, names=["lagos"])[0]
        cached = CachedEstimator(base, max_entries=64)
        pool = [
            QuantumJob.from_circuit(ghz_linear(w), shots=1024)
            for w in range(2, 22)  # 20 distinct shapes
        ]
        for _ in range(5):
            for job in pool:
                cached(job, qpu)
        assert len(calls) == len(pool)  # first round only
        assert len(cached.cache) == len(pool)
        assert cached.stats.misses == len(pool)
        assert cached.stats.hits == len(pool) * 4

    def test_working_set_at_capacity_evicts_one_coldest(self):
        """At ``max_entries`` the segmented-LRU eviction drops exactly
        one entry per overflow — the coldest probation entry — so the
        table stays *full* under churn instead of halving (the old
        generational scheme dumped half the table, hot keys included)."""
        calls = []

        def base(job, qpu):
            calls.append(job.job_id)
            return 0.9, 10.0

        qpu = default_fleet(seed=7, names=["lagos"])[0]
        cached = CachedEstimator(base, max_entries=16)
        pool = [
            QuantumJob.from_circuit(ghz_linear(w), shots=1024)
            for w in range(2, 18)  # exactly max_entries shapes
        ]
        for job in pool:
            cached(job, qpu)
        assert len(cached.cache) == 16
        # One more distinct shape overflows: only the single coldest
        # entry drops, the table stays full.
        extra = QuantumJob.from_circuit(ghz_linear(20), shots=1024)
        cached(extra, qpu)
        assert len(cached.cache) == 16
        # The oldest single-touch shape was the victim; the rest survive.
        before = len(calls)
        cached(pool[-1], qpu)  # recent entry: still cached
        assert len(calls) == before
        cached(pool[0], qpu)  # coldest entry: evicted, re-estimated
        assert len(calls) == before + 1
        # However the stream churns, the bound holds.
        for w in range(30, 60):
            cached(
                QuantumJob.from_circuit(ghz_linear(w), shots=1024), qpu
            )
            assert len(cached.cache) <= 16

    def test_slru_protects_rereferenced_working_set(self):
        """Keys hit twice are promoted to the protected segment and
        survive an arbitrarily long stream of single-touch keys — the
        graceful-degradation property the capacity sweep measures."""
        calls = []

        def base(job, qpu):
            calls.append(job.job_id)
            return 0.9, 10.0

        qpu = default_fleet(seed=7, names=["lagos"])[0]
        cached = CachedEstimator(base, max_entries=16)
        hot = [
            QuantumJob.from_circuit(ghz_linear(w), shots=1024)
            for w in range(2, 8)  # 6 hot shapes
        ]
        for job in hot:
            cached(job, qpu)
        for job in hot:
            cached(job, qpu)  # second touch: promoted to protected
        # A scan of 40 distinct one-off shapes churns through probation.
        for w in range(10, 50):
            cached(QuantumJob.from_circuit(ghz_linear(w), shots=1024), qpu)
        assert len(cached.cache) <= 16
        # Every hot shape is still a hit: the scan could not displace
        # the protected segment.
        before = len(calls)
        for job in hot:
            assert cached(job, qpu) == (0.9, 10.0)
        assert len(calls) == before

    def test_slru_demotes_stale_protected_entries(self):
        """Protection is not tenure: once hotter keys fill the protected
        segment, its least-recently-used entries demote back to probation
        and can be evicted like any cold key."""
        cache = EstimateCache(max_entries=10, protected_fraction=0.5)
        for i in range(5):
            cache.put(("old", i), (0.5, 1.0))
            cache.get(("old", i))  # promote: protected = 5 oldies
        # 5 new keys promoted on top displace the oldies from protection
        # (cap 5), demoting them into probation...
        for i in range(5):
            cache.put(("new", i), (0.6, 1.0))
            cache.get(("new", i))
        # ...where a scan of fresh keys evicts them.
        for i in range(5):
            cache.put(("scan", i), (0.7, 1.0))
        assert len(cache) <= 10
        hits_before = cache.stats.hits
        cache.get(("old", 0))
        assert cache.stats.hits == hits_before  # demoted then evicted
        cache.get(("new", 4))
        assert cache.stats.hits == hits_before + 1  # still protected

    def test_save_load_roundtrip(self, tmp_path):
        calls = []

        def base(job, qpu):
            calls.append(job.job_id)
            return 0.9, 10.0

        qpu = default_fleet(seed=7, names=["lagos"])[0]
        warm = CachedEstimator(base)
        job = QuantumJob.from_circuit(ghz_linear(5), shots=1024)
        other = QuantumJob.from_circuit(ghz_linear(7), shots=2048)
        warm(job, qpu)
        warm(other, qpu)
        path = tmp_path / "estimates.json"
        assert warm.save(path) == 2

        # A cold estimator warm-started from disk serves without base calls.
        cold = CachedEstimator(base)
        assert cold.load(path) == 2
        before = len(calls)
        assert cold(job, qpu) == (0.9, 10.0)
        assert cold(other, qpu) == (0.9, 10.0)
        assert len(calls) == before
        assert cold.stats.hits == 2

    def test_load_misses_after_recalibration(self, tmp_path):
        """Epoch-keyed entries from a stale calibration never hit."""
        qpu = default_fleet(seed=7, names=["lagos"])[0]
        warm = CachedEstimator(lambda j, q: (0.8, 5.0))
        job = QuantumJob.from_circuit(ghz_linear(4), shots=2048)
        warm(job, qpu)
        path = tmp_path / "estimates.json"
        warm.save(path)

        qpu.recalibrate()  # the saved epoch is now dead
        calls = []

        def base(j, q):
            calls.append(j.job_id)
            return 0.7, 6.0

        cold = CachedEstimator(base)
        cold.load(path)
        assert cold(job, qpu) == (0.7, 6.0)  # re-estimated, not stale
        assert len(calls) == 1

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "estimates.json"
        path.write_text('{"version": 999, "entries": []}')
        with pytest.raises(ValueError):
            EstimateCache().load(path)

    def test_execution_component_cache(self):
        qpu = default_fleet(seed=7, names=["lagos"])[0]
        em = ExecutionModel(seed=1)
        job = QuantumJob.from_circuit(ghz_linear(6), shots=4000)
        c1 = em.log_error_components(job.metrics, qpu.calibration, qpu.model)
        c2 = em.log_error_components(job.metrics, qpu.calibration, qpu.model)
        assert c1 is c2  # memoized
        assert len(em._comp_cache) == 1
        qpu.recalibrate()
        c3 = em.log_error_components(job.metrics, qpu.calibration, qpu.model)
        assert c3 is not c1 and len(em._comp_cache) == 2
        em.on_recalibration()
        assert len(em._comp_cache) == 0


class TestCacheEquivalence:
    @pytest.fixture(scope="class")
    def setup(self):
        names = ("auckland", "algiers")
        estimator = trained_estimator(seed=7, names=names, num_records=150)
        fleet = default_fleet(seed=7, names=list(names))
        sampler = WorkloadSampler(
            mean_qubits=6,
            std_qubits=3,
            max_qubits=27,
            shots_choices=(1024, 4096),
            seed=9,
        )
        jobs = [
            QuantumJob.from_circuit(
                s.circuit,
                shots=s.shots,
                mitigation="zne+rem" if s.uses_mitigation else "none",
                keep_circuit=False,
            )
            for s in sampler.sample_many(12)
        ]
        return estimator, fleet, jobs

    def test_matrix_matches_pairwise(self, setup):
        estimator, fleet, jobs = setup
        fid, sec = estimator.cached().estimate_block(jobs, fleet)
        for i, job in enumerate(jobs):
            for k, qpu in enumerate(fleet):
                if job.num_qubits > qpu.num_qubits:
                    assert fid[i, k] == 0.0 and sec[i, k] == 0.0
                    continue
                pf, ps = estimator.estimate_for_qpu(job, qpu)
                assert fid[i, k] == pytest.approx(pf, rel=1e-9)
                assert sec[i, k] == pytest.approx(ps, rel=1e-9)

    def test_scheduler_decisions_equivalent(self, setup):
        """Same NSGA-II seed, with and without the cache: same assignment."""
        estimator, fleet, jobs = setup
        waiting = {q.name: 0.0 for q in fleet}
        plain = QonductorScheduler(
            estimator.estimate_for_qpu, seed=3, max_generations=10
        ).schedule(list(jobs), fleet, dict(waiting))
        cached_fn = estimator.cached()
        cached = QonductorScheduler(
            cached_fn, seed=3, max_generations=10
        ).schedule(list(jobs), fleet, dict(waiting))
        a = {d.job.job_id: d.qpu_name for d in plain.decisions}
        b = {d.job.job_id: d.qpu_name for d in cached.decisions}
        assert a == b
        for da, db in zip(plain.decisions, cached.decisions):
            assert da.est_fidelity == pytest.approx(db.est_fidelity, rel=1e-9)
            assert da.est_exec_seconds == pytest.approx(
                db.est_exec_seconds, rel=1e-9
            )
        # Second cached cycle over the same pending set is served from memo.
        before = cached_fn.stats.hits
        QonductorScheduler(cached_fn, seed=3, max_generations=10).schedule(
            list(jobs), fleet, dict(waiting)
        )
        assert cached_fn.stats.hits > before
