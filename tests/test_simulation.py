"""Tests for the simulation substrate: statevector, noise, trajectories,
readout, distribution metrics, and the analytic ESP model."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.simulation import (
    NoiseModel,
    NoisySimulator,
    QubitNoise,
    GateNoise,
    apply_readout_noise_probs,
    circuit_duration_ns,
    counts_to_probs,
    esp,
    esp_components,
    esp_to_hellinger,
    estimate_fidelity_analytic,
    expectation_z,
    full_confusion_matrix,
    hellinger_distance,
    hellinger_fidelity,
    ideal_probabilities,
    marginal_counts,
    sample_counts,
    simulate_statevector,
    total_variation_distance,
    zero_state,
)
from repro.workloads import ghz, ghz_linear


class TestStatevector:
    def test_zero_state(self):
        s = zero_state(3)
        assert s[0] == 1.0 and np.sum(np.abs(s)) == 1.0

    def test_too_wide_raises(self):
        with pytest.raises(ValueError):
            zero_state(30)

    def test_bell_state(self):
        p = ideal_probabilities(Circuit(2).h(0).cx(0, 1))
        assert p[0] == pytest.approx(0.5) and p[3] == pytest.approx(0.5)

    def test_qubit_order_little_endian(self):
        # X on qubit 0 flips the least-significant bit of the index.
        p = ideal_probabilities(Circuit(2).x(0))
        assert p[1] == pytest.approx(1.0)

    def test_three_qubit_gate_application_order(self):
        # cx(2, 0): control qubit 2, target qubit 0.
        c = Circuit(3).x(2).cx(2, 0)
        p = ideal_probabilities(c)
        assert p[0b101] == pytest.approx(1.0)

    def test_reset_projects(self):
        c = Circuit(1).x(0).reset(0)
        state = simulate_statevector(c)
        assert abs(state[0]) == pytest.approx(1.0)

    def test_project_is_unnormalized(self):
        c = Circuit(1).h(0).project(0, 0)
        state = simulate_statevector(c)
        assert np.sum(np.abs(state) ** 2) == pytest.approx(0.5)

    def test_expectation_z(self):
        state = simulate_statevector(Circuit(2).x(1))
        assert expectation_z(state, 0, 2) == pytest.approx(1.0)
        assert expectation_z(state, 1, 2) == pytest.approx(-1.0)

    def test_sample_counts_total(self):
        rng = np.random.default_rng(0)
        counts = sample_counts(np.array([0.5, 0.5]), 1000, rng, 1)
        assert sum(counts.values()) == 1000

    def test_sample_counts_zero_vector_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_counts(np.zeros(4), 10, rng, 2)


class TestDistributions:
    def test_hellinger_identical(self):
        p = np.array([0.25, 0.75])
        assert hellinger_fidelity(p, p) == pytest.approx(1.0)
        assert hellinger_distance(p, p) == pytest.approx(0.0)

    def test_hellinger_disjoint(self):
        assert hellinger_fidelity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_hellinger_accepts_counts_dicts(self):
        f = hellinger_fidelity({"00": 500, "11": 500}, {"00": 1, "11": 1})
        assert f == pytest.approx(1.0)

    def test_tvd(self):
        assert total_variation_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hellinger_fidelity(np.ones(2) / 2, np.ones(4) / 4)

    def test_counts_to_probs(self):
        probs = counts_to_probs({"0": 3, "1": 1})
        assert probs["0"] == pytest.approx(0.75)

    def test_marginal_counts(self):
        counts = {"10": 4, "11": 6}
        marg = marginal_counts(counts, keep=[1])
        assert marg == {"1": 10}
        marg0 = marginal_counts(counts, keep=[0])
        assert marg0 == {"0": 4, "1": 6}


class TestNoiseModel:
    def test_uniform_construction(self):
        nm = NoiseModel.uniform(4, error_2q=0.01)
        assert nm.num_qubits == 4
        assert nm.gate_noise("cx", (0, 1)).error == pytest.approx(0.01)

    def test_rz_is_free(self):
        nm = NoiseModel.uniform(2)
        gn = nm.gate_noise("rz", (0,))
        assert gn.error == 0.0 and gn.duration_ns == 0.0

    def test_invalid_qubit_noise(self):
        with pytest.raises(ValueError):
            QubitNoise(t1_us=-1, t2_us=10, readout_p01=0, readout_p10=0)
        with pytest.raises(ValueError):
            QubitNoise(t1_us=10, t2_us=10, readout_p01=1.5, readout_p10=0)

    def test_invalid_gate_noise(self):
        with pytest.raises(ValueError):
            GateNoise(error=1.5, duration_ns=10)

    def test_decoherence_probs_monotone_in_time(self):
        nm = NoiseModel.uniform(1, t1_us=100, t2_us=80)
        p1 = nm.decoherence_probs(0, 100.0)
        p2 = nm.decoherence_probs(0, 1000.0)
        assert p2[0] > p1[0] and p2[1] >= p1[1]

    def test_confusion_matrix_columns_sum_to_one(self):
        nm = NoiseModel.uniform(1, readout_error=0.05)
        conf = nm.confusion_matrix(0)
        assert np.allclose(conf.sum(axis=0), 1.0)

    def test_scaled_increases_errors(self):
        nm = NoiseModel.uniform(2, error_2q=0.01)
        scaled = nm.scaled(3.0)
        assert scaled.gate_noise("cx", (0, 1)).error == pytest.approx(0.03)
        assert scaled.qubits[0].t1_us < nm.qubits[0].t1_us


class TestReadout:
    def test_forward_noise_preserves_total(self):
        nm = NoiseModel.uniform(3, readout_error=0.05)
        probs = ideal_probabilities(ghz(3, measure=False))
        noisy = apply_readout_noise_probs(probs, nm, 3)
        assert noisy.sum() == pytest.approx(1.0)
        assert hellinger_fidelity(noisy, probs) < 1.0

    def test_full_confusion_matrix_stochastic(self):
        nm = NoiseModel.uniform(2, readout_error=0.03)
        mat = full_confusion_matrix(nm, [0, 1])
        assert mat.shape == (4, 4)
        assert np.allclose(mat.sum(axis=0), 1.0)

    def test_full_confusion_too_wide(self):
        nm = NoiseModel.uniform(13)
        with pytest.raises(ValueError):
            full_confusion_matrix(nm, list(range(13)))


class TestTrajectorySimulator:
    def test_noiseless_limit_matches_ideal(self):
        nm = NoiseModel.uniform(
            3, error_1q=0.0, error_2q=0.0, readout_error=0.0,
            t1_us=1e9, t2_us=1e9,
        )
        sim = NoisySimulator(nm, num_trajectories=3, seed=0)
        c = ghz(3)
        probs = sim.noisy_probabilities(c)
        assert hellinger_fidelity(probs, ideal_probabilities(c)) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_noise_reduces_fidelity(self):
        nm = NoiseModel.uniform(3, error_2q=0.05, readout_error=0.05)
        sim = NoisySimulator(nm, num_trajectories=40, seed=1)
        c = ghz_linear(3)
        fid = hellinger_fidelity(
            sim.noisy_probabilities(c), ideal_probabilities(c)
        )
        assert 0.3 < fid < 0.98

    def test_more_noise_less_fidelity(self):
        c = ghz_linear(4)
        ideal = ideal_probabilities(c)
        fids = []
        for err in (0.005, 0.08):
            nm = NoiseModel.uniform(4, error_2q=err, readout_error=err)
            sim = NoisySimulator(nm, num_trajectories=60, seed=2)
            fids.append(hellinger_fidelity(sim.noisy_probabilities(c), ideal))
        assert fids[0] > fids[1]

    def test_run_returns_counts(self):
        nm = NoiseModel.uniform(2)
        res = NoisySimulator(nm, num_trajectories=5, seed=0).run(
            Circuit(2).h(0).cx(0, 1).measure_all(), shots=256
        )
        assert sum(res.counts.values()) == 256
        assert res.num_qubits == 2

    def test_circuit_wider_than_backend_raises(self):
        nm = NoiseModel.uniform(2)
        sim = NoisySimulator(nm, seed=0)
        with pytest.raises(ValueError):
            sim.run(Circuit(3).h(0))

    def test_invalid_trajectories(self):
        with pytest.raises(ValueError):
            NoisySimulator(NoiseModel.uniform(1), num_trajectories=0)


class TestESP:
    def test_esp_in_unit_interval(self):
        nm = NoiseModel.uniform(3, error_2q=0.02)
        value = esp(ghz(3), nm)
        assert 0.0 < value < 1.0

    def test_esp_components_sum(self):
        nm = NoiseModel.uniform(3, error_2q=0.02)
        c = ghz(3)
        comps = esp_components(c, nm)
        assert math.exp(sum(comps.values())) == pytest.approx(esp(c, nm))

    def test_esp_decreases_with_more_gates(self):
        nm = NoiseModel.uniform(4, error_2q=0.02)
        assert esp(ghz_linear(4), nm) > esp(ghz_linear(4).power(3), nm)

    def test_esp_to_hellinger_bounds(self):
        assert esp_to_hellinger(1.0, 5) == pytest.approx(1.0)
        assert 0.0 <= esp_to_hellinger(0.0, 5) < 0.2
        assert esp_to_hellinger(0.5, 2) > esp_to_hellinger(0.5, 20)

    def test_analytic_close_to_trajectory(self):
        """The analytic model should land within ~0.15 of the trajectory sim."""
        nm = NoiseModel.uniform(4, error_2q=0.015, readout_error=0.02)
        c = ghz_linear(4)
        analytic = estimate_fidelity_analytic(c, nm)
        sim = NoisySimulator(nm, num_trajectories=80, seed=3)
        measured = hellinger_fidelity(
            sim.noisy_probabilities(c), ideal_probabilities(c)
        )
        assert abs(analytic - measured) < 0.15

    def test_duration_accumulates(self):
        nm = NoiseModel.uniform(2, duration_2q_ns=300.0)
        c = Circuit(2).cx(0, 1).cx(0, 1)
        assert circuit_duration_ns(c, nm) == pytest.approx(600.0)

    def test_duration_parallel_wires(self):
        nm = NoiseModel.uniform(4, duration_2q_ns=300.0)
        c = Circuit(4).cx(0, 1).cx(2, 3)
        assert circuit_duration_ns(c, nm) == pytest.approx(300.0)


# ---------------------------------------------------------------------------
# Array-ops backend and batched hot-path equivalence
# ---------------------------------------------------------------------------

from repro.simulation import (  # noqa: E402
    ARRAY_BACKEND_ENV,
    NumpyBackend,
    apply_matrix_batched,
    circuit_duration_ns_batch,
    esp_batch,
    esp_components_batch,
    extract_esp_features,
    make_array_backend,
    register_array_backend,
)
from repro.simulation import array_ops as _array_ops  # noqa: E402
from repro.workloads import qft, random_circuit  # noqa: E402


class TestArrayBackend:
    def test_default_is_numpy(self):
        b = make_array_backend()
        assert isinstance(b, NumpyBackend)
        assert b.name == "numpy" and b.xp is np

    def test_by_name_and_instance_passthrough(self):
        b = make_array_backend("numpy")
        assert make_array_backend(b) is b
        # Instances are cached per name.
        assert make_array_backend("numpy") is b

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "numpy")
        assert isinstance(make_array_backend(), NumpyBackend)
        monkeypatch.setenv(ARRAY_BACKEND_ENV, "no-such-backend")
        with pytest.raises(KeyError):
            make_array_backend()

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="numpy"):
            make_array_backend("no-such-backend")

    def test_register_custom_backend(self):
        class Tagged(NumpyBackend):
            name = "tagged"

        register_array_backend("tagged", Tagged)
        try:
            assert isinstance(make_array_backend("tagged"), Tagged)
        finally:
            _array_ops._FACTORIES.pop("tagged", None)
            _array_ops._INSTANCES.pop("tagged", None)

    def test_batched_normal_bit_identical_to_sequential(self):
        """The RNG contract: one (T, n) draw == T sequential (n,) draws."""
        b = make_array_backend()
        block = b.normal(np.random.default_rng(11), 0.0, 1.0, (7, 5))
        rng = np.random.default_rng(11)
        rows = np.stack([rng.normal(0.0, 1.0, 5) for _ in range(7)])
        assert np.array_equal(block, rows)

    def test_sample_counts_matches_raw_multinomial(self):
        probs = ideal_probabilities(Circuit(3).h(0).cx(0, 1).cx(1, 2))
        counts = sample_counts(probs, 1000, np.random.default_rng(5), 3)
        draws = np.random.default_rng(5).multinomial(1000, probs / probs.sum())
        expect = {
            format(i, "03b"): int(v) for i, v in enumerate(draws) if v
        }
        assert counts == expect


def _legacy_duration_ns(circuit, nm):
    """Sequential critical-path walk (the pre-batched implementation)."""
    finish = [0.0] * circuit.num_qubits
    for g in circuit.ops:
        if g.name == "barrier":
            wires = g.qubits if g.qubits else tuple(range(circuit.num_qubits))
            sync = max((finish[q] for q in wires), default=0.0)
            for q in wires:
                finish[q] = sync
            continue
        if g.name == "delay":
            finish[g.qubits[0]] += g.params[0]
            continue
        if g.name in ("measure", "reset", "project"):
            dur = nm.readout_duration_ns
        elif g.is_unitary:
            dur = nm.gate_noise(g.name, g.qubits).duration_ns
        else:
            dur = 0.0
        start = max(finish[q] for q in g.qubits)
        for q in g.qubits:
            finish[q] = start + dur
    return max(finish, default=0.0)


def _legacy_components(circuit, nm):
    """Sequential per-op ESP walk (the pre-batched implementation)."""
    log_gate = 0.0
    log_readout = 0.0
    for g in circuit.ops:
        if g.is_unitary:
            err = nm.gate_noise(g.name, g.qubits).error
            if err >= 1.0:
                return {"gate": -math.inf, "readout": 0.0, "decoherence": 0.0}
            log_gate += math.log1p(-err)
        elif g.name == "measure":
            err = nm.qubits[g.qubits[0]].readout_error
            if err >= 1.0:
                return {"gate": 0.0, "readout": -math.inf, "decoherence": 0.0}
            log_readout += math.log1p(-err)
    duration_us = _legacy_duration_ns(circuit, nm) / 1000.0
    log_decoh = 0.0
    for q in circuit.used_qubits():
        qn = nm.qubits[q]
        inv_tphi = max(0.0, 1.0 / qn.t2_us - 0.5 / qn.t1_us)
        log_decoh += -duration_us / qn.t1_us * 0.5
        log_decoh += -duration_us * inv_tphi * 0.5
    return {"gate": log_gate, "readout": log_readout, "decoherence": log_decoh}


def _equivalence_circuits():
    """A mix exercising every scheduling feature the batched walk handles."""
    circuits = [
        ghz(3),
        ghz_linear(6).power(2),
        qft(4, measure=True),
        Circuit(4).cx(0, 1).delay(120.0, 2).barrier().cx(2, 3).measure_all(),
        Circuit(2).h(0).barrier(0).delay(50.0, 1).cx(0, 1).measure(1),
        Circuit(5).x(0).reset(0).cx(0, 4).project(1, 4),
    ]
    for seed, width in ((3, 3), (5, 5), (9, 7)):
        circuits.append(
            random_circuit(width, depth=6, two_qubit_prob=0.4, seed=seed)
        )
    return circuits


def _equivalence_models(num_qubits=8):
    uniform = NoiseModel.uniform(
        num_qubits, error_2q=0.02, readout_error=0.03, duration_2q_ns=320.0
    )
    hetero = NoiseModel.uniform(
        num_qubits, t1_us=60.0, t2_us=35.0, error_2q=0.03, readout_error=0.04
    )
    hetero.gates_1q[("sx", 0)] = GateNoise(error=0.004, duration_ns=70.0)
    hetero.gates_1q[("rz", 2)] = GateNoise(error=0.0, duration_ns=0.0)
    hetero.gates_2q[(0, 1)] = GateNoise(error=0.055, duration_ns=410.0)
    return [uniform, hetero]


class TestBatchedEspEquivalence:
    def test_components_match_sequential_walk(self):
        circuits = _equivalence_circuits()
        for nm in _equivalence_models():
            batch = esp_components_batch(circuits, nm)
            for i, c in enumerate(circuits):
                ref = _legacy_components(c, nm)
                for key in ("gate", "readout", "decoherence"):
                    assert batch[key][i] == pytest.approx(
                        ref[key], abs=1e-12
                    ), (c.name, key)

    def test_durations_match_sequential_walk(self):
        circuits = _equivalence_circuits()
        for nm in _equivalence_models():
            durs = circuit_duration_ns_batch(circuits, nm)
            for i, c in enumerate(circuits):
                assert durs[i] == _legacy_duration_ns(c, nm)

    def test_single_circuit_views_are_thin(self):
        nm = _equivalence_models()[1]
        c = _equivalence_circuits()[3]
        batch = esp_components_batch([c], nm)
        single = esp_components(c, nm)
        for key in ("gate", "readout", "decoherence"):
            assert single[key] == batch[key][0]
        assert circuit_duration_ns(c, nm) == batch["duration_ns"][0]
        assert esp(c, nm) == esp_batch([c], nm)[0]

    def test_certain_failure_short_circuits(self):
        # Gate errors are validated < 1, so the only reachable certain
        # failure is a fully-scrambled readout (p01 = p10 = 1).
        nm = NoiseModel.uniform(2, error_2q=0.02)
        nm.qubits[1] = QubitNoise(
            t1_us=100.0, t2_us=80.0, readout_p01=1.0, readout_p10=1.0
        )
        c = Circuit(2).cx(0, 1).measure_all()
        comps = esp_components(c, nm)
        assert comps == {"gate": 0.0, "readout": -math.inf, "decoherence": 0.0}
        assert esp(c, nm) == 0.0
        assert _legacy_components(c, nm) == comps

    def test_feature_cache_tracks_op_identity(self):
        c = ghz(4)
        feats = extract_esp_features(c)
        assert extract_esp_features(c) is feats  # memoized on metadata
        copied = c.copy()
        assert extract_esp_features(copied) is not feats  # new ops list

    def test_mixed_widths_in_one_block(self):
        nm = NoiseModel.uniform(9, error_2q=0.02, readout_error=0.02)
        circuits = [ghz(2), ghz_linear(9), ghz(5)]
        values = esp_batch(circuits, nm)
        for i, c in enumerate(circuits):
            assert values[i] == pytest.approx(esp(c, nm), abs=1e-12)


class TestBatchedTrajectoryEquivalence:
    def test_same_seed_same_probs(self):
        nm = NoiseModel.uniform(3, error_2q=0.02, readout_error=0.02)
        c = ghz(3)
        p1 = NoisySimulator(nm, num_trajectories=12, seed=9).noisy_probabilities(c)
        p2 = NoisySimulator(nm, num_trajectories=12, seed=9).noisy_probabilities(c)
        assert np.array_equal(p1, p2)

    def test_explicit_backend_bit_identical(self):
        nm = NoiseModel.uniform(3, error_2q=0.02, readout_error=0.02)
        c = ghz_linear(3)
        default = NoisySimulator(nm, num_trajectories=10, seed=4)
        explicit = NoisySimulator(
            nm, num_trajectories=10, seed=4, backend="numpy"
        )
        assert np.array_equal(
            default.noisy_probabilities(c), explicit.noisy_probabilities(c)
        )

    def test_batched_matches_single_trajectory_replay(self):
        """Evolving the (T, 2**n) stack must be bit-equivalent to replaying
        each trajectory alone with its slice of the shared draws."""
        nm = NoiseModel.uniform(
            4, t1_us=60.0, t2_us=35.0, error_2q=0.03, readout_error=0.04
        )
        c = ghz_linear(4)
        sim = NoisySimulator(nm, num_trajectories=8, seed=21)
        plan = sim._noise_plan(c)
        draws = sim._draw_randomness(c, plan, np.random.default_rng(21))
        stacked = sim._evolve_trajectories(c, plan, draws)
        for t in range(8):
            lone = sim._evolve_trajectories(c, plan, draws.select(t))
            np.testing.assert_allclose(
                stacked[t], lone[0], rtol=0.0, atol=1e-12
            )

    def test_batched_gate_apply_matches_per_state(self):
        rng = np.random.default_rng(3)
        states = rng.normal(size=(5, 8)) + 1j * rng.normal(size=(5, 8))
        gate = Circuit(3).cx(0, 2).ops[0]
        batched = apply_matrix_batched(states, gate.matrix(), gate.qubits, 3)
        from repro.simulation import apply_matrix

        for row in range(5):
            assert np.array_equal(
                batched[row],
                apply_matrix(states[row], gate.matrix(), gate.qubits, 3),
            )
