"""Tests for the simulation substrate: statevector, noise, trajectories,
readout, distribution metrics, and the analytic ESP model."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.simulation import (
    NoiseModel,
    NoisySimulator,
    QubitNoise,
    GateNoise,
    apply_readout_noise_probs,
    circuit_duration_ns,
    counts_to_probs,
    esp,
    esp_components,
    esp_to_hellinger,
    estimate_fidelity_analytic,
    expectation_z,
    full_confusion_matrix,
    hellinger_distance,
    hellinger_fidelity,
    ideal_probabilities,
    marginal_counts,
    sample_counts,
    simulate_statevector,
    total_variation_distance,
    zero_state,
)
from repro.workloads import ghz, ghz_linear


class TestStatevector:
    def test_zero_state(self):
        s = zero_state(3)
        assert s[0] == 1.0 and np.sum(np.abs(s)) == 1.0

    def test_too_wide_raises(self):
        with pytest.raises(ValueError):
            zero_state(30)

    def test_bell_state(self):
        p = ideal_probabilities(Circuit(2).h(0).cx(0, 1))
        assert p[0] == pytest.approx(0.5) and p[3] == pytest.approx(0.5)

    def test_qubit_order_little_endian(self):
        # X on qubit 0 flips the least-significant bit of the index.
        p = ideal_probabilities(Circuit(2).x(0))
        assert p[1] == pytest.approx(1.0)

    def test_three_qubit_gate_application_order(self):
        # cx(2, 0): control qubit 2, target qubit 0.
        c = Circuit(3).x(2).cx(2, 0)
        p = ideal_probabilities(c)
        assert p[0b101] == pytest.approx(1.0)

    def test_reset_projects(self):
        c = Circuit(1).x(0).reset(0)
        state = simulate_statevector(c)
        assert abs(state[0]) == pytest.approx(1.0)

    def test_project_is_unnormalized(self):
        c = Circuit(1).h(0).project(0, 0)
        state = simulate_statevector(c)
        assert np.sum(np.abs(state) ** 2) == pytest.approx(0.5)

    def test_expectation_z(self):
        state = simulate_statevector(Circuit(2).x(1))
        assert expectation_z(state, 0, 2) == pytest.approx(1.0)
        assert expectation_z(state, 1, 2) == pytest.approx(-1.0)

    def test_sample_counts_total(self):
        rng = np.random.default_rng(0)
        counts = sample_counts(np.array([0.5, 0.5]), 1000, rng, 1)
        assert sum(counts.values()) == 1000

    def test_sample_counts_zero_vector_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_counts(np.zeros(4), 10, rng, 2)


class TestDistributions:
    def test_hellinger_identical(self):
        p = np.array([0.25, 0.75])
        assert hellinger_fidelity(p, p) == pytest.approx(1.0)
        assert hellinger_distance(p, p) == pytest.approx(0.0)

    def test_hellinger_disjoint(self):
        assert hellinger_fidelity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_hellinger_accepts_counts_dicts(self):
        f = hellinger_fidelity({"00": 500, "11": 500}, {"00": 1, "11": 1})
        assert f == pytest.approx(1.0)

    def test_tvd(self):
        assert total_variation_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hellinger_fidelity(np.ones(2) / 2, np.ones(4) / 4)

    def test_counts_to_probs(self):
        probs = counts_to_probs({"0": 3, "1": 1})
        assert probs["0"] == pytest.approx(0.75)

    def test_marginal_counts(self):
        counts = {"10": 4, "11": 6}
        marg = marginal_counts(counts, keep=[1])
        assert marg == {"1": 10}
        marg0 = marginal_counts(counts, keep=[0])
        assert marg0 == {"0": 4, "1": 6}


class TestNoiseModel:
    def test_uniform_construction(self):
        nm = NoiseModel.uniform(4, error_2q=0.01)
        assert nm.num_qubits == 4
        assert nm.gate_noise("cx", (0, 1)).error == pytest.approx(0.01)

    def test_rz_is_free(self):
        nm = NoiseModel.uniform(2)
        gn = nm.gate_noise("rz", (0,))
        assert gn.error == 0.0 and gn.duration_ns == 0.0

    def test_invalid_qubit_noise(self):
        with pytest.raises(ValueError):
            QubitNoise(t1_us=-1, t2_us=10, readout_p01=0, readout_p10=0)
        with pytest.raises(ValueError):
            QubitNoise(t1_us=10, t2_us=10, readout_p01=1.5, readout_p10=0)

    def test_invalid_gate_noise(self):
        with pytest.raises(ValueError):
            GateNoise(error=1.5, duration_ns=10)

    def test_decoherence_probs_monotone_in_time(self):
        nm = NoiseModel.uniform(1, t1_us=100, t2_us=80)
        p1 = nm.decoherence_probs(0, 100.0)
        p2 = nm.decoherence_probs(0, 1000.0)
        assert p2[0] > p1[0] and p2[1] >= p1[1]

    def test_confusion_matrix_columns_sum_to_one(self):
        nm = NoiseModel.uniform(1, readout_error=0.05)
        conf = nm.confusion_matrix(0)
        assert np.allclose(conf.sum(axis=0), 1.0)

    def test_scaled_increases_errors(self):
        nm = NoiseModel.uniform(2, error_2q=0.01)
        scaled = nm.scaled(3.0)
        assert scaled.gate_noise("cx", (0, 1)).error == pytest.approx(0.03)
        assert scaled.qubits[0].t1_us < nm.qubits[0].t1_us


class TestReadout:
    def test_forward_noise_preserves_total(self):
        nm = NoiseModel.uniform(3, readout_error=0.05)
        probs = ideal_probabilities(ghz(3, measure=False))
        noisy = apply_readout_noise_probs(probs, nm, 3)
        assert noisy.sum() == pytest.approx(1.0)
        assert hellinger_fidelity(noisy, probs) < 1.0

    def test_full_confusion_matrix_stochastic(self):
        nm = NoiseModel.uniform(2, readout_error=0.03)
        mat = full_confusion_matrix(nm, [0, 1])
        assert mat.shape == (4, 4)
        assert np.allclose(mat.sum(axis=0), 1.0)

    def test_full_confusion_too_wide(self):
        nm = NoiseModel.uniform(13)
        with pytest.raises(ValueError):
            full_confusion_matrix(nm, list(range(13)))


class TestTrajectorySimulator:
    def test_noiseless_limit_matches_ideal(self):
        nm = NoiseModel.uniform(
            3, error_1q=0.0, error_2q=0.0, readout_error=0.0,
            t1_us=1e9, t2_us=1e9,
        )
        sim = NoisySimulator(nm, num_trajectories=3, seed=0)
        c = ghz(3)
        probs = sim.noisy_probabilities(c)
        assert hellinger_fidelity(probs, ideal_probabilities(c)) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_noise_reduces_fidelity(self):
        nm = NoiseModel.uniform(3, error_2q=0.05, readout_error=0.05)
        sim = NoisySimulator(nm, num_trajectories=40, seed=1)
        c = ghz_linear(3)
        fid = hellinger_fidelity(
            sim.noisy_probabilities(c), ideal_probabilities(c)
        )
        assert 0.3 < fid < 0.98

    def test_more_noise_less_fidelity(self):
        c = ghz_linear(4)
        ideal = ideal_probabilities(c)
        fids = []
        for err in (0.005, 0.08):
            nm = NoiseModel.uniform(4, error_2q=err, readout_error=err)
            sim = NoisySimulator(nm, num_trajectories=60, seed=2)
            fids.append(hellinger_fidelity(sim.noisy_probabilities(c), ideal))
        assert fids[0] > fids[1]

    def test_run_returns_counts(self):
        nm = NoiseModel.uniform(2)
        res = NoisySimulator(nm, num_trajectories=5, seed=0).run(
            Circuit(2).h(0).cx(0, 1).measure_all(), shots=256
        )
        assert sum(res.counts.values()) == 256
        assert res.num_qubits == 2

    def test_circuit_wider_than_backend_raises(self):
        nm = NoiseModel.uniform(2)
        sim = NoisySimulator(nm, seed=0)
        with pytest.raises(ValueError):
            sim.run(Circuit(3).h(0))

    def test_invalid_trajectories(self):
        with pytest.raises(ValueError):
            NoisySimulator(NoiseModel.uniform(1), num_trajectories=0)


class TestESP:
    def test_esp_in_unit_interval(self):
        nm = NoiseModel.uniform(3, error_2q=0.02)
        value = esp(ghz(3), nm)
        assert 0.0 < value < 1.0

    def test_esp_components_sum(self):
        nm = NoiseModel.uniform(3, error_2q=0.02)
        c = ghz(3)
        comps = esp_components(c, nm)
        assert math.exp(sum(comps.values())) == pytest.approx(esp(c, nm))

    def test_esp_decreases_with_more_gates(self):
        nm = NoiseModel.uniform(4, error_2q=0.02)
        assert esp(ghz_linear(4), nm) > esp(ghz_linear(4).power(3), nm)

    def test_esp_to_hellinger_bounds(self):
        assert esp_to_hellinger(1.0, 5) == pytest.approx(1.0)
        assert 0.0 <= esp_to_hellinger(0.0, 5) < 0.2
        assert esp_to_hellinger(0.5, 2) > esp_to_hellinger(0.5, 20)

    def test_analytic_close_to_trajectory(self):
        """The analytic model should land within ~0.15 of the trajectory sim."""
        nm = NoiseModel.uniform(4, error_2q=0.015, readout_error=0.02)
        c = ghz_linear(4)
        analytic = estimate_fidelity_analytic(c, nm)
        sim = NoisySimulator(nm, num_trajectories=80, seed=3)
        measured = hellinger_fidelity(
            sim.noisy_probabilities(c), ideal_probabilities(c)
        )
        assert abs(analytic - measured) < 0.15

    def test_duration_accumulates(self):
        nm = NoiseModel.uniform(2, duration_2q_ns=300.0)
        c = Circuit(2).cx(0, 1).cx(0, 1)
        assert circuit_duration_ns(c, nm) == pytest.approx(600.0)

    def test_duration_parallel_wires(self):
        nm = NoiseModel.uniform(4, duration_2q_ns=300.0)
        c = Circuit(4).cx(0, 1).cx(2, 3)
        assert circuit_duration_ns(c, nm) == pytest.approx(300.0)
