"""detlint (``repro.analysis``) — rule true positives, false-positive
guards, suppression handling, the CLI, and the live-tree gate.

Each rule class gets (a) fixture snippets asserting the violations it
exists to catch are caught, and (b) known-good idioms from the real
codebase asserted clean — the false-positive guards are what make the
zero-findings CI gate trustworthy.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source, all_rules
from repro.analysis.base import Suppressions, module_name_for_path
from repro.analysis.runner import format_report

REPO = Path(__file__).resolve().parents[1]


def codes(report, rule=None):
    return [f.rule for f in report.findings if rule is None or f.rule == rule]


def lines(report, rule):
    return [f.line for f in report.findings if f.rule == rule]


# ---------------------------------------------------------------------------
# DET001 — ambient / unseeded RNG
class TestDet001AmbientRng:
    def test_np_random_module_functions_flagged(self):
        r = analyze_source(
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
            "np.random.seed(0)\n"
            "y = np.random.normal(size=4)\n"
        )
        assert lines(r, "DET001") == [2, 3, 4]

    def test_stdlib_random_flagged(self):
        r = analyze_source(
            "import random\n"
            "random.shuffle([1, 2])\n"
            "from random import choice\n"
            "choice([1, 2])\n"
        )
        assert lines(r, "DET001") == [2, 4]

    def test_unseeded_default_rng_flagged_seeded_ok(self):
        r = analyze_source(
            "import numpy as np\n"
            "a = np.random.default_rng()\n"
            "b = np.random.default_rng(None)\n"
            "c = np.random.default_rng(7)\n"
            "d = np.random.default_rng(seed=7)\n"
            "from numpy.random import default_rng\n"
            "e = default_rng()\n"
        )
        assert lines(r, "DET001") == [2, 3, 7]

    def test_generator_methods_never_flagged(self):
        """Draws on an injected Generator are the sanctioned idiom."""
        r = analyze_source(
            "import numpy as np\n"
            "def f(rng: np.random.Generator):\n"
            "    return rng.normal() + rng.choice([1, 2])\n"
            "class C:\n"
            "    def g(self):\n"
            "        return self._rng.random()\n"
        )
        assert codes(r, "DET001") == []

    def test_seed_sequence_and_bit_generators_ok(self):
        r = analyze_source(
            "import numpy as np\n"
            "ss = np.random.SeedSequence(entropy=(1, 2, 3))\n"
            "g = np.random.Generator(np.random.PCG64(ss))\n"
        )
        assert codes(r, "DET001") == []

    def test_unrelated_attribute_chains_ok(self):
        """`self.random.thing()` on a non-module object is not RNG."""
        r = analyze_source(
            "class C:\n"
            "    def f(self):\n"
            "        return self.random.draw()\n"
        )
        assert codes(r, "DET001") == []


# ---------------------------------------------------------------------------
# DET002 — wall-clock in simulated-time packages
class TestDet002WallClock:
    def test_wallclock_in_simulated_package_flagged(self):
        r = analyze_source(
            "import time\n"
            "from datetime import datetime\n"
            "def step(now):\n"
            "    t = time.time()\n"
            "    d = datetime.now()\n"
            "    return now + 1\n",
            module="repro.cloud.widget",
        )
        assert lines(r, "DET002") == [4, 5]

    def test_from_import_alias_flagged(self):
        r = analyze_source(
            "from time import perf_counter as pc\n"
            "def f():\n"
            "    return pc()\n",
            module="repro.moo.widget",
        )
        assert lines(r, "DET002") == [3]

    def test_outside_simulated_packages_not_flagged(self):
        """Experiments/benchmark harnesses may time themselves freely."""
        r = analyze_source(
            "import time\nt = time.perf_counter()\n",
            module="repro.experiments.widget",
        )
        assert codes(r, "DET002") == []

    def test_declared_accounting_sites_exempt(self):
        """The declared simulator stopwatch functions are the allowlist."""
        r = analyze_source(
            "import time\n"
            "class CloudSimulator:\n"
            "    def _run(self, apps):\n"
            "        t0 = time.perf_counter()\n"
            "        return t0\n"
            "    def other(self):\n"
            "        return time.perf_counter()\n",
            module="repro.cloud.simulator",
        )
        assert lines(r, "DET002") == [7]

    def test_simulated_now_parameters_not_flagged(self):
        """Passing simulated `now` around must never trip the rule."""
        r = analyze_source(
            "def fire(self, shard, now):\n"
            "    shard.deadline = now + self.interval\n",
            module="repro.scheduler.triggers",
        )
        assert codes(r, "DET002") == []


# ---------------------------------------------------------------------------
# DET003 — worker purity
class TestDet003WorkerPurity:
    def test_worker_reading_mutable_global_flagged(self):
        r = analyze_source(
            "_cache = {}\n"
            "def worker(task):\n"
            "    _cache[task] = 1\n"
            "    return len(_cache)\n"
            "def go(executor, tasks):\n"
            "    return executor.run(worker, tasks)\n",
            module="repro.widget",
        )
        assert lines(r, "DET003") == [3, 4]

    def test_worker_declaring_global_flagged(self):
        r = analyze_source(
            "counter = 0\n"
            "def worker(task):\n"
            "    global counter\n"
            "    counter += 1\n"
            "def go(executor, tasks):\n"
            "    return executor.submit(worker, tasks)\n",
            module="repro.widget",
        )
        assert any(
            "global" in f.message for f in r.findings if f.rule == "DET003"
        )

    def test_lambda_and_bound_method_flagged(self):
        r = analyze_source(
            "class Sim:\n"
            "    def go(self, tasks):\n"
            "        self.cycle_executor.run(lambda t: t, tasks)\n"
            "        self.cycle_executor.submit(self.step, tasks)\n",
            module="repro.widget",
        )
        assert lines(r, "DET003") == [3, 4]

    def test_nested_def_flagged(self):
        r = analyze_source(
            "def go(executor, tasks):\n"
            "    def worker(t):\n"
            "        return t\n"
            "    return executor.run(worker, tasks)\n",
            module="repro.widget",
        )
        assert any("nested" in f.message for f in r.findings)

    def test_pure_worker_ok(self):
        """Imports, module defs, and UPPER_CASE constants are safe reads
        — the shape of the real ``run_optimization``."""
        r = analyze_source(
            "import numpy as np\n"
            "SCALE = 2.0\n"
            "def helper(x):\n"
            "    return x * SCALE\n"
            "def worker(task):\n"
            "    return helper(np.sum(task))\n"
            "def go(executor, tasks):\n"
            "    return executor.run(worker, tasks)\n",
            module="repro.widget",
        )
        assert codes(r, "DET003") == []

    def test_cross_module_worker_checked_via_import(self):
        impure = (
            "state = []\n"
            "def run_cycle(task):\n"
            "    state.append(task)\n"
            "    return task\n"
        )
        caller = (
            "from repro.other import run_cycle\n"
            "def go(executor, tasks):\n"
            "    return executor.run(run_cycle, tasks)\n"
        )
        r = analyze_source(
            caller,
            module="repro.widget",
            extra_modules={"repro.other": impure},
        )
        assert any(
            "run_cycle" in f.message and "state" in f.message
            for f in r.findings
            if f.rule == "DET003"
        )

    def test_declared_contract_worker_checked_without_callsite(self):
        """contracts.WORKER_FUNCTIONS pins run_optimization even if no
        executor call site is visible in the analyzed set."""
        r = analyze_source(
            "tally = {}\n"
            "def run_optimization(task):\n"
            "    tally[task] = 1\n"
            "    return task\n",
            module="repro.scheduler.cycle",
        )
        assert any("tally" in f.message for f in r.findings if f.rule == "DET003")

    def test_executor_plumbing_forwarding_fn_not_flagged(self):
        """cycle_executor.py itself forwards `fn` parameters; a bare
        parameter name is out of static reach, not a finding."""
        r = analyze_source(
            "class PooledExecutor:\n"
            "    def run(self, fn, tasks):\n"
            "        return [fn(t) for t in tasks]\n"
            "    def submit(self, fn, tasks):\n"
            "        return self.pool_executor.submit(fn, tasks)\n",
            module="repro.widget",
        )
        assert codes(r, "DET003") == []


# ---------------------------------------------------------------------------
# DET004 — unordered iteration
class TestDet004UnorderedIteration:
    def test_for_over_set_flagged(self):
        r = analyze_source("s = {1, 2}\nfor x in s:\n    print(x)\n")
        assert lines(r, "DET004") == [2]

    def test_listdir_and_glob_flagged(self):
        r = analyze_source(
            "import os, glob\n"
            "for n in os.listdir('.'):\n"
            "    print(n)\n"
            "names = glob.glob('*.json')\n"
            "for n in names:\n"
            "    print(n)\n"
        )
        assert lines(r, "DET004") == [2, 5]

    def test_list_and_comprehension_sinks_flagged(self):
        r = analyze_source(
            "xs = list({1, 2})\n"
            "ys = [x for x in {1, 2}]\n"
            "zs = {k: 1 for k in set([1, 2])}\n"
        )
        assert lines(r, "DET004") == [1, 2, 3]

    def test_sorted_wrapping_is_clean(self):
        r = analyze_source(
            "s = {3, 1}\n"
            "for x in sorted(s):\n"
            "    print(x)\n"
            "ys = [x for x in sorted(set([1, 2]))]\n"
        )
        assert codes(r, "DET004") == []

    def test_order_insensitive_consumers_not_flagged(self):
        """len/min/max/membership/set-algebra never need sorting."""
        r = analyze_source(
            "s = {1, 2}\n"
            "n = len(s)\n"
            "m = max(s)\n"
            "ok = 1 in s\n"
            "t = s | {3}\n"
            "u = s & {1}\n"
        )
        assert codes(r, "DET004") == []

    def test_set_typed_binop_result_tracked(self):
        r = analyze_source(
            "a = {1} | {2}\nfor x in a:\n    print(x)\n"
        )
        assert lines(r, "DET004") == [2]

    def test_reassignment_clears_tracking(self):
        r = analyze_source(
            "a = {1, 2}\na = sorted(a)\nfor x in a:\n    print(x)\n"
        )
        assert codes(r, "DET004") == []

    def test_dict_iteration_not_flagged(self):
        """dicts are insertion-ordered — iterating them is fine."""
        r = analyze_source(
            "d = {'a': 1}\n"
            "for k in d:\n"
            "    print(k)\n"
            "for k, v in d.items():\n"
            "    print(k, v)\n"
        )
        assert codes(r, "DET004") == []


# ---------------------------------------------------------------------------
# DET005 — metrics allowlist mirror
_METRICS_FIXTURE = """
class SimulationMetrics:
    wall_seconds: float = 0.0
    stage_seconds: dict = None
    completed_jobs: int = 0
    TIMING_FIELDS = ("wall_seconds", "stage_seconds"{extra})
"""


class TestDet005MetricsAllowlist:
    def _run(self, body, extra="", module="repro.cloud.fake"):
        return analyze_source(
            body,
            module=module,
            extra_modules={
                "repro.cloud.metrics": _METRICS_FIXTURE.format(extra=extra)
            },
        )

    def test_stale_allowlist_entry_flagged(self):
        r = self._run("x = 1\n", extra=", 'ghost_field'")
        assert any(
            "ghost_field" in f.message for f in r.findings if f.rule == "DET005"
        )

    def test_wallclock_into_unlisted_field_flagged(self):
        r = self._run(
            "import time\n"
            "def run(metrics):\n"
            "    metrics.completed_jobs = time.perf_counter()\n"
        )
        assert any(
            "completed_jobs" in f.message
            for f in r.findings
            if f.rule == "DET005"
        )

    def test_taint_flows_through_locals(self):
        r = self._run(
            "import time\n"
            "def run(metrics):\n"
            "    t0 = time.perf_counter()\n"
            "    elapsed = time.perf_counter() - t0\n"
            "    metrics.completed_jobs = elapsed\n"
        )
        assert lines(r, "DET005") == [5]

    def test_wallclock_into_listed_field_ok(self):
        r = self._run(
            "import time\n"
            "def run(metrics):\n"
            "    t0 = time.perf_counter()\n"
            "    metrics.wall_seconds = time.perf_counter() - t0\n"
            "    metrics.stage_seconds['optimize'] = time.perf_counter()\n"
        )
        assert codes(r, "DET005") == []

    def test_simulated_values_into_any_field_ok(self):
        r = self._run(
            "def run(metrics, now, start):\n"
            "    metrics.completed_jobs = now - start\n"
        )
        assert codes(r, "DET005") == []


# ---------------------------------------------------------------------------
# Suppressions, runner, CLI
class TestSuppressions:
    def test_inline_directive_with_reason(self):
        r = analyze_source(
            "import random\n"
            "random.random()  # detlint: disable=DET001 -- fixture needs entropy\n"
        )
        assert r.findings == []
        assert [f.rule for f in r.suppressed] == ["DET001"]
        assert r.suppressed[0].suppression_reason == "fixture needs entropy"

    def test_directive_only_covers_named_rules(self):
        r = analyze_source(
            "import random\n"
            "random.random()  # detlint: disable=DET004 -- wrong code\n"
        )
        assert codes(r, "DET001") == ["DET001"]

    def test_bare_disable_covers_all_rules(self):
        r = analyze_source(
            "import random\nrandom.random()  # detlint: disable\n"
        )
        assert r.findings == []

    def test_standalone_comment_covers_next_line(self):
        r = analyze_source(
            "import random\n"
            "# detlint: disable=DET001 -- reason on its own line\n"
            "random.random()\n"
        )
        assert r.findings == []
        assert r.suppressed[0].line == 3

    def test_parse_captures_codes_and_reason(self):
        sup = Suppressions.parse(
            "x = 1  # detlint: disable=DET001,DET004 -- two rules\n"
        )
        hit, reason = sup.lookup("DET004", 1)
        assert hit and reason == "two rules"
        assert sup.lookup("DET002", 1) == (False, "")


class TestRunnerAndCli:
    def test_module_name_derivation(self):
        assert (
            module_name_for_path("src/repro/cloud/simulator.py")
            == "repro.cloud.simulator"
        )
        assert module_name_for_path("src/repro/analysis/__init__.py") == (
            "repro.analysis"
        )
        assert module_name_for_path("/tmp/fixture.py") == "fixture"

    def test_all_rules_registered(self):
        assert sorted(all_rules()) == [
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "DET005",
        ]

    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            analyze_source("x = 1\n", select=["DET999"])

    def test_json_report_shape(self):
        r = analyze_source("s = {1}\nfor x in s:\n    print(x)\n")
        doc = json.loads(format_report(r, "json"))
        assert doc["tool"] == "detlint"
        assert doc["counts"] == {"DET004": 1}
        (finding,) = doc["findings"]
        assert finding["rule"] == "DET004"
        assert finding["line"] == 2

    def test_cli_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(tmp_path)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_cli_findings_exit_one_and_json_artifact(self, tmp_path):
        (tmp_path / "bad.py").write_text("import random\nrandom.random()\n")
        out = tmp_path / "report.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                str(tmp_path),
                "--json-output",
                str(out),
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 1
        assert "DET001" in proc.stdout
        doc = json.loads(out.read_text())
        assert doc["counts"] == {"DET001": 1}

    def test_cli_list_rules(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0
        for code in ("DET001", "DET002", "DET003", "DET004", "DET005"):
            assert code in proc.stdout


# ---------------------------------------------------------------------------
# The gate itself: the live tree stays at zero unsuppressed findings.
class TestLiveTree:
    def test_src_is_clean(self):
        report = analyze_paths([str(REPO / "src")])
        assert report.clean, "\n" + "\n".join(
            f.format() for f in report.findings
        )

    def test_every_live_suppression_carries_a_reason(self):
        """An intentional violation must say why it is safe."""
        report = analyze_paths([str(REPO / "src")])
        for f in report.suppressed:
            assert f.suppression_reason, (
                f"suppression without justification: {f.format()}"
            )

    def test_real_worker_function_is_checked_and_pure(self):
        """The contract worker (run_optimization) is in the checked set:
        injecting an impurity into a copy of the real module is caught."""
        cycle_path = REPO / "src" / "repro" / "scheduler" / "cycle.py"
        source = cycle_path.read_text() + (
            "\n_memo = {}\n"
            "def run_optimization_bad(task):\n"
            "    _memo[task] = 1\n"
            "    return _memo\n"
            "def _go(executor, tasks):\n"
            "    return executor.run(run_optimization_bad, tasks)\n"
        )
        r = analyze_source(
            source, path=str(cycle_path), module="repro.scheduler.cycle"
        )
        assert any("_memo" in f.message for f in r.findings if f.rule == "DET003")
        # And the pristine module passes.
        clean = analyze_source(
            cycle_path.read_text(),
            path=str(cycle_path),
            module="repro.scheduler.cycle",
        )
        assert codes(clean, "DET003") == []
