"""Resource-estimator tests: features, dataset, models, numerical baseline,
cost model, and plan generation."""

import numpy as np
import pytest

from repro.backends import default_fleet
from repro.circuits import compute_metrics
from repro.cloud import ExecutionModel
from repro.cloud.job import QuantumJob
from repro.estimator import (
    NumericalEstimator,
    ResourceEstimator,
    TABLE1_RATES,
    fidelity_features,
    generate_dataset,
    mitigation_flags,
    plan_cost,
    runtime_features,
    train_estimators,
)
from repro.workloads import ghz_linear, qaoa_ring_maxcut

FLEET_NAMES = ["auckland", "algiers", "lagos"]


@pytest.fixture(scope="module")
def fleet():
    return default_fleet(seed=7, names=FLEET_NAMES)


@pytest.fixture(scope="module")
def execution_model():
    return ExecutionModel(seed=3)


@pytest.fixture(scope="module")
def trained(fleet, execution_model):
    return ResourceEstimator.train_for_fleet(
        default_fleet(seed=7, names=FLEET_NAMES),
        num_records=600,
        execution_model=execution_model,
        seed=4,
    )


class TestFeatures:
    def test_mitigation_flags(self):
        assert mitigation_flags("none") == [0, 0, 0, 0]
        assert mitigation_flags("dd+zne+rem") == [1, 0, 1, 1]
        with pytest.raises(KeyError):
            mitigation_flags("nope")

    def test_feature_vectors_finite(self, fleet):
        m = compute_metrics(ghz_linear(5))
        xf = fidelity_features(m, 4000, "zne+rem", fleet[0].calibration)
        xr = runtime_features(m, 4000, "zne+rem", fleet[0].calibration)
        assert np.all(np.isfinite(xf)) and np.all(np.isfinite(xr))
        assert len(xf) == 16 and len(xr) == 11

    def test_features_differ_across_qpus(self, fleet):
        m = compute_metrics(ghz_linear(5))
        a = fidelity_features(m, 1000, "none", fleet[0].calibration)
        b = fidelity_features(m, 1000, "none", fleet[1].calibration)
        assert not np.allclose(a, b)


class TestDataset:
    def test_generation_shapes(self, fleet, execution_model):
        ds = generate_dataset(
            default_fleet(seed=7, names=FLEET_NAMES),
            num_records=120,
            execution_model=execution_model,
            seed=1,
        )
        assert len(ds) > 100
        assert ds.X_fidelity.shape[0] == len(ds.y_fidelity)
        assert np.all((ds.y_fidelity >= 0) & (ds.y_fidelity <= 1))
        assert np.all(ds.y_runtime > 0)

    def test_covers_multiple_mitigations_and_qpus(self, execution_model):
        ds = generate_dataset(
            default_fleet(seed=7, names=FLEET_NAMES),
            num_records=150,
            execution_model=execution_model,
            seed=2,
        )
        assert len(set(ds.mitigations)) >= 4
        assert len(set(ds.qpu_names)) >= 2


class TestTrainedEstimators:
    def test_cv_r2_reasonable(self, trained):
        assert trained.estimators.fidelity.cv_r2 > 0.85
        assert trained.estimators.runtime.cv_r2 > 0.9

    def test_selection_report_has_all_degrees(self, trained):
        rep = trained.estimators.selection_report
        assert set(rep["fidelity"]) == {"degree_1", "degree_2", "degree_3"}

    def test_predictions_clipped(self, trained, fleet):
        m = compute_metrics(ghz_linear(20))
        fid = trained.estimators.estimate_fidelity(
            m, 20000, "none", fleet[1].calibration
        )
        assert 0.0 <= fid <= 1.0
        sec = trained.estimators.estimate_runtime(
            m, 20000, "none", fleet[1].calibration
        )
        assert sec >= 0.0

    def test_estimates_track_quality(self, trained, fleet):
        """Better-calibrated QPU -> higher estimated fidelity."""
        job = QuantumJob.from_circuit(ghz_linear(10), shots=4000)
        f_good, _ = trained.estimate_for_qpu(job, fleet[0])  # auckland
        f_bad, _ = trained.estimate_for_qpu(job, fleet[1])  # algiers
        assert f_good > f_bad

    def test_mitigation_raises_estimate(self, trained, fleet):
        m = compute_metrics(ghz_linear(10))
        f_plain = trained.estimators.estimate_fidelity(
            m, 4000, "none", fleet[1].calibration
        )
        f_mit = trained.estimators.estimate_fidelity(
            m, 4000, "dd+zne+rem", fleet[1].calibration
        )
        assert f_mit > f_plain

    def test_train_too_small_raises(self, execution_model):
        ds = generate_dataset(
            default_fleet(seed=7, names=["lagos"]),
            num_records=20,
            execution_model=execution_model,
            seed=3,
        )
        with pytest.raises(ValueError):
            train_estimators(ds)


class TestNumericalBaseline:
    def test_ignores_mitigation(self, fleet, execution_model):
        num = NumericalEstimator(proxy=execution_model.proxy)
        m = compute_metrics(ghz_linear(8))
        f1 = num.estimate_fidelity(m, 4000, "none", fleet[0].calibration, fleet[0].model)
        f2 = num.estimate_fidelity(
            m, 4000, "dd+zne+rem", fleet[0].calibration, fleet[0].model
        )
        assert f1 == pytest.approx(f2)

    def test_runtime_scales_with_shots(self, fleet, execution_model):
        num = NumericalEstimator(proxy=execution_model.proxy)
        m = compute_metrics(ghz_linear(8))
        t1 = num.estimate_runtime(m, 1000, "none", fleet[0].calibration, fleet[0].model)
        t2 = num.estimate_runtime(m, 8000, "none", fleet[0].calibration, fleet[0].model)
        assert t2 > t1

    def test_regression_beats_numerical_on_mitigated_jobs(
        self, trained, fleet, execution_model
    ):
        num = NumericalEstimator(proxy=execution_model.proxy)
        rng = np.random.default_rng(5)
        errs_reg, errs_num = [], []
        for seed in range(30):
            circ = ghz_linear(4 + seed % 8)
            job = QuantumJob.from_circuit(circ, shots=4000, mitigation="dd+zne+rem")
            qpu = fleet[seed % len(fleet)]
            real = execution_model.execute(job, qpu.calibration, qpu.model, rng)
            f_reg, _ = trained.estimate_for_qpu(job, qpu)
            f_num = num.estimate_fidelity(
                job.metrics, job.shots, job.mitigation, qpu.calibration, qpu.model
            )
            errs_reg.append(abs(f_reg - real.fidelity))
            errs_num.append(abs(f_num - real.fidelity))
        assert np.mean(errs_reg) < np.mean(errs_num)


class TestCost:
    def test_table1_orders_of_magnitude(self):
        assert 3000 <= TABLE1_RATES["qpu"].price_per_hour <= 6000
        assert 10 <= TABLE1_RATES["highend_vm"].price_per_hour <= 40
        assert 1 <= TABLE1_RATES["standard_vm"].price_per_hour <= 5

    def test_plan_cost_monotone(self):
        assert plan_cost(120, 0) > plan_cost(60, 0)
        assert plan_cost(60, 600) > plan_cost(60, 0)

    def test_classical_trade_is_cheap(self):
        # An hour of high-end VM costs far less than an hour of QPU.
        vm_hour = plan_cost(0.0, 3600.0, classical_tier="highend_vm")
        qpu_hour = plan_cost(3600.0, 0.0)
        assert qpu_hour / vm_hour > 50

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            plan_cost(-1.0, 0.0)


class TestPlans:
    def test_plans_are_pareto_and_sorted(self, trained):
        m = compute_metrics(qaoa_ring_maxcut(12, seed=2))
        plans = trained.generate_plans(m, 4000, num_plans=5)
        assert 1 <= len(plans) <= 5
        fids = [p.est_fidelity for p in plans]
        assert fids == sorted(fids, reverse=True)
        # Pareto: strictly better fidelity must cost more total time.
        for hi, lo in zip(plans, plans[1:]):
            assert hi.est_total_seconds >= lo.est_total_seconds

    def test_min_fidelity_filter(self, trained):
        m = compute_metrics(qaoa_ring_maxcut(12, seed=2))
        all_plans = trained.generate_plans(m, 4000, num_plans=8)
        filtered = trained.generate_plans(
            m, 4000, num_plans=8, min_fidelity=all_plans[0].est_fidelity - 1e-9
        )
        assert all(
            p.est_fidelity >= all_plans[0].est_fidelity - 1e-6 for p in filtered
        )

    def test_too_wide_job_gets_no_plans(self, trained):
        m = compute_metrics(ghz_linear(120))
        assert trained.generate_plans(m, 1000) == []

    def test_refresh_templates(self, trained):
        # Dataset generation already advanced the training fleet's cycles;
        # move a fresh fleet two cycles further so averages must change.
        fleet = default_fleet(seed=7, names=FLEET_NAMES)
        for q in fleet:
            q.recalibrate()
            q.recalibrate()
            q.recalibrate()
        before = {
            k: t.calibration.mean_error_2q for k, t in trained.templates.items()
        }
        trained.refresh_templates(fleet)
        after = {
            k: t.calibration.mean_error_2q for k, t in trained.templates.items()
        }
        assert before != after


# ---------------------------------------------------------------------------
# The unified estimate-source surface (EstimateSource / estimate_block)
# ---------------------------------------------------------------------------

import os  # noqa: E402
import subprocess  # noqa: E402
import sys  # noqa: E402

from repro.cloud import AnalyticEstimateSource  # noqa: E402
from repro.cloud.execution import (  # noqa: E402
    QPU_SETUP_SECONDS,
    SHOT_OVERHEAD_US,
)
from repro.cloud.job import feasibility_matrix  # noqa: E402
from repro.estimator import (  # noqa: E402
    PairwiseEstimateSource,
    as_estimate_source,
    block_feasibility,
)
from repro.simulation import esp, esp_to_hellinger  # noqa: E402
from repro.workloads import ghz  # noqa: E402


def _jobs_with_circuits(widths=(2, 4, 3, 6, 27)):
    return [QuantumJob.from_circuit(ghz_linear(w), shots=2000) for w in widths]


class TestEstimateSourceAdapter:
    def test_bare_callable_warns_and_adapts(self, fleet):
        jobs = _jobs_with_circuits()
        with pytest.warns(DeprecationWarning, match="estimate_block"):
            source = as_estimate_source(lambda job, qpu: (0.8, 5.0))
        assert isinstance(source, PairwiseEstimateSource)
        assert source(jobs[0], fleet[0]) == (0.8, 5.0)
        fid, sec = source.estimate_block(jobs, fleet)
        feas = feasibility_matrix(jobs, fleet)
        assert np.array_equal(fid, np.where(feas, 0.8, 0.0))
        assert np.array_equal(sec, np.where(feas, 5.0, 0.0))

    def test_estimate_for_qpu_object_warns_and_adapts(self, fleet):
        class Legacy:
            def estimate_for_qpu(self, job, qpu):
                return 0.7, 3.0

        jobs = _jobs_with_circuits((2, 3))
        with pytest.warns(DeprecationWarning, match="estimate_for_qpu"):
            source = as_estimate_source(Legacy())
        fid, sec = source.estimate_block(jobs, fleet)
        assert fid[0, 0] == 0.7 and sec[0, 0] == 3.0

    def test_block_capable_source_passes_through(self, trained):
        cached = trained.cached()
        assert as_estimate_source(cached) is cached
        assert as_estimate_source(trained) is trained

    def test_unadaptable_raises(self):
        with pytest.raises(TypeError):
            as_estimate_source(42)

    def test_adapter_forwards_recalibration(self):
        seen = []

        class Legacy:
            def estimate_for_qpu(self, job, qpu):
                return 0.5, 1.0

            def on_recalibration(self, qpus):
                seen.append(len(qpus))

        with pytest.warns(DeprecationWarning):
            source = as_estimate_source(Legacy())
        source.on_recalibration([1, 2, 3])
        assert seen == [3]

    def test_block_feasibility_matches_cloud_matrix(self, fleet):
        jobs = _jobs_with_circuits()
        assert np.array_equal(
            block_feasibility(jobs, fleet), feasibility_matrix(jobs, fleet)
        )


class TestEstimateBlock:
    def test_trained_block_matches_pairwise(self, trained, fleet):
        jobs = _jobs_with_circuits()
        fid, sec = trained.estimate_block(jobs, fleet)
        feas = feasibility_matrix(jobs, fleet)
        for i, job in enumerate(jobs):
            for k, qpu in enumerate(fleet):
                if not feas[i, k]:
                    assert fid[i, k] == 0.0 and sec[i, k] == 0.0
                    continue
                pf, ps = trained.estimate_for_qpu(job, qpu)
                assert abs(fid[i, k] - pf) <= 1e-12
                assert abs(sec[i, k] - ps) <= 1e-12

    def test_cached_block_matches_trained_block(self, trained, fleet):
        jobs = _jobs_with_circuits()
        ref_fid, ref_sec = trained.estimate_block(jobs, fleet)
        cached = trained.cached()
        for _ in range(2):  # second pass served from memo
            fid, sec = cached.estimate_block(jobs, fleet)
            np.testing.assert_allclose(fid, ref_fid, rtol=0, atol=1e-12)
            np.testing.assert_allclose(sec, ref_sec, rtol=0, atol=1e-12)
        assert cached.stats.hits > 0

    def test_estimate_matrix_alias_warns(self, trained, fleet):
        jobs = _jobs_with_circuits()
        cached = trained.cached()
        block = cached.estimate_block(jobs, fleet)
        with pytest.warns(DeprecationWarning, match="estimate_block"):
            alias = cached.estimate_matrix(jobs, fleet)
        assert np.array_equal(block[0], alias[0])
        assert np.array_equal(block[1], alias[1])


class TestAnalyticEstimateSource:
    def test_block_matches_esp_math(self, fleet):
        jobs = _jobs_with_circuits((2, 3, 5, 4))
        source = AnalyticEstimateSource()
        fid, sec = source.estimate_block(jobs, fleet)
        feas = feasibility_matrix(jobs, fleet)
        for i, job in enumerate(jobs):
            for k, qpu in enumerate(fleet):
                if not feas[i, k]:
                    assert fid[i, k] == 0.0 and sec[i, k] == 0.0
                    continue
                nm = qpu.noise_model
                expect_fid = esp_to_hellinger(
                    esp(job.circuit, nm), job.num_qubits
                )
                from repro.simulation import circuit_duration_ns

                per_shot = (
                    circuit_duration_ns(job.circuit, nm) / 1e9
                    + SHOT_OVERHEAD_US / 1e6
                )
                expect_sec = QPU_SETUP_SECONDS + job.shots * per_shot
                assert abs(fid[i, k] - expect_fid) <= 1e-12
                assert abs(sec[i, k] - expect_sec) <= 1e-9

    def test_pair_view_matches_block(self, fleet):
        job = _jobs_with_circuits((4,))[0]
        source = AnalyticEstimateSource()
        pf, ps = source(job, fleet[0])
        fid, sec = source.estimate_block([job], [fleet[0]])
        assert pf == fid[0, 0] and ps == sec[0, 0]

    def test_requires_circuits(self, fleet):
        job = QuantumJob.from_circuit(ghz(3), keep_circuit=False)
        with pytest.raises(ValueError, match="keep_circuit"):
            AnalyticEstimateSource().estimate_block([job], fleet)

    def test_drives_scheduling_policy(self, fleet):
        from repro.scheduler import FCFSPolicy

        jobs = _jobs_with_circuits((2, 3, 4))
        policy = FCFSPolicy(AnalyticEstimateSource())
        out = policy.assign(jobs, fleet, {})
        assert all(name is not None for _, name in out)


class TestArrayBackendEnvIdentity:
    def test_run_bit_identical_under_explicit_env(self):
        """A seeded sharded run with ARRAY_BACKEND=numpy exported must be
        bit-identical to the default-backend run (the CI tier-1 job sets
        the variable explicitly)."""
        script = (
            "import json, sys\n"
            "sys.path.insert(0, 'tests')\n"
            "from helpers.determinism import fake_estimate, run_sharded\n"
            "from repro.scheduler import FCFSPolicy\n"
            "m = run_sharded(FCFSPolicy(fake_estimate), 'serial',"
            " duration=300.0)\n"
            "state = {k: repr(v) for k, v in"
            " sorted(m.deterministic_state().items())}\n"
            "print(json.dumps(state))\n"
        )
        outs = []
        for env_backend in (None, "numpy"):
            env = dict(os.environ)
            env.pop("ARRAY_BACKEND", None)
            if env_backend is not None:
                env["ARRAY_BACKEND"] = env_backend
            env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout.strip().splitlines()[-1])
        assert outs[0] == outs[1]
