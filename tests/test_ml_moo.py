"""Tests for the ML regression stack and the NSGA-II/MCDM optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    KFold,
    LinearRegression,
    PolynomialFeatures,
    Ridge,
    StandardScaler,
    cross_val_score,
    make_polynomial_regression,
    mean_absolute_error,
    r2_score,
    root_mean_squared_error,
    train_test_split,
)
from repro.moo import (
    NSGA2,
    Problem,
    Termination,
    crowding_by_rank,
    crowding_distance,
    fast_non_dominated_sort,
    front_ranks,
    pareto_front_mask,
    pseudo_weights,
    select_by_preference,
)
from repro.scheduler.formulation import (
    SchedulingInput,
    SchedulingProblem,
    evaluate_population,
    evaluate_reference,
    pack_feasible,
    repair_population,
    repair_reference,
)

_settings = settings(max_examples=40, deadline=None, derandomize=True)


def _random_input(rng, n, q, density=0.7):
    """A random feasible scheduling instance (every job fits somewhere)."""
    feas = rng.random((n, q)) < density
    feas[~feas.any(axis=1), 0] = True
    return SchedulingInput(
        fidelity=rng.random((n, q)) * 0.4 + 0.6,
        exec_seconds=rng.random((n, q)) * 100 + 1,
        waiting_seconds=rng.random(q) * 50,
        feasible=feas,
    )


class TestLinearModels:
    def test_ols_exact_on_linear_data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        w = np.array([2.0, -1.0, 0.5])
        y = X @ w + 3.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, w, atol=1e-8)
        assert model.intercept_ == pytest.approx(3.0)

    def test_ridge_shrinks_towards_zero(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        y = X @ np.array([5.0, -5.0]) + rng.normal(0, 0.1, 50)
        small = Ridge(alpha=1e-6).fit(X, y)
        big = Ridge(alpha=1e4).fit(X, y)
        assert np.linalg.norm(big.coef_) < np.linalg.norm(small.coef_)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.ones((2, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.ones(5), np.ones(5))
        with pytest.raises(ValueError):
            LinearRegression().fit(np.ones((5, 2)), np.ones(4))


class TestFeatures:
    def test_polynomial_feature_count(self):
        poly = PolynomialFeatures(degree=2)
        out = poly.fit_transform(np.ones((4, 3)))
        assert out.shape[1] == 3 + 6  # 3 linear + C(3+1,2)=6 quadratic

    def test_polynomial_values(self):
        X = np.array([[2.0, 3.0]])
        out = PolynomialFeatures(degree=2).fit_transform(X)
        assert set(np.round(out[0], 6)) == {2.0, 3.0, 4.0, 6.0, 9.0}

    def test_bias_column(self):
        out = PolynomialFeatures(degree=1, include_bias=True).fit_transform(
            np.ones((2, 1))
        )
        assert np.allclose(out[:, 0], 1.0)

    def test_scaler_standardizes(self):
        rng = np.random.default_rng(2)
        X = rng.normal(5.0, 3.0, size=(200, 2))
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_scaler_constant_column_safe(self):
        X = np.ones((10, 1))
        out = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(out))


class TestMetricsAndCV:
    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_mae_rmse(self):
        assert mean_absolute_error([0, 0], [1, -1]) == pytest.approx(1.0)
        assert root_mean_squared_error([0, 0], [3, 4]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_kfold_partitions(self):
        folds = list(KFold(n_splits=4, seed=1).split(20))
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test.tolist()) == list(range(20))
        for train, test in folds:
            assert set(train) & set(test) == set()

    def test_kfold_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_train_test_split_sizes(self):
        X = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.3, seed=0)
        assert len(Xte) == 3 and len(Xtr) == 7

    def test_cross_val_score_on_learnable_problem(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(120, 2))
        y = 1.0 + 2 * X[:, 0] - X[:, 1] ** 2
        scores = cross_val_score(
            lambda: make_polynomial_regression(2), X, y, n_splits=4
        )
        assert scores.mean() > 0.99

    def test_pipeline_getitem(self):
        pipe = make_polynomial_regression(2)
        assert isinstance(pipe["poly"], PolynomialFeatures)
        with pytest.raises(KeyError):
            pipe["nope"]


class _Biobj(Problem):
    """min (x0/u, 1 - x0/u + spread): simple convex front on integers."""

    def __init__(self, n=6, upper=50):
        super().__init__(n, 2, 0, upper)
        self.u = upper

    def evaluate(self, X):
        f1 = X[:, 0] / self.u
        rest = X[:, 1:].mean(axis=1) / self.u
        f2 = 1.0 - f1 + rest
        return np.stack([f1, f2], axis=1)


class TestSorting:
    def test_pareto_mask(self):
        F = np.array([[1, 5], [2, 2], [5, 1], [4, 4]])
        mask = pareto_front_mask(F)
        assert mask.tolist() == [True, True, True, False]

    def test_non_dominated_sort_fronts(self):
        F = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        fronts = fast_non_dominated_sort(F)
        assert [list(f) for f in fronts] == [[0], [1], [2]]

    def test_crowding_extremes_infinite(self):
        F = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        d = crowding_distance(F)
        assert np.isinf(d[0]) and np.isinf(d[3])
        assert np.isfinite(d[1]) and np.isfinite(d[2])


class TestNSGA2:
    def test_converges_to_front(self):
        res = NSGA2(pop_size=32, seed=0).minimize(
            _Biobj(), Termination(max_generations=40)
        )
        # On the true front the rest-genes are ~0, so f1 + f2 ~ 1.
        sums = res.F.sum(axis=1)
        assert np.mean(sums) < 1.1

    def test_front_is_mutually_non_dominated(self):
        res = NSGA2(pop_size=32, seed=1).minimize(
            _Biobj(), Termination(max_generations=20)
        )
        assert pareto_front_mask(res.F).all()

    def test_termination_tolerance_window(self):
        term = Termination(max_generations=500, tol=0.5, window=3)
        res = NSGA2(pop_size=16, seed=2).minimize(_Biobj(n=4), term)
        assert res.reason in ("tolerance_window", "max_generations")
        assert res.generations < 500 or res.reason == "max_generations"

    def test_pop_size_validation(self):
        with pytest.raises(ValueError):
            NSGA2(pop_size=5)

    def test_respects_bounds(self):
        res = NSGA2(pop_size=16, seed=3).minimize(
            _Biobj(), Termination(max_generations=10)
        )
        assert res.X.min() >= 0 and res.X.max() <= 50

    def test_minimize_pure_across_calls(self):
        """Same (problem, termination, seed) -> bit-identical results on
        repeated calls of the *same* optimizer instance: minimize carries
        no hidden RNG state between cycles (the parallel-engine contract)."""
        algo = NSGA2(pop_size=16, seed=7)
        a = algo.minimize(_Biobj(), Termination(max_generations=12))
        b = algo.minimize(_Biobj(), Termination(max_generations=12))
        assert np.array_equal(a.X, b.X) and np.array_equal(a.F, b.F)
        assert a.generations == b.generations
        # An explicit per-call seed overrides the constructor stream.
        c = algo.minimize(
            _Biobj(), Termination(max_generations=12), seed=99
        )
        assert not np.array_equal(a.F, c.F) or not np.array_equal(a.X, c.X)

    def test_truncate_reuses_selection_fronts_bit_identical(self):
        """The fast truncation (ranks/crowding derived from the fronts
        already computed) must match the old recompute-from-scratch
        version bit for bit, across seeds and generations."""

        class ReferenceNSGA2(NSGA2):
            def _truncate(self, X, F):
                fronts = fast_non_dominated_sort(F)
                chosen = []
                count = 0
                for front in fronts:
                    if count + len(front) <= self.pop_size:
                        chosen.append(front)
                        count += len(front)
                    else:
                        crowd = crowding_distance(F[front])
                        order = np.argsort(-crowd, kind="stable")
                        chosen.append(front[order[: self.pop_size - count]])
                        count = self.pop_size
                        break
                idx = np.concatenate(chosen)
                Xs, Fs = X[idx], F[idx]
                rank, crowd = self._rank_and_crowd(Fs)
                return Xs, Fs, rank, crowd

        for seed in range(5):
            fast = NSGA2(pop_size=16, seed=seed).minimize(
                _Biobj(), Termination(max_generations=15)
            )
            ref = ReferenceNSGA2(pop_size=16, seed=seed).minimize(
                _Biobj(), Termination(max_generations=15)
            )
            assert np.array_equal(fast.X, ref.X)
            assert np.array_equal(fast.F, ref.F)
            assert fast.generations == ref.generations
            assert fast.evaluations == ref.evaluations


class TestMCDM:
    def test_pseudo_weights_rows_sum_to_one(self):
        F = np.array([[0.0, 10.0], [5.0, 5.0], [10.0, 0.0]])
        w = pseudo_weights(F)
        assert np.allclose(w.sum(axis=1), 1.0)

    def test_extreme_selection(self):
        F = np.array([[0.0, 10.0], [5.0, 5.0], [10.0, 0.0]])
        # Strong priority on objective 0 picks the solution minimizing it.
        idx = select_by_preference(F, (0.99, 0.01))
        assert idx == 0
        idx = select_by_preference(F, (0.01, 0.99))
        assert idx == 2

    def test_balanced_picks_middle(self):
        F = np.array([[0.0, 10.0], [5.0, 5.0], [10.0, 0.0]])
        assert select_by_preference(F, "balanced") == 1

    def test_named_preferences(self):
        F = np.array([[0.0, 1.0], [1.0, 0.0]])
        for name in ("jct", "balanced", "fidelity"):
            select_by_preference(F, name)
        with pytest.raises(KeyError):
            select_by_preference(F, "nope")

    def test_preference_validation(self):
        F = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            select_by_preference(F, (0.9, 0.9))
        with pytest.raises(ValueError):
            select_by_preference(F, (1.0,))

    def test_degenerate_objective(self):
        F = np.array([[1.0, 5.0], [2.0, 5.0]])
        idx = select_by_preference(F, "balanced")
        assert idx in (0, 1)


class TestVectorizedSorting:
    """front_ranks / crowding_by_rank vs the per-front reference loops."""

    def test_front_ranks_match_peeled_fronts(self):
        for seed in range(25):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(1, 60))
            F = rng.random((n, 2))
            if seed % 3 == 0 and n > 3:  # duplicates exercise ties
                F[: n // 2] = F[n - n // 2 :][::-1]
            rank = front_ranks(F)
            for r, front in enumerate(fast_non_dominated_sort(F)):
                assert np.all(rank[front] == r)
            assert rank.min() == 0

    def test_crowding_by_rank_matches_per_front(self):
        for seed in range(25):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(1, 60))
            m = 2 if seed % 2 else 3
            F = rng.random((n, m))
            rank = front_ranks(F)
            crowd = crowding_by_rank(F, rank)
            for front in fast_non_dominated_sort(F):
                assert np.array_equal(
                    crowd[front], crowding_distance(F[front])
                )


class TestPopulationKernels:
    """The flat evaluate/repair kernels are bit-identical to the scalar
    per-individual reference loops — values AND consumed RNG stream."""

    def test_pack_feasible_matches_where(self):
        for seed in range(20):
            rng = np.random.default_rng(seed)
            data = _random_input(
                rng, int(rng.integers(1, 40)), int(rng.integers(2, 12))
            )
            flat, offsets, counts = pack_feasible(data.feasible)
            assert flat.shape == (int(data.feasible.sum()),)
            for i in range(data.num_jobs):
                assert np.array_equal(
                    flat[offsets[i] : offsets[i] + counts[i]],
                    np.where(data.feasible[i])[0],
                )

    def test_evaluate_matches_reference_randomized(self):
        for seed in range(50):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(1, 120))
            q = int(rng.integers(2, 24))
            pop = int(rng.integers(1, 96))
            data = _random_input(rng, n, q)
            X = rng.integers(0, q, size=(pop, n))
            assert np.array_equal(
                evaluate_population(data, X), evaluate_reference(data, X)
            )

    def test_repair_matches_reference_and_stream(self):
        for seed in range(50):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(1, 80))
            q = int(rng.integers(2, 16))
            pop = int(rng.integers(1, 48))
            data = _random_input(rng, n, q, density=0.5)
            X = rng.integers(0, q, size=(pop, n))
            r_kernel = np.random.default_rng(seed + 1)
            r_ref = np.random.default_rng(seed + 1)
            out_kernel = repair_population(data, X.copy(), r_kernel)
            out_ref = repair_reference(data, X.copy(), r_ref)
            assert np.array_equal(out_kernel, out_ref)
            assert data.feasible[
                np.arange(n)[None, :], out_kernel
            ].all()
            # Identical bit-stream position afterwards: batched draws
            # consumed exactly what the scalar loop would have.
            assert (
                r_kernel.bit_generator.state == r_ref.bit_generator.state
            )

    @_settings
    @given(
        pop=st.integers(1, 24),
        n=st.integers(1, 32),
        q=st.integers(2, 9),
        density=st.floats(0.15, 1.0),
        seed=st.integers(0, 2**31),
    )
    def test_kernels_equal_references_property(
        self, pop, n, q, density, seed
    ):
        """Property form: any (pop, width, feasibility-mask) instance —
        flat kernels == scalar references, bit for bit."""
        rng = np.random.default_rng(seed)
        data = _random_input(rng, n, q, density=density)
        X = rng.integers(0, q, size=(pop, n))
        assert np.array_equal(
            evaluate_population(data, X), evaluate_reference(data, X)
        )
        r1 = np.random.default_rng(seed ^ 0x5EED)
        r2 = np.random.default_rng(seed ^ 0x5EED)
        assert np.array_equal(
            repair_population(data, X.copy(), r1),
            repair_reference(data, X.copy(), r2),
        )
        assert r1.bit_generator.state == r2.bit_generator.state


class TestWarmStartProblem:
    """Warm-row validation and fill semantics in SchedulingProblem."""

    def _data(self, n=8, q=4, seed=0, density=1.0):
        return _random_input(np.random.default_rng(seed), n, q, density)

    def test_warm_rows_seed_population(self):
        data = self._data()
        warm = np.full((3, data.num_jobs), 2, dtype=np.int64)
        prob = SchedulingProblem(data, seed=1, warm=warm)
        X = prob.sample(10, np.random.default_rng(5))
        assert np.array_equal(X[2:5], warm)

    def test_missing_genes_fill_cycles_extremes_and_random(self):
        data = self._data()
        cold = SchedulingProblem(data, seed=1)
        Xc = cold.sample(10, np.random.default_rng(5))
        warm = np.full((3, data.num_jobs), -1, dtype=np.int64)
        warm[:, 0] = 1  # one carried gene per row, rest missing
        prob = SchedulingProblem(data, seed=1, warm=warm)
        X = prob.sample(10, np.random.default_rng(5))
        # Row modes cycle: fidelity extreme, JCT extreme, random slot.
        for k, base in enumerate((Xc[0], Xc[1], Xc[2 + 2])):
            assert X[2 + k, 0] == 1
            assert np.array_equal(X[2 + k, 1:], base[1:])

    def test_warm_never_consumes_rng(self):
        data = self._data()
        warm = np.zeros((2, data.num_jobs), dtype=np.int64)
        cold_rng = np.random.default_rng(5)
        warm_rng = np.random.default_rng(5)
        Xc = SchedulingProblem(data, seed=1).sample(8, cold_rng)
        Xw = SchedulingProblem(data, seed=1, warm=warm).sample(8, warm_rng)
        # Extremes and rows past the warm block are untouched...
        assert np.array_equal(Xc[:2], Xw[:2])
        assert np.array_equal(Xc[4:], Xw[4:])
        # ...and the stream position is identical afterwards.
        assert (
            cold_rng.bit_generator.state == warm_rng.bit_generator.state
        )

    def test_warm_validation(self):
        data = self._data(density=0.6)
        with pytest.raises(ValueError, match="warm-start rows"):
            SchedulingProblem(data, warm=np.zeros((2, 3), dtype=np.int64))
        out_of_range = np.full((1, data.num_jobs), data.num_qpus)
        with pytest.raises(ValueError, match="out of QPU range"):
            SchedulingProblem(data, warm=out_of_range)
        infeasible = np.zeros((1, data.num_jobs), dtype=np.int64)
        bad_job = int(np.flatnonzero(~data.feasible[:, 0])[0])
        infeasible[0, bad_job] = 0
        with pytest.raises(ValueError, match="feasible or -1"):
            SchedulingProblem(data, warm=infeasible)

    def test_all_missing_rows_dropped(self):
        data = self._data()
        warm = np.full((3, data.num_jobs), -1, dtype=np.int64)
        warm[1, 0] = 2  # only row 1 carries anything
        prob = SchedulingProblem(data, seed=1, warm=warm)
        assert prob._warm is not None and len(prob._warm) == 1
        empty = np.full((2, data.num_jobs), -1, dtype=np.int64)
        assert SchedulingProblem(data, seed=1, warm=empty)._warm is None

    def test_warm_capped_by_population(self):
        data = self._data()
        warm = np.full((20, data.num_jobs), 1, dtype=np.int64)
        prob = SchedulingProblem(data, seed=1, warm=warm)
        X = prob.sample(6, np.random.default_rng(5))
        assert np.array_equal(X[2:], warm[:4])
