"""Correctness tests for every benchmark generator."""

import numpy as np
import pytest

from repro.simulation import hellinger_fidelity, ideal_probabilities
from repro.workloads import (
    BENCHMARKS,
    WorkloadSampler,
    benchmark_names,
    bernstein_vazirani,
    clustered_circuit,
    deutsch_jozsa,
    generate,
    ghz,
    ghz_linear,
    grover,
    maxcut_cost,
    phase_estimation,
    qaoa_maxcut,
    qaoa_ring_maxcut,
    qft,
    qft_entangled,
    random_circuit,
    real_amplitudes,
    ripple_adder,
    two_local,
    w_state,
)


class TestStatePreparations:
    def test_ghz_distribution(self):
        p = ideal_probabilities(ghz(4))
        assert p[0] == pytest.approx(0.5) and p[15] == pytest.approx(0.5)

    def test_ghz_linear_equals_star_distribution(self):
        p1 = ideal_probabilities(ghz(5))
        p2 = ideal_probabilities(ghz_linear(5))
        assert hellinger_fidelity(p1, p2) == pytest.approx(1.0)

    def test_w_state_uniform_single_excitation(self):
        p = ideal_probabilities(w_state(4))
        ones = [1 << k for k in range(4)]
        for idx in ones:
            assert p[idx] == pytest.approx(0.25, abs=1e-9)
        assert sum(p[i] for i in ones) == pytest.approx(1.0)

    def test_minimum_size_validation(self):
        for fn in (ghz, ghz_linear, w_state):
            with pytest.raises(ValueError):
                fn(1)


class TestQFT:
    def test_qft_matches_dft_matrix(self):
        n = 3
        u = qft(n, swaps=True).unitary()
        dft = np.array(
            [
                [np.exp(2j * np.pi * j * k / 2**n) for k in range(2**n)]
                for j in range(2**n)
            ]
        ) / np.sqrt(2**n)
        assert np.allclose(u, dft, atol=1e-10)

    def test_qft_inverse_is_identity(self):
        c = qft(4)
        u = c.copy().compose(c.inverse()).unitary()
        assert np.allclose(u, np.eye(16), atol=1e-9)

    def test_approximate_qft_has_fewer_cp(self):
        full = qft(6).count_ops().get("cp", 0)
        approx = qft(6, approximation_degree=3).count_ops().get("cp", 0)
        assert approx < full

    def test_qft_entangled_runs(self):
        c = qft_entangled(4)
        assert c.num_measurements == 4


class TestAlgorithms:
    def test_grover_finds_marked(self):
        for marked in ("101", "010"):
            p = ideal_probabilities(grover(3, marked))
            assert int(np.argmax(p)) == int(marked, 2)
            assert p[int(marked, 2)] > 0.8

    def test_grover_validation(self):
        with pytest.raises(ValueError):
            grover(3, marked="10")

    def test_bv_recovers_secret(self):
        secret = "11010"
        p = ideal_probabilities(bernstein_vazirani(5, secret))
        assert format(int(np.argmax(p)), "05b") == secret
        assert p.max() == pytest.approx(1.0)

    def test_dj_balanced_avoids_zero(self):
        p = ideal_probabilities(deutsch_jozsa(4, balanced=True))
        assert p[0] == pytest.approx(0.0, abs=1e-9)

    def test_dj_constant_hits_zero(self):
        p = ideal_probabilities(deutsch_jozsa(4, balanced=False))
        assert p[0] == pytest.approx(1.0)

    def test_qpe_reads_phase(self):
        for phase, n in ((0.25, 4), (0.3125, 4)):
            p = ideal_probabilities(phase_estimation(n, phase))
            counting = int(np.argmax(p)) & ((1 << n) - 1)
            assert counting == round(phase * 2**n)

    def test_adder_adds(self):
        for a, b in ((3, 1), (2, 2), (1, 3)):
            c = ripple_adder(2, a=a, b=b)
            p = ideal_probabilities(c)
            idx = int(np.argmax(p))
            total = sum(((idx >> (1 + 2 * i)) & 1) << i for i in range(2))
            carry = (idx >> (c.num_qubits - 1)) & 1
            assert total + (carry << 2) == a + b


class TestVariational:
    def test_qaoa_structure(self):
        c = qaoa_maxcut(6, p_layers=2, seed=1)
        ops = c.count_ops()
        assert ops["h"] == 6 and ops["rx"] == 12
        assert "edges" in c.metadata

    def test_qaoa_ring_is_chain_like(self):
        from repro.circuits import compute_metrics

        c = qaoa_ring_maxcut(8)
        assert compute_metrics(c).routing_class == "linear"

    def test_qaoa_param_validation(self):
        with pytest.raises(ValueError):
            qaoa_maxcut(4, p_layers=2, gammas=[0.1], betas=[0.1, 0.2])

    def test_maxcut_cost(self):
        edges = [(0, 1), (1, 2)]
        assert maxcut_cost("010", edges) == 2  # q0=0,q1=1,q2=0
        assert maxcut_cost("000", edges) == 0

    def test_real_amplitudes_param_count(self):
        with pytest.raises(ValueError):
            real_amplitudes(4, reps=2, parameters=[0.1] * 5)

    def test_two_local_entanglement_options(self):
        full = two_local(4, reps=1, entanglement="full")
        lin = two_local(4, reps=1, entanglement="linear")
        assert full.two_qubit_gate_count() > lin.two_qubit_gate_count()


class TestRandomAndClustered:
    def test_random_circuit_determinism(self):
        c1 = random_circuit(5, 6, seed=42)
        c2 = random_circuit(5, 6, seed=42)
        assert c1.ops == c2.ops

    def test_clustered_bridges_are_cz(self):
        c = clustered_circuit(8, 3, num_clusters=2, bridge_gates=2, seed=1)
        clusters = c.metadata["clusters"]
        set_a = set(clusters[0])
        crossing = [
            g
            for g in c.ops
            if g.num_qubits == 2 and (g.qubits[0] in set_a) != (g.qubits[1] in set_a)
        ]
        assert crossing and all(g.name == "cz" for g in crossing)
        assert len(crossing) == 2

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            clustered_circuit(3, 2, num_clusters=2)


class TestSuite:
    def test_all_benchmarks_generate(self):
        for name in benchmark_names():
            _, lo, hi = BENCHMARKS[name]
            width = max(lo, min(5, hi))
            circ = generate(name, width, seed=1)
            assert circ.num_qubits >= 1
            assert circ.metadata.get("benchmark") == name

    def test_generate_range_validation(self):
        with pytest.raises(ValueError):
            generate("grover", 20)
        with pytest.raises(KeyError):
            generate("nope", 5)

    def test_sampler_respects_bounds(self):
        sampler = WorkloadSampler(seed=1, min_qubits=3, max_qubits=10)
        for job in sampler.sample_many(30):
            assert 1 <= job.circuit.num_qubits <= 10
            assert 1000 <= job.shots <= 25000

    def test_sampler_mitigation_fraction(self):
        sampler = WorkloadSampler(seed=2, mitigation_fraction=1.0)
        assert all(j.uses_mitigation for j in sampler.sample_many(10))
