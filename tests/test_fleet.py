"""Fleet-layer tests: shard/balancer routing, sharded-vs-unsharded
equivalence, and the streaming arrival pipeline.

The load-bearing guarantees: a 1-shard sharded simulator reproduces the
unsharded simulator bit-identically (FCFS) / to 1e-12 (Qonductor), and a
run fed by the lazy arrival iterator matches a run fed the eager list
while holding only in-flight applications in memory.
"""

import numpy as np
import pytest

from repro.backends import default_fleet
from repro.backends.fleet import fleet_of_size
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    FleetShard,
    LeastLoadedBalancer,
    LoadGenerator,
    QuantumJob,
    QubitFitBalancer,
    RoundRobinBalancer,
    SimulatedQPU,
    SimulationConfig,
    StealHalfRebalancePolicy,
    ThresholdRebalancePolicy,
    make_balancer,
    make_rebalancer,
    partition_fleet,
)
from helpers.determinism import (
    SERIES,
    assert_series_identical,
    fake_estimate,
    make_job,
    make_shards,
)
from repro.experiments.common import trained_estimator
from repro.scheduler import (
    BatchedFCFSPolicy,
    FCFSPolicy,
    QonductorScheduler,
    SchedulingTrigger,
)


class TestPartition:
    def test_interleaved_deal(self):
        fleet = fleet_of_size(8, seed=7)
        groups = partition_fleet(fleet, 3)
        assert [len(g) for g in groups] == [3, 3, 2]
        assert [q.name for q in groups[0]] == ["qpu00", "qpu03", "qpu06"]
        flat = {q.name for g in groups for q in g}
        assert flat == {q.name for q in fleet}

    def test_rejects_bad_counts(self):
        fleet = fleet_of_size(4, seed=7)
        with pytest.raises(ValueError):
            partition_fleet(fleet, 0)
        with pytest.raises(ValueError):
            partition_fleet(fleet, 5)

    def test_make_balancer(self):
        assert isinstance(make_balancer("round_robin"), RoundRobinBalancer)
        rr = RoundRobinBalancer()
        assert make_balancer(rr) is rr
        with pytest.raises(KeyError):
            make_balancer("bogus")


class TestBalancers:
    def test_round_robin_deterministic_cycle(self):
        shards = make_shards([["auckland"], ["hanoi"], ["cairo"]])
        routed = [
            RoundRobinBalancer(), RoundRobinBalancer()
        ]
        seqs = []
        for balancer in routed:
            seqs.append(
                [balancer.route(make_job(5), shards, 0.0).shard_id
                 for _ in range(7)]
            )
        assert seqs[0] == seqs[1] == [0, 1, 2, 0, 1, 2, 0]

    def test_round_robin_skips_infeasible(self):
        # lagos/nairobi are 7q; auckland is 27q -> wide jobs all on shard 0.
        shards = make_shards([["auckland"], ["lagos"], ["nairobi"]])
        balancer = RoundRobinBalancer()
        picks = [balancer.route(make_job(16), shards, 0.0).shard_id
                 for _ in range(4)]
        assert picks == [0, 0, 0, 0]

    def test_least_loaded_monotonic_spread(self):
        """Routing identical jobs into pending queues visits every shard
        before revisiting any (load grows monotonically with each route)."""
        scheduler = QonductorScheduler(fake_estimate, seed=0)
        shards = make_shards(
            [["auckland"], ["hanoi"], ["cairo"], ["kolkata"]],
            policy=scheduler,
        )
        balancer = LeastLoadedBalancer()
        picks = []
        for _ in range(8):
            shard = balancer.route(make_job(5), shards, 0.0)
            shard.pending.append(make_job(5))  # what the simulator does
            picks.append(shard.shard_id)
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_least_loaded_sees_device_backlog(self):
        shards = make_shards([["auckland"], ["hanoi"]])
        shards[0].backends[0].free_at = 500.0  # deep backlog on shard 0
        assert LeastLoadedBalancer().route(make_job(5), shards, 0.0).shard_id == 1

    def test_qubit_fit_never_routes_to_too_narrow_shard(self):
        shards = make_shards([["lagos"], ["guadalupe"], ["auckland"]])  # 7/16/27
        balancer = QubitFitBalancer()
        rng = np.random.default_rng(0)
        for width in rng.integers(2, 28, size=40):
            shard = balancer.route(make_job(int(width)), shards, 0.0)
            assert shard.max_qubits >= width

    def test_qubit_fit_prefers_tightest(self):
        shards = make_shards([["lagos"], ["guadalupe"], ["auckland"]])  # 7/16/27
        balancer = QubitFitBalancer()
        assert balancer.route(make_job(5), shards, 0.0).shard_id == 0
        assert balancer.route(make_job(10), shards, 0.0).shard_id == 1
        assert balancer.route(make_job(20), shards, 0.0).shard_id == 2


class TestShardedEquivalence:
    NAMES = ("auckland", "algiers", "lagos")

    def _apps(self, seed=4, duration=900.0):
        gen = LoadGenerator(mean_rate_per_hour=600, max_qubits=27, seed=seed)
        return gen.generate(duration)

    def _run(self, policy, *, sharded: bool, duration=900.0, recal=None):
        fleet = default_fleet(seed=7, names=self.NAMES)
        config = SimulationConfig(
            duration_seconds=duration, seed=5, recalibrate_every_seconds=recal
        )
        if sharded:
            sim = CloudSimulator.sharded(
                fleet,
                policy,
                num_shards=1,
                execution_model=ExecutionModel(seed=5),
                trigger_factory=lambda i: SchedulingTrigger(
                    queue_limit=20, interval_seconds=60
                ),
                config=config,
            )
        else:
            sim = CloudSimulator(
                fleet,
                policy,
                ExecutionModel(seed=5),
                trigger=SchedulingTrigger(queue_limit=20, interval_seconds=60),
                config=config,
            )
        return sim.run(self._apps(duration=duration))

    def test_one_shard_fcfs_bit_identical(self):
        a = self._run(FCFSPolicy(fake_estimate), sharded=False)
        b = self._run(FCFSPolicy(fake_estimate), sharded=True)
        for attr in SERIES:
            at, av = getattr(a, attr).as_arrays()
            bt, bv = getattr(b, attr).as_arrays()
            assert np.array_equal(at, bt) and np.array_equal(av, bv)
        assert a.completed_jobs == b.completed_jobs
        assert a.dispatched_jobs == b.dispatched_jobs
        assert a.events_processed == b.events_processed
        assert a.scheduling_cycles == b.scheduling_cycles
        assert a.per_qpu_busy_seconds == b.per_qpu_busy_seconds
        assert a.per_qpu_jobs == b.per_qpu_jobs

    def test_one_shard_qonductor_equivalent(self):
        estimator = trained_estimator(
            seed=7, names=tuple(self.NAMES), num_records=150
        )

        def make():
            return QonductorScheduler(
                estimator.cached(), seed=5, max_generations=8
            )

        a = self._run(make(), sharded=False, recal=400.0)
        b = self._run(make(), sharded=True, recal=400.0)
        for attr in SERIES:
            at, av = getattr(a, attr).as_arrays()
            bt, bv = getattr(b, attr).as_arrays()
            assert np.array_equal(at, bt)
            assert np.allclose(av, bv, rtol=0.0, atol=1e-12)
        assert a.completed_jobs == b.completed_jobs
        assert a.scheduling_cycles == b.scheduling_cycles
        for name, busy in a.per_qpu_busy_seconds.items():
            assert b.per_qpu_busy_seconds[name] == pytest.approx(
                busy, abs=1e-9
            )

    def test_multi_shard_completes_and_breaks_down(self):
        apps = self._apps()
        fleet = default_fleet(
            seed=7, names=["auckland", "algiers", "cairo", "hanoi"]
        )
        sim = CloudSimulator.sharded(
            fleet,
            FCFSPolicy(fake_estimate),
            num_shards=2,
            balancer="least_loaded",
            execution_model=ExecutionModel(seed=5),
            config=SimulationConfig(duration_seconds=900.0, seed=5),
        )
        m = sim.run(apps)
        assert m.num_shards == 2
        assert m.dispatched_jobs == len(apps)
        assert m.completed_jobs <= m.dispatched_jobs
        assert sum(m.per_shard_jobs.values()) == len(apps)
        assert all(v > 0 for v in m.per_shard_jobs.values())
        assert set(m.shard_queue_size) == {0, 1}
        summary = m.summary()
        assert summary["num_shards"] == 2
        assert summary["per_shard_jobs"] == m.per_shard_jobs

    def test_multi_shard_qonductor_per_shard_cycles(self):
        """Each shard runs its own trigger/scheduler; both shards cycle."""
        apps = self._apps()
        fleet = default_fleet(
            seed=7, names=["auckland", "algiers", "cairo", "hanoi"]
        )
        estimator = trained_estimator(
            seed=7, names=tuple(self.NAMES), num_records=150
        )
        cached = estimator.cached()
        sim = CloudSimulator.sharded(
            fleet,
            QonductorScheduler(cached, seed=5, max_generations=5),
            num_shards=2,
            balancer="round_robin",
            execution_model=ExecutionModel(seed=5),
            trigger_factory=lambda i: SchedulingTrigger(
                queue_limit=10, interval_seconds=60
            ),
            config=SimulationConfig(
                duration_seconds=900.0, seed=5, recalibrate_every_seconds=450.0
            ),
        )
        m = sim.run(apps)
        assert m.dispatched_jobs + m.unschedulable_jobs == len(apps)
        assert m.scheduling_cycles >= 2
        # Shared cache across shards: merged counters are reported once.
        assert m.estimate_cache["hits"] + m.estimate_cache["misses"] > 0
        assert cached.stats.invalidations == 1  # one fleet-wide recal


class TestRebalancePolicies:
    """Unit tests over the work-stealing strategies (no simulator)."""

    def _batched_shards(self, widths_per_shard):
        return make_shards(
            widths_per_shard, policy=BatchedFCFSPolicy(fake_estimate)
        )

    def test_make_rebalancer(self):
        assert isinstance(
            make_rebalancer("threshold"), ThresholdRebalancePolicy
        )
        assert isinstance(
            make_rebalancer("steal_half"), StealHalfRebalancePolicy
        )
        policy = ThresholdRebalancePolicy(min_gap=8)
        assert make_rebalancer(policy) is policy
        with pytest.raises(KeyError):
            make_rebalancer("bogus")
        with pytest.raises(ValueError):
            ThresholdRebalancePolicy(min_gap=1)
        with pytest.raises(ValueError):
            StealHalfRebalancePolicy(interval_seconds=0.0)

    def test_threshold_drains_gap(self):
        shards = self._batched_shards([["auckland"], ["hanoi"]])
        jobs = [make_job(5) for _ in range(10)]
        shards[0].pending = list(jobs)
        moves = ThresholdRebalancePolicy(min_gap=4).rebalance(shards, 0.0)
        # 10/0 -> ... -> 6/4: the gap drains until it drops below 4.
        assert len(moves) == 4
        assert shards[0].pending == jobs[:6]
        # Migrated newest-first, but delivered in arrival order so the
        # receiving FCFS batch serves them as they arrived.
        assert shards[1].pending == jobs[6:]
        assert shards[0].jobs_stolen_out == 4
        assert shards[1].jobs_stolen_in == 4
        assert all(m.src is shards[0] and m.dst is shards[1] for m in moves)

    def test_threshold_respects_feasibility(self):
        # lagos/nairobi are 7q: 16q pending jobs must not migrate there.
        shards = self._batched_shards([["auckland"], ["lagos"]])
        shards[0].pending = [make_job(16) for _ in range(10)]
        assert ThresholdRebalancePolicy(min_gap=2).rebalance(shards, 0.0) == []
        # Mixed queue: only the narrow jobs move.
        shards[0].pending = [make_job(16), make_job(5), make_job(16), make_job(5), make_job(16)]
        moves = ThresholdRebalancePolicy(min_gap=2).rebalance(shards, 0.0)
        assert all(m.job.num_qubits == 5 for m in moves)
        assert all(j.num_qubits == 16 for j in shards[0].pending)

    def test_threshold_stuck_deepest_does_not_stall_fleet(self):
        """A deepest queue whose jobs fit nowhere else (e.g. a stranded
        wide backlog) must not block draining the other shards' gaps."""
        shards = self._batched_shards(
            [["auckland"], ["guadalupe"], ["lagos"]]  # 27q / 16q / 7q
        )
        shards[0].pending = [make_job(20) for _ in range(12)]  # fits only 27q
        narrow = [make_job(5) for _ in range(8)]
        shards[1].pending = list(narrow)
        moves = ThresholdRebalancePolicy(min_gap=4).rebalance(shards, 0.0)
        assert moves, "the feasible 16q->7q gap must still drain"
        assert all(m.src is shards[1] and m.dst is shards[2] for m in moves)
        assert len(shards[0].pending) == 12  # stuck backlog untouched
        # 8/0 drains one job at a time until the gap drops below 4.
        assert len(shards[1].pending) == 5 and len(shards[2].pending) == 3

    def test_threshold_never_ping_pongs_within_a_cycle(self):
        """A receiver that becomes the deepest queue must not bounce a
        just-migrated job back: each job moves at most once per cycle."""
        shards = self._batched_shards(
            [["auckland"], ["hanoi"], ["guadalupe"]]  # 27q / 27q / 16q
        )
        # Four narrow jobs (fit anywhere) then four wide ones (27q only).
        jobs = [make_job(10) for _ in range(4)] + [make_job(20) for _ in range(4)]
        shards[0].pending = list(jobs)
        moves = ThresholdRebalancePolicy(min_gap=2).rebalance(shards, 0.0)
        assert all(m.src is shards[0] for m in moves)
        moved_ids = [m.job.job_id for m in moves]
        assert len(moved_ids) == len(set(moved_ids)) == 6
        assert shards[0].jobs_stolen_in == 0
        assert [len(s.pending) for s in shards] == [2, 4, 2]
        # The wide backlog parked on shard 1 stays put; the migrated
        # tails are in arrival order on both receivers.
        assert shards[1].pending == jobs[4:]
        assert shards[2].pending == [jobs[2], jobs[3]]

    def test_threshold_skips_offline_destination(self):
        shards = self._batched_shards([["auckland"], ["hanoi"]])
        shards[0].pending = [make_job(5) for _ in range(10)]
        shards[1].backends[0].qpu.online = False
        assert ThresholdRebalancePolicy(min_gap=2).rebalance(shards, 0.0) == []

    def test_steal_half_takes_newest_in_arrival_order(self):
        shards = self._batched_shards([["auckland"], ["hanoi"]])
        victim_jobs = [make_job(5) for _ in range(9)]
        shards[0].pending = list(victim_jobs)
        moves = StealHalfRebalancePolicy(min_victim_depth=4).rebalance(
            shards, 0.0
        )
        assert len(moves) == 4  # half of 9, rounded down
        # The thief got the newest four, still in arrival order.
        assert shards[1].pending == victim_jobs[5:]
        assert shards[0].pending == victim_jobs[:5]

    def test_steal_half_never_resteals_within_a_cycle(self):
        """A shard that received steals this cycle is not a victim for a
        later thief — each job moves at most once per tick, and every
        move drains the genuinely overloaded shard."""
        shards = self._batched_shards([["auckland"], ["hanoi"], ["cairo"]])
        shards[2].pending = [make_job(5) for _ in range(10)]
        moves = StealHalfRebalancePolicy(min_victim_depth=4).rebalance(
            shards, 0.0
        )
        assert all(m.src is shards[2] for m in moves)
        assert shards[0].jobs_stolen_out == 0
        assert shards[1].jobs_stolen_out == 0
        assert shards[2].jobs_stolen_out == len(moves) == 7
        assert [len(s.pending) for s in shards] == [5, 2, 3]

    def test_steal_half_skips_infeasible_deepest_victim(self):
        """A narrow idle thief must not lock onto a deeper all-wide
        queue and steal nothing while a feasible backlog waits."""
        shards = self._batched_shards(
            [["lagos"], ["auckland"], ["hanoi"]]  # 7q / 27q / 27q
        )
        shards[1].pending = [make_job(20) for _ in range(10)]  # infeasible
        shards[2].pending = [make_job(5) for _ in range(8)]  # feasible
        moves = StealHalfRebalancePolicy(min_victim_depth=4).rebalance(
            shards, 0.0
        )
        assert moves and all(m.src is shards[2] for m in moves)
        assert len(shards[0].pending) == 4
        assert len(shards[1].pending) == 10

    def test_steal_half_ignores_busy_thieves_and_shallow_victims(self):
        shards = self._batched_shards([["auckland"], ["hanoi"]])
        shards[0].pending = [make_job(5) for _ in range(3)]
        policy = StealHalfRebalancePolicy(min_victim_depth=4)
        assert policy.rebalance(shards, 0.0) == []
        shards[1].pending = [make_job(5)]  # thief not idle
        shards[0].pending = [make_job(5) for _ in range(8)]
        assert policy.rebalance(shards, 0.0) == []

    def test_threshold_batched_drain_matches_reference(self):
        """The resumable-scan drain must make *identical* migration
        decisions to the restart-scan reference algorithm it replaced —
        on the deep-backlog skew shape and on fuzzed width mixes."""

        def reference_rebalance(policy, shards):
            """The pre-batching O(moves x queue) drain, verbatim."""
            moves = []
            received = {}
            moved_ids = set()
            width = {s.shard_id: s.max_qubits for s in shards}
            while True:
                moved = False
                for src in sorted(
                    shards, key=lambda s: (-len(s.pending), s.shard_id)
                ):
                    eligible = [
                        s
                        for s in shards
                        if s is not src
                        and s.is_batched
                        and len(src.pending) - len(s.pending)
                        >= policy.min_gap
                    ]
                    if not eligible:
                        continue
                    for i in range(len(src.pending) - 1, -1, -1):
                        job = src.pending[i]
                        if job.job_id in moved_ids:
                            continue
                        dsts = [
                            s
                            for s in eligible
                            if job.num_qubits <= width[s.shard_id]
                        ]
                        if not dsts:
                            continue
                        dst = min(
                            dsts, key=lambda s: (len(s.pending), s.shard_id)
                        )
                        moved_ids.add(job.job_id)
                        moves.append(policy._move(src, i, dst))
                        received[dst] = received.get(dst, 0) + 1
                        moved = True
                        break
                    if moved:
                        break
                if not moved:
                    break
            for dst, count in received.items():
                tail = dst.pending[-count:]
                tail.sort(key=lambda j: (j.arrival_time, j.job_id))
                dst.pending[-count:] = tail
            return moves

        def scenario_queues(seed, sizes, widths):
            rng = np.random.default_rng(seed)
            queues = []
            t = 0.0
            for size in sizes:
                queue = []
                for _ in range(size):
                    job = make_job(int(rng.choice(widths)))
                    t += 1.0
                    job.arrival_time = t
                    queue.append(job)
                queues.append(queue)
            return queues

        # The skew-stress shape (8-16q stream piled on the 16q shard
        # while 27q and 7q shards idle), then fuzzed variants.
        cases = [
            (["guadalupe"], ["auckland"], ["lagos"], [0, 60, 0], (8, 16)),
        ]
        rng = np.random.default_rng(9)
        for _ in range(12):
            sizes = [int(n) for n in rng.integers(0, 40, size=3)]
            cases.append(
                (["guadalupe"], ["auckland"], ["lagos"], sizes, (2, 27))
            )
        for g1, g2, g3, sizes, width_range in cases:
            for min_gap in (2, 4, 8):
                queues = scenario_queues(
                    7, sizes, list(range(width_range[0], width_range[1] + 1))
                )
                ref_shards = self._batched_shards([g1, g2, g3])
                new_shards = self._batched_shards([g1, g2, g3])
                for shard, queue in zip(ref_shards, queues):
                    shard.pending = list(queue)
                for shard, queue in zip(new_shards, queues):
                    shard.pending = list(queue)
                policy = ThresholdRebalancePolicy(min_gap=min_gap)
                ref_moves = reference_rebalance(policy, ref_shards)
                new_moves = policy.rebalance(new_shards, 0.0)
                assert [
                    (m.job.job_id, m.src.shard_id, m.dst.shard_id)
                    for m in new_moves
                ] == [
                    (m.job.job_id, m.src.shard_id, m.dst.shard_id)
                    for m in ref_moves
                ]
                for ref, new in zip(ref_shards, new_shards):
                    assert [j.job_id for j in ref.pending] == [
                        j.job_id for j in new.pending
                    ]

    def test_single_shard_noop(self):
        shards = self._batched_shards([["auckland"]])
        shards[0].pending = [make_job(5) for _ in range(10)]
        for policy in (
            ThresholdRebalancePolicy(),
            StealHalfRebalancePolicy(),
        ):
            assert policy.rebalance(shards, 0.0) == []
        assert len(shards[0].pending) == 10


class TestRebalancingRuns:
    """Simulator-level work stealing: determinism, identity, effect."""

    NAMES = ("auckland", "hanoi", "guadalupe", "lagos")  # 27/27/16/7

    def _skewed_shards(self):
        """Shard 0 = {guadalupe 16q, lagos 7q}, shard 1 = {auckland,
        hanoi, both 27q}: an 8-16q stream qubit-fits entirely onto shard
        0 while the wide shard idles — the work-stealing stress shape."""
        by_name = {q.name: q for q in default_fleet(seed=7, names=self.NAMES)}
        policy = BatchedFCFSPolicy(fake_estimate)
        groups = [["guadalupe", "lagos"], ["auckland", "hanoi"]]
        return [
            FleetShard(
                i,
                [SimulatedQPU(by_name[n]) for n in names],
                policy.spawn(i),
                SchedulingTrigger(queue_limit=10_000, interval_seconds=120),
            )
            for i, names in enumerate(groups)
        ]

    def _run(self, *, rebalance=None, availability=None, duration=1200.0):
        gen = LoadGenerator(
            mean_rate_per_hour=900,
            mean_qubits=12,
            std_qubits=2,
            min_qubits=8,
            max_qubits=16,
            seed=4,
        )
        sim = CloudSimulator(
            execution_model=ExecutionModel(seed=5),
            config=SimulationConfig(duration_seconds=duration, seed=5),
            shards=self._skewed_shards(),
            balancer="qubit_fit",
            rebalance=rebalance,
            availability=availability,
        )
        return sim.run(gen.generate(duration))

    def test_rebalanced_runs_deterministic(self):
        a = self._run(rebalance="threshold")
        b = self._run(rebalance="threshold")
        assert_series_identical(a, b)
        assert a.jobs_migrated == b.jobs_migrated
        assert a.per_shard_steals == b.per_shard_steals

    def test_disabled_rebalancing_identical_to_none(self):
        """A rebalancer that never fires (interval past the horizon) is
        bit-identical to rebalance=None — the off switch adds nothing."""
        a = self._run(rebalance=None)
        b = self._run(
            rebalance=ThresholdRebalancePolicy(interval_seconds=1e9)
        )
        assert_series_identical(a, b)
        assert b.rebalance_cycles == 0 and b.jobs_migrated == 0

    def test_one_shard_run_ignores_rebalancer(self):
        """Single-shard fleets never rebalance, whatever is configured."""
        gen = LoadGenerator(mean_rate_per_hour=600, max_qubits=27, seed=4)

        def run(rebalance):
            sim = CloudSimulator.sharded(
                fleet_of_size(2, seed=7),
                BatchedFCFSPolicy(fake_estimate),
                num_shards=1,
                execution_model=ExecutionModel(seed=5),
                config=SimulationConfig(duration_seconds=900.0, seed=5),
                rebalance=rebalance,
            )
            return sim.run(gen.generate(900.0))

        a = run(None)
        b = run(ThresholdRebalancePolicy(interval_seconds=30.0))
        assert_series_identical(a, b)
        assert b.rebalance_cycles == 0

    def test_work_stealing_spreads_skewed_load(self):
        """Qubit-fit routing under a 8-16q stream starves the wide shard;
        stealing puts it to work and cuts the busy-seconds imbalance."""
        static = self._run()
        steal = self._run(
            rebalance=ThresholdRebalancePolicy(
                min_gap=2, interval_seconds=30.0
            )
        )
        assert steal.jobs_migrated > 0
        assert steal.rebalance_cycles > 0
        total_in = sum(v["in"] for v in steal.per_shard_steals.values())
        total_out = sum(v["out"] for v in steal.per_shard_steals.values())
        assert total_in == total_out == steal.jobs_migrated
        assert (
            steal.dispatched_jobs + steal.unschedulable_jobs
            == static.dispatched_jobs + static.unschedulable_jobs
        )
        assert (
            steal.summary()["load_cv"] < static.summary()["load_cv"]
        )

    def test_proactive_stealing_on_outage(self):
        """``react_to_outages=True`` runs one extra rebalance pass the
        instant a QPU drops offline, instead of waiting out the periodic
        interval; the default stays strictly periodic."""
        from repro.cloud import flash_outage

        def run(react):
            return self._run(
                rebalance=ThresholdRebalancePolicy(
                    min_gap=2,
                    interval_seconds=1e9,  # periodic chain never fires
                    react_to_outages=react,
                ),
                availability=flash_outage(
                    ["guadalupe"], start=300.0, duration_seconds=400.0
                ),
            )

        passive = run(False)
        assert passive.rebalance_cycles == 0

        proactive = run(True)
        # Exactly the outage instant fired a pass (recovery does not).
        assert proactive.rebalance_cycles == 1
        assert proactive.jobs_migrated > 0
        # Deterministic: the reaction is an event, not wall-clock.
        again = run(True)
        assert_series_identical(proactive, again)
        assert proactive.jobs_migrated == again.jobs_migrated

    def test_outage_recovery_event_ordering_with_stealing(self):
        """A flash outage on the mid shard's QPU mid-run: counters fold
        in order and stolen jobs land on still-online devices."""
        from repro.cloud import flash_outage

        availability = flash_outage(
            ["guadalupe"], start=300.0, duration_seconds=400.0
        )
        m = self._run(
            rebalance=ThresholdRebalancePolicy(
                min_gap=2, interval_seconds=30.0
            ),
            availability=availability,
        )
        assert m.outage_events == 1 and m.recovery_events == 1
        assert m.qpu_downtime_seconds["guadalupe"] == pytest.approx(400.0)
        assert m.jobs_migrated > 0
        # Work kept flowing to the wide shard while guadalupe was dark.
        assert m.per_qpu_jobs["auckland"] + m.per_qpu_jobs["hanoi"] > 0


class TestStreaming:
    def test_iter_arrivals_matches_generate(self):
        gen_a = LoadGenerator(mean_rate_per_hour=900, seed=11)
        gen_b = LoadGenerator(mean_rate_per_hour=900, seed=11)
        eager = gen_a.generate(1200.0)
        lazy = list(gen_b.iter_arrivals(1200.0))
        assert len(eager) == len(lazy)
        for x, y in zip(eager, lazy):
            assert x.arrival_time == y.arrival_time
            assert x.quantum_job.metrics.fingerprint == (
                y.quantum_job.metrics.fingerprint
            )
            assert x.quantum_job.shots == y.quantum_job.shots
            assert x.quantum_job.mitigation == y.quantum_job.mitigation

    def test_run_from_iterator_matches_list(self):
        def run(stream: bool):
            gen = LoadGenerator(mean_rate_per_hour=600, seed=4)
            fleet = default_fleet(seed=7, names=["auckland", "lagos"])
            sim = CloudSimulator(
                fleet,
                FCFSPolicy(fake_estimate),
                ExecutionModel(seed=5),
                config=SimulationConfig(duration_seconds=900.0, seed=5),
            )
            apps = gen.iter_arrivals(900.0) if stream else gen.generate(900.0)
            return sim.run(apps)

        a, b = run(False), run(True)
        for attr in SERIES:
            at, av = getattr(a, attr).as_arrays()
            bt, bv = getattr(b, attr).as_arrays()
            assert np.array_equal(at, bt) and np.array_equal(av, bv)
        assert a.completed_jobs == b.completed_jobs
        assert a.per_qpu_busy_seconds == b.per_qpu_busy_seconds

    def test_streaming_keeps_inflight_bounded(self):
        gen = LoadGenerator(mean_rate_per_hour=2000, seed=4)
        fleet = default_fleet(seed=7, names=["auckland", "algiers"])
        sim = CloudSimulator(
            fleet,
            FCFSPolicy(fake_estimate),
            ExecutionModel(seed=5),
            config=SimulationConfig(duration_seconds=1800.0, seed=5),
        )
        m = sim.run(gen.iter_arrivals(1800.0))
        # FCFS dispatches on arrival: at most the one arriving app is in
        # flight, regardless of how many the stream carries.
        assert m.dispatched_jobs + m.unschedulable_jobs > 100
        assert m.peak_inflight_apps == 1

    def test_circuit_pool_bounds_distinct_shapes(self):
        gen = LoadGenerator(
            mean_rate_per_hour=2000,
            seed=4,
            circuit_pool_size=16,
            shots_grid=(1024, 4096),
        )
        apps = gen.generate(1800.0)
        shapes = {
            (a.quantum_job.metrics.fingerprint, a.quantum_job.shots)
            for a in apps
        }
        assert len(apps) > 100
        assert len(shapes) <= 16
        # Fresh job identities despite shared structure.
        ids = {a.quantum_job.job_id for a in apps}
        assert len(ids) == len(apps)
