"""Fleet-layer tests: shard/balancer routing, sharded-vs-unsharded
equivalence, and the streaming arrival pipeline.

The load-bearing guarantees: a 1-shard sharded simulator reproduces the
unsharded simulator bit-identically (FCFS) / to 1e-12 (Qonductor), and a
run fed by the lazy arrival iterator matches a run fed the eager list
while holding only in-flight applications in memory.
"""

import numpy as np
import pytest

from repro.backends import default_fleet
from repro.backends.fleet import fleet_of_size
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    FleetShard,
    LeastLoadedBalancer,
    LoadGenerator,
    QuantumJob,
    QubitFitBalancer,
    RoundRobinBalancer,
    SimulatedQPU,
    SimulationConfig,
    make_balancer,
    partition_fleet,
)
from repro.experiments.common import trained_estimator
from repro.scheduler import FCFSPolicy, QonductorScheduler, SchedulingTrigger
from repro.workloads import ghz_linear

SERIES = (
    "mean_fidelity",
    "mean_completion_time",
    "mean_utilization",
    "scheduler_queue_size",
)


def _fake_estimate(job, qpu):
    return 0.5 + 0.4 / (1 + job.num_qubits + len(qpu.name)), 12.0


def _job(width: int) -> QuantumJob:
    return QuantumJob.from_circuit(ghz_linear(width), keep_circuit=False)


def _shards(widths_per_shard, policy=None):
    """Shards over slices of the default fleet, one per width bucket."""
    shards = []
    for i, names in enumerate(widths_per_shard):
        backends = [
            SimulatedQPU(q) for q in default_fleet(seed=7, names=list(names))
        ]
        shards.append(
            FleetShard(i, backends, policy or FCFSPolicy(_fake_estimate))
        )
    return shards


class TestPartition:
    def test_interleaved_deal(self):
        fleet = fleet_of_size(8, seed=7)
        groups = partition_fleet(fleet, 3)
        assert [len(g) for g in groups] == [3, 3, 2]
        assert [q.name for q in groups[0]] == ["qpu00", "qpu03", "qpu06"]
        flat = {q.name for g in groups for q in g}
        assert flat == {q.name for q in fleet}

    def test_rejects_bad_counts(self):
        fleet = fleet_of_size(4, seed=7)
        with pytest.raises(ValueError):
            partition_fleet(fleet, 0)
        with pytest.raises(ValueError):
            partition_fleet(fleet, 5)

    def test_make_balancer(self):
        assert isinstance(make_balancer("round_robin"), RoundRobinBalancer)
        rr = RoundRobinBalancer()
        assert make_balancer(rr) is rr
        with pytest.raises(KeyError):
            make_balancer("bogus")


class TestBalancers:
    def test_round_robin_deterministic_cycle(self):
        shards = _shards([["auckland"], ["hanoi"], ["cairo"]])
        routed = [
            RoundRobinBalancer(), RoundRobinBalancer()
        ]
        seqs = []
        for balancer in routed:
            seqs.append(
                [balancer.route(_job(5), shards, 0.0).shard_id
                 for _ in range(7)]
            )
        assert seqs[0] == seqs[1] == [0, 1, 2, 0, 1, 2, 0]

    def test_round_robin_skips_infeasible(self):
        # lagos/nairobi are 7q; auckland is 27q -> wide jobs all on shard 0.
        shards = _shards([["auckland"], ["lagos"], ["nairobi"]])
        balancer = RoundRobinBalancer()
        picks = [balancer.route(_job(16), shards, 0.0).shard_id
                 for _ in range(4)]
        assert picks == [0, 0, 0, 0]

    def test_least_loaded_monotonic_spread(self):
        """Routing identical jobs into pending queues visits every shard
        before revisiting any (load grows monotonically with each route)."""
        scheduler = QonductorScheduler(_fake_estimate, seed=0)
        shards = _shards(
            [["auckland"], ["hanoi"], ["cairo"], ["kolkata"]],
            policy=scheduler,
        )
        balancer = LeastLoadedBalancer()
        picks = []
        for _ in range(8):
            shard = balancer.route(_job(5), shards, 0.0)
            shard.pending.append(_job(5))  # what the simulator does
            picks.append(shard.shard_id)
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_least_loaded_sees_device_backlog(self):
        shards = _shards([["auckland"], ["hanoi"]])
        shards[0].backends[0].free_at = 500.0  # deep backlog on shard 0
        assert LeastLoadedBalancer().route(_job(5), shards, 0.0).shard_id == 1

    def test_qubit_fit_never_routes_to_too_narrow_shard(self):
        shards = _shards([["lagos"], ["guadalupe"], ["auckland"]])  # 7/16/27
        balancer = QubitFitBalancer()
        rng = np.random.default_rng(0)
        for width in rng.integers(2, 28, size=40):
            shard = balancer.route(_job(int(width)), shards, 0.0)
            assert shard.max_qubits >= width

    def test_qubit_fit_prefers_tightest(self):
        shards = _shards([["lagos"], ["guadalupe"], ["auckland"]])  # 7/16/27
        balancer = QubitFitBalancer()
        assert balancer.route(_job(5), shards, 0.0).shard_id == 0
        assert balancer.route(_job(10), shards, 0.0).shard_id == 1
        assert balancer.route(_job(20), shards, 0.0).shard_id == 2


class TestShardedEquivalence:
    NAMES = ["auckland", "algiers", "lagos"]

    def _apps(self, seed=4, duration=900.0):
        gen = LoadGenerator(mean_rate_per_hour=600, max_qubits=27, seed=seed)
        return gen.generate(duration)

    def _run(self, policy, *, sharded: bool, duration=900.0, recal=None):
        fleet = default_fleet(seed=7, names=self.NAMES)
        config = SimulationConfig(
            duration_seconds=duration, seed=5, recalibrate_every_seconds=recal
        )
        if sharded:
            sim = CloudSimulator.sharded(
                fleet,
                policy,
                num_shards=1,
                execution_model=ExecutionModel(seed=5),
                trigger_factory=lambda i: SchedulingTrigger(
                    queue_limit=20, interval_seconds=60
                ),
                config=config,
            )
        else:
            sim = CloudSimulator(
                fleet,
                policy,
                ExecutionModel(seed=5),
                trigger=SchedulingTrigger(queue_limit=20, interval_seconds=60),
                config=config,
            )
        return sim.run(self._apps(duration=duration))

    def test_one_shard_fcfs_bit_identical(self):
        a = self._run(FCFSPolicy(_fake_estimate), sharded=False)
        b = self._run(FCFSPolicy(_fake_estimate), sharded=True)
        for attr in SERIES:
            at, av = getattr(a, attr).as_arrays()
            bt, bv = getattr(b, attr).as_arrays()
            assert np.array_equal(at, bt) and np.array_equal(av, bv)
        assert a.completed_jobs == b.completed_jobs
        assert a.events_processed == b.events_processed
        assert a.scheduling_cycles == b.scheduling_cycles
        assert a.per_qpu_busy_seconds == b.per_qpu_busy_seconds
        assert a.per_qpu_jobs == b.per_qpu_jobs

    def test_one_shard_qonductor_equivalent(self):
        estimator = trained_estimator(
            seed=7, names=tuple(self.NAMES), num_records=150
        )

        def make():
            return QonductorScheduler(
                estimator.cached(), seed=5, max_generations=8
            )

        a = self._run(make(), sharded=False, recal=400.0)
        b = self._run(make(), sharded=True, recal=400.0)
        for attr in SERIES:
            at, av = getattr(a, attr).as_arrays()
            bt, bv = getattr(b, attr).as_arrays()
            assert np.array_equal(at, bt)
            assert np.allclose(av, bv, rtol=0.0, atol=1e-12)
        assert a.completed_jobs == b.completed_jobs
        assert a.scheduling_cycles == b.scheduling_cycles
        for name, busy in a.per_qpu_busy_seconds.items():
            assert b.per_qpu_busy_seconds[name] == pytest.approx(
                busy, abs=1e-9
            )

    def test_multi_shard_completes_and_breaks_down(self):
        apps = self._apps()
        fleet = default_fleet(
            seed=7, names=["auckland", "algiers", "cairo", "hanoi"]
        )
        sim = CloudSimulator.sharded(
            fleet,
            FCFSPolicy(_fake_estimate),
            num_shards=2,
            balancer="least_loaded",
            execution_model=ExecutionModel(seed=5),
            config=SimulationConfig(duration_seconds=900.0, seed=5),
        )
        m = sim.run(apps)
        assert m.num_shards == 2
        assert m.completed_jobs == len(apps)
        assert sum(m.per_shard_jobs.values()) == len(apps)
        assert all(v > 0 for v in m.per_shard_jobs.values())
        assert set(m.shard_queue_size) == {0, 1}
        summary = m.summary()
        assert summary["num_shards"] == 2
        assert summary["per_shard_jobs"] == m.per_shard_jobs

    def test_multi_shard_qonductor_per_shard_cycles(self):
        """Each shard runs its own trigger/scheduler; both shards cycle."""
        apps = self._apps()
        fleet = default_fleet(
            seed=7, names=["auckland", "algiers", "cairo", "hanoi"]
        )
        estimator = trained_estimator(
            seed=7, names=tuple(self.NAMES), num_records=150
        )
        cached = estimator.cached()
        sim = CloudSimulator.sharded(
            fleet,
            QonductorScheduler(cached, seed=5, max_generations=5),
            num_shards=2,
            balancer="round_robin",
            execution_model=ExecutionModel(seed=5),
            trigger_factory=lambda i: SchedulingTrigger(
                queue_limit=10, interval_seconds=60
            ),
            config=SimulationConfig(
                duration_seconds=900.0, seed=5, recalibrate_every_seconds=450.0
            ),
        )
        m = sim.run(apps)
        assert m.completed_jobs + m.unschedulable_jobs == len(apps)
        assert m.scheduling_cycles >= 2
        # Shared cache across shards: merged counters are reported once.
        assert m.estimate_cache["hits"] + m.estimate_cache["misses"] > 0
        assert cached.stats.invalidations == 1  # one fleet-wide recal


class TestStreaming:
    def test_iter_arrivals_matches_generate(self):
        gen_a = LoadGenerator(mean_rate_per_hour=900, seed=11)
        gen_b = LoadGenerator(mean_rate_per_hour=900, seed=11)
        eager = gen_a.generate(1200.0)
        lazy = list(gen_b.iter_arrivals(1200.0))
        assert len(eager) == len(lazy)
        for x, y in zip(eager, lazy):
            assert x.arrival_time == y.arrival_time
            assert x.quantum_job.metrics.fingerprint == (
                y.quantum_job.metrics.fingerprint
            )
            assert x.quantum_job.shots == y.quantum_job.shots
            assert x.quantum_job.mitigation == y.quantum_job.mitigation

    def test_run_from_iterator_matches_list(self):
        def run(stream: bool):
            gen = LoadGenerator(mean_rate_per_hour=600, seed=4)
            fleet = default_fleet(seed=7, names=["auckland", "lagos"])
            sim = CloudSimulator(
                fleet,
                FCFSPolicy(_fake_estimate),
                ExecutionModel(seed=5),
                config=SimulationConfig(duration_seconds=900.0, seed=5),
            )
            apps = gen.iter_arrivals(900.0) if stream else gen.generate(900.0)
            return sim.run(apps)

        a, b = run(False), run(True)
        for attr in SERIES:
            at, av = getattr(a, attr).as_arrays()
            bt, bv = getattr(b, attr).as_arrays()
            assert np.array_equal(at, bt) and np.array_equal(av, bv)
        assert a.completed_jobs == b.completed_jobs
        assert a.per_qpu_busy_seconds == b.per_qpu_busy_seconds

    def test_streaming_keeps_inflight_bounded(self):
        gen = LoadGenerator(mean_rate_per_hour=2000, seed=4)
        fleet = default_fleet(seed=7, names=["auckland", "algiers"])
        sim = CloudSimulator(
            fleet,
            FCFSPolicy(_fake_estimate),
            ExecutionModel(seed=5),
            config=SimulationConfig(duration_seconds=1800.0, seed=5),
        )
        m = sim.run(gen.iter_arrivals(1800.0))
        # FCFS dispatches on arrival: at most the one arriving app is in
        # flight, regardless of how many the stream carries.
        assert m.completed_jobs + m.unschedulable_jobs > 100
        assert m.peak_inflight_apps == 1

    def test_circuit_pool_bounds_distinct_shapes(self):
        gen = LoadGenerator(
            mean_rate_per_hour=2000,
            seed=4,
            circuit_pool_size=16,
            shots_grid=(1024, 4096),
        )
        apps = gen.generate(1800.0)
        shapes = {
            (a.quantum_job.metrics.fingerprint, a.quantum_job.shots)
            for a in apps
        }
        assert len(apps) > 100
        assert len(shapes) <= 16
        # Fresh job identities despite shared structure.
        ids = {a.quantum_job.job_id for a in apps}
        assert len(ids) == len(apps)
