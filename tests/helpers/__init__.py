"""Shared test helpers (importable as ``helpers`` — ``tests/`` is on
``pythonpath`` via pyproject's pytest configuration)."""
