"""The shared bit-identity / determinism harness.

Every suite that asserts "same seeds -> same run" — the fleet layer, the
parallel engine, the tenancy front door, and the invariants suite — goes
through these helpers, so the definition of *identical* lives in exactly
one place:

* :func:`assert_series_identical` — the per-field comparison over the
  sampled metric series plus the event/dispatch counters, for tests that
  predate :meth:`SimulationMetrics.deterministic_state`.
* :func:`assert_runs_identical` — the strict form: two metrics objects
  must produce equal ``deterministic_state()`` dicts (every field except
  the wall-clock timing allowlist).
* :func:`fake_estimate` / :func:`make_job` / :func:`make_shards` /
  :func:`run_sharded` — the standard deterministic fixtures the suites
  build scenarios from.
"""

import numpy as np

from repro.backends import default_fleet
from repro.backends.fleet import fleet_of_size
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    FleetShard,
    LoadGenerator,
    QuantumJob,
    SimulatedQPU,
    SimulationConfig,
)
from repro.scheduler import FCFSPolicy, SchedulingTrigger
from repro.workloads import ghz_linear

__all__ = [
    "SERIES",
    "fake_estimate",
    "make_job",
    "make_shards",
    "run_sharded",
    "assert_series_identical",
    "assert_runs_identical",
]

#: The sampled metric series every identity assertion compares.
SERIES = (
    "mean_fidelity",
    "mean_completion_time",
    "mean_utilization",
    "scheduler_queue_size",
)


def fake_estimate(job, qpu):
    """Deterministic stand-in estimator: distinct per (job width, QPU)."""
    return 0.5 + 0.4 / (1 + job.num_qubits + len(qpu.name)), 12.0


def make_job(width: int, *, tenant=None, arrival_time: float = 0.0) -> QuantumJob:
    """A circuit-free GHZ job of the given width (optionally tenanted)."""
    job = QuantumJob.from_circuit(ghz_linear(width), keep_circuit=False)
    job.tenant = tenant
    job.arrival_time = arrival_time
    return job


def make_shards(widths_per_shard, policy=None):
    """Shards over slices of the default fleet, one per name bucket.

    ``widths_per_shard`` is a list of QPU-name lists; each becomes one
    :class:`FleetShard` over fresh simulated backends.  ``policy`` (a
    single instance, shared) defaults to FCFS over :func:`fake_estimate`.
    """
    shards = []
    for i, names in enumerate(widths_per_shard):
        backends = [
            SimulatedQPU(q) for q in default_fleet(seed=7, names=list(names))
        ]
        shards.append(
            FleetShard(i, backends, policy or FCFSPolicy(fake_estimate))
        )
    return shards


def run_sharded(policy, executor, *, num_shards=3, duration=700.0,
                rebalance=None, recal=None, tenants=None, admission=None,
                **sim_kwargs):
    """The standard multi-shard MMPP-burst scenario, fully seeded.

    One knob set shared by the parallel-engine and tenancy bit-identity
    suites; ``tenants``/``admission`` extend it with a tenant mix on the
    load generator and an admission controller on the simulator (both
    ``None`` by default — the tenancy-off configuration).  Extra keyword
    arguments (e.g. the pipelined engine's ``cycle_latency`` /
    ``trigger_epsilon`` / ``pipeline``) forward to
    :meth:`CloudSimulator.sharded`.
    """
    gen = LoadGenerator(
        mean_rate_per_hour=2400,
        max_qubits=27,
        arrival_process="mmpp",
        burst_rate_multiplier=6.0,
        mean_burst_seconds=60.0,
        mean_calm_seconds=240.0,
        diurnal=False,
        tenants=tenants,
        seed=4,
    )
    sim = CloudSimulator.sharded(
        fleet_of_size(6, seed=7),
        policy,
        num_shards=num_shards,
        execution_model=ExecutionModel(seed=5),
        trigger_factory=lambda i: SchedulingTrigger(
            queue_limit=10_000, interval_seconds=120
        ),
        config=SimulationConfig(
            duration_seconds=duration, seed=5, recalibrate_every_seconds=recal
        ),
        rebalance=rebalance,
        cycle_executor=executor,
        admission=admission,
        **sim_kwargs,
    )
    return sim.run(gen.generate(duration))


def assert_series_identical(a, b) -> None:
    """Sampled series and core counters of two runs must match exactly."""
    for attr in SERIES:
        at, av = getattr(a, attr).as_arrays()
        bt, bv = getattr(b, attr).as_arrays()
        assert np.array_equal(at, bt) and np.array_equal(av, bv), attr
    assert a.events_processed == b.events_processed
    assert a.dispatched_jobs == b.dispatched_jobs
    assert a.per_qpu_busy_seconds == b.per_qpu_busy_seconds
    assert a.per_qpu_jobs == b.per_qpu_jobs


def assert_runs_identical(a, b) -> None:
    """Strict bit-identity: every non-timing metrics field must be equal.

    Compares ``deterministic_state()`` field by field first so a failure
    names the differing field instead of dumping two full dicts.
    """
    sa, sb = a.deterministic_state(), b.deterministic_state()
    assert sa.keys() == sb.keys()
    for name in sa:
        assert sa[name] == sb[name], f"field {name!r} differs"
