"""Parallel scheduling engine tests.

The load-bearing guarantee: a seeded run produces **bit-identical**
``SimulationMetrics`` (modulo wall-clock timing fields) on every cycle
executor backend — serial, thread, and process — for both the Qonductor
scheduler (whose optimization stage actually ships to workers) and the
batched FCFS baseline (which schedules inline during the fold).  Plus:
executor selection/contract tests, trigger coalescing, and the purity of
the cycle seed derivation.
"""

import os

import numpy as np
import pytest

from helpers.determinism import (
    assert_runs_identical,
    fake_estimate,
    run_sharded,
)
from repro.backends.fleet import fleet_of_size
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    ProcessCycleExecutor,
    SerialCycleExecutor,
    SimulationConfig,
    SimulationMetrics,
    TimeSeries,
    ThreadCycleExecutor,
    make_cycle_executor,
)
from repro.cloud.cycle_executor import CYCLE_EXECUTOR_ENV
from repro.cloud.simulator import CYCLE_PIPELINE_ENV
from repro.scheduler import (
    BatchedFCFSPolicy,
    ConstantCycleLatency,
    NsgaCycleLatencyModel,
    QonductorScheduler,
    SchedulingTrigger,
    cycle_seed,
    make_latency_model,
    run_optimization,
)


class TestCycleExecutors:
    def test_make_resolves_names_and_instances(self):
        assert isinstance(make_cycle_executor("serial"), SerialCycleExecutor)
        assert isinstance(make_cycle_executor("thread"), ThreadCycleExecutor)
        assert isinstance(make_cycle_executor("process"), ProcessCycleExecutor)
        inst = ThreadCycleExecutor(max_workers=2)
        assert make_cycle_executor(inst) is inst
        sized = make_cycle_executor("thread:3")
        assert isinstance(sized, ThreadCycleExecutor)
        assert sized.max_workers == 3
        with pytest.raises(KeyError):
            make_cycle_executor("bogus")

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv(CYCLE_EXECUTOR_ENV, "thread:2")
        ex = make_cycle_executor(None)
        assert isinstance(ex, ThreadCycleExecutor) and ex.max_workers == 2
        monkeypatch.delenv(CYCLE_EXECUTOR_ENV)
        assert isinstance(make_cycle_executor(None), SerialCycleExecutor)

    def test_results_come_back_in_task_order(self):
        for ex in (
            SerialCycleExecutor(),
            ThreadCycleExecutor(max_workers=4),
        ):
            try:
                assert ex.run(lambda x: x * x, list(range(17))) == [
                    i * i for i in range(17)
                ]
            finally:
                ex.close()

    def test_close_is_idempotent_and_pool_rebuilds(self):
        ex = ThreadCycleExecutor(max_workers=2)
        assert ex.run(str, [1, 2]) == ["1", "2"]
        ex.close()
        ex.close()
        assert ex.run(str, [3, 4]) == ["3", "4"]
        ex.close()

    def test_submit_result_matches_run(self):
        """The async half of the contract: ``result(submit(...))`` is
        ``run(...)``, in task order, on every backend."""
        for ex in (
            SerialCycleExecutor(),
            ThreadCycleExecutor(max_workers=4),
        ):
            try:
                handle = ex.submit(lambda x: x * x, list(range(17)))
                assert ex.result(handle) == [i * i for i in range(17)]
                # Redeeming twice returns the cached list, not a hang.
                assert ex.result(handle) == [i * i for i in range(17)]
            finally:
                ex.close()

    def test_serial_submit_resolves_inline(self):
        """Serial ``submit`` computes eagerly — the handle already holds
        results, so serial pipelined runs stay single-threaded."""
        ex = SerialCycleExecutor()
        handle = ex.submit(str, [1, 2])
        assert handle.results == ["1", "2"]
        assert handle.futures is None

    def test_empty_submit(self):
        for ex in (SerialCycleExecutor(), ThreadCycleExecutor(max_workers=2)):
            try:
                assert ex.result(ex.submit(str, [])) == []
            finally:
                ex.close()

    def test_handle_redeemable_after_close(self):
        """Regression (S3): ``close()`` waits for in-flight work, so a
        handle submitted before close still resolves after it."""
        ex = ThreadCycleExecutor(max_workers=2)
        handle = ex.submit(lambda x: x + 1, [1, 2, 3])
        ex.close()
        assert ex.result(handle) == [2, 3, 4]

    def test_simulator_env_selection(self, monkeypatch):
        monkeypatch.setenv(CYCLE_EXECUTOR_ENV, "thread")
        sim = CloudSimulator(
            fleet_of_size(2, seed=7),
            BatchedFCFSPolicy(fake_estimate),
            ExecutionModel(seed=5),
            config=SimulationConfig(duration_seconds=60.0, seed=5),
        )
        assert isinstance(sim.cycle_executor, ThreadCycleExecutor)


class TestCycleSeedPurity:
    def test_cycle_seed_depends_on_all_components(self):
        base = cycle_seed(3, 1, 2).generate_state(4).tolist()
        assert cycle_seed(3, 1, 2).generate_state(4).tolist() == base
        assert cycle_seed(4, 1, 2).generate_state(4).tolist() != base
        assert cycle_seed(3, 2, 2).generate_state(4).tolist() != base
        assert cycle_seed(3, 1, 3).generate_state(4).tolist() != base

    def test_run_optimization_is_pure(self):
        sched = QonductorScheduler(fake_estimate, seed=1, max_generations=6)
        fleet = fleet_of_size(3, seed=7)
        from repro.cloud import QuantumJob
        from repro.workloads import ghz_linear

        jobs = [
            QuantumJob.from_circuit(ghz_linear(5), keep_circuit=False)
            for _ in range(8)
        ]
        plan = sched.begin_cycle(jobs, fleet, {})
        a = run_optimization(plan.task)
        b = run_optimization(plan.task)
        assert np.array_equal(a.X, b.X) and np.array_equal(a.F, b.F)
        assert a.generations == b.generations

    def test_fused_schedule_matches_split_stages(self):
        """schedule() and begin/run/finish must be the same computation."""
        fleet = fleet_of_size(3, seed=7)
        from repro.cloud import QuantumJob
        from repro.workloads import ghz_linear

        jobs = [
            QuantumJob.from_circuit(ghz_linear(4), keep_circuit=False)
            for _ in range(6)
        ]
        fused = QonductorScheduler(
            fake_estimate, seed=2, max_generations=6
        ).schedule(list(jobs), fleet, {})
        split_sched = QonductorScheduler(
            fake_estimate, seed=2, max_generations=6
        )
        plan = split_sched.begin_cycle(list(jobs), fleet, {})
        split = split_sched.finish_cycle(plan, run_optimization(plan.task))
        assert [d.qpu_name for d in fused.decisions] == [
            d.qpu_name for d in split.decisions
        ]
        assert np.array_equal(fused.front_F, split.front_F)
        assert fused.chosen_index == split.chosen_index


class TestBackendBitIdentity:
    """Same seeds -> identical SimulationMetrics on every backend."""

    @pytest.mark.parametrize("backend", ["thread:4", "process:2"])
    def test_qonductor_multi_shard(self, backend):
        serial = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "serial",
        )
        parallel = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            backend,
        )
        assert_runs_identical(serial, parallel)
        # Same-instant deadlines really did coalesce into multi-cycle
        # batches — the parallel path was exercised, not bypassed.
        assert serial.max_batch_cycles >= 2
        assert serial.scheduling_cycles >= 4

    def test_fcfs_multi_shard_with_rebalancing(self):
        serial = run_sharded(
            BatchedFCFSPolicy(fake_estimate), "serial", rebalance="threshold"
        )
        threaded = run_sharded(
            BatchedFCFSPolicy(fake_estimate), "thread", rebalance="threshold"
        )
        assert_runs_identical(serial, threaded)
        assert serial.dispatched_jobs > 0

    def test_qonductor_with_recalibration(self):
        """Cache invalidation mid-run keeps backends aligned too."""
        serial = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "serial",
            num_shards=2,
            duration=500.0,
            recal=250.0,
        )
        threaded = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "thread",
            num_shards=2,
            duration=500.0,
            recal=250.0,
        )
        assert_runs_identical(serial, threaded)

    @pytest.mark.parametrize("backend", ["thread:4", "process:2"])
    def test_qonductor_warm_start_multi_shard(self, backend):
        """Warm-started cycles stay backend-independent: the warm rows
        ride inside the frozen OptimizationTask, so whichever worker runs
        a cycle sees the same seed population as a serial run."""
        serial = run_sharded(
            QonductorScheduler(
                fake_estimate, seed=5, max_generations=4, warm_start=True
            ),
            "serial",
        )
        parallel = run_sharded(
            QonductorScheduler(
                fake_estimate, seed=5, max_generations=4, warm_start=True
            ),
            backend,
        )
        assert_runs_identical(serial, parallel)
        assert serial.scheduling_cycles >= 4

    def test_warm_start_rerun_identical(self):
        a = run_sharded(
            QonductorScheduler(
                fake_estimate, seed=5, max_generations=4, warm_start=True
            ),
            "serial",
        )
        b = run_sharded(
            QonductorScheduler(
                fake_estimate, seed=5, max_generations=4, warm_start=True
            ),
            "serial",
        )
        assert_runs_identical(a, b)

    def test_seeded_rerun_identical_on_same_backend(self):
        a = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "thread",
            num_shards=2,
            duration=500.0,
        )
        b = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "thread",
            num_shards=2,
            duration=500.0,
        )
        assert_runs_identical(a, b)


class TestDeterministicStateContract:
    """``deterministic_state`` is exclude-by-allowlist, not
    include-by-list: new metrics fields are compared by default, and the
    allowlist itself is validated so it can never silently rot."""

    def test_every_field_but_timing_is_compared(self):
        m = SimulationMetrics()
        state = m.deterministic_state()
        assert set(state) == set(vars(m)) - set(m.TIMING_FIELDS)
        assert "wall_seconds" not in state
        assert "stage_seconds" not in state

    def test_new_fields_are_included_automatically(self):
        """A field added by a future PR lands in the comparison without
        anyone remembering to register it."""
        m = SimulationMetrics()
        m.brand_new_counter = 7
        assert m.deterministic_state()["brand_new_counter"] == 7

    def test_stale_allowlist_entry_fails_loudly(self, monkeypatch):
        """Renaming/removing a timing field without updating the
        allowlist must raise, not silently exclude nothing."""
        monkeypatch.setattr(
            SimulationMetrics,
            "TIMING_FIELDS",
            ("wall_seconds", "stage_seconds", "renamed_away"),
        )
        with pytest.raises(AttributeError, match="renamed_away"):
            SimulationMetrics().deterministic_state()

    def test_timeseries_fields_compare_by_value(self):
        a, b = SimulationMetrics(), SimulationMetrics()
        a.mean_fidelity.add(1.0, 0.9)
        b.mean_fidelity.add(1.0, 0.9)
        a.shard_queue_size[0] = TimeSeries([1.0], [3.0])
        b.shard_queue_size[0] = TimeSeries([1.0], [3.0])
        assert a.deterministic_state() == b.deterministic_state()
        b.mean_fidelity.add(2.0, 0.8)
        assert a.deterministic_state() != b.deterministic_state()

    def test_timing_fields_do_not_affect_equality(self):
        a, b = SimulationMetrics(), SimulationMetrics()
        a.wall_seconds = 1.23
        b.wall_seconds = 9.87
        b.stage_seconds["optimize"] = 5.0
        assert a.deterministic_state() == b.deterministic_state()

    def test_static_detlint_view_agrees_with_runtime(self):
        """detlint's DET005 parses the same contract from the source
        text that the runtime enforces: same field set, same
        ``TIMING_FIELDS`` allowlist, in the same order.  If the two ever
        drift (a field added behind an ``if``, the tuple built
        dynamically), the static mirror silently rots — this pins it."""
        from dataclasses import fields as dataclass_fields

        from repro.analysis.rules import static_metrics_contract

        static_fields, static_timing = static_metrics_contract()
        assert static_timing == tuple(SimulationMetrics.TIMING_FIELDS)
        assert list(static_fields) == [
            f.name for f in dataclass_fields(SimulationMetrics)
        ]


class TestCoalescing:
    def test_aligned_deadlines_batch_misaligned_do_not(self):
        """Deadline-driven shards with one shared cadence coalesce; a
        queue-limit-driven fleet (triggers firing on arrivals at distinct
        times) runs batches of one."""
        aligned = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "serial",
            duration=500.0,
        )
        assert aligned.max_batch_cycles >= 2
        assert aligned.cycle_batches < aligned.scheduling_cycles

        gen = LoadGenerator(
            mean_rate_per_hour=2400, max_qubits=27, diurnal=False, seed=4
        )
        sim = CloudSimulator.sharded(
            fleet_of_size(6, seed=7),
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            num_shards=3,
            execution_model=ExecutionModel(seed=5),
            trigger_factory=lambda i: SchedulingTrigger(
                queue_limit=5, interval_seconds=10_000
            ),
            config=SimulationConfig(duration_seconds=500.0, seed=5),
        )
        m = sim.run(gen.generate(500.0))
        assert m.scheduling_cycles > 0
        # Arrival-path fires batch alone; only the horizon flush (one
        # batch over every backlogged shard) can coalesce here.
        assert m.scheduling_cycles - m.cycle_batches <= 3 - 1

    def test_stage_seconds_accumulated(self):
        m = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "serial",
            duration=500.0,
        )
        for key in ("preprocess", "optimize", "select", "optimize_wall"):
            assert m.stage_seconds.get(key, 0.0) >= 0.0
        assert m.stage_seconds["optimize"] > 0.0
        # Serial backend: batch wall time is the sum of its cycles (up
        # to timer noise), never materially less.
        assert m.stage_seconds["optimize_wall"] >= (
            0.5 * m.stage_seconds["optimize"]
        )


class TestLatencyModels:
    def test_make_latency_model_resolution(self):
        assert make_latency_model(None)([]) == 0.0
        assert make_latency_model(2.5)([None, None]) == 2.5
        assert isinstance(make_latency_model(0), ConstantCycleLatency)
        model = NsgaCycleLatencyModel()
        assert make_latency_model(model) is model
        with pytest.raises(ValueError):
            make_latency_model(-1.0)

    def test_nsga_model_scales_with_work(self):
        from types import SimpleNamespace

        def task(pop, gens, jobs):
            return SimpleNamespace(
                pop_size=pop,
                max_generations=gens,
                data=SimpleNamespace(num_jobs=jobs),
            )

        model = NsgaCycleLatencyModel(
            seconds_per_evaluation=1e-4, overhead_seconds=0.5
        )
        small = model([task(20, 10, 5)])
        big = model([task(40, 20, 50)])
        assert 0.5 < small < big
        # Batch latency is the slowest member, not the sum.
        assert model([task(20, 10, 5), task(40, 20, 50)]) == big
        # Inline cycles (no OptimizationTask) cost only the overhead;
        # empty batches cost nothing.
        assert model([None]) == 0.5
        assert model([]) == 0.0


class TestPipelinedEngine:
    """The tentpole guarantees: pipelining off-by-default changes nothing,
    and turned on it stays deterministic across backends and reruns."""

    @pytest.mark.parametrize("backend", ["serial", "thread:4"])
    def test_pipeline_flag_alone_is_bit_identical(self, backend):
        """``pipeline=True`` with zero modeled latency must be a pure
        no-op: the fold event fires at the submit instant."""
        baseline = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "serial",
            duration=500.0,
        )
        piped = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            backend,
            duration=500.0,
            pipeline=True,
        )
        assert_runs_identical(baseline, piped)
        # Zero latency means zero fold lag: nothing counts as pipelined.
        assert piped.pipelined_batches == 0
        assert piped.fold_lag_seconds == 0.0

    def test_env_variable_enables_pipeline(self, monkeypatch):
        def build():
            return CloudSimulator(
                fleet_of_size(2, seed=7),
                BatchedFCFSPolicy(fake_estimate),
                ExecutionModel(seed=5),
                config=SimulationConfig(duration_seconds=60.0, seed=5),
            )

        monkeypatch.delenv(CYCLE_PIPELINE_ENV, raising=False)
        assert build().pipeline is False
        monkeypatch.setenv(CYCLE_PIPELINE_ENV, "1")
        assert build().pipeline is True
        monkeypatch.setenv(CYCLE_PIPELINE_ENV, "0")
        assert build().pipeline is False

    def test_modeled_latency_identical_across_backends(self):
        """Nonzero scheduler latency: the fold instant is simulated time,
        so serial and process runs still agree bit-for-bit."""
        kwargs = dict(duration=700.0, cycle_latency=30.0, trigger_epsilon=5.0)
        serial = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "serial",
            **kwargs,
        )
        pooled = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "process:2",
            **kwargs,
        )
        assert_runs_identical(serial, pooled)
        assert serial.pipelined_batches > 0
        assert serial.fold_lag_seconds > 0.0
        # Fold lag is bounded by the constant model: every pipelined
        # batch waited exactly the modeled 30 s.
        assert serial.fold_lag_seconds == pytest.approx(
            30.0 * serial.pipelined_batches
        )
        assert serial.dispatched_jobs > 0

    def test_nonzero_latency_seeded_rerun_identical(self):
        a = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "thread:4",
            duration=500.0,
            cycle_latency=20.0,
        )
        b = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "thread:4",
            duration=500.0,
            cycle_latency=20.0,
        )
        assert_runs_identical(a, b)

    def test_callable_latency_model_end_to_end(self):
        m = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "serial",
            duration=500.0,
            cycle_latency=NsgaCycleLatencyModel(),
        )
        assert m.pipelined_batches > 0
        assert m.dispatched_jobs > 0

    @staticmethod
    def _epsilon_run(executor, *, trigger_epsilon):
        """Arrival-driven fleet where per-shard queue-limit triggers fire
        at distinct instants — the case ε-coalescing exists for."""
        gen = LoadGenerator(
            mean_rate_per_hour=2400,
            max_qubits=27,
            arrival_process="mmpp",
            burst_rate_multiplier=6.0,
            mean_burst_seconds=60.0,
            mean_calm_seconds=240.0,
            diurnal=False,
            seed=4,
        )
        sim = CloudSimulator.sharded(
            fleet_of_size(6, seed=7),
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            num_shards=3,
            execution_model=ExecutionModel(seed=5),
            trigger_factory=lambda i: SchedulingTrigger(
                queue_limit=5, interval_seconds=10_000
            ),
            config=SimulationConfig(duration_seconds=500.0, seed=5),
            cycle_executor=executor,
            trigger_epsilon=trigger_epsilon,
        )
        return sim.run(gen.generate(500.0))

    def test_epsilon_window_coalesces_arrival_triggers(self):
        """With ε > 0, near-simultaneous queue-limit triggers on
        different shards merge into one engine batch; with ε = 0 they
        run as batches of one (the PR 5 behavior)."""
        sync = self._epsilon_run("serial", trigger_epsilon=0.0)
        merged = self._epsilon_run("serial", trigger_epsilon=15.0)
        assert sync.epsilon_merged_triggers == 0
        assert merged.epsilon_merged_triggers > 0
        assert merged.max_batch_cycles >= 2
        assert merged.cycle_batches < sync.cycle_batches
        # Coalescing defers work, it must not lose it.
        assert merged.dispatched_jobs > 0

    def test_epsilon_batch_formation_deterministic(self):
        serial = self._epsilon_run("serial", trigger_epsilon=15.0)
        pooled = self._epsilon_run("process:2", trigger_epsilon=15.0)
        assert_runs_identical(serial, pooled)


class TestExecutorLifecycle:
    """S3 regression: owned pools are released after every run; caller-
    supplied instances persist until the caller closes them."""

    def _sim(self, executor):
        return CloudSimulator(
            fleet_of_size(2, seed=7),
            BatchedFCFSPolicy(fake_estimate),
            ExecutionModel(seed=5),
            config=SimulationConfig(duration_seconds=120.0, seed=5),
            cycle_executor=executor,
        )

    def _apps(self):
        gen = LoadGenerator(
            mean_rate_per_hour=600, max_qubits=27, diurnal=False, seed=4
        )
        return gen.generate(120.0)

    def test_owned_executor_released_after_run(self):
        sim = self._sim("thread:2")
        assert sim._owns_executor
        sim.run(self._apps())
        assert sim.cycle_executor._pool is None

    def test_supplied_executor_survives_run_until_closed(self):
        ex = ThreadCycleExecutor(max_workers=2)
        try:
            sim = self._sim(ex)
            assert not sim._owns_executor
            sim.run(self._apps())
            # Pool (if spun up) must still be usable for the next run...
            assert ex.run(str, [1]) == ["1"]
            sim.close()
            # ...and close() via the simulator releases it.
            assert ex._pool is None
        finally:
            ex.close()

    def test_context_manager_closes_supplied_executor(self):
        ex = ThreadCycleExecutor(max_workers=2)
        with self._sim(ex) as sim:
            sim.run(self._apps())
            assert ex.run(str, [2]) == ["2"]
        assert ex._pool is None

    def test_repeated_runs_do_not_accumulate_pools(self):
        sim = self._sim("thread:2")
        for _ in range(3):
            sim.run(self._apps())
            assert sim.cycle_executor._pool is None


@pytest.mark.skipif(
    os.environ.get(CYCLE_EXECUTOR_ENV, "") == "",
    reason="only meaningful when CYCLE_EXECUTOR selects a parallel backend",
)
def test_env_selected_backend_smoke():
    """Under CYCLE_EXECUTOR=thread CI runs the whole tier-1 suite on the
    parallel path; this is its explicit canary."""
    m = run_sharded(
        QonductorScheduler(fake_estimate, seed=5, max_generations=4), None
    )
    assert m.dispatched_jobs > 0
