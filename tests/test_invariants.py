"""Seeded property-style invariants over the fleet and load layers.

Four families of invariants that must hold for *every* input, not just
the handpicked scenarios of the unit suites:

* balancer width-feasibility — whenever any shard can fit a job, the
  chosen shard can;
* rebalancing conservation — only pending jobs move, only to shards
  that fit them, and no job is created, lost, or duplicated;
* streaming equivalence — ``generate`` and ``iter_arrivals`` are the
  same stream (arrival times, circuits, shots, tenants) for every
  arrival process;
* job conservation — every submitted application is accounted for at
  the horizon: completed, still in flight, failed, or shed at the
  front door.

Structure-level properties run under hypothesis (derandomized, so CI is
stable); whole-simulation properties run as seeded parametrized cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from helpers.determinism import fake_estimate, make_job, make_shards
from repro.backends.fleet import fleet_of_size
from repro.cloud import (
    AdmissionController,
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
    abusive_mix,
    make_balancer,
    make_rebalancer,
)
from repro.scheduler import BatchedFCFSPolicy, FCFSPolicy, SchedulingTrigger

# Name buckets with distinct widths (27q / 16q / 7q / 27q).
_SHARD_GROUPS = [["auckland"], ["guadalupe"], ["lagos"], ["hanoi"]]
_MAX_WIDTH = 27

_settings = settings(max_examples=30, deadline=None, derandomize=True)


# ----------------------------------------------------------------------
# Balancer width-feasibility
# ----------------------------------------------------------------------

class TestBalancerFeasibility:
    @_settings
    @given(
        strategy=st.sampled_from(["round_robin", "least_loaded", "qubit_fit"]),
        widths=st.lists(st.integers(2, _MAX_WIDTH), min_size=1, max_size=25),
        preload=st.lists(st.integers(0, 6), min_size=4, max_size=4),
    )
    def test_route_fits_whenever_possible(self, strategy, widths, preload):
        """If any shard fits the job, the routed shard fits the job."""
        shards = make_shards(
            _SHARD_GROUPS, policy=BatchedFCFSPolicy(fake_estimate)
        )
        for shard, depth in zip(shards, preload):
            shard.pending = [make_job(5) for _ in range(depth)]
        balancer = make_balancer(strategy)
        for width in widths:
            job = make_job(width)
            shard = balancer.route(job, shards, 0.0)
            if any(s.fits(job) for s in shards):
                assert shard.fits(job)
            shard.pending.append(job)  # what the simulator does

    @_settings
    @given(
        widths=st.lists(st.integers(2, _MAX_WIDTH), min_size=1, max_size=25),
        offline=st.integers(0, 3),
    )
    def test_route_respects_outages(self, widths, offline):
        """Feasibility is over *online* QPUs: a dark shard never wins
        while a live one fits."""
        shards = make_shards(_SHARD_GROUPS)
        for backend in shards[offline].backends:
            backend.qpu.online = False
        balancer = make_balancer("qubit_fit")
        for width in widths:
            job = make_job(width)
            shard = balancer.route(job, shards, 0.0)
            if any(s.fits(job) for s in shards):
                assert shard.fits(job)
                assert shard.shard_id != offline


# ----------------------------------------------------------------------
# Rebalancing conservation
# ----------------------------------------------------------------------

def _queue_state(shards):
    return {s.shard_id: [j.job_id for j in s.pending] for s in shards}


class TestRebalanceConservation:
    @_settings
    @given(
        strategy=st.sampled_from(["threshold", "steal_half"]),
        depths=st.lists(st.integers(0, 20), min_size=4, max_size=4),
        seed=st.integers(0, 2**16),
    )
    def test_moves_conserve_jobs_and_respect_fit(self, strategy, depths, seed):
        shards = make_shards(
            _SHARD_GROUPS, policy=BatchedFCFSPolicy(fake_estimate)
        )
        rng = np.random.default_rng(seed)
        t = 0.0
        for shard, depth in zip(shards, depths):
            for _ in range(depth):
                t += 1.0
                shard.pending.append(
                    make_job(int(rng.integers(2, _MAX_WIDTH + 1)),
                             arrival_time=t)
                )
        before = _queue_state(shards)
        all_before = sorted(j for q in before.values() for j in q)
        policy = make_rebalancer(strategy)
        moves = policy.rebalance(shards, 0.0)
        after = _queue_state(shards)
        all_after = sorted(j for q in after.values() for j in q)
        # No job created, lost, or duplicated.
        assert all_before == all_after
        for move in moves:
            # Only to a currently-fitting, batched destination.
            assert move.job.num_qubits <= move.dst.max_qubits
            assert move.dst.is_batched
            # The job really was pending on the source before the tick.
            assert move.job.job_id in before[move.src.shard_id]
        # Accounting matches the queues.
        stolen_out = sum(s.jobs_stolen_out for s in shards)
        stolen_in = sum(s.jobs_stolen_in for s in shards)
        assert stolen_out == stolen_in == len(moves)

    @_settings
    @given(
        depths=st.lists(st.integers(0, 20), min_size=4, max_size=4),
        seed=st.integers(0, 2**16),
    )
    def test_tenant_aware_moves_same_invariants(self, depths, seed):
        """tenant_aware=True changes *which* jobs move, never the rules."""
        from repro.cloud import Tenant, ThresholdRebalancePolicy

        tenants = [Tenant(f"t{i}", tier=i % 3) for i in range(3)]
        shards = make_shards(
            _SHARD_GROUPS, policy=BatchedFCFSPolicy(fake_estimate)
        )
        rng = np.random.default_rng(seed)
        t = 0.0
        for shard, depth in zip(shards, depths):
            for _ in range(depth):
                t += 1.0
                shard.pending.append(
                    make_job(
                        int(rng.integers(2, _MAX_WIDTH + 1)),
                        tenant=tenants[int(rng.integers(3))],
                        arrival_time=t,
                    )
                )
        before = _queue_state(shards)
        all_before = sorted(j for q in before.values() for j in q)
        moves = ThresholdRebalancePolicy(tenant_aware=True).rebalance(
            shards, 0.0
        )
        all_after = sorted(
            j for q in _queue_state(shards).values() for j in q
        )
        assert all_before == all_after
        for move in moves:
            assert move.job.num_qubits <= move.dst.max_qubits
            assert move.job.job_id in before[move.src.shard_id]


# ----------------------------------------------------------------------
# Streaming equivalence (generate == iter_arrivals), incl. tenants
# ----------------------------------------------------------------------

class TestStreamingEquivalence:
    @pytest.mark.parametrize(
        "process,diurnal",
        [("poisson", False), ("poisson", True), ("mmpp", False)],
    )
    @pytest.mark.parametrize("tenanted", [False, True])
    def test_generate_equals_iter_arrivals(self, process, diurnal, tenanted):
        def make_gen():
            return LoadGenerator(
                mean_rate_per_hour=1200,
                arrival_process=process,
                diurnal=diurnal,
                tenants=abusive_mix() if tenanted else None,
                seed=13,
            )

        eager = make_gen().generate(1500.0)
        lazy = list(make_gen().iter_arrivals(1500.0))
        assert len(eager) == len(lazy) > 0
        for x, y in zip(eager, lazy):
            jx, jy = x.quantum_job, y.quantum_job
            assert x.arrival_time == y.arrival_time
            assert jx.metrics.fingerprint == jy.metrics.fingerprint
            assert jx.shots == jy.shots
            assert jx.mitigation == jy.mitigation
            assert jx.tenant_id == jy.tenant_id
            if tenanted:
                assert jx.tenant == jy.tenant
        if tenanted:
            seen = {a.quantum_job.tenant_id for a in eager}
            assert seen <= {"tenant-0", "tenant-1", "tenant-2", "abuser"}
        else:
            assert all(a.quantum_job.tenant is None for a in eager)


# ----------------------------------------------------------------------
# Job conservation at the horizon
# ----------------------------------------------------------------------

class TestConservation:
    def _run(self, *, tenants=None, admission=None, seed=6):
        gen = LoadGenerator(
            mean_rate_per_hour=1500,
            arrival_process="mmpp",
            diurnal=False,
            tenants=tenants,
            seed=seed,
        )
        apps = gen.generate(1200.0)
        sim = CloudSimulator.sharded(
            fleet_of_size(4, seed=7),
            BatchedFCFSPolicy(fake_estimate),
            num_shards=2,
            balancer="least_loaded",
            execution_model=ExecutionModel(seed=5),
            trigger_factory=lambda i: SchedulingTrigger(
                queue_limit=30, interval_seconds=90
            ),
            config=SimulationConfig(duration_seconds=1200.0, seed=5),
            admission=admission,
        )
        return sim.run(apps), apps

    def _assert_conserved(self, m, apps):
        # Every arrival lands in exactly one terminal bucket.
        assert (
            m.dispatched_jobs
            + m.unschedulable_jobs
            + m.pending_at_horizon
            + m.admission_rejected
            == len(apps)
        )
        # Completions are dispatches whose COMPLETION folded in time.
        assert 0 < m.completed_jobs <= m.dispatched_jobs

    @pytest.mark.parametrize("seed", [0, 6, 11])
    def test_untenanted(self, seed):
        m, apps = self._run(seed=seed)
        self._assert_conserved(m, apps)
        assert m.admission_rejected == 0

    def test_tenanted_with_admission(self):
        mix = abusive_mix(
            abuser_rate_limit_per_hour=300.0, abuser_queue_quota=8
        )
        m, apps = self._run(
            tenants=mix, admission=AdmissionController(quota_action="reject")
        )
        self._assert_conserved(m, apps)
        assert m.admission_rejected > 0
        # Per-tenant admission counters cover every arrival.
        counted = sum(
            sum(bucket.values())
            for bucket in m.per_tenant_admission.values()
        )
        assert counted == len(apps)

    @pytest.mark.parametrize(
        "knobs",
        [
            {"cycle_latency": 45.0},
            {"trigger_epsilon": 20.0},
            {"cycle_latency": 45.0, "trigger_epsilon": 20.0},
        ],
        ids=["latency", "epsilon", "both"],
    )
    def test_pipelined_knobs_conserve_jobs(self, knobs):
        """Fold deferral and ε-held triggers move work in time, never
        lose it: in-flight cycles at the horizon still fold, held
        triggers still fire, and every arrival lands in one bucket."""
        gen = LoadGenerator(
            mean_rate_per_hour=1500,
            arrival_process="mmpp",
            diurnal=False,
            seed=6,
        )
        apps = gen.generate(1200.0)
        sim = CloudSimulator.sharded(
            fleet_of_size(4, seed=7),
            BatchedFCFSPolicy(fake_estimate),
            num_shards=2,
            balancer="least_loaded",
            execution_model=ExecutionModel(seed=5),
            trigger_factory=lambda i: SchedulingTrigger(
                queue_limit=30, interval_seconds=90
            ),
            config=SimulationConfig(duration_seconds=1200.0, seed=5),
            **knobs,
        )
        m = sim.run(apps)
        self._assert_conserved(m, apps)
        if knobs.get("cycle_latency"):
            assert m.pipelined_batches > 0

    def test_immediate_policy_has_no_pending(self):
        gen = LoadGenerator(mean_rate_per_hour=900, diurnal=False, seed=3)
        apps = gen.generate(900.0)
        sim = CloudSimulator(
            fleet_of_size(3, seed=7),
            FCFSPolicy(fake_estimate),
            ExecutionModel(seed=5),
            config=SimulationConfig(duration_seconds=900.0, seed=5),
        )
        m = sim.run(apps)
        assert m.pending_at_horizon == 0
        assert m.dispatched_jobs + m.unschedulable_jobs == len(apps)
