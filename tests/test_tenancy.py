"""Multi-tenancy tests: contracts, the admission front door, tier-weighted
scheduling, tenant-aware fleet behavior — and the load-bearing guarantee
that **tenancy off changes nothing**: runs without tenants/admission are
bit-identical whether or not the tenancy machinery is configured, for
both the FCFS baseline and the Qonductor scheduler on multi-shard fleets
(via the shared determinism harness).
"""

import numpy as np
import pytest

from helpers.determinism import (
    assert_runs_identical,
    fake_estimate,
    make_job,
    make_shards,
    run_sharded,
)
from repro.cloud import (
    BEST_EFFORT_TIER,
    AdmissionController,
    LeastLoadedBalancer,
    Tenant,
    TenantShare,
    ThresholdRebalancePolicy,
    abusive_mix,
    effective_tier,
    jain_index,
    tier_preference,
    tier_sort,
)
from repro.scheduler import BatchedFCFSPolicy, QonductorScheduler


class TestTenantContracts:
    def test_validation(self):
        with pytest.raises(ValueError):
            Tenant("x", tier=-1)
        with pytest.raises(ValueError):
            Tenant("x", rate_limit_per_hour=0.0)
        with pytest.raises(ValueError):
            Tenant("x", burst=0)
        with pytest.raises(ValueError):
            Tenant("x", queue_quota=0)
        with pytest.raises(ValueError):
            TenantShare(Tenant("x"), share=0.0)
        with pytest.raises(ValueError):
            AdmissionController(quota_action="drop")

    def test_abusive_mix_shape(self):
        mix = abusive_mix(num_normal=3, abuser_share=0.5)
        assert len(mix) == 4
        ids = [s.tenant.tenant_id for s in mix]
        assert ids == ["tenant-0", "tenant-1", "tenant-2", "abuser"]
        assert mix[0].tenant.tier == 0  # one premium tenant
        assert mix[-1].tenant.tier == 2
        assert sum(s.share for s in mix) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            abusive_mix(abuser_share=1.0)


class TestAdmissionController:
    def _tenant_job(self, tenant):
        return make_job(5, tenant=tenant)

    def test_untenanted_bypasses(self):
        ctrl = AdmissionController()
        decision = ctrl.admit(make_job(5), 0.0)
        assert decision.admitted and decision.action == "admit"

    def test_rate_limit_burst_then_refill(self):
        tenant = Tenant("t", rate_limit_per_hour=3600.0, burst=3)
        ctrl = AdmissionController()
        # The bucket starts full: the first `burst` arrivals pass.
        for _ in range(3):
            assert ctrl.admit(self._tenant_job(tenant), 0.0).admitted
        rejected = ctrl.admit(self._tenant_job(tenant), 0.0)
        assert not rejected.admitted and rejected.reason == "rate_limit"
        # 3600/h = 1 token/s: two seconds later two arrivals fit again.
        assert ctrl.admit(self._tenant_job(tenant), 2.0).admitted
        assert ctrl.admit(self._tenant_job(tenant), 2.0).admitted
        assert not ctrl.admit(self._tenant_job(tenant), 2.0).admitted

    def test_rate_limit_bucket_never_exceeds_burst(self):
        tenant = Tenant("t", rate_limit_per_hour=3600.0, burst=2)
        ctrl = AdmissionController()
        assert ctrl.admit(self._tenant_job(tenant), 0.0).admitted
        # A long quiet spell refills to `burst`, not beyond.
        for _ in range(2):
            assert ctrl.admit(self._tenant_job(tenant), 10_000.0).admitted
        assert not ctrl.admit(self._tenant_job(tenant), 10_000.0).admitted

    def test_queue_quota_degrade_and_reject(self):
        tenant = Tenant("t", queue_quota=2)
        degrade = AdmissionController(quota_action="degrade")
        jobs = [self._tenant_job(tenant) for _ in range(3)]
        for job in jobs[:2]:
            assert degrade.admit(job, 0.0).action == "admit"
            degrade.track_queued(job)
        over = degrade.admit(jobs[2], 0.0)
        assert over.admitted and over.action == "degrade"
        assert over.reason == "queue_quota"

        reject = AdmissionController(quota_action="reject")
        for job in jobs[:2]:
            reject.track_queued(job)
        assert not reject.admit(jobs[2], 0.0).admitted
        # Draining the queue frees quota.
        reject.track_dequeued(jobs[0])
        assert reject.admit(jobs[2], 0.0).admitted

    def test_pending_tracking_is_idempotent(self):
        tenant = Tenant("t", queue_quota=5)
        ctrl = AdmissionController()
        job = self._tenant_job(tenant)
        ctrl.track_queued(job)
        ctrl.track_queued(job)  # double enqueue must not double count
        assert ctrl.pending_depth("t") == 1
        ctrl.track_dequeued(job)
        ctrl.track_dequeued(job)  # double dequeue must not underflow
        assert ctrl.pending_depth("t") == 0


class TestTierHelpers:
    def test_tier_sort_untenanted_is_same_object(self):
        jobs = [make_job(5) for _ in range(4)]
        assert tier_sort(jobs) is jobs  # provably untouched path

    def test_tier_sort_stable_by_tier(self):
        gold, silver = Tenant("gold", tier=0), Tenant("silver", tier=1)
        j0 = make_job(5, tenant=silver)
        j1 = make_job(5, tenant=gold)
        j2 = make_job(5, tenant=silver)
        j3 = make_job(5, tenant=gold)
        j4 = make_job(5)  # untenanted -> best effort
        j5 = make_job(5, tenant=gold)
        j5.best_effort = True  # degraded: behind every contracted tier
        ordered = tier_sort([j0, j1, j2, j3, j4, j5])
        assert ordered == [j1, j3, j0, j2, j4, j5]
        assert effective_tier(j1) == 0
        assert effective_tier(j4) == BEST_EFFORT_TIER
        assert effective_tier(j5) == BEST_EFFORT_TIER

    def test_tier_preference_override(self):
        prefs = {0: "jct", 1: "balanced"}
        gold, bronze = Tenant("g", tier=0), Tenant("b", tier=2)
        assert tier_preference([make_job(5)], prefs) is None
        assert tier_preference([make_job(5, tenant=bronze)], prefs) is None
        batch = [make_job(5, tenant=bronze), make_job(5, tenant=gold)]
        assert tier_preference(batch, prefs) == "jct"
        assert tier_preference(batch, None) is None
        degraded = make_job(5, tenant=gold)
        degraded.best_effort = True
        assert tier_preference([degraded], prefs) is None

    def test_jain_index(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)
        # One tenant holds everything -> 1/n.
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


class TestTenantAwareFleet:
    def test_balancer_spreads_same_tenant(self):
        """A tenant's burst fans out: the shard already holding its jobs
        looks more loaded to the next job of the same tenant."""
        noisy, quiet = Tenant("noisy"), Tenant("quiet")
        shards = make_shards(
            [["auckland"], ["hanoi"]],
            policy=BatchedFCFSPolicy(fake_estimate),
        )
        shards[0].pending = [make_job(5, tenant=noisy) for _ in range(2)]
        shards[1].pending = [make_job(5, tenant=quiet) for _ in range(3)]
        balancer = LeastLoadedBalancer()
        # Untenanted and quiet-tenant jobs go to the shorter queue...
        assert balancer.route(make_job(5), shards, 0.0).shard_id == 0
        # ...but the noisy tenant's next job spreads to shard 1
        # (2 pending + 2 same-tenant > 3 pending + 0 same-tenant).
        assert (
            balancer.route(make_job(5, tenant=noisy), shards, 0.0).shard_id
            == 1
        )

    def test_rebalancer_drains_dominant_tenant_first(self):
        noisy, quiet = Tenant("noisy"), Tenant("quiet")
        shards = make_shards(
            [["auckland"], ["hanoi"]],
            policy=BatchedFCFSPolicy(fake_estimate),
        )
        queue = []
        for i in range(8):
            tenant = quiet if i < 2 else noisy  # noisy dominates 6:2
            queue.append(make_job(5, tenant=tenant, arrival_time=float(i)))
        shards[0].pending = list(queue)
        moves = ThresholdRebalancePolicy(
            min_gap=4, tenant_aware=True
        ).rebalance(shards, 0.0)
        # Gap 8 closes to 5/3: three moves, every one from the noisy
        # tenant even though quiet jobs sit at the head of the queue.
        assert len(moves) == 3
        assert all(m.job.tenant_id == "noisy" for m in moves)
        # Quiet jobs kept their place at the front of the source queue.
        assert shards[0].pending[:2] == queue[:2]
        # Migrated jobs delivered in arrival order.
        arrivals = [j.arrival_time for j in shards[1].pending]
        assert arrivals == sorted(arrivals)

    def test_untenanted_queue_ignores_tenant_aware_flag(self):
        shards_a = make_shards(
            [["auckland"], ["hanoi"]],
            policy=BatchedFCFSPolicy(fake_estimate),
        )
        shards_b = make_shards(
            [["auckland"], ["hanoi"]],
            policy=BatchedFCFSPolicy(fake_estimate),
        )
        queue = [make_job(5, arrival_time=float(i)) for i in range(9)]
        shards_a[0].pending = list(queue)
        shards_b[0].pending = list(queue)
        plain = ThresholdRebalancePolicy(min_gap=4).rebalance(shards_a, 0.0)
        aware = ThresholdRebalancePolicy(
            min_gap=4, tenant_aware=True
        ).rebalance(shards_b, 0.0)
        assert [m.job.job_id for m in plain] == [m.job.job_id for m in aware]
        assert [j.job_id for j in shards_a[0].pending] == [
            j.job_id for j in shards_b[0].pending
        ]


class TestTenancyOffBitIdentity:
    """The acceptance gate: with tenancy *configured but unused* (an
    admission controller, tier preferences, a tenant-aware rebalancer —
    but an untenanted stream), every run is bit-identical to the plain
    PR-5 configuration."""

    def test_fcfs_multi_shard(self):
        plain = run_sharded(
            BatchedFCFSPolicy(fake_estimate), "serial", rebalance="threshold"
        )
        wired = run_sharded(
            BatchedFCFSPolicy(fake_estimate),
            "serial",
            rebalance=ThresholdRebalancePolicy(tenant_aware=True),
            admission=AdmissionController(),
        )
        assert_runs_identical(plain, wired)
        assert wired.admission_rejected == 0
        assert wired.tenant_jct == {}

    def test_qonductor_multi_shard(self):
        plain = run_sharded(
            QonductorScheduler(fake_estimate, seed=5, max_generations=4),
            "serial",
        )
        wired = run_sharded(
            QonductorScheduler(
                fake_estimate,
                seed=5,
                max_generations=4,
                tier_preferences={0: "jct", 1: "balanced"},
            ),
            "serial",
            admission=AdmissionController(quota_action="reject"),
        )
        assert_runs_identical(plain, wired)

    def test_tenanted_stream_same_arrivals_as_untenanted(self):
        """Tenant stamping draws from its own RNG substream: the tenanted
        run carries the same circuits at the same instants."""
        from repro.cloud import LoadGenerator

        base = LoadGenerator(mean_rate_per_hour=900, diurnal=False, seed=4)
        mixed = LoadGenerator(
            mean_rate_per_hour=900,
            diurnal=False,
            tenants=abusive_mix(),
            seed=4,
        )
        a, b = base.generate(1200.0), mixed.generate(1200.0)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x.arrival_time == y.arrival_time
            assert (
                x.quantum_job.metrics.fingerprint
                == y.quantum_job.metrics.fingerprint
            )
        assert any(app.quantum_job.tenant is not None for app in b)


class TestTenantedRuns:
    def test_admission_and_tier_weighting_end_to_end(self):
        mix = abusive_mix(
            abuser_rate_limit_per_hour=400.0,
            abuser_queue_quota=10,
            normal_slo_seconds=1800.0,
        )
        m = run_sharded(
            BatchedFCFSPolicy(fake_estimate),
            "serial",
            tenants=mix,
            admission=AdmissionController(quota_action="degrade"),
        )
        report = m.tenant_report()
        assert set(report["per_tenant"]) == {
            "tenant-0", "tenant-1", "tenant-2", "abuser"
        }
        # The front door actually engaged on the flooding tenant.
        abuser = report["per_tenant"]["abuser"]
        assert (
            abuser["admission"]["rejected"] > 0
            or abuser["admission"]["degraded"] > 0
        )
        assert report["per_tenant"]["tenant-0"]["admission"]["rejected"] == 0
        # Tier weighting: the premium tenant completes no slower (mean)
        # than the throttled abuser under the same seeded stream.
        assert (
            report["per_tenant"]["tenant-0"]["mean_jct"]
            <= report["per_tenant"]["abuser"]["mean_jct"]
        )
        assert 0.0 < report["jain_fairness"] <= 1.0
        # Conservation holds with the front door in the path.
        total = (
            m.dispatched_jobs
            + m.unschedulable_jobs
            + m.pending_at_horizon
            + m.admission_rejected
        )
        counted = sum(
            sum(bucket.values())
            for bucket in m.per_tenant_admission.values()
        )
        assert counted == total

    def test_tenanted_run_is_deterministic(self):
        def run():
            return run_sharded(
                BatchedFCFSPolicy(fake_estimate),
                "serial",
                tenants=abusive_mix(abuser_rate_limit_per_hour=400.0),
                admission=AdmissionController(),
            )

        assert_runs_identical(run(), run())

    def test_jain_fairness_from_metrics(self):
        m = run_sharded(
            BatchedFCFSPolicy(fake_estimate),
            "serial",
            tenants=abusive_mix(),
        )
        j = m.jain_fairness()
        assert 0.0 < j <= 1.0
        means = [float(np.mean(v)) for v in m.tenant_jct.values()]
        assert j == pytest.approx(jain_index(means))
