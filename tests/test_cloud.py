"""Cloud-simulation tests: jobs, proxy, execution model, backends, load
generation, the simulator loop, and the imbalance study."""

import numpy as np
import pytest

from repro.backends import default_fleet, get_model
from repro.circuits import compute_metrics
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    HybridApplication,
    JobStatus,
    LoadGenerator,
    QuantumJob,
    SimulatedQPU,
    SimulationConfig,
    TranspileProxy,
    diurnal_rate,
    simulate_queue_imbalance,
)
from repro.scheduler import FCFSPolicy, LeastBusyPolicy, QonductorScheduler, SchedulingTrigger
from repro.workloads import ghz_linear, qaoa_maxcut


def _fake_estimate(job, qpu):
    return 0.8, 12.0


class TestJob:
    def test_from_circuit(self):
        job = QuantumJob.from_circuit(ghz_linear(5), shots=2000, mitigation="rem")
        assert job.num_qubits == 5 and job.shots == 2000
        assert job.circuit is not None

    def test_drop_circuit(self):
        job = QuantumJob.from_circuit(ghz_linear(5), keep_circuit=False)
        assert job.circuit is None and job.metrics.num_qubits == 5

    def test_lifecycle_times(self):
        job = QuantumJob.from_circuit(ghz_linear(3))
        job.arrival_time = 10.0
        assert job.completion_time is None
        job.start_time, job.finish_time = 30.0, 45.0
        assert job.waiting_time == pytest.approx(20.0)
        assert job.completion_time == pytest.approx(35.0)

    def test_unique_ids(self):
        a = QuantumJob.from_circuit(ghz_linear(3))
        b = QuantumJob.from_circuit(ghz_linear(3))
        assert a.job_id != b.job_id

    def test_application_wrapper(self):
        job = QuantumJob.from_circuit(ghz_linear(3), mitigation="zne")
        app = HybridApplication(quantum_job=job, arrival_time=5.0)
        assert app.uses_mitigation
        app.finish_time = 25.0
        assert app.completion_time == pytest.approx(20.0)


class TestProxy:
    def test_physical_metrics_positive(self):
        proxy = TranspileProxy()
        model = get_model("falcon_r5_27")
        m = compute_metrics(ghz_linear(8))
        p2q, p1q, dur = proxy.physical_metrics(m, model)
        assert p2q >= m.num_2q_gates and dur > 0

    def test_linear_class_cheaper_than_dense(self):
        proxy = TranspileProxy()
        model = get_model("falcon_r5_27")
        linear = compute_metrics(ghz_linear(10))
        from repro.workloads import qft

        dense = compute_metrics(qft(10, measure=True))
        # Same logical 2q count comparison via inflation ratio:
        p2q_lin, _, _ = proxy.physical_metrics(linear, model)
        p2q_dense, _, _ = proxy.physical_metrics(dense, model)
        infl_lin = p2q_lin / linear.num_2q_gates
        infl_dense = p2q_dense / dense.num_2q_gates
        assert infl_lin < infl_dense

    def test_tables_cached(self):
        proxy = TranspileProxy()
        model = get_model("falcon_r5_7")
        t1 = proxy.table(model, "linear")
        t2 = proxy.table(model, "linear")
        assert t1 is t2


class TestExecutionModel:
    @pytest.fixture(scope="class")
    def fleet(self):
        return default_fleet(seed=7, names=["auckland", "algiers"])

    def test_quality_ordering_preserved(self, fleet):
        em = ExecutionModel(seed=1)
        job = QuantumJob.from_circuit(ghz_linear(10), shots=4000)
        good = em.expected_fidelity(job, fleet[0].calibration, fleet[0].model)
        bad = em.expected_fidelity(job, fleet[1].calibration, fleet[1].model)
        assert good > bad

    def test_mitigation_improves_and_costs(self, fleet):
        em = ExecutionModel(seed=1)
        plain = QuantumJob.from_circuit(ghz_linear(10), shots=4000)
        mit = QuantumJob.from_circuit(
            ghz_linear(10), shots=4000, mitigation="dd+zne+rem"
        )
        rng = np.random.default_rng(0)
        r_plain = em.execute(plain, fleet[1].calibration, fleet[1].model, rng)
        r_mit = em.execute(mit, fleet[1].calibration, fleet[1].model, rng)
        assert (
            em.expected_fidelity(mit, fleet[1].calibration, fleet[1].model)
            > em.expected_fidelity(plain, fleet[1].calibration, fleet[1].model)
        )
        assert r_mit.quantum_seconds > r_plain.quantum_seconds  # 3x shots
        assert r_mit.classical_post_seconds > r_plain.classical_post_seconds

    def test_execute_fields_valid(self, fleet):
        em = ExecutionModel(seed=2)
        job = QuantumJob.from_circuit(qaoa_maxcut(8, seed=1), shots=2000)
        rec = em.execute(job, fleet[0].calibration, fleet[0].model)
        assert 0.0 <= rec.fidelity <= 1.0
        assert rec.quantum_seconds > 0
        assert rec.total_classical_seconds >= 0

    def test_unknown_mitigation(self, fleet):
        em = ExecutionModel(seed=1)
        job = QuantumJob.from_circuit(ghz_linear(4), mitigation="rem")
        job.mitigation = "bogus"
        with pytest.raises(KeyError):
            em.execute(job, fleet[0].calibration, fleet[0].model)

    def test_model_matches_trajectory_sim_smallscale(self, fleet):
        """The aggregate model must land near real noisy simulation."""
        from repro.simulation import (
            NoisySimulator,
            hellinger_fidelity,
            ideal_probabilities,
        )
        from repro.transpiler import Target, transpile

        em = ExecutionModel(seed=3)
        qpu = fleet[0]
        circ = ghz_linear(6)
        job = QuantumJob.from_circuit(circ, shots=4000)
        model_fid = em.expected_fidelity(job, qpu.calibration, qpu.model)

        res = transpile(circ, Target.from_backend(qpu))
        used = sorted(res.circuit.used_qubits())
        dense = {p: i for i, p in enumerate(used)}
        compact = res.circuit.remap(dense, len(used))
        sim = NoisySimulator(qpu.noise_model, num_trajectories=60, seed=4)
        probs = sim.noisy_probabilities(compact)
        fm = res.final_mapping
        marg = np.zeros(2**6)
        idx = np.arange(2 ** len(used))
        logical = np.zeros_like(idx)
        for q in range(6):
            logical |= ((idx >> dense[fm[q]]) & 1) << q
        np.add.at(marg, logical, probs)
        real_fid = hellinger_fidelity(marg, ideal_probabilities(circ))
        assert abs(model_fid - real_fid) < 0.2


class TestSimulatedQPU:
    def test_sequential_execution_queues(self):
        qpu = default_fleet(seed=7, names=["lagos"])[0]
        backend = SimulatedQPU(qpu)
        em = ExecutionModel(seed=1)
        rng = np.random.default_rng(0)
        j1 = QuantumJob.from_circuit(ghz_linear(4), shots=4000, keep_circuit=False)
        j2 = QuantumJob.from_circuit(ghz_linear(4), shots=4000, keep_circuit=False)
        backend.execute(j1, 0.0, em, rng)
        backend.execute(j2, 0.0, em, rng)
        assert j2.start_time == pytest.approx(j1.finish_time)
        assert backend.jobs_executed == 2
        assert backend.busy_seconds > 0

    def test_waiting_seconds(self):
        qpu = default_fleet(seed=7, names=["lagos"])[0]
        backend = SimulatedQPU(qpu)
        backend.free_at = 100.0
        assert backend.waiting_seconds(40.0) == pytest.approx(60.0)
        assert backend.waiting_seconds(200.0) == 0.0


class TestLoadGenerator:
    def test_rate_approximately_honoured(self):
        gen = LoadGenerator(mean_rate_per_hour=1200, diurnal=False, seed=1)
        apps = gen.generate(3600.0)
        assert 1000 < len(apps) < 1400

    def test_arrivals_sorted_and_bounded(self):
        gen = LoadGenerator(mean_rate_per_hour=600, seed=2)
        apps = gen.generate(1800.0)
        times = [a.arrival_time for a in apps]
        assert times == sorted(times)
        assert all(0 <= t < 1800.0 for t in times)

    def test_min_qubits_clamps_and_validates(self):
        gen = LoadGenerator(
            mean_rate_per_hour=600,
            mean_qubits=12,
            std_qubits=2,
            min_qubits=8,
            max_qubits=16,
            seed=3,
        )
        apps = gen.generate(600.0)
        assert apps
        widths = [a.quantum_job.num_qubits for a in apps]
        assert min(widths) >= 8 and max(widths) <= 16
        # An inverted range must fail loudly, not collapse every draw
        # to max_qubits.
        with pytest.raises(ValueError):
            LoadGenerator(min_qubits=20, max_qubits=16).generate(60.0)
        # Same for a benchmark whose own width cap sits below
        # min_qubits (grover tops out at 8 qubits).
        with pytest.raises(ValueError):
            LoadGenerator(
                min_qubits=10, max_qubits=16, benchmarks=("grover",)
            ).generate(60.0)

    def test_mitigation_fraction(self):
        gen = LoadGenerator(mean_rate_per_hour=600, mitigation_fraction=1.0, seed=3)
        apps = gen.generate(600.0)
        assert all(a.uses_mitigation for a in apps)

    def test_diurnal_rate_band(self):
        rates = [diurnal_rate(h) for h in range(24)]
        assert min(rates) >= 1100 - 1 and max(rates) <= 2050 + 1

    def test_mmpp_seeded_determinism(self):
        """The Markov-modulated stream is a pure function of the seed,
        and its eager and lazy views are bit-identical."""

        def make():
            return LoadGenerator(
                mean_rate_per_hour=1200,
                diurnal=False,
                arrival_process="mmpp",
                burst_rate_multiplier=8.0,
                mean_burst_seconds=90.0,
                mean_calm_seconds=400.0,
                seed=11,
            )

        a = make().generate(3600.0)
        b = make().generate(3600.0)
        lazy = list(make().iter_arrivals(3600.0))
        assert len(a) == len(b) == len(lazy) > 0
        for x, y, z in zip(a, b, lazy):
            assert x.arrival_time == y.arrival_time == z.arrival_time
            assert (
                x.quantum_job.metrics.fingerprint
                == y.quantum_job.metrics.fingerprint
                == z.quantum_job.metrics.fingerprint
            )

    def test_mmpp_burstier_than_poisson(self):
        """At a matched nominal rate, MMPP inter-arrivals must show more
        dispersion than Poisson (CV > 1), which is the point of the mode."""

        def inter_cv(process):
            gen = LoadGenerator(
                mean_rate_per_hour=1200,
                diurnal=False,
                arrival_process=process,
                burst_rate_multiplier=10.0,
                mean_burst_seconds=120.0,
                mean_calm_seconds=600.0,
                seed=5,
            )
            times = [a.arrival_time for a in gen.generate(4 * 3600.0)]
            gaps = np.diff(times)
            return float(np.std(gaps) / np.mean(gaps))

        poisson_cv = inter_cv("poisson")
        mmpp_cv = inter_cv("mmpp")
        assert poisson_cv == pytest.approx(1.0, abs=0.15)
        assert mmpp_cv > poisson_cv + 0.3

    def test_mmpp_validation(self):
        with pytest.raises(ValueError, match="arrival_process"):
            LoadGenerator(arrival_process="bogus").generate(60.0)
        with pytest.raises(ValueError, match="burst_rate_multiplier"):
            LoadGenerator(
                arrival_process="mmpp", burst_rate_multiplier=1.0
            ).generate(60.0)
        # Zero holding times would pin time at the flip instant and loop
        # forever; they must fail loudly instead.
        with pytest.raises(ValueError, match="mean_calm_seconds"):
            LoadGenerator(
                arrival_process="mmpp", mean_calm_seconds=0.0
            ).generate(60.0)
        with pytest.raises(ValueError, match="mean_burst_seconds"):
            LoadGenerator(
                arrival_process="mmpp", mean_burst_seconds=-1.0
            ).generate(60.0)

    def test_poisson_stream_unchanged_by_mmpp_support(self):
        """The default process draws exactly the stream it always did —
        adding the MMPP branch must not shift any seeded scenario."""
        times = [
            a.arrival_time
            for a in LoadGenerator(
                mean_rate_per_hour=600, seed=2
            ).generate(600.0)
        ]
        burst_times = [
            a.arrival_time
            for a in LoadGenerator(
                mean_rate_per_hour=600, seed=2, arrival_process="mmpp"
            ).generate(600.0)
        ]
        assert times and times != burst_times  # mmpp really modulates
        reference = [
            a.arrival_time
            for a in LoadGenerator(
                mean_rate_per_hour=600, seed=2
            ).generate(600.0)
        ]
        assert times == reference

    def test_diurnal_swing_scales_with_mean_rate(self):
        """Regression: the sinusoidal amplitude must rescale with
        ``mean_rate`` — a 2x load profile is exactly the IBM profile
        doubled, not a flattened swing clipped to a doubled band."""
        for hour in np.linspace(0.0, 24.0, 49):
            base = diurnal_rate(hour, mean_rate=1500.0)
            assert diurnal_rate(hour, mean_rate=3000.0) == pytest.approx(
                2.0 * base
            )
            assert diurnal_rate(hour, mean_rate=750.0) == pytest.approx(
                0.5 * base
            )
        # The scaled band still clips: the doubled profile stays inside
        # the doubled IBM band.
        doubled = [diurnal_rate(h, mean_rate=3000.0) for h in range(24)]
        assert min(doubled) >= 2 * 1100 - 1 and max(doubled) <= 2 * 2050 + 1


class TestCloudSimulator:
    def _run(self, policy, apps, duration=600.0, trigger=None):
        fleet = default_fleet(seed=7, names=["auckland", "algiers", "lagos"])
        sim = CloudSimulator(
            fleet,
            policy,
            ExecutionModel(seed=5),
            trigger=trigger or SchedulingTrigger(queue_limit=20, interval_seconds=60),
            config=SimulationConfig(duration_seconds=duration, seed=5),
        )
        return sim.run(apps)

    def test_fcfs_dispatches_all_jobs(self):
        gen = LoadGenerator(mean_rate_per_hour=300, max_qubits=27, seed=4)
        apps = gen.generate(600.0)
        metrics = self._run(FCFSPolicy(_fake_estimate), apps)
        assert metrics.dispatched_jobs == len(apps)
        # Completion is counted when the COMPLETION event folds inside
        # the horizon; late finishers stay dispatched-only.
        assert 0 < metrics.completed_jobs <= metrics.dispatched_jobs
        assert metrics.mean_fidelity.mean() > 0

    def test_qonductor_batches_and_completes(self):
        gen = LoadGenerator(mean_rate_per_hour=300, max_qubits=27, seed=4)
        apps = gen.generate(600.0)
        policy = QonductorScheduler(_fake_estimate, seed=1, max_generations=8)
        metrics = self._run(policy, apps)
        assert metrics.dispatched_jobs == len(apps)
        assert metrics.completed_jobs <= metrics.dispatched_jobs
        assert metrics.scheduling_cycles >= 1
        assert metrics.scheduling_cycles < len(apps)  # batched, not per-job

    def test_least_busy_spreads_load(self):
        gen = LoadGenerator(mean_rate_per_hour=600, max_qubits=7, seed=6)
        apps = gen.generate(600.0)
        metrics = self._run(LeastBusyPolicy(_fake_estimate), apps)
        busy = [v for v in metrics.per_qpu_busy_seconds.values() if v > 0]
        assert len(busy) >= 2

    def test_oversized_jobs_fail(self):
        job = QuantumJob.from_circuit(ghz_linear(100), keep_circuit=False)
        app = HybridApplication(quantum_job=job, arrival_time=1.0)
        metrics = self._run(FCFSPolicy(_fake_estimate), [app])
        assert metrics.unschedulable_jobs == 1
        assert job.status is JobStatus.FAILED

    def test_metrics_series_sampled(self):
        gen = LoadGenerator(mean_rate_per_hour=300, max_qubits=27, seed=4)
        apps = gen.generate(600.0)
        metrics = self._run(FCFSPolicy(_fake_estimate), apps)
        times, utils = metrics.mean_utilization.as_arrays()
        assert len(times) >= 3
        assert np.all((utils >= 0) & (utils <= 1))

    def test_recalibration_hook(self):
        fleet = default_fleet(seed=7, names=["lagos"])
        sim = CloudSimulator(
            fleet,
            FCFSPolicy(_fake_estimate),
            ExecutionModel(seed=5),
            config=SimulationConfig(
                duration_seconds=300.0, recalibrate_every_seconds=100.0, seed=1
            ),
        )
        sim.run([])
        assert fleet[0].cycle >= 2


class TestImbalance:
    def test_greedy_users_create_hotspots(self):
        fleet = default_fleet(seed=9, names=["algiers", "cairo", "hanoi", "kolkata"])
        trace = simulate_queue_imbalance(fleet, num_days=7, seed=0)
        ratios = [trace.max_ratio(d) for d in range(7)]
        assert max(ratios) > 10.0  # order-of-magnitude imbalance

    def test_trace_shape(self):
        fleet = default_fleet(seed=9, names=["lagos", "nairobi"])
        trace = simulate_queue_imbalance(fleet, num_days=3, seed=1)
        assert trace.queue_sizes.shape == (3, 2)
        assert np.all(trace.queue_sizes >= 0)
