"""Integration tests: cross-module flows and small end-to-end experiments."""

import numpy as np
import pytest

from repro.backends import default_fleet
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
)
from repro.estimator import ResourceEstimator
from repro.scheduler import FCFSPolicy, QonductorScheduler, SchedulingTrigger
from repro.workloads import ghz_linear

NAMES = ["auckland", "cairo", "algiers", "lagos"]


@pytest.fixture(scope="module")
def estimator():
    return ResourceEstimator.train_for_fleet(
        default_fleet(seed=7, names=NAMES),
        num_records=600,
        execution_model=ExecutionModel(seed=3),
        seed=4,
    )


class TestEndToEndScheduling:
    def test_qonductor_beats_fcfs_under_load(self, estimator):
        """The headline claim at small scale: lower JCT, slightly lower
        fidelity, better load spread."""
        duration = 900.0
        gen = LoadGenerator(mean_rate_per_hour=1200, seed=5)

        def run(policy_cls):
            fleet = default_fleet(seed=7, names=NAMES)
            apps = gen.generate(duration)
            if policy_cls is QonductorScheduler:
                policy = QonductorScheduler(
                    estimator.estimate_for_qpu, seed=5, max_generations=15
                )
            else:
                policy = FCFSPolicy(estimator.estimate_for_qpu)
            sim = CloudSimulator(
                fleet,
                policy,
                ExecutionModel(seed=11),
                trigger=SchedulingTrigger(queue_limit=100, interval_seconds=120),
                config=SimulationConfig(duration_seconds=duration, seed=5),
            )
            return sim.run(apps).summary()

    # Same arrival seed -> identical workloads for both policies.
        s_qon = run(QonductorScheduler)
        s_fcfs = run(FCFSPolicy)
        assert s_qon["final_mean_jct"] < s_fcfs["final_mean_jct"]
        assert s_qon["max_load_spread"] < s_fcfs["max_load_spread"]
        # Fidelity sacrifice stays small (paper: < 3 %; we allow 10 pp).
        assert s_fcfs["mean_fidelity"] - s_qon["mean_fidelity"] < 0.10

    def test_estimator_guides_scheduler_consistently(self, estimator):
        """Scheduler decisions should correlate with realized fidelity."""
        fleet = default_fleet(seed=7, names=NAMES)
        em = ExecutionModel(seed=21)
        scheduler = QonductorScheduler(
            estimator.estimate_for_qpu, preference="fidelity", seed=2,
            max_generations=15,
        )
        from repro.cloud.job import QuantumJob

        jobs = [
            QuantumJob.from_circuit(ghz_linear(8), shots=2000, keep_circuit=False)
            for _ in range(10)
        ]
        schedule = scheduler.schedule(jobs, fleet, {q.name: 0.0 for q in fleet})
        rng = np.random.default_rng(0)
        for dec in schedule.decisions:
            qpu = next(q for q in fleet if q.name == dec.qpu_name)
            rec = em.execute(dec.job, qpu.calibration, qpu.model, rng)
            assert abs(rec.fidelity - dec.est_fidelity) < 0.35

    def test_calibration_drift_affects_estimates(self, estimator):
        fleet = default_fleet(seed=7, names=NAMES)
        from repro.cloud.job import QuantumJob

        job = QuantumJob.from_circuit(ghz_linear(8), shots=2000, keep_circuit=False)
        before = estimator.estimate_for_qpu(job, fleet[0])[0]
        for _ in range(3):
            fleet[0].recalibrate()
        after = estimator.estimate_for_qpu(job, fleet[0])[0]
        assert before != after


class TestExperimentHarness:
    def test_table1(self):
        from repro.experiments import table1_pricing

        r = table1_pricing()
        assert r["measured"]["qpu_vs_highend_orders_of_magnitude"] == 2
        assert r["measured"]["classical_trade_cheaper"]

    def test_fig2c_smoke(self):
        from repro.experiments import fig2c_load_imbalance

        r = fig2c_load_imbalance(num_days=4)
        assert r["measured"]["max_queue_ratio"] > 5.0

    def test_fig9c_smoke(self):
        from repro.experiments import fig9c_stage_runtimes

        r = fig9c_stage_runtimes(sizes=(2, 4), jobs=20)
        assert set(r["measured"]["stage_seconds_by_size"]) == {2, 4}
