"""Backend tests: models, calibration sampling, drift, fleet, templates."""

import numpy as np
import pytest

from repro.backends import (
    FLEET_SPEC,
    MODELS,
    OUDrift,
    QPU,
    average_calibrations,
    build_templates,
    default_fleet,
    fleet_of_size,
    get_model,
    heavy_hex_like,
    sample_calibration,
)


class TestModels:
    def test_falcon27_shape(self):
        model = get_model("falcon_r5_27")
        assert model.num_qubits == 27
        g = model.graph()
        assert g.number_of_nodes() == 27
        import networkx as nx

        assert nx.is_connected(g)
        assert max(d for _, d in g.degree()) <= 3  # heavy-hex property

    def test_all_models_connected_low_degree(self):
        import networkx as nx

        for model in MODELS.values():
            g = model.graph()
            assert nx.is_connected(g), model.name
            assert max(d for _, d in g.degree()) <= 3, model.name

    def test_heavy_hex_like_sparsity(self):
        edges = heavy_hex_like(64)
        degrees = {}
        for a, b in edges:
            degrees[a] = degrees.get(a, 0) + 1
            degrees[b] = degrees.get(b, 0) + 1
        assert max(degrees.values()) <= 3

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("nope")


class TestCalibration:
    def test_sample_respects_quality_ordering(self):
        model = get_model("falcon_r5_27")
        rng_good = np.random.default_rng(0)
        rng_bad = np.random.default_rng(0)
        good = sample_calibration(model, "good", 0.6, 0, rng_good)
        bad = sample_calibration(model, "bad", 1.6, 0, rng_bad)
        assert good.mean_error_2q < bad.mean_error_2q
        assert good.mean_readout_error < bad.mean_readout_error

    def test_t2_bounded_by_2t1(self):
        model = get_model("falcon_r5_7")
        cal = sample_calibration(model, "x", 1.0, 0, np.random.default_rng(3))
        for q in cal.noise_model.qubits:
            assert q.t2_us <= 2.0 * q.t1_us + 1e-9

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            sample_calibration(
                get_model("falcon_r5_7"), "x", -1.0, 0, np.random.default_rng(0)
            )

    def test_summary_keys(self):
        cal = sample_calibration(
            get_model("falcon_r5_7"), "x", 1.0, 2, np.random.default_rng(0)
        )
        s = cal.summary()
        assert s["cycle"] == 2 and "mean_error_2q" in s

    def test_average_calibrations(self):
        model = get_model("falcon_r5_7")
        rng = np.random.default_rng(1)
        cals = [
            sample_calibration(model, f"q{i}", q, 0, rng)
            for i, q in enumerate((0.7, 1.3))
        ]
        avg = average_calibrations(cals, "template")
        e_each = [c.noise_model.mean_gate_error_2q() for c in cals]
        assert min(e_each) < avg.noise_model.mean_gate_error_2q() < max(e_each)

    def test_average_rejects_mixed_models(self):
        rng = np.random.default_rng(1)
        a = sample_calibration(get_model("falcon_r5_7"), "a", 1.0, 0, rng)
        b = sample_calibration(get_model("falcon_r5_27"), "b", 1.0, 0, rng)
        with pytest.raises(ValueError):
            average_calibrations([a, b], "t")

    def test_average_empty(self):
        with pytest.raises(ValueError):
            average_calibrations([], "t")


class TestDrift:
    def test_mean_reversion(self):
        drift = OUDrift(1.0, theta=0.5, sigma=0.05, rng=np.random.default_rng(0))
        traj = drift.trajectory(500)
        assert abs(np.log(traj[-100:]).mean()) < 0.2

    def test_positivity(self):
        drift = OUDrift(0.8, sigma=0.5, rng=np.random.default_rng(1))
        assert np.all(drift.trajectory(200) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OUDrift(-1.0)
        with pytest.raises(ValueError):
            OUDrift(1.0, theta=0.0)


class TestQPUAndFleet:
    def test_recalibrate_advances_cycle(self):
        qpu = QPU("test", get_model("falcon_r5_7"), quality=1.0, seed=0)
        assert qpu.cycle == 0
        cal = qpu.recalibrate()
        assert qpu.cycle == 1 and cal.cycle == 1

    def test_calibration_changes_between_cycles(self):
        qpu = QPU("test", get_model("falcon_r5_7"), quality=1.0, seed=0)
        e0 = qpu.calibration.mean_error_2q
        qpu.recalibrate()
        assert qpu.calibration.mean_error_2q != e0

    def test_next_calibration_time(self):
        qpu = QPU(
            "t", get_model("falcon_r5_7"), seed=0, calibration_period_s=100.0
        )
        assert qpu.next_calibration_time(50.0) == pytest.approx(100.0)
        assert qpu.next_calibration_time(100.0) == pytest.approx(200.0)

    def test_default_fleet_names_and_quality_order(self):
        fleet = default_fleet(seed=7)
        names = [q.name for q in fleet]
        assert names == [s[0] for s in FLEET_SPEC]
        by_name = {q.name: q for q in fleet}
        # auckland (intrinsic 0.62) should calibrate better than algiers.
        assert (
            by_name["auckland"].calibration.mean_error_2q
            < by_name["algiers"].calibration.mean_error_2q
        )

    def test_fleet_subset(self):
        fleet = default_fleet(seed=7, names=["cairo", "lagos"])
        assert [q.name for q in fleet] == ["cairo", "lagos"]

    def test_fleet_of_size(self):
        fleet = fleet_of_size(16, seed=1)
        assert len(fleet) == 16
        assert all(q.num_qubits == 27 for q in fleet)
        with pytest.raises(ValueError):
            fleet_of_size(0)


class TestTemplates:
    def test_templates_group_by_model(self):
        fleet = default_fleet(seed=7)
        templates = build_templates(fleet)
        assert set(templates) == {"falcon_r5_27", "falcon_r5_16", "falcon_r5_7"}
        t27 = templates["falcon_r5_27"]
        assert len(t27.member_names) == 6
        assert t27.num_qubits == 27

    def test_template_is_fleet_average(self):
        fleet = default_fleet(seed=7, names=["lagos", "nairobi"])
        template = build_templates(fleet)["falcon_r5_7"]
        errors = [q.calibration.mean_error_2q for q in fleet]
        assert min(errors) <= template.calibration.mean_error_2q <= max(errors)
