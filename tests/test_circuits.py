"""Unit tests for the circuit IR (gates, circuit container, DAG, metrics)."""

import numpy as np
import pytest

from repro.circuits import (
    GATE_SPECS,
    Circuit,
    Gate,
    circuit_to_dag,
    compute_metrics,
    dag_layers,
    dag_to_circuit,
    gate_matrix,
    inverse_gate,
    is_parametric,
    is_two_qubit,
)


class TestGates:
    def test_all_unitary_specs_are_unitary(self):
        for name, spec in GATE_SPECS.items():
            if spec.matrix_fn is None:
                continue
            params = tuple(0.37 for _ in range(spec.num_params))
            mat = spec.matrix(params)
            dim = 2**spec.num_qubits
            assert mat.shape == (dim, dim)
            assert np.allclose(mat @ mat.conj().T, np.eye(dim), atol=1e-10), name

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError, match="unknown gate"):
            Gate("nope", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expects 2 qubits"):
            Gate("cx", (0,))

    def test_wrong_params_rejected(self):
        with pytest.raises(ValueError, match="params"):
            Gate("rx", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Gate("cx", (1, 1))

    def test_inverse_self_inverse(self):
        g = Gate("h", (0,))
        assert inverse_gate(g) == g

    def test_inverse_named(self):
        assert inverse_gate(Gate("s", (2,))).name == "sdg"
        assert inverse_gate(Gate("tdg", (0,))).name == "t"

    def test_inverse_parametric_negates(self):
        g = Gate("rz", (0,), (0.7,))
        inv = inverse_gate(g)
        assert inv.params == (-0.7,)
        assert np.allclose(g.matrix() @ inv.matrix(), np.eye(2), atol=1e-12)

    def test_inverse_u_gate(self):
        g = Gate("u", (0,), (0.3, 0.5, 0.9))
        inv = inverse_gate(g)
        assert np.allclose(g.matrix() @ inv.matrix(), np.eye(2), atol=1e-12)

    def test_inverse_non_unitary_raises(self):
        with pytest.raises(ValueError, match="non-unitary"):
            inverse_gate(Gate("measure", (0,)))

    def test_is_two_qubit(self):
        assert is_two_qubit("cx") and is_two_qubit("rzz")
        assert not is_two_qubit("h") and not is_two_qubit("measure")

    def test_is_parametric(self):
        assert is_parametric("rx") and not is_parametric("x")

    def test_remap(self):
        g = Gate("cx", (0, 1)).remap({0: 5, 1: 3})
        assert g.qubits == (5, 3)

    def test_cx_matrix_convention(self):
        # |10> (control=1 on qubit 0... convention: first listed qubit is
        # control; matrix rows indexed with first qubit as the high bit.
        cx = gate_matrix("cx")
        assert cx[2, 3] == 1 and cx[3, 2] == 1  # |10><11| + |11><10|


class TestCircuit:
    def test_builder_chain(self):
        c = Circuit(2).h(0).cx(0, 1).measure_all()
        assert len(c) == 4
        assert c.count_ops() == {"h": 1, "cx": 1, "measure": 2}

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_out_of_range_qubit(self):
        with pytest.raises(ValueError, match="out of range"):
            Circuit(2).h(5)

    def test_depth_linear(self):
        c = Circuit(1).h(0).h(0).h(0)
        assert c.depth() == 3

    def test_depth_parallel(self):
        c = Circuit(3).h(0).h(1).h(2)
        assert c.depth() == 1

    def test_depth_two_qubit_only(self):
        c = Circuit(2).h(0).cx(0, 1).h(1).cx(0, 1)
        assert c.depth(two_qubit_only=True) == 2

    def test_barrier_synchronizes_depth(self):
        c = Circuit(2).h(0)
        c.barrier(0, 1)
        c.h(1)
        assert c.depth() == 2  # h(1) must come after the barrier sync point

    def test_compose_with_mapping(self):
        inner = Circuit(2).cx(0, 1)
        outer = Circuit(4).compose(inner, qubits=[2, 3])
        assert outer.ops[0].qubits == (2, 3)

    def test_compose_wrong_mapping_size(self):
        with pytest.raises(ValueError):
            Circuit(4).compose(Circuit(2).h(0), qubits=[0])

    def test_inverse_reverses_and_inverts(self):
        c = Circuit(2).h(0).s(0).cx(0, 1)
        inv = c.inverse()
        names = [g.name for g in inv.ops]
        assert names == ["cx", "sdg", "h"]

    def test_inverse_roundtrip_unitary(self):
        c = Circuit(2).h(0).t(0).cx(0, 1).rz(0.3, 1)
        u = c.copy().compose(c.inverse()).unitary()
        assert np.allclose(u, np.eye(4), atol=1e-10)

    def test_power(self):
        c = Circuit(1).x(0)
        assert np.allclose(c.power(2).unitary(), np.eye(2))

    def test_power_negative_raises(self):
        with pytest.raises(ValueError):
            Circuit(1).x(0).power(-1)

    def test_remap_to_larger_register(self):
        c = Circuit(2).cx(0, 1)
        big = c.remap({0: 4, 1: 2}, num_qubits=6)
        assert big.num_qubits == 6
        assert big.ops[0].qubits == (4, 2)

    def test_serialization_roundtrip(self):
        c = Circuit(3, "test").h(0).rzz(0.5, 0, 2).measure(1)
        c.metadata["tag"] = "x"
        c2 = Circuit.from_dict(c.to_dict())
        assert c2 == c
        assert c2.metadata["tag"] == "x"

    def test_without_measurements(self):
        c = Circuit(2).h(0).measure_all()
        assert len(c.without_measurements()) == 1

    def test_measured_qubits_order(self):
        c = Circuit(3).measure(2).measure(0)
        assert c.measured_qubits == (2, 0)

    def test_qasm_like_dump(self):
        text = Circuit(2).h(0).cx(0, 1).qasm_like()
        assert "qreg q[2];" in text and "cx q[0],q[1];" in text

    def test_project_builder(self):
        c = Circuit(1).project(1, 0)
        assert c.ops[0].name == "project"
        with pytest.raises(ValueError):
            Circuit(1).project(2, 0)


class TestDAG:
    def test_dag_dependency_count(self):
        c = Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
        dag = circuit_to_dag(c)
        assert len(dag) == 6
        assert dag.longest_path_length() == 4  # h -> cx -> cx -> measure

    def test_dag_layers_parallelism(self):
        c = Circuit(4).h(0).h(1).h(2).h(3).cx(0, 1).cx(2, 3)
        layers = dag_layers(circuit_to_dag(c))
        assert len(layers) == 2
        assert len(layers[0]) == 4 and len(layers[1]) == 2

    def test_dag_roundtrip_preserves_semantics(self):
        c = Circuit(3).h(0).cx(0, 1).rz(0.2, 2).cx(1, 2)
        c2 = dag_to_circuit(circuit_to_dag(c))
        assert np.allclose(c.unitary(), c2.unitary(), atol=1e-12)

    def test_barrier_orders_across_wires(self):
        c = Circuit(2).h(0)
        c.barrier(0, 1)
        c.h(1)
        dag = circuit_to_dag(c)
        gates = dag.topological_gates()
        assert [g.name for g in gates] == ["h", "h"]
        # The barrier creates a dependency: h(1) must follow h(0).
        assert dag.longest_path_length() == 2


class TestMetrics:
    def test_basic_counts(self):
        c = Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
        m = compute_metrics(c)
        assert m.num_qubits == 3
        assert m.num_1q_gates == 1
        assert m.num_2q_gates == 2
        assert m.num_measurements == 3

    def test_routing_class_linear(self):
        c = Circuit(4).cx(0, 1).cx(1, 2).cx(2, 3)
        assert compute_metrics(c).routing_class == "linear"

    def test_routing_class_dense(self):
        c = Circuit(6)
        for i in range(6):
            for j in range(i + 1, 6):
                c.cx(i, j)
        assert compute_metrics(c).routing_class == "dense"

    def test_feature_vector_length_stable(self):
        c = Circuit(2).cx(0, 1)
        assert len(compute_metrics(c).feature_vector()) == 6

    def test_parallelism(self):
        c = Circuit(2).h(0).h(1)
        assert compute_metrics(c).parallelism == pytest.approx(2.0)
