"""Tests for the extension features: reservations (§7 priority access),
Hamiltonian-simulation / amplitude-estimation workloads, the ASCII figure
renderer, and validation of the execution model's mitigation effects
against the trajectory simulator."""

import numpy as np
import pytest

from repro.backends import default_fleet
from repro.cloud.execution import MITIGATION_EFFECTS, ExecutionModel
from repro.cloud.job import QuantumJob
from repro.experiments.ascii_plot import bar_chart, cdf_chart, line_chart
from repro.scheduler import (
    QonductorScheduler,
    Reservation,
    ReservationManager,
)
from repro.simulation import (
    NoiseModel,
    NoisySimulator,
    hellinger_fidelity,
    ideal_probabilities,
)
from repro.workloads import amplitude_estimation, ghz_linear, tfim_trotter


class TestReservations:
    def test_reservation_validation(self):
        with pytest.raises(ValueError):
            Reservation("x", start=10.0, end=10.0)

    def test_overlap_rejected(self):
        mgr = ReservationManager()
        mgr.reserve("auckland", 0.0, 100.0)
        with pytest.raises(ValueError, match="overlapping"):
            mgr.reserve("auckland", 50.0, 150.0)
        mgr.reserve("auckland", 100.0, 200.0)  # back-to-back is fine
        mgr.reserve("cairo", 50.0, 150.0)  # other device is fine

    def test_apply_toggles_online(self):
        fleet = default_fleet(seed=7, names=["auckland", "cairo"])
        mgr = ReservationManager()
        mgr.reserve("auckland", 10.0, 20.0, holder="bigcorp")
        held = mgr.apply(fleet, now=15.0)
        assert held == ["auckland"]
        assert not fleet[0].online and fleet[1].online
        mgr.apply(fleet, now=25.0)
        assert fleet[0].online

    def test_scheduler_skips_reserved_qpu(self):
        fleet = default_fleet(seed=7, names=["auckland", "cairo"])
        mgr = ReservationManager()
        mgr.reserve("auckland", 0.0, 1000.0)
        mgr.apply(fleet, now=10.0)
        sched = QonductorScheduler(
            lambda j, q: (0.8, 10.0), seed=1, max_generations=5
        )
        jobs = [
            QuantumJob.from_circuit(ghz_linear(5), keep_circuit=False)
            for _ in range(4)
        ]
        result = sched.schedule(jobs, fleet, {})
        assert all(d.qpu_name == "cairo" for d in result.decisions)

    def test_prune(self):
        mgr = ReservationManager()
        mgr.reserve("a", 0.0, 10.0)
        mgr.reserve("a", 20.0, 30.0)
        assert mgr.prune(now=15.0) == 1
        assert len(mgr.reservations) == 1


class TestDynamicsWorkloads:
    def test_tfim_zero_field_preserves_zero_state(self):
        # h = 0: |0...0> is an eigenstate; outcome must stay all-zeros.
        c = tfim_trotter(4, steps=3, h_field=0.0)
        probs = ideal_probabilities(c)
        assert probs[0] == pytest.approx(1.0, abs=1e-9)

    def test_tfim_structure(self):
        c = tfim_trotter(5, steps=2)
        ops = c.count_ops()
        assert ops["rzz"] == 8 and ops["rx"] == 10

    def test_tfim_validation(self):
        with pytest.raises(ValueError):
            tfim_trotter(1)
        with pytest.raises(ValueError):
            tfim_trotter(3, steps=0)

    def test_amplitude_estimation_powers_oscillate(self):
        """Hit probability follows sin^2((2k+1) theta) in Grover power k."""
        n = 3
        marked = "111"
        theta = np.arcsin(np.sqrt(1 / 2**n))
        for k in (0, 1, 2):
            probs = ideal_probabilities(amplitude_estimation(n, k, marked=marked))
            expected = np.sin((2 * k + 1) * theta) ** 2
            assert probs[int(marked, 2)] == pytest.approx(expected, abs=1e-6)

    def test_amplitude_estimation_validation(self):
        with pytest.raises(ValueError):
            amplitude_estimation(1)
        with pytest.raises(ValueError):
            amplitude_estimation(3, grover_power=-1)

    def test_registered_in_suite(self):
        from repro.workloads import generate

        assert generate("tfim", 6).metadata["benchmark"] == "tfim"
        assert generate("amplitude_estimation", 3).num_qubits == 3


class TestAsciiPlot:
    def test_line_chart_renders_all_series(self):
        out = line_chart(
            {
                "qonductor": (np.arange(5.0), np.arange(5.0)),
                "fcfs": (np.arange(5.0), np.arange(5.0) * 2),
            },
            title="test",
        )
        assert "test" in out and "*=qonductor" in out and "o=fcfs" in out
        assert len(out.splitlines()) > 10

    def test_line_chart_empty(self):
        out = line_chart({"a": (np.array([]), np.array([]))})
        assert "no data" in out

    def test_bar_chart_scales(self):
        out = bar_chart({"auckland": 100.0, "algiers": 50.0}, width=20)
        lines = out.splitlines()
        assert lines[0].count("█") == 20
        assert lines[1].count("█") == 10

    def test_cdf_chart_monotone_axes(self):
        out = cdf_chart({"reg": np.random.default_rng(0).uniform(0, 1, 50)})
        assert "P(err <= x)" in out


class TestMitigationEffectValidation:
    """The MITIGATION_EFFECTS constants must match the mechanistic
    improvements delivered by our actual mitigation implementations."""

    def _measured_gain(self, preset: str) -> float:
        from repro.mitigation import MitigationStack

        nm = NoiseModel.uniform(
            4, error_2q=0.02, readout_error=0.04, t1_us=80, t2_us=50
        )
        sim = NoisySimulator(nm, num_trajectories=60, seed=3)
        c = ghz_linear(4)
        ideal = ideal_probabilities(c)
        stack = MitigationStack.preset(preset)
        plan = stack.expand(c, nm)
        probs = [sim.noisy_probabilities(i) for i in plan.instances]
        return hellinger_fidelity(stack.post_process(plan, probs, nm, 4), ideal)

    def test_effect_table_orderings_match_simulation(self):
        base = self._measured_gain("none")
        rem = self._measured_gain("rem")
        full = self._measured_gain("dd+zne+rem")
        assert rem > base
        assert full > rem

    def test_model_gain_matches_simulation_direction(self):
        fleet = default_fleet(seed=7, names=["algiers"])
        em = ExecutionModel(seed=1)
        job_p = QuantumJob.from_circuit(ghz_linear(4), shots=4000)
        job_m = QuantumJob.from_circuit(
            ghz_linear(4), shots=4000, mitigation="dd+zne+rem"
        )
        model_gain = em.expected_fidelity(
            job_m, fleet[0].calibration, fleet[0].model
        ) - em.expected_fidelity(job_p, fleet[0].calibration, fleet[0].model)
        sim_gain = self._measured_gain("dd+zne+rem") - self._measured_gain("none")
        assert model_gain > 0 and sim_gain > 0

    def test_effects_table_well_formed(self):
        for tech, eff in MITIGATION_EFFECTS.items():
            for key, value in eff.items():
                if key in ("readout", "gate", "decoherence"):
                    assert 0.0 < value <= 1.0, (tech, key)
                else:
                    assert value > 0.0, (tech, key)
