"""Transpiler tests: decomposition exactness, layout, routing, scheduling."""

import numpy as np
import pytest

from repro.circuits import Circuit, Gate, gate_matrix
from repro.simulation import NoiseModel, hellinger_fidelity, ideal_probabilities
from repro.transpiler import (
    Target,
    decompose_circuit,
    decompose_to_basis,
    distance_matrix,
    fuse_1q_runs,
    linear_path_layout,
    noise_aware_layout,
    route,
    schedule_circuit,
    transpile,
    trivial_layout,
    u_to_basis_ops,
    zyz_angles,
)
from repro.transpiler.layout import Layout
from repro.workloads import ghz_linear, qft, real_amplitudes


def _equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol=1e-8) -> bool:
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < 1e-12:
        return np.allclose(a, b, atol=atol)
    scale = a[idx] / b[idx]
    return np.allclose(a, scale * b, atol=atol)


LINE4 = [(0, 1), (1, 2), (2, 3)]


def _line_target(n: int) -> Target:
    edges = [(i, i + 1) for i in range(n - 1)]
    return Target(
        num_qubits=n,
        coupling=tuple(edges),
        basis_gates=("rz", "sx", "x", "cx"),
        noise_model=NoiseModel.uniform(n, edges=edges),
    )


class TestDecomposition:
    @pytest.mark.parametrize(
        "name", ["h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "sxdg"]
    )
    def test_1q_constants_exact(self, name):
        ops = decompose_to_basis(Gate(name, (0,)))
        mat = np.eye(2, dtype=complex)
        for g in ops:
            mat = g.matrix() @ mat
        assert _equal_up_to_phase(mat, gate_matrix(name))

    @pytest.mark.parametrize("angle", [0.0, 0.3, np.pi / 2, np.pi, 5.1])
    @pytest.mark.parametrize("name", ["rx", "ry", "p"])
    def test_1q_parametric_exact(self, name, angle):
        ops = decompose_to_basis(Gate(name, (0,), (angle,)))
        mat = np.eye(2, dtype=complex)
        for g in ops:
            mat = g.matrix() @ mat
        assert _equal_up_to_phase(mat, gate_matrix(name, angle))

    @pytest.mark.parametrize("name", ["cz", "swap", "rzz", "rxx", "cp", "crz"])
    def test_2q_rules_exact(self, name):
        params = (0.7,) if name in ("rzz", "rxx", "cp", "crz") else ()
        gate = Gate(name, (0, 1), params)
        circ = Circuit(2).append(gate)
        dec = decompose_circuit(circ)
        assert _equal_up_to_phase(dec.unitary(), circ.unitary())
        assert all(g.name in ("rz", "sx", "x", "cx") for g in dec.gates)

    def test_zyz_roundtrip_random(self):
        rng = np.random.default_rng(5)
        from scipy.stats import unitary_group

        for _ in range(20):
            u = unitary_group.rvs(2, random_state=rng)
            theta, phi, lam = zyz_angles(u)
            ops = u_to_basis_ops(theta, phi, lam, 0)
            mat = np.eye(2, dtype=complex)
            for g in ops:
                mat = g.matrix() @ mat
            assert _equal_up_to_phase(mat, u)

    def test_fuse_1q_runs_reduces_and_preserves(self):
        c = Circuit(2).h(0).t(0).s(0).h(0).cx(0, 1).h(1).h(1)
        fused = fuse_1q_runs(decompose_circuit(c))
        assert _equal_up_to_phase(fused.unitary(), c.unitary())
        assert len(fused.gates) <= len(decompose_circuit(c).gates)

    def test_fused_identity_run_vanishes(self):
        c = Circuit(1).h(0).h(0)
        fused = fuse_1q_runs(c)
        assert len(fused.gates) == 0


class TestLayout:
    def test_trivial(self):
        lay = trivial_layout(Circuit(3).h(0), 5)
        assert lay.logical_to_physical == {0: 0, 1: 1, 2: 2}

    def test_trivial_too_wide(self):
        with pytest.raises(ValueError):
            trivial_layout(Circuit(6).h(0), 3)

    def test_layout_injective_enforced(self):
        with pytest.raises(ValueError):
            Layout({0: 1, 1: 1}, 3)

    def test_noise_aware_picks_valid_region(self):
        nm = NoiseModel.uniform(4, edges=LINE4)
        circ = Circuit(3).cx(0, 1).cx(1, 2)
        lay = noise_aware_layout(circ, LINE4, nm, 4)
        phys = set(lay.logical_to_physical.values())
        assert len(phys) == 3

    def test_linear_path_layout_for_chain(self):
        nm = NoiseModel.uniform(4, edges=LINE4)
        circ = Circuit(3).cx(0, 1).cx(1, 2)
        lay = linear_path_layout(circ, LINE4, nm, 4)
        assert lay is not None
        # Consecutive chain qubits land on coupled physical qubits.
        p = lay.logical_to_physical
        coupled = {tuple(sorted(e)) for e in LINE4}
        assert tuple(sorted((p[0], p[1]))) in coupled
        assert tuple(sorted((p[1], p[2]))) in coupled

    def test_linear_path_layout_rejects_star(self):
        nm = NoiseModel.uniform(5, edges=[(i, i + 1) for i in range(4)])
        star = Circuit(4).cx(0, 1).cx(0, 2).cx(0, 3)
        assert (
            linear_path_layout(star, [(i, i + 1) for i in range(4)], nm, 5) is None
        )


class TestRouting:
    def test_no_swaps_when_adjacent(self):
        c = Circuit(3).cx(0, 1).cx(1, 2)
        routed = route(c, LINE4, 4)
        assert routed.num_swaps == 0

    def test_swaps_inserted_for_distant(self):
        c = Circuit(4).cx(0, 3)
        routed = route(c, LINE4, 4)
        assert routed.num_swaps >= 1
        # Every 2q gate in the output must be on a coupled pair.
        coupled = {tuple(sorted(e)) for e in LINE4}
        for g in routed.circuit.ops:
            if g.is_unitary and g.num_qubits == 2:
                assert tuple(sorted(g.qubits)) in coupled

    def test_routing_preserves_semantics(self):
        c = qft(4, measure=False)
        routed = route(c, LINE4, 4)
        # Apply the inverse of the tracked permutation and compare states.
        p_orig = ideal_probabilities(c)
        p_routed = ideal_probabilities(routed.circuit)
        fm = routed.final_mapping
        remapped = np.zeros_like(p_routed)
        for idx in range(len(p_routed)):
            logical = 0
            for q in range(4):
                logical |= ((idx >> fm[q]) & 1) << q
            remapped[logical] += p_routed[idx]
        assert hellinger_fidelity(remapped, p_orig) == pytest.approx(1.0, abs=1e-9)

    def test_disconnected_raises(self):
        with pytest.raises(ValueError, match="disconnected"):
            route(Circuit(4).cx(0, 3), [(0, 1), (2, 3)], 4)

    def test_distance_matrix(self):
        d = distance_matrix(LINE4, 4)
        assert d[0, 3] == 3 and d[1, 2] == 1 and d[2, 2] == 0


class TestScheduling:
    def test_schedule_durations(self):
        nm = NoiseModel.uniform(2, duration_1q_ns=50, duration_2q_ns=300)
        c = Circuit(2).sx(0).cx(0, 1).measure_all()
        sched = schedule_circuit(c, nm)
        assert sched.duration_ns == pytest.approx(50 + 300 + nm.readout_duration_ns)

    def test_parallel_ops_overlap(self):
        nm = NoiseModel.uniform(4, duration_2q_ns=300)
        c = Circuit(4).cx(0, 1).cx(2, 3)
        assert schedule_circuit(c, nm).duration_ns == pytest.approx(300)

    def test_delay_respected(self):
        nm = NoiseModel.uniform(1)
        c = Circuit(1).delay(500.0, 0).sx(0)
        sched = schedule_circuit(c, nm)
        sx_op = [o for o in sched.ops if o.name == "sx"][0]
        assert sx_op.start_ns == pytest.approx(500.0)


class TestTranspile:
    def test_output_in_basis(self):
        target = _line_target(5)
        res = transpile(qft(4, measure=True), target)
        for g in res.circuit.ops:
            if g.is_unitary:
                assert g.name in target.basis_gates

    def test_too_wide_raises(self):
        with pytest.raises(ValueError):
            transpile(Circuit(8).h(0), _line_target(4))

    def test_semantics_preserved_via_mapping(self):
        target = _line_target(6)
        c = qft(5, measure=False)
        res = transpile(c, target)
        p_phys = ideal_probabilities(res.circuit)
        p_ideal = ideal_probabilities(c)
        fm = res.final_mapping
        remapped = np.zeros(2**5)
        for idx in range(2**6):
            logical = 0
            for q in range(5):
                logical |= ((idx >> fm[q]) & 1) << q
            remapped[logical] += p_phys[idx]
        assert hellinger_fidelity(remapped, p_ideal) == pytest.approx(1.0, abs=1e-9)

    def test_linear_ansatz_routes_swap_free(self):
        res = transpile(
            real_amplitudes(5, reps=2, entanglement="linear"), _line_target(6)
        )
        assert res.num_swaps == 0

    def test_metrics_and_schedule_populated(self):
        res = transpile(ghz_linear(4), _line_target(5))
        assert res.metrics.num_2q_gates >= 3
        assert res.duration_ns > 0

    def test_unknown_layout_method(self):
        with pytest.raises(ValueError):
            transpile(ghz_linear(3), _line_target(4), layout_method="magic")

    def test_target_from_backend(self):
        from repro.backends import default_fleet

        qpu = default_fleet(seed=1, names=["lagos"])[0]
        target = Target.from_backend(qpu)
        assert target.num_qubits == 7
        res = transpile(ghz_linear(4), target)
        assert res.circuit.num_qubits == 7
