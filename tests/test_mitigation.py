"""Error-mitigation tests: each technique must (1) preserve circuit
semantics where applicable and (2) demonstrably improve noisy fidelity."""

import numpy as np
import pytest

from repro.circuits import Circuit, gate_matrix
from repro.mitigation import (
    CX_TWIRL_SET,
    REM,
    ZNE,
    ExpFactory,
    LinearFactory,
    MitigationStack,
    PolyFactory,
    RichardsonFactory,
    cut_circuit,
    fold_gates,
    fold_global,
    fold_to_factor,
    get_factory,
    insert_dd,
    knit,
    pauli_twirl,
    pec_combine_probs,
    pec_gamma,
    pec_sample_circuits,
    sampling_overhead,
    twirl_ensemble,
    zne_expand,
    zne_infer_probs,
)
from repro.simulation import (
    NoiseModel,
    NoisySimulator,
    hellinger_fidelity,
    ideal_probabilities,
    simulate_statevector,
)
from repro.workloads import clustered_circuit, ghz_linear


def _equal_up_to_phase(a, b, atol=1e-8):
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    scale = a[idx] / b[idx]
    return np.allclose(a, scale * b, atol=atol)


class TestFolding:
    def test_global_fold_preserves_unitary(self):
        c = Circuit(2).h(0).cx(0, 1).t(1)
        folded = fold_global(c, 1)
        assert _equal_up_to_phase(folded.unitary(), c.unitary())
        assert len(folded.gates) == 3 * len(c.gates)

    def test_gate_fold_preserves_unitary(self):
        c = Circuit(2).h(0).cx(0, 1)
        folded = fold_gates(c, [1])
        assert _equal_up_to_phase(folded.unitary(), c.unitary())
        assert len(folded.gates) == 4

    def test_fold_to_factor_scales_gate_count(self):
        c = ghz_linear(4, measure=False)
        n0 = len(c.gates)
        f3 = fold_to_factor(c, 3.0)
        assert len(f3.gates) == pytest.approx(3 * n0, abs=2)
        f2 = fold_to_factor(c, 2.0)
        assert n0 < len(f2.gates) < len(f3.gates)

    def test_fold_invalid_factor(self):
        with pytest.raises(ValueError):
            fold_to_factor(Circuit(1).x(0), 0.5)

    def test_fold_keeps_measurements_last(self):
        c = ghz_linear(3, measure=True)
        folded = fold_global(c, 1)
        assert folded.ops[-1].name == "measure"


class TestExtrapolation:
    def test_linear_recovers_line(self):
        fac = LinearFactory()
        assert fac([1, 3, 5], [0.9, 0.7, 0.5]) == pytest.approx(1.0)

    def test_richardson_exact_quadratic(self):
        fac = RichardsonFactory()
        xs = [1.0, 2.0, 3.0]
        ys = [1 - 0.1 * x - 0.02 * x * x for x in xs]
        assert fac(xs, ys) == pytest.approx(1.0, abs=1e-9)

    def test_poly_factory(self):
        fac = PolyFactory(order=2)
        xs = [1, 2, 3, 4]
        ys = [2 - x**2 * 0.1 for x in xs]
        assert fac(xs, ys) == pytest.approx(2.0, abs=1e-8)

    def test_exp_factory_recovers_decay(self):
        fac = ExpFactory()
        xs = np.array([1.0, 2.0, 3.0, 5.0])
        ys = 0.2 + 0.7 * np.exp(-0.4 * xs)
        assert fac(list(xs), list(ys)) == pytest.approx(0.9, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearFactory()([1.0], [0.5])
        with pytest.raises(ValueError):
            LinearFactory()([1, 1], [0.5, 0.6])
        with pytest.raises(KeyError):
            get_factory("nope")


class TestZNE:
    def test_expand_counts_and_scales(self):
        c = ghz_linear(3)
        instances = zne_expand(c, (1.0, 3.0))
        assert len(instances) == 2
        assert instances[0].metadata["zne_scale"] == 1.0
        assert len(instances[1].gates) > len(instances[0].gates)

    def test_expand_invalid_factor(self):
        with pytest.raises(ValueError):
            zne_expand(ghz_linear(3), (0.5, 1.0))

    def test_infer_probs_is_distribution(self):
        p1 = np.array([0.7, 0.3])
        p3 = np.array([0.6, 0.4])
        p5 = np.array([0.5, 0.5])
        out = zne_infer_probs([1, 3, 5], [p1, p3, p5])
        assert out.sum() == pytest.approx(1.0)
        assert out[0] > 0.7  # extrapolates beyond the least-noisy point

    def test_zne_improves_noisy_ghz(self):
        nm = NoiseModel.uniform(4, error_2q=0.03, readout_error=0.0)
        sim = NoisySimulator(nm, num_trajectories=120, seed=7)
        c = ghz_linear(4)
        ideal = ideal_probabilities(c)
        zne = ZNE(noise_factors=(1.0, 3.0, 5.0))
        probs = [sim.noisy_probabilities(inst) for inst in zne.apply(c)]
        raw_fid = hellinger_fidelity(probs[0], ideal)
        mit_fid = hellinger_fidelity(zne.inference_probs(probs), ideal)
        assert mit_fid > raw_fid

    def test_overheads(self):
        zne = ZNE(noise_factors=(1.0, 3.0, 5.0))
        assert zne.sampling_overhead == 3.0
        assert zne.gate_overhead == pytest.approx(3.0)


class TestREM:
    def test_tensored_inversion_recovers_ideal(self):
        nm = NoiseModel.uniform(3, readout_error=0.08)
        c = ghz_linear(3)
        ideal = ideal_probabilities(c)
        from repro.simulation import apply_readout_noise_probs

        noisy = apply_readout_noise_probs(ideal, nm, 3)
        rem = REM(nm, "tensored")
        recovered = rem.mitigate_probs(noisy, 3)
        assert hellinger_fidelity(recovered, ideal) == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("method", ["full", "least_squares"])
    def test_dense_methods(self, method):
        nm = NoiseModel.uniform(2, readout_error=0.06)
        ideal = np.array([0.5, 0.0, 0.0, 0.5])
        from repro.simulation import apply_readout_noise_probs

        noisy = apply_readout_noise_probs(ideal, nm, 2)
        rec = REM(nm, method).mitigate_probs(noisy, 2)
        assert hellinger_fidelity(rec, ideal) > 0.999

    def test_counts_entry_point(self):
        nm = NoiseModel.uniform(1, readout_error=0.1)
        rec = REM(nm).mitigate_counts({"0": 900, "1": 100}, 1)
        assert rec[0] > 0.9

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            REM(NoiseModel.uniform(1), "nope")


class TestDD:
    def test_insertion_only_in_long_idles(self):
        nm = NoiseModel.uniform(3)
        c = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1).measure_all()
        out = insert_dd(c, nm, sequence_type="XpXm")
        assert out.metadata["dd_pulses_inserted"] > 0
        assert out.count_ops().get("x", 0) >= 2

    def test_unknown_sequence(self):
        with pytest.raises(ValueError):
            insert_dd(Circuit(1).x(0), NoiseModel.uniform(1), sequence_type="Q")

    def test_dd_preserves_semantics(self):
        nm = NoiseModel.uniform(3)
        c = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        out = insert_dd(c, nm)
        p1 = ideal_probabilities(c)
        p2 = ideal_probabilities(out)
        assert hellinger_fidelity(p1, p2) == pytest.approx(1.0, abs=1e-9)

    def test_dd_improves_idle_heavy_circuit(self):
        """DD must refocus quasi-static dephasing mechanistically."""
        nm = NoiseModel.uniform(3, t1_us=200.0, t2_us=20.0, error_1q=1e-5,
                                error_2q=1e-4, readout_error=0.0)
        # A circuit with a long idle on qubit 0 between two interactions.
        c = Circuit(3).h(0).cx(0, 1).cx(1, 2).cx(1, 2).cx(1, 2).cx(0, 1).h(0)
        c.measure(0)
        ideal = ideal_probabilities(c)
        plain_fid = hellinger_fidelity(
            NoisySimulator(nm, num_trajectories=150, seed=3).noisy_probabilities(c),
            ideal,
        )
        dd_circ = insert_dd(c, nm, min_idle_ns=100.0)
        dd_fid = hellinger_fidelity(
            NoisySimulator(nm, num_trajectories=150, seed=3).noisy_probabilities(
                dd_circ
            ),
            ideal,
        )
        assert dd_fid > plain_fid


class TestTwirling:
    def test_all_sandwiches_preserve_cx(self):
        ref = Circuit(2).cx(0, 1).unitary()
        for pc, pt, qc, qt in CX_TWIRL_SET:
            c = Circuit(2)
            for name, q in ((pc, 0), (pt, 1)):
                if name != "id":
                    c.add(name, [q])
            c.cx(0, 1)
            for name, q in ((qc, 0), (qt, 1)):
                if name != "id":
                    c.add(name, [q])
            assert _equal_up_to_phase(c.unitary(), ref)

    def test_twirled_circuit_same_distribution(self):
        c = ghz_linear(3, measure=False)
        rng = np.random.default_rng(3)
        tw = pauli_twirl(c, rng)
        assert hellinger_fidelity(
            ideal_probabilities(tw), ideal_probabilities(c)
        ) == pytest.approx(1.0, abs=1e-9)

    def test_ensemble_size(self):
        ens = twirl_ensemble(ghz_linear(3), num_instances=5, seed=1)
        assert len(ens) == 5


class TestPEC:
    def test_gamma_grows_with_gates(self):
        nm = NoiseModel.uniform(3, error_2q=0.02)
        g1 = pec_gamma(ghz_linear(3, measure=False), nm)
        g2 = pec_gamma(ghz_linear(3, measure=False).power(2), nm)
        assert g2 > g1 > 1.0

    def test_samples_preserve_distribution_on_ideal_sim(self):
        nm = NoiseModel.uniform(2, error_2q=0.05)
        c = Circuit(2).h(0).cx(0, 1)
        samples, gamma = pec_sample_circuits(c, nm, 200, np.random.default_rng(0))
        assert gamma > 1.0
        assert any(s.sign < 0 for s in samples)

    def test_combine_projects_to_simplex(self):
        nm = NoiseModel.uniform(2, error_2q=0.05)
        c = Circuit(2).h(0).cx(0, 1)
        samples, gamma = pec_sample_circuits(c, nm, 50, np.random.default_rng(1))
        probs = [np.abs(simulate_statevector(s.circuit)) ** 2 for s in samples]
        out = pec_combine_probs(samples, probs, gamma)
        assert out.sum() == pytest.approx(1.0)
        assert np.all(out >= 0)


class TestCutting:
    def test_qpd_channel_identity(self):
        """The hard-coded CZ QPD must reproduce the CZ channel exactly."""
        import itertools

        def sop(k):
            return np.kron(k, k.conj())

        I2 = np.eye(2)
        Z = gate_matrix("z")
        S = gate_matrix("s")
        Sdg = gate_matrix("sdg")
        P0 = np.diag([1.0, 0.0]).astype(complex)
        P1 = np.diag([0.0, 1.0]).astype(complex)
        mats = {"id": I2, "z": Z, "s": S, "sdg": Sdg, "p0": P0, "p1": P1}
        from repro.mitigation.cutting import CZ_QPD_TERMS

        total = np.zeros((16, 16), dtype=complex)
        for coeff, a, b in CZ_QPD_TERMS:
            total += coeff * sop(np.kron(mats[a], mats[b]))
        cz = np.diag([1, 1, 1, -1]).astype(complex)
        assert np.allclose(total, sop(cz), atol=1e-12)

    def test_exact_reconstruction_ideal(self):
        c = clustered_circuit(6, 2, num_clusters=2, bridge_gates=1, measure=False, seed=5)
        parts = c.metadata["clusters"]
        plan = cut_circuit(c, parts[0], parts[1])
        assert plan.num_variants == 10
        pa = [np.abs(simulate_statevector(v)) ** 2 for v in plan.variants_a]
        pb = [np.abs(simulate_statevector(v)) ** 2 for v in plan.variants_b]
        full, _ = knit(plan, pa, pb)
        assert hellinger_fidelity(full, ideal_probabilities(c)) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_two_cuts_reconstruction(self):
        c = clustered_circuit(6, 2, num_clusters=2, bridge_gates=2, measure=False, seed=8)
        parts = c.metadata["clusters"]
        plan = cut_circuit(c, parts[0], parts[1])
        assert plan.num_variants == 100
        pa = [np.abs(simulate_statevector(v)) ** 2 for v in plan.variants_a]
        pb = [np.abs(simulate_statevector(v)) ** 2 for v in plan.variants_b]
        full, _ = knit(plan, pa, pb)
        assert hellinger_fidelity(full, ideal_probabilities(c)) == pytest.approx(
            1.0, abs=1e-8
        )

    def test_non_cz_bridge_rejected(self):
        c = Circuit(4).cx(0, 2)
        with pytest.raises(ValueError, match="not a CZ"):
            cut_circuit(c, [0, 1], [2, 3])

    def test_partition_validation(self):
        c = Circuit(4).cz(0, 2)
        with pytest.raises(ValueError, match="overlap"):
            cut_circuit(c, [0, 1], [1, 2, 3])
        with pytest.raises(ValueError, match="cover"):
            cut_circuit(c, [0, 1], [2])

    def test_sampling_overhead(self):
        assert sampling_overhead(1) == 9.0
        assert sampling_overhead(2) == 81.0


class TestStack:
    def test_preset_validation(self):
        with pytest.raises(KeyError):
            MitigationStack.preset("nope")
        with pytest.raises(ValueError):
            MitigationStack.from_names(["nope"])

    def test_overheads(self):
        stack = MitigationStack.preset("dd+twirl+zne+rem")
        assert stack.shot_overhead == 12.0  # 3 ZNE factors x 4 twirls
        assert stack.classical_overhead > 1.0

    def test_expand_post_process_shapes(self):
        nm = NoiseModel.uniform(3, error_2q=0.02, readout_error=0.04)
        stack = MitigationStack.preset("zne+rem")
        c = ghz_linear(3)
        plan = stack.expand(c, nm)
        assert len(plan.instances) == 3
        sim = NoisySimulator(nm, num_trajectories=20, seed=1)
        probs = [sim.noisy_probabilities(i) for i in plan.instances]
        out = stack.post_process(plan, probs, nm, 3)
        assert out.sum() == pytest.approx(1.0)

    def test_full_stack_beats_no_mitigation(self):
        nm = NoiseModel.uniform(
            4, error_2q=0.02, readout_error=0.04, t1_us=80, t2_us=50
        )
        sim = NoisySimulator(nm, num_trajectories=60, seed=3)
        c = ghz_linear(4)
        ideal = ideal_probabilities(c)

        def run(preset):
            stack = MitigationStack.preset(preset)
            plan = stack.expand(c, nm)
            probs = [sim.noisy_probabilities(i) for i in plan.instances]
            return hellinger_fidelity(
                stack.post_process(plan, probs, nm, 4), ideal
            )

        assert run("dd+zne+rem") > run("none") + 0.05

    def test_result_count_mismatch(self):
        nm = NoiseModel.uniform(2)
        stack = MitigationStack.preset("zne")
        plan = stack.expand(ghz_linear(2), nm)
        with pytest.raises(ValueError):
            stack.post_process(plan, [np.ones(4) / 4], nm, 2)
