"""Cloud-operator scenario: Qonductor vs FCFS on a synthetic IBM-like load.

Reproduces the paper's §8.3 end-to-end comparison at a reduced scale:
identical Poisson arrival streams are scheduled by (a) the Qonductor
hybrid scheduler (NSGA-II + MCDM, batched triggers) and (b) the standard
FCFS-onto-best-fidelity practice, and the three headline metrics are
compared: mean fidelity, mean JCT, mean QPU utilization.

Run:  python examples/cloud_simulation.py [--minutes 15] [--rate 1500]
"""

import argparse

from repro.backends import default_fleet
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
)
from repro.estimator import ResourceEstimator
from repro.scheduler import FCFSPolicy, QonductorScheduler, SchedulingTrigger

FLEET_NAMES = [
    "auckland", "lagos", "cairo", "hanoi",
    "kolkata", "mumbai", "guadalupe", "nairobi",
]


def run_policy(policy_name: str, estimator, duration: float, rate: float) -> dict:
    fleet = default_fleet(seed=7, names=FLEET_NAMES)
    apps = LoadGenerator(mean_rate_per_hour=rate, seed=5).generate(duration)
    if policy_name == "qonductor":
        policy = QonductorScheduler(
            estimator.estimate_for_qpu, preference="balanced", seed=5,
            max_generations=25,
        )
    else:
        policy = FCFSPolicy(estimator.estimate_for_qpu)
    sim = CloudSimulator(
        fleet,
        policy,
        ExecutionModel(seed=11),
        trigger=SchedulingTrigger(queue_limit=100, interval_seconds=120),
        config=SimulationConfig(duration_seconds=duration, seed=5),
    )
    return sim.run(apps).summary()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=15.0)
    parser.add_argument("--rate", type=float, default=1500.0)
    args = parser.parse_args()
    duration = args.minutes * 60.0

    print("Training the resource estimator on synthetic calibration runs ...")
    estimator = ResourceEstimator.train_for_fleet(
        default_fleet(seed=7, names=FLEET_NAMES),
        num_records=800,
        execution_model=ExecutionModel(seed=7),
        seed=7,
    )
    rep = estimator.estimators
    print(
        f"  fidelity model: degree {rep.fidelity.degree}, "
        f"CV R^2 = {rep.fidelity.cv_r2:.3f}"
    )
    print(
        f"  runtime model:  degree {rep.runtime.degree}, "
        f"CV R^2 = {rep.runtime.cv_r2:.3f}"
    )

    print(f"\nSimulating {args.minutes:.0f} min at {args.rate:.0f} jobs/hour ...")
    s_qon = run_policy("qonductor", estimator, duration, args.rate)
    s_fcfs = run_policy("fcfs", estimator, duration, args.rate)

    print(f"\n{'metric':<24s} {'Qonductor':>12s} {'FCFS':>12s}")
    for key, label in [
        ("mean_fidelity", "mean fidelity"),
        ("final_mean_jct", "mean JCT [s]"),
        ("mean_utilization", "mean utilization"),
        ("load_cv", "load CV"),
        ("completed_jobs", "completed jobs"),
    ]:
        print(f"{label:<24s} {s_qon[key]:>12.3f} {s_fcfs[key]:>12.3f}")

    jct_red = 100.0 * (1.0 - s_qon["final_mean_jct"] / s_fcfs["final_mean_jct"])
    fid_drop = 100.0 * (s_fcfs["mean_fidelity"] - s_qon["mean_fidelity"])
    print(
        f"\nQonductor: {jct_red:+.1f}% JCT vs FCFS for a "
        f"{fid_drop:.1f} pp fidelity trade (paper: -48% JCT for <3%; "
        "gaps grow with simulation horizon)."
    )


if __name__ == "__main__":
    main()
