"""Multi-tenant front door: one abusive tenant vs admission control.

Extension scenario (not a paper figure): three normal tenants — one
premium (tier 0, tight SLO) and two standard — share a bursty MMPP
stream with a flooding "abuser" that contributes half the offered load.
A QPU flashes out mid-run for good measure.  Three arms on matched
seeds compare what the abuser costs the premium tenant's tail latency
and what the admission front door (per-tenant token-bucket rate limit +
queue-depth quota, overflow degraded to best effort) claws back.

Run:  python examples/tenant_scenario.py [--minutes 30] [--rate 2400]
"""

import argparse

from repro.experiments import tenant_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=30.0)
    parser.add_argument("--rate", type=float, default=2400.0)
    args = parser.parse_args()

    print(
        f"Simulating {args.minutes:.0f} min at {args.rate:.0f} jobs/hour "
        "(3 arms: no abuser / admission off / admission on) ..."
    )
    r = tenant_study(
        rate_per_hour=args.rate,
        duration_seconds=args.minutes * 60.0,
    )

    arms = r["arms"]
    print(f"\n{'metric':<26s}" + "".join(f"{a:>16s}" for a in arms))
    for key, label in [
        ("tier0_p95_jct", "premium p95 JCT [s]"),
        ("tier0_mean_jct", "premium mean JCT [s]"),
        ("jain_fairness", "Jain fairness"),
        ("slo_violations", "SLO violations"),
        ("admission_rejected", "rejected at door"),
        ("admission_degraded", "degraded to B/E"),
        ("dispatched_jobs", "dispatched jobs"),
    ]:
        row = "".join(f"{arms[a][key]:>16.3f}" for a in arms)
        print(f"{label:<26s}{row}")

    iso = r["isolation"]
    print(
        f"\nWith admission on, the premium tenant's p95 JCT sits "
        f"{iso['tier0_p95_degradation_pct']:+.1f}% from the no-abuser "
        f"reference (gate: <= +15%), and Jain's index moves "
        f"{iso['jain_admission_off']:.4f} -> {iso['jain_admission_on']:.4f} "
        "vs the unprotected run."
    )


if __name__ == "__main__":
    main()
