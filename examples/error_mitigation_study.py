"""Researcher scenario: compare error-mitigation stacks on a noisy device.

Walks the paper's key idea #2 mechanistically: run a GHZ probe through
progressively richer mitigation stacks on a trajectory-level noisy
simulator and watch fidelity rise while quantum/classical overheads grow —
then cut a clustered circuit in half (quasi-probability CZ cutting, paper
refs [60, 89]) and knit the fragments back together.

Run:  python examples/error_mitigation_study.py
"""

import numpy as np

from repro.backends import default_fleet
from repro.mitigation import MitigationStack, cut_circuit, knit
from repro.simulation import (
    NoisySimulator,
    hellinger_fidelity,
    ideal_probabilities,
)
from repro.simulation.statevector import simulate_statevector
from repro.workloads import clustered_circuit, ghz_linear


def mitigation_ladder() -> None:
    qpu = default_fleet(seed=7, names=["algiers"])[0]  # the noisiest device
    nm = qpu.noise_model
    circuit = ghz_linear(5)
    ideal = ideal_probabilities(circuit)
    sim = NoisySimulator(nm, num_trajectories=80, seed=3)

    print(f"GHZ-5 on {qpu.name} (quality factor "
          f"{qpu.calibration.quality_factor:.2f}):")
    print(f"{'stack':<18s} {'fidelity':>9s} {'circuits':>9s} {'shots x':>8s}")
    for preset in ["none", "rem", "dd", "zne", "zne+rem", "dd+zne+rem"]:
        stack = MitigationStack.preset(preset)
        plan = stack.expand(circuit, nm)
        probs = [sim.noisy_probabilities(inst) for inst in plan.instances]
        mitigated = stack.post_process(plan, probs, nm, circuit.num_qubits)
        fid = hellinger_fidelity(mitigated, ideal)
        print(
            f"{preset:<18s} {fid:>9.4f} {len(plan.instances):>9d} "
            f"{stack.shot_overhead:>8.0f}"
        )


def cutting_demo() -> None:
    print("\nCircuit knitting (exact CZ quasi-probability decomposition):")
    circuit = clustered_circuit(
        8, depth=3, num_clusters=2, bridge_gates=1, measure=False, seed=4
    )
    parts = circuit.metadata["clusters"]
    plan = cut_circuit(circuit, parts[0], parts[1])
    print(
        f"  cut {len(plan.cuts)} bridge CZ(s) -> {plan.num_variants} signed "
        f"fragment variants (gamma = {plan.gamma:.0f})"
    )
    probs_a = [np.abs(simulate_statevector(v)) ** 2 for v in plan.variants_a]
    probs_b = [np.abs(simulate_statevector(v)) ** 2 for v in plan.variants_b]
    knitted, seconds = knit(plan, probs_a, probs_b)
    fid = hellinger_fidelity(knitted, ideal_probabilities(circuit))
    print(f"  reconstruction fidelity vs uncut ideal: {fid:.6f} "
          f"(knit took {seconds * 1e3:.1f} ms)")
    print("  -> fragments of half the width can now run on smaller/less "
          "noisy QPUs (Fig 2a's trade).")


if __name__ == "__main__":
    mitigation_ladder()
    cutting_demo()
