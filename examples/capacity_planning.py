"""Operator scenario: capacity planning with the scheduler scalability study.

Answers the Fig. 9 questions for a cloud operator: how much does adding
QPUs improve completion times, and does the scheduler keep up when the
workload doubles or triples?

Run:  python examples/capacity_planning.py
"""

from repro.backends import fleet_of_size
from repro.cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
)
from repro.experiments.common import trained_estimator
from repro.scheduler import QonductorScheduler, SchedulingTrigger

DURATION = 600.0  # 10 simulated minutes per point


def run(num_qpus: int, rate: float) -> dict:
    estimator = trained_estimator(seed=7)
    fleet = fleet_of_size(num_qpus, seed=7)
    sim = CloudSimulator(
        fleet,
        QonductorScheduler(
            estimator.estimate_for_qpu, preference="balanced", seed=3,
            max_generations=20,
        ),
        ExecutionModel(seed=9),
        trigger=SchedulingTrigger(),
        config=SimulationConfig(duration_seconds=DURATION, seed=3),
    )
    apps = LoadGenerator(mean_rate_per_hour=rate, seed=3).generate(DURATION)
    return sim.run(apps).summary()


def main() -> None:
    print("Cluster-size sweep at 1500 jobs/hour (Fig 9a):")
    base_jct = None
    for size in (4, 8, 16):
        s = run(size, 1500.0)
        jct = s["final_mean_jct"]
        if base_jct is None:
            base_jct = jct
            delta = ""
        else:
            delta = f"  ({100 * (1 - jct / base_jct):+.1f}% vs 4 QPUs)"
        print(f"  {size:>2d} QPUs: mean JCT {jct:8.1f}s  "
              f"util {s['mean_utilization']:.2f}{delta}")

    print("\nLoad sweep on 8 QPUs (Fig 9b):")
    for rate in (1500.0, 3000.0, 4500.0):
        s = run(8, rate)
        print(f"  {rate:>6.0f} j/h: completed {s['completed_jobs']:4d} jobs, "
              f"mean JCT {s['final_mean_jct']:8.1f}s, "
              f"{s['scheduling_cycles']} scheduling cycles")
    print("\nThe scheduler absorbs 3x the baseline load (paper: stable up "
          "to ~2.2x IBM's peak), and JCT drops superlinearly with fleet "
          "growth (paper: -52.8% at 2x, -81% at 4x).")


if __name__ == "__main__":
    main()
