"""Quickstart: deploy and invoke a hybrid workflow on Qonductor.

Mirrors the paper's Listing 2: build an error-mitigated quantum workload,
package it as a hybrid workflow image, deploy it, poll, and fetch results —
all through the four-call Qonductor API (Table 2).

Run:  python examples/quickstart.py
"""

from repro import Qonductor
from repro.backends import default_fleet
from repro.workloads import ghz_linear


def main() -> None:
    # A small fleet keeps estimator training fast for the demo.
    fleet = default_fleet(seed=7, names=["auckland", "hanoi", "lagos"])
    print(f"Fleet: {[q.name for q in fleet]}")
    qon = Qonductor(fleet, estimator_records=500, preference="balanced", seed=1)

    # --- 1. compose a hybrid workflow: pre -> quantum -> post ------------
    circuit = ghz_linear(8)
    steps = [
        qon.classical_step(name="zne-generation", seconds=0.5),
        qon.quantum_step(circuit, name="ghz-8", shots=4000, mitigation="zne+rem"),
        qon.classical_step(name="zne-inference", seconds=1.0),
    ]

    # --- 2. ask the resource estimator for plans first (Fig 4) -----------
    print("\nResource plans (fidelity vs runtime vs $):")
    for plan in qon.estimate_resources(circuit, shots=4000, num_plans=3):
        print(
            f"  {plan.mitigation:<14s} fid~{plan.est_fidelity:.3f} "
            f"t~{plan.est_total_seconds:.1f}s  ${plan.est_cost_usd:.0f}"
        )

    # --- 3. create / deploy / invoke / results (Table 2) ------------------
    image_key = qon.create_workflow(steps, name="ghz-mitigated")
    workflow_id = qon.invoke(image_key)
    while qon.workflow_status(workflow_id) != "completed":
        pass  # Listing 2's polling loop; execution here is synchronous
    results = qon.workflow_results(workflow_id)

    print(f"\nWorkflow {workflow_id} -> {results['status']}")
    for step in results["steps"].values():
        if step["kind"] == "quantum":
            print(
                f"  quantum step on {step['qpu']}: "
                f"estimated fid {step['est_fidelity']:.3f}, "
                f"realized fid {step['fidelity']:.3f}, "
                f"{step['quantum_seconds']:.1f}s of QPU time"
            )
        else:
            print(f"  classical step {step['name']!r} on {step['node']}")


if __name__ == "__main__":
    main()
