"""Trained fidelity and runtime estimators (§6).

Polynomial regression pipelines selected by K-fold cross-validated R^2 —
the paper reports polynomial regression winning with R^2 of 0.976
(fidelity) and 0.998 (execution time); our model-selection sweep mirrors
that procedure over degrees 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backends.calibration import CalibrationData
from ..circuits.metrics import CircuitMetrics
from ..ml import cross_val_score, make_polynomial_regression
from .dataset import EstimatorDataset
from .features import (
    fidelity_features,
    fidelity_features_batch,
    runtime_features,
    runtime_features_batch,
)

__all__ = ["RegressionEstimator", "TrainedEstimators", "train_estimators"]


@dataclass
class RegressionEstimator:
    """One trained model + its selection metadata."""

    pipeline: object
    degree: int
    cv_r2: float
    target: str  # "fidelity" | "runtime"
    log_target: bool = False

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        pred = self.pipeline.predict(X)
        if self.log_target:
            pred = np.expm1(np.clip(pred, -20.0, 20.0))
        if self.target == "fidelity":
            pred = np.clip(pred, 0.0, 1.0)
        else:
            pred = np.clip(pred, 0.0, None)
        return pred


@dataclass
class TrainedEstimators:
    """Fidelity + runtime estimators bound to the feature builders."""

    fidelity: RegressionEstimator
    runtime: RegressionEstimator
    selection_report: dict = field(default_factory=dict)

    def estimate_fidelity(
        self,
        metrics: CircuitMetrics,
        shots: int,
        mitigation: str,
        calibration: CalibrationData,
    ) -> float:
        x = fidelity_features(metrics, shots, mitigation, calibration)
        return float(self.fidelity.predict(x[None, :])[0])

    def estimate_runtime(
        self,
        metrics: CircuitMetrics,
        shots: int,
        mitigation: str,
        calibration: CalibrationData,
    ) -> float:
        x = runtime_features(metrics, shots, mitigation, calibration)
        return float(self.runtime.predict(x[None, :])[0])

    def estimate_fidelity_batch(
        self, job_rows: np.ndarray, calibration: CalibrationData
    ) -> np.ndarray:
        """Predict fidelities for many jobs on one calibration snapshot.

        ``job_rows`` are :func:`~repro.estimator.features.job_fidelity_features`
        rows; one pipeline pass replaces n single-row predictions.
        """
        if len(job_rows) == 0:
            return np.zeros(0)
        return self.fidelity.predict(
            fidelity_features_batch(job_rows, calibration)
        )

    def estimate_runtime_batch(
        self, job_rows: np.ndarray, calibration: CalibrationData
    ) -> np.ndarray:
        """Predict runtimes for many jobs on one calibration snapshot."""
        if len(job_rows) == 0:
            return np.zeros(0)
        return self.runtime.predict(
            runtime_features_batch(job_rows, calibration)
        )


def _select_and_fit(
    X: np.ndarray,
    y: np.ndarray,
    target: str,
    *,
    degrees=(1, 2, 3),
    alpha: float = 1e-3,
    n_splits: int = 5,
    log_target: bool = False,
    seed: int = 0,
) -> tuple[RegressionEstimator, dict]:
    """Cross-validated degree selection, then fit on the full set."""
    y_fit = np.log1p(y) if log_target else y
    report = {}
    best_degree, best_score = None, -np.inf
    for degree in degrees:
        scores = cross_val_score(
            lambda d=degree: make_polynomial_regression(d, alpha=alpha),
            X,
            y_fit,
            n_splits=n_splits,
            seed=seed,
        )
        mean_score = float(np.mean(scores))
        report[f"degree_{degree}"] = mean_score
        if mean_score > best_score:
            best_degree, best_score = degree, mean_score
    pipeline = make_polynomial_regression(best_degree, alpha=alpha)
    pipeline.fit(X, y_fit)
    est = RegressionEstimator(
        pipeline=pipeline,
        degree=best_degree,
        cv_r2=best_score,
        target=target,
        log_target=log_target,
    )
    return est, report


def train_estimators(
    dataset: EstimatorDataset,
    *,
    degrees=(1, 2, 3),
    seed: int = 0,
) -> TrainedEstimators:
    """Train both estimators with K-fold model selection (paper procedure)."""
    if len(dataset) < 50:
        raise ValueError("dataset too small to train reliable estimators")
    fid_est, fid_report = _select_and_fit(
        dataset.X_fidelity, dataset.y_fidelity, "fidelity", degrees=degrees, seed=seed
    )
    run_est, run_report = _select_and_fit(
        dataset.X_runtime,
        dataset.y_runtime,
        "runtime",
        degrees=degrees,
        log_target=True,
        seed=seed,
    )
    return TrainedEstimators(
        fidelity=fid_est,
        runtime=run_est,
        selection_report={"fidelity": fid_report, "runtime": run_report},
    )
