"""The unified estimate-source surface of the scheduling stack.

Everything that scores (job, QPU) pairs — the trained regression
estimator, its memoizing cache, and the analytic ESP proxy — implements
one protocol: :class:`EstimateSource`, whose single method
``estimate_block(jobs, qpus, feasible=None)`` returns the ``(fidelity,
exec_seconds)`` matrix pair for a whole jobs-block.  Schedulers and
baseline policies build their matrices through this one batched call
path; the former ``hasattr``-sniffed ``estimate_matrix`` /
``estimate_for_qpu`` / bare-callable duck typing is gone from the hot
path and survives only as :func:`as_estimate_source`, the deprecation
adapter that wraps legacy pair-wise sources.

This module is intentionally a leaf (numpy + stdlib only) so every layer
— :mod:`repro.scheduler`, :mod:`repro.cloud`, :mod:`repro.estimator` —
can import it without ordering concerns.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable
from typing import Any, Protocol, cast, runtime_checkable

import numpy as np

#: A legacy pair-wise scorer: ``(job, qpu) -> (fidelity, exec_seconds)``.
PairFn = Callable[[Any, Any], tuple[float, float]]

__all__ = [
    "EstimateSource",
    "PairFn",
    "PairwiseEstimateSource",
    "as_estimate_source",
    "block_feasibility",
]


@runtime_checkable
class EstimateSource(Protocol):
    """Batched estimate provider for the scheduling hot path.

    ``estimate_block(jobs, qpus, feasible=None)`` returns two
    ``(len(jobs), len(qpus))`` float arrays — estimated fidelity and
    estimated execution seconds.  ``feasible`` is an optional boolean
    mask of the same shape (job fits the QPU and the QPU is online);
    when omitted, implementations compute it themselves.  Infeasible
    pairs are left at 0.0 and must not be evaluated — that contract is
    what lets implementations skip work and callers mask scores safely.

    Implementations may additionally be callable with ``(job, qpu)``
    for sequential consumers (e.g. least-busy scoring) and may expose
    an ``on_recalibration(qpus)`` hook; both are optional.
    """

    def estimate_block(
        self,
        jobs: list[Any],
        qpus: list[Any],
        feasible: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]: ...


def block_feasibility(jobs: list[Any], qpus: list[Any]) -> np.ndarray:
    """Width/online feasibility mask, mirroring
    :func:`repro.cloud.job.feasibility_matrix` (kept local so this
    module stays a leaf)."""
    widths = np.array([j.num_qubits for j in jobs], dtype=int)
    caps = np.array(
        [q.num_qubits if q.online else -1 for q in qpus], dtype=int
    )
    return widths[:, None] <= caps[None, :]


class PairwiseEstimateSource:
    """Adapter presenting a legacy pair-wise estimator as an
    :class:`EstimateSource`.

    ``pair_fn`` is a ``(job, qpu) -> (fidelity, exec_seconds)`` callable;
    ``origin`` (when the callable is a bound method of a richer object)
    keeps the wrapped object reachable so ``on_recalibration`` and
    ``stats`` forward to it.  ``estimate_block`` fills the matrices with
    one pair call per feasible cell in row-major order — exactly the
    loop the schedulers used to inline, so adapted sources stay
    bit-identical to the pre-protocol behavior.
    """

    def __init__(self, pair_fn: PairFn, origin: Any = None) -> None:
        self.pair_fn = pair_fn
        self.origin = origin if origin is not None else pair_fn

    def __call__(self, job: Any, qpu: Any) -> tuple[float, float]:
        return self.pair_fn(job, qpu)

    def estimate_block(
        self,
        jobs: list[Any],
        qpus: list[Any],
        feasible: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if feasible is None:
            feasible = block_feasibility(jobs, qpus)
        fid = np.zeros((len(jobs), len(qpus)))
        sec = np.zeros((len(jobs), len(qpus)))
        for i, job in enumerate(jobs):
            for k, qpu in enumerate(qpus):
                if feasible[i, k]:
                    fid[i, k], sec[i, k] = self.pair_fn(job, qpu)
        return fid, sec

    def on_recalibration(self, qpus: list[Any]) -> None:
        hook = getattr(self.origin, "on_recalibration", None)
        if hook is not None:
            hook(qpus)

    @property
    def stats(self) -> Any:
        return getattr(self.origin, "stats", None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairwiseEstimateSource({self.origin!r})"


def as_estimate_source(source: Any) -> EstimateSource:
    """Coerce any historical estimate-source shape into an
    :class:`EstimateSource`.

    Objects that already expose ``estimate_block`` pass through
    unchanged.  Legacy shapes — an object with ``estimate_for_qpu`` or a
    bare ``(job, qpu)`` callable — are wrapped in a
    :class:`PairwiseEstimateSource` with a :class:`DeprecationWarning`;
    they keep working (and stay bit-identical), but lose the batched
    fast path.
    """
    if hasattr(source, "estimate_block"):
        return cast(EstimateSource, source)
    if hasattr(source, "estimate_for_qpu"):
        warnings.warn(
            f"{type(source).__name__}.estimate_for_qpu-style sources are "
            "deprecated; implement estimate_block (see "
            "repro.estimator.source.EstimateSource)",
            DeprecationWarning,
            stacklevel=2,
        )
        return PairwiseEstimateSource(source.estimate_for_qpu, origin=source)
    if callable(source):
        warnings.warn(
            "bare (job, qpu) estimate callables are deprecated; implement "
            "estimate_block (see repro.estimator.source.EstimateSource)",
            DeprecationWarning,
            stacklevel=2,
        )
        return PairwiseEstimateSource(source)
    raise TypeError(
        f"cannot adapt {type(source).__name__!r} into an EstimateSource"
    )
