"""Resource-plan generation (§6, Fig. 4, Fig. 7a).

A resource plan fixes: the mitigation stack, the target QPU *model*
(estimates run against template QPUs), and the classical tier for
post-processing; it carries estimated fidelity, quantum/classical runtimes,
and dollar cost. The estimator sweeps plan candidates, keeps the Pareto
front over (runtime, 1 - fidelity), and returns the client's requested
number of plans spread across the front.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.template import TemplateQPU
from ..circuits.metrics import CircuitMetrics
from ..mitigation.stack import STANDARD_STACKS, MitigationStack
from ..moo.sorting import pareto_front_mask
from .cost import plan_cost
from .features import job_fidelity_features, job_runtime_features
from .models import TrainedEstimators

__all__ = ["ResourcePlan", "generate_resource_plans"]


@dataclass(frozen=True)
class ResourcePlan:
    """One point in the fidelity-runtime-cost tradeoff space."""

    mitigation: str
    model_name: str
    classical_tier: str
    est_fidelity: float
    est_quantum_seconds: float
    est_classical_seconds: float
    est_cost_usd: float

    @property
    def est_total_seconds(self) -> float:
        """Total runtime: quantum + classical (the paper's plan metric)."""
        return self.est_quantum_seconds + self.est_classical_seconds


def _classical_seconds(
    metrics: CircuitMetrics, mitigation: str, tier: str
) -> float:
    """Classical pre+post estimate; the high-end tier is ~4x faster."""
    stack = MitigationStack.preset(mitigation)
    base = 1.5 * (1.0 + metrics.size / 400.0)
    post = 1.5 * (stack.classical_overhead - 1.0) * (1.0 + metrics.num_qubits / 24.0)
    total = base + post
    if tier == "highend_vm":
        total /= 4.0
    return total


def generate_resource_plans(
    metrics: CircuitMetrics,
    shots: int,
    templates: dict[str, TemplateQPU],
    estimators: TrainedEstimators,
    *,
    num_plans: int = 3,
    mitigations: list[str] | None = None,
    classical_tiers: tuple[str, ...] = ("standard_vm", "highend_vm"),
    min_fidelity: float = 0.0,
    models: list[str] | None = None,
) -> list[ResourcePlan]:
    """Sweep (stack x template x tier), Pareto-filter, pick ``num_plans``.

    Returned plans are sorted by estimated fidelity descending; when the
    front holds more than ``num_plans`` points, picks are spread evenly
    across it (so clients always see both extremes).  ``models`` narrows
    the template sweep to a named subset — sharded fleets use it to keep
    a per-shard sweep bounded by the shard's own device models.
    """
    if num_plans < 1:
        raise ValueError("num_plans must be >= 1")
    if models is not None:
        templates = {k: v for k, v in templates.items() if k in models}
    names = mitigations or list(STANDARD_STACKS)
    # One vectorized pipeline pass per template scores every mitigation
    # stack at once (the sweep is the API server's per-request hot path).
    fid_rows = np.array(
        [job_fidelity_features(metrics, shots, mit) for mit in names]
    )
    run_rows = np.array(
        [job_runtime_features(metrics, shots, mit) for mit in names]
    )
    candidates: list[ResourcePlan] = []
    for model_name, template in templates.items():
        if template.num_qubits < metrics.num_qubits:
            continue
        fids = estimators.estimate_fidelity_batch(fid_rows, template.calibration)
        q_secs = estimators.estimate_runtime_batch(run_rows, template.calibration)
        for mitigation, fid, q_sec in zip(names, fids, q_secs):
            fid = float(fid)
            q_sec = float(q_sec)
            if fid < min_fidelity:
                continue
            for tier in classical_tiers:
                c_sec = _classical_seconds(metrics, mitigation, tier)
                cost = plan_cost(q_sec, c_sec, classical_tier=tier)
                candidates.append(
                    ResourcePlan(
                        mitigation=mitigation,
                        model_name=model_name,
                        classical_tier=tier,
                        est_fidelity=fid,
                        est_quantum_seconds=q_sec,
                        est_classical_seconds=c_sec,
                        est_cost_usd=cost,
                    )
                )
    if not candidates:
        return []
    objectives = np.array(
        [[p.est_total_seconds, 1.0 - p.est_fidelity] for p in candidates]
    )
    mask = pareto_front_mask(objectives)
    front = [p for p, m in zip(candidates, mask) if m]
    front.sort(key=lambda p: -p.est_fidelity)
    if len(front) <= num_plans:
        return front
    idx = np.linspace(0, len(front) - 1, num_plans).round().astype(int)
    return [front[i] for i in idx]
