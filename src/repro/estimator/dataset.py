"""Training-set generation for the regression estimators.

The paper collects 7 000+ job executions on the IBM cloud; offline, we
generate the equivalent dataset by executing sampled workloads through the
ground-truth :class:`~repro.cloud.execution.ExecutionModel` across the
drifting fleet — same feature/target structure, synthetic substrate
(substitution documented in DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.qpu import QPU
from ..cloud.execution import ExecutionModel
from ..cloud.job import QuantumJob
from ..mitigation.stack import STANDARD_STACKS
from ..workloads.suite import WorkloadSampler
from .features import fidelity_features, runtime_features

__all__ = ["EstimatorDataset", "generate_dataset"]


@dataclass
class EstimatorDataset:
    """Feature matrices and targets for both estimators."""

    X_fidelity: np.ndarray
    y_fidelity: np.ndarray
    X_runtime: np.ndarray
    y_runtime: np.ndarray  # quantum seconds
    mitigations: list[str]
    qpu_names: list[str]

    def __len__(self) -> int:
        return len(self.y_fidelity)


def generate_dataset(
    fleet: list[QPU],
    *,
    num_records: int = 2000,
    execution_model: ExecutionModel | None = None,
    seed: int = 0,
    mean_qubits: float = 8.0,
    std_qubits: float = 4.0,
    recalibrate_every: int = 400,
) -> EstimatorDataset:
    """Run ``num_records`` synthetic jobs across the fleet.

    Calibration cycles advance periodically so the dataset spans the
    temporal drift the estimators must generalize over.
    """
    if not fleet:
        raise ValueError("need at least one QPU")
    rng = np.random.default_rng(seed)
    em = execution_model or ExecutionModel(seed=seed)
    max_width = max(q.num_qubits for q in fleet)
    sampler = WorkloadSampler(
        mean_qubits=mean_qubits,
        std_qubits=std_qubits,
        max_qubits=max_width,
        seed=seed,
    )
    stack_names = list(STANDARD_STACKS)
    Xf, yf, Xr, yr, mits, qpus = [], [], [], [], [], []
    for i in range(num_records):
        if recalibrate_every and i > 0 and i % recalibrate_every == 0:
            for qpu in fleet:
                qpu.recalibrate()
        sampled = sampler.sample()
        mitigation = stack_names[int(rng.integers(len(stack_names)))]
        job = QuantumJob.from_circuit(
            sampled.circuit,
            shots=sampled.shots,
            mitigation=mitigation,
            keep_circuit=False,
        )
        candidates = [q for q in fleet if q.num_qubits >= job.num_qubits]
        if not candidates:
            continue
        qpu = candidates[int(rng.integers(len(candidates)))]
        record = em.execute(job, qpu.calibration, qpu.model, rng)
        Xf.append(fidelity_features(job.metrics, job.shots, mitigation, qpu.calibration))
        yf.append(record.fidelity)
        Xr.append(runtime_features(job.metrics, job.shots, mitigation, qpu.calibration))
        yr.append(record.quantum_seconds)
        mits.append(mitigation)
        qpus.append(qpu.name)
    return EstimatorDataset(
        X_fidelity=np.array(Xf),
        y_fidelity=np.array(yf),
        X_runtime=np.array(Xr),
        y_runtime=np.array(yr),
        mitigations=mits,
        qpu_names=qpus,
    )
