"""Feature engineering for the fidelity/runtime regression models (§6).

The paper's features: error-mitigation type, circuit width, shots, depth,
two-qubit count — plus, for fidelity, the target QPU's topology/error rates.
We encode exactly those from a job's :class:`CircuitMetrics`, its mitigation
preset, and the target calibration snapshot.
"""

from __future__ import annotations

import math

import numpy as np

from ..backends.calibration import CalibrationData
from ..circuits.metrics import CircuitMetrics
from ..mitigation.stack import STANDARD_STACKS

__all__ = [
    "FIDELITY_FEATURE_NAMES",
    "RUNTIME_FEATURE_NAMES",
    "fidelity_features",
    "runtime_features",
    "mitigation_flags",
]

_TECHNIQUES = ("dd", "twirling", "zne", "rem")

FIDELITY_FEATURE_NAMES: tuple[str, ...] = (
    "num_qubits",
    "depth",
    "num_2q_gates",
    "num_1q_gates",
    "two_qubit_depth",
    "interaction_degree",
    "log_shots",
    "mit_dd",
    "mit_twirling",
    "mit_zne",
    "mit_rem",
    "qpu_error_2q",
    "qpu_error_1q",
    "qpu_readout_error",
    "qpu_inv_t1",
    "qpu_inv_t2",
)

RUNTIME_FEATURE_NAMES: tuple[str, ...] = (
    "num_qubits",
    "depth",
    "num_2q_gates",
    "two_qubit_depth",
    "interaction_degree",
    "shots_k",
    "mit_dd",
    "mit_twirling",
    "mit_zne",
    "mit_rem",
    "qpu_duration_2q_ns",
)


def mitigation_flags(mitigation: str) -> list[float]:
    """Binary indicators for each technique in the preset."""
    techniques = STANDARD_STACKS.get(mitigation)
    if techniques is None:
        raise KeyError(f"unknown mitigation preset {mitigation!r}")
    return [1.0 if t in techniques else 0.0 for t in _TECHNIQUES]


def fidelity_features(
    metrics: CircuitMetrics,
    shots: int,
    mitigation: str,
    calibration: CalibrationData,
) -> np.ndarray:
    """Feature vector for the fidelity model."""
    nm = calibration.noise_model
    t1 = float(np.mean([q.t1_us for q in nm.qubits]))
    t2 = float(np.mean([q.t2_us for q in nm.qubits]))
    return np.array(
        [
            float(metrics.num_qubits),
            float(metrics.depth),
            float(metrics.num_2q_gates),
            float(metrics.num_1q_gates),
            float(metrics.two_qubit_depth),
            float(min(metrics.max_interaction_degree, 8)),
            math.log10(max(1, shots)),
            *mitigation_flags(mitigation),
            nm.mean_gate_error_2q() * 100.0,
            nm.mean_gate_error_1q() * 1000.0,
            nm.mean_readout_error() * 100.0,
            100.0 / t1,
            100.0 / t2,
        ]
    )


def runtime_features(
    metrics: CircuitMetrics,
    shots: int,
    mitigation: str,
    calibration: CalibrationData,
) -> np.ndarray:
    """Feature vector for the quantum-execution-time model."""
    nm = calibration.noise_model
    if nm.gates_2q:
        dur_2q = float(np.mean([g.duration_ns for g in nm.gates_2q.values()]))
    else:
        dur_2q = nm.default_2q.duration_ns
    return np.array(
        [
            float(metrics.num_qubits),
            float(metrics.depth),
            float(metrics.num_2q_gates),
            float(metrics.two_qubit_depth),
            float(min(metrics.max_interaction_degree, 8)),
            shots / 1000.0,
            *mitigation_flags(mitigation),
            dur_2q,
        ]
    )
