"""Feature engineering for the fidelity/runtime regression models (§6).

The paper's features: error-mitigation type, circuit width, shots, depth,
two-qubit count — plus, for fidelity, the target QPU's topology/error rates.
We encode exactly those from a job's :class:`CircuitMetrics`, its mitigation
preset, and the target calibration snapshot.

Feature vectors split into a job part (circuit + shots + mitigation) and a
calibration part, so batched estimation can build the job matrix once per
scheduling cycle and broadcast the calibration columns per QPU.
"""

from __future__ import annotations

import math

import numpy as np

from ..backends.calibration import CalibrationData
from ..circuits.metrics import CircuitMetrics
from ..mitigation.stack import STANDARD_STACKS

__all__ = [
    "FIDELITY_FEATURE_NAMES",
    "RUNTIME_FEATURE_NAMES",
    "fidelity_features",
    "runtime_features",
    "fidelity_features_batch",
    "runtime_features_batch",
    "job_fidelity_features",
    "job_runtime_features",
    "calibration_fidelity_features",
    "calibration_runtime_features",
    "mitigation_flags",
]

_TECHNIQUES = ("dd", "twirling", "zne", "rem")

FIDELITY_FEATURE_NAMES: tuple[str, ...] = (
    "num_qubits",
    "depth",
    "num_2q_gates",
    "num_1q_gates",
    "two_qubit_depth",
    "interaction_degree",
    "log_shots",
    "mit_dd",
    "mit_twirling",
    "mit_zne",
    "mit_rem",
    "qpu_error_2q",
    "qpu_error_1q",
    "qpu_readout_error",
    "qpu_inv_t1",
    "qpu_inv_t2",
)

RUNTIME_FEATURE_NAMES: tuple[str, ...] = (
    "num_qubits",
    "depth",
    "num_2q_gates",
    "two_qubit_depth",
    "interaction_degree",
    "shots_k",
    "mit_dd",
    "mit_twirling",
    "mit_zne",
    "mit_rem",
    "qpu_duration_2q_ns",
)


def mitigation_flags(mitigation: str) -> list[float]:
    """Binary indicators for each technique in the preset."""
    techniques = STANDARD_STACKS.get(mitigation)
    if techniques is None:
        raise KeyError(f"unknown mitigation preset {mitigation!r}")
    return [1.0 if t in techniques else 0.0 for t in _TECHNIQUES]


# ----------------------------------------------------------------------
# Job parts (calibration-independent).

def job_fidelity_features(
    metrics: CircuitMetrics, shots: int, mitigation: str
) -> np.ndarray:
    """Circuit/shots/mitigation columns of the fidelity feature vector."""
    return np.array(
        [
            float(metrics.num_qubits),
            float(metrics.depth),
            float(metrics.num_2q_gates),
            float(metrics.num_1q_gates),
            float(metrics.two_qubit_depth),
            float(min(metrics.max_interaction_degree, 8)),
            math.log10(max(1, shots)),
            *mitigation_flags(mitigation),
        ]
    )


def job_runtime_features(
    metrics: CircuitMetrics, shots: int, mitigation: str
) -> np.ndarray:
    """Circuit/shots/mitigation columns of the runtime feature vector."""
    return np.array(
        [
            float(metrics.num_qubits),
            float(metrics.depth),
            float(metrics.num_2q_gates),
            float(metrics.two_qubit_depth),
            float(min(metrics.max_interaction_degree, 8)),
            shots / 1000.0,
            *mitigation_flags(mitigation),
        ]
    )


# ----------------------------------------------------------------------
# Calibration parts.

def calibration_fidelity_features(calibration: CalibrationData) -> np.ndarray:
    """QPU-quality columns of the fidelity feature vector."""
    agg = calibration.aggregates()
    return np.array(
        [
            agg.error_2q * 100.0,
            agg.error_1q * 1000.0,
            agg.readout_error * 100.0,
            100.0 / agg.t1_us,
            100.0 / agg.t2_us,
        ]
    )


def calibration_runtime_features(calibration: CalibrationData) -> np.ndarray:
    """QPU-speed columns of the runtime feature vector."""
    return np.array([calibration.aggregates().duration_2q_ns])


# ----------------------------------------------------------------------
# Full vectors.

def fidelity_features(
    metrics: CircuitMetrics,
    shots: int,
    mitigation: str,
    calibration: CalibrationData,
) -> np.ndarray:
    """Feature vector for the fidelity model."""
    return np.concatenate(
        [
            job_fidelity_features(metrics, shots, mitigation),
            calibration_fidelity_features(calibration),
        ]
    )


def runtime_features(
    metrics: CircuitMetrics,
    shots: int,
    mitigation: str,
    calibration: CalibrationData,
) -> np.ndarray:
    """Feature vector for the quantum-execution-time model."""
    return np.concatenate(
        [
            job_runtime_features(metrics, shots, mitigation),
            calibration_runtime_features(calibration),
        ]
    )


def fidelity_features_batch(
    job_rows: np.ndarray, calibration: CalibrationData
) -> np.ndarray:
    """(n, 16) fidelity feature matrix from precomputed job rows."""
    job_rows = np.atleast_2d(job_rows)
    cal = calibration_fidelity_features(calibration)
    return np.hstack([job_rows, np.tile(cal, (job_rows.shape[0], 1))])


def runtime_features_batch(
    job_rows: np.ndarray, calibration: CalibrationData
) -> np.ndarray:
    """(n, 11) runtime feature matrix from precomputed job rows."""
    job_rows = np.atleast_2d(job_rows)
    cal = calibration_runtime_features(calibration)
    return np.hstack([job_rows, np.tile(cal, (job_rows.shape[0], 1))])
