"""Content-addressed estimate caching for the scheduling hot path.

Cloud-scale streams repeat circuit shapes constantly (the workload sampler
draws from a fixed benchmark family), and calibration data only changes at
recalibration boundaries. Estimator predictions are therefore memoizable on

    (circuit-metrics fingerprint, shots, mitigation, calibration epoch)

where the epoch is ``(qpu_name, calibration cycle)``. A recalibration bumps
the cycle, so stale entries can never be served; :meth:`on_recalibration`
additionally drops them to bound memory and refreshes the wrapped
estimator's templates.

:class:`CachedEstimator` is a full :class:`~repro.estimator.source.EstimateSource`:
it is callable with ``(job, qpu)`` for sequential consumers and implements
the batched :meth:`estimate_block` fast path that
:class:`~repro.scheduler.quantum.QonductorScheduler` and the baseline
policies drive directly (``estimate_matrix`` remains as a deprecated
alias).
"""

from __future__ import annotations

import json
import warnings
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..backends.qpu import QPU
from ..circuits.metrics import CircuitMetrics
from ..cloud.job import QuantumJob, feasibility_matrix
from .features import job_fidelity_features, job_runtime_features

__all__ = ["CacheStats", "EstimateCache", "CachedEstimator"]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "invalidations": self.invalidations,
        }


class EstimateCache:
    """Bounded memo of ``key -> (fidelity, exec_seconds)`` pairs.

    Eviction is segmented-LRU: entries enter a *probation* segment on
    first insertion and are promoted to a *protected* segment (capped at
    ``protected_fraction`` of ``max_entries``) when hit again; a full
    protected segment demotes its least-recent entry back to probation,
    and capacity pressure always evicts probation's least-recent entry
    first.  Single-touch keys streaming past therefore churn through
    probation without displacing the re-referenced working set, so the
    hit rate degrades *gracefully* as ``max_entries`` drops below the
    working set — the generational-halving scheme this replaces cliffed
    toward 0% there, because every overflow dropped half the table
    including its hottest keys.
    """

    def __init__(
        self, max_entries: int = 200_000, *, protected_fraction: float = 0.8
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if not 0.0 <= protected_fraction <= 1.0:
            raise ValueError("protected_fraction must be in [0, 1]")
        self.max_entries = max_entries
        # At least one probation slot must exist (insertions land there);
        # with max_entries == 1 the protected segment degenerates away
        # and the cache behaves as plain LRU.
        self._protected_cap = min(
            int(max_entries * protected_fraction), max_entries - 1
        )
        # Both segments rely on dict insertion order as recency order:
        # first item = least recent, re-inserting moves a key to the end.
        self._probation: dict[tuple, tuple[float, float]] = {}
        self._protected: dict[tuple, tuple[float, float]] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)

    @staticmethod
    def key(
        metrics: CircuitMetrics, shots: int, mitigation: str, qpu: QPU
    ) -> tuple:
        return (metrics.fingerprint, shots, mitigation, qpu.calibration.epoch)

    def get(self, key: tuple) -> tuple[float, float] | None:
        hit = self._protected.pop(key, None)
        if hit is not None:
            self._protected[key] = hit  # refresh recency
            self.stats.hits += 1
            return hit
        hit = self._probation.pop(key, None)
        if hit is not None:
            self._promote(key, hit)
            self.stats.hits += 1
            return hit
        self.stats.misses += 1
        return None

    def _promote(self, key: tuple, value: tuple[float, float]) -> None:
        """A probation hit earns protection; overflow demotes, not drops.

        Net occupancy is unchanged (one entry moved out of probation, at
        most one demoted back), so only :meth:`put` grows the cache.
        """
        self._protected[key] = value
        if len(self._protected) > self._protected_cap:
            old_key = next(iter(self._protected))
            self._probation[old_key] = self._protected.pop(old_key)

    def put(self, key: tuple, value: tuple[float, float]) -> None:
        if key in self._protected:
            self._protected[key] = value
            return
        if key in self._probation:
            self._probation[key] = value
            return
        while len(self) >= self.max_entries:
            victim_segment = self._probation or self._protected
            del victim_segment[next(iter(victim_segment))]
        self._probation[key] = value

    def invalidate(self) -> None:
        """Drop every entry (epoch keys already prevent stale hits)."""
        self._probation.clear()
        self._protected.clear()
        self.stats.invalidations += 1

    def _items_cold_to_hot(self):
        """Every entry, probation first, least recent first."""
        yield from self._probation.items()
        yield from self._protected.items()

    # -- persistence ---------------------------------------------------
    #: On-disk format version; bump on incompatible key changes.
    FORMAT_VERSION = 1

    def save(self, path: str | Path) -> int:
        """Write the table as JSON; returns the number of entries saved.

        Each row is ``[fingerprint, shots, mitigation, qpu_name, cycle,
        fidelity, exec_seconds]``; the calibration epoch ``(qpu_name,
        cycle)`` stays part of the key, so a warm-started run can never
        serve an estimate from a dead epoch — at worst a stale entry is
        loaded and simply never hit.  Rows are ordered coldest first, so
        reloading into a smaller cache keeps the hottest entries.
        """
        rows = [
            [list(fp), shots, mit, epoch[0], epoch[1], value[0], value[1]]
            for (fp, shots, mit, epoch), value in self._items_cold_to_hot()
        ]
        payload = {"version": self.FORMAT_VERSION, "entries": rows}
        Path(path).write_text(json.dumps(payload))
        return len(rows)

    def load(self, path: str | Path) -> int:
        """Merge entries saved by :meth:`save`; returns how many loaded.

        Loading respects ``max_entries`` (oldest file rows evict first,
        like any other insertion) and does not touch hit/miss counters.
        """
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != self.FORMAT_VERSION:
            raise ValueError(
                f"estimate-cache file {path} has version "
                f"{payload.get('version')!r}, expected {self.FORMAT_VERSION}"
            )
        count = 0
        for fp, shots, mit, qpu_name, cycle, fid, sec in payload["entries"]:
            key = (tuple(fp), shots, mit, (qpu_name, cycle))
            self.put(key, (float(fid), float(sec)))
            count += 1
        return count


class CachedEstimator:
    """Memoizing (and batch-capable) wrapper around an estimate source.

    ``base`` is either a :class:`~repro.estimator.estimator.ResourceEstimator`
    or any plain ``(job, qpu) -> (fidelity, exec_seconds)`` callable. With a
    ResourceEstimator, cache misses are filled by one vectorized pipeline
    pass per QPU; with a plain callable, misses fall back to per-pair calls
    (still memoized).
    """

    def __init__(
        self,
        base,
        *,
        max_entries: int = 200_000,
        on_invalidate: Callable[[list[QPU]], None] | None = None,
    ) -> None:
        self.base = base
        self.cache = EstimateCache(max_entries=max_entries)
        self._on_invalidate = on_invalidate
        if hasattr(base, "estimate_for_qpu"):
            self._pair_fn = base.estimate_for_qpu
            self._trained = base.estimators
        else:
            self._pair_fn = base
            self._trained = None
        # Job feature rows are calibration-independent; share them across
        # QPUs and scheduling rounds.
        self._job_rows: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        # Epochs seen at the last recalibration hook: with sharded fleets
        # every shard policy forwards the same fleet-wide calibration
        # event here, and only the first forwarding per wave may act.
        self._last_epochs: tuple | None = None

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    def save(self, path: str | Path) -> int:
        """Persist the memo table (JSON) so later runs start warm.

        Entries stay keyed on the calibration epoch, so repeated
        benchmark runs over the same fleet seed reuse estimates while a
        recalibrated fleet misses cleanly.  Returns the entry count.
        """
        return self.cache.save(path)

    def load(self, path: str | Path) -> int:
        """Warm the memo table from a :meth:`save` file; returns count."""
        return self.cache.load(path)

    def on_recalibration(self, qpus: list[QPU]) -> None:
        """Invalidate and propagate the calibration event downstream.

        Idempotent per calibration wave: repeated calls with unchanged
        calibration epochs (one per shard of a sharded fleet) are no-ops,
        so a shared cache invalidates exactly once per recalibration.
        Use :meth:`EstimateCache.invalidate` directly to force a clear.
        """
        epochs = tuple(q.calibration.epoch for q in qpus)
        if epochs == self._last_epochs:
            return
        self._last_epochs = epochs
        self.cache.invalidate()
        self._job_rows.clear()
        if hasattr(self.base, "refresh_templates"):
            self.base.refresh_templates(qpus)
        if self._on_invalidate is not None:
            self._on_invalidate(qpus)

    # ------------------------------------------------------------------
    def __call__(self, job: QuantumJob, qpu: QPU) -> tuple[float, float]:
        key = EstimateCache.key(job.metrics, job.shots, job.mitigation, qpu)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        value = self._pair_fn(job, qpu)
        self.cache.put(key, value)
        return value

    def _rows_for(self, job: QuantumJob) -> tuple[np.ndarray, np.ndarray]:
        jkey = (job.metrics.fingerprint, job.shots, job.mitigation)
        rows = self._job_rows.get(jkey)
        if rows is None:
            rows = (
                job_fidelity_features(job.metrics, job.shots, job.mitigation),
                job_runtime_features(job.metrics, job.shots, job.mitigation),
            )
            self._job_rows[jkey] = rows
        return rows

    def estimate_block(
        self,
        jobs: list[QuantumJob],
        qpus: list[QPU],
        feasible: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(fidelity, exec_seconds) matrices over ``jobs`` x ``qpus``.

        Infeasible pairs (job wider than the QPU) stay zero and are neither
        estimated nor cached. Misses for one QPU are predicted in a single
        vectorized pass when the base exposes trained estimators.
        """
        n, m = len(jobs), len(qpus)
        fid = np.zeros((n, m))
        sec = np.zeros((n, m))
        if feasible is None:
            feasible = feasibility_matrix(jobs, qpus)
        keys = [
            EstimateCache.key(j.metrics, j.shots, j.mitigation, q)
            for j in jobs
            for q in qpus
        ]
        for k, qpu in enumerate(qpus):
            missing: list[int] = []
            for i in range(n):
                if not feasible[i, k]:
                    continue
                hit = self.cache.get(keys[i * m + k])
                if hit is None:
                    missing.append(i)
                else:
                    fid[i, k], sec[i, k] = hit
            if not missing:
                continue
            if self._trained is not None:
                fid_rows = np.array(
                    [self._rows_for(jobs[i])[0] for i in missing]
                )
                run_rows = np.array(
                    [self._rows_for(jobs[i])[1] for i in missing]
                )
                fids = self._trained.estimate_fidelity_batch(
                    fid_rows, qpu.calibration
                )
                secs = self._trained.estimate_runtime_batch(
                    run_rows, qpu.calibration
                )
                for j, i in enumerate(missing):
                    fid[i, k] = fids[j]
                    sec[i, k] = secs[j]
                    self.cache.put(keys[i * m + k], (float(fids[j]), float(secs[j])))
            else:
                for i in missing:
                    value = self._pair_fn(jobs[i], qpu)
                    fid[i, k], sec[i, k] = value
                    self.cache.put(keys[i * m + k], value)
        return fid, sec

    def estimate_matrix(
        self,
        jobs: list[QuantumJob],
        qpus: list[QPU],
        feasible: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deprecated alias for :meth:`estimate_block`."""
        warnings.warn(
            "CachedEstimator.estimate_matrix is deprecated; use "
            "estimate_block",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.estimate_block(jobs, qpus, feasible)
