"""The resource estimator facade (§6, Fig. 4).

Bundles: trained regression models, template QPUs, and plan generation.
This is the control-plane component the API server calls on workflow
invocation (step 3 of the system workflow) and the scheduler queries for
per-(job, QPU) estimates (step 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.qpu import QPU
from ..backends.template import TemplateQPU, build_templates
from ..circuits.metrics import CircuitMetrics
from ..cloud.execution import ExecutionModel
from ..cloud.job import QuantumJob, feasibility_matrix
from .dataset import generate_dataset
from .features import job_fidelity_features, job_runtime_features
from .models import TrainedEstimators, train_estimators
from .plans import ResourcePlan, generate_resource_plans

__all__ = ["ResourceEstimator"]


@dataclass
class ResourceEstimator:
    """Trained estimator bound to a fleet's templates."""

    estimators: TrainedEstimators
    templates: dict[str, TemplateQPU]

    @classmethod
    def train_for_fleet(
        cls,
        fleet: list[QPU],
        *,
        num_records: int = 2000,
        execution_model: ExecutionModel | None = None,
        seed: int = 0,
    ) -> "ResourceEstimator":
        """End-to-end §6 pipeline: dataset -> CV model selection -> templates."""
        dataset = generate_dataset(
            fleet,
            num_records=num_records,
            execution_model=execution_model,
            seed=seed,
        )
        trained = train_estimators(dataset, seed=seed)
        return cls(estimators=trained, templates=build_templates(fleet))

    def refresh_templates(self, fleet: list[QPU]) -> None:
        """Re-average template calibrations (call after calibration cycles)."""
        self.templates = build_templates(fleet)

    # ------------------------------------------------------------------
    def estimate_for_qpu(self, job: QuantumJob, qpu: QPU) -> tuple[float, float]:
        """(fidelity, quantum_seconds) for ``job`` on a concrete device."""
        fid = self.estimators.estimate_fidelity(
            job.metrics, job.shots, job.mitigation, qpu.calibration
        )
        sec = self.estimators.estimate_runtime(
            job.metrics, job.shots, job.mitigation, qpu.calibration
        )
        return fid, sec

    def estimate_block(
        self,
        jobs: list[QuantumJob],
        qpus: list[QPU],
        feasible: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(fidelity, exec_seconds) matrices over ``jobs`` x ``qpus``.

        The :class:`~repro.estimator.source.EstimateSource` entry point:
        per QPU, all feasible jobs are predicted in one vectorized batch
        through the trained models; infeasible pairs stay zero and are
        never evaluated.
        """
        n, m = len(jobs), len(qpus)
        fid = np.zeros((n, m))
        sec = np.zeros((n, m))
        if feasible is None:
            feasible = feasibility_matrix(jobs, qpus)
        fid_rows = np.array(
            [job_fidelity_features(j.metrics, j.shots, j.mitigation) for j in jobs]
        )
        run_rows = np.array(
            [job_runtime_features(j.metrics, j.shots, j.mitigation) for j in jobs]
        )
        for k, qpu in enumerate(qpus):
            idx = np.flatnonzero(feasible[:, k])
            if idx.size == 0:
                continue
            fid[idx, k] = self.estimators.estimate_fidelity_batch(
                fid_rows[idx], qpu.calibration
            )
            sec[idx, k] = self.estimators.estimate_runtime_batch(
                run_rows[idx], qpu.calibration
            )
        return fid, sec

    def cached(self, **kwargs) -> "CachedEstimator":
        """A memoizing, batch-capable ``estimate_fn`` view of this estimator."""
        from .cache import CachedEstimator

        return CachedEstimator(self, **kwargs)

    def generate_plans(
        self,
        metrics: CircuitMetrics,
        shots: int,
        *,
        num_plans: int = 3,
        mitigations: list[str] | None = None,
        min_fidelity: float = 0.0,
        models: list[str] | None = None,
    ) -> list[ResourcePlan]:
        """Client-facing resource plans against the template QPUs."""
        return generate_resource_plans(
            metrics,
            shots,
            self.templates,
            self.estimators,
            num_plans=num_plans,
            mitigations=mitigations,
            min_fidelity=min_fidelity,
            models=models,
        )
