"""Dollar-cost model from Table 1 (IBM Cloud pricing).

=============  ===========  ===========
Resource       Price/task   Price/hour
=============  ===========  ===========
Standard VM    < 1 $        1 - 5 $
High-end VM    1 - 10 $     10 - 40 $
QPU            30 - 200 $   3000 - 6000 $
=============  ===========  ===========

Plans are priced as QPU-seconds x QPU rate + classical-seconds x VM rate,
plus per-task floors, which is what makes trading quantum time for (cheap)
classical mitigation time economical — the paper's key idea #2.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResourceRates", "TABLE1_RATES", "plan_cost"]


@dataclass(frozen=True)
class ResourceRates:
    """Hourly and per-task prices for one resource class (USD)."""

    price_per_hour: float
    price_per_task: float


TABLE1_RATES: dict[str, ResourceRates] = {
    "standard_vm": ResourceRates(price_per_hour=3.0, price_per_task=0.5),
    "highend_vm": ResourceRates(price_per_hour=25.0, price_per_task=5.0),
    "qpu": ResourceRates(price_per_hour=4500.0, price_per_task=30.0),
}


def plan_cost(
    quantum_seconds: float,
    classical_seconds: float,
    *,
    classical_tier: str = "standard_vm",
    qpu_rate: float | None = None,
) -> float:
    """Total $ cost of one execution plan.

    Per-task floors apply once per plan; time charges are linear.
    """
    if quantum_seconds < 0 or classical_seconds < 0:
        raise ValueError("durations must be non-negative")
    qpu = TABLE1_RATES["qpu"]
    vm = TABLE1_RATES[classical_tier]
    rate = qpu.price_per_hour if qpu_rate is None else qpu_rate
    cost = qpu.price_per_task + quantum_seconds / 3600.0 * rate
    if classical_seconds > 0:
        cost += vm.price_per_task + classical_seconds / 3600.0 * vm.price_per_hour
    return cost
