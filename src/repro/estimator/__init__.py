"""Hybrid resource estimation (§6): features, synthetic training data,
regression models, numerical baseline, cost model, and plan generation."""

from .cache import CachedEstimator, CacheStats, EstimateCache
from .cost import TABLE1_RATES, ResourceRates, plan_cost
from .source import (
    EstimateSource,
    PairwiseEstimateSource,
    as_estimate_source,
    block_feasibility,
)
from .dataset import EstimatorDataset, generate_dataset
from .estimator import ResourceEstimator
from .features import (
    FIDELITY_FEATURE_NAMES,
    RUNTIME_FEATURE_NAMES,
    fidelity_features,
    mitigation_flags,
    runtime_features,
)
from .models import RegressionEstimator, TrainedEstimators, train_estimators
from .numerical import NumericalEstimator
from .plans import ResourcePlan, generate_resource_plans

__all__ = [
    "EstimateSource",
    "PairwiseEstimateSource",
    "as_estimate_source",
    "block_feasibility",
    "FIDELITY_FEATURE_NAMES",
    "RUNTIME_FEATURE_NAMES",
    "fidelity_features",
    "mitigation_flags",
    "runtime_features",
    "EstimatorDataset",
    "generate_dataset",
    "RegressionEstimator",
    "TrainedEstimators",
    "train_estimators",
    "NumericalEstimator",
    "TABLE1_RATES",
    "ResourceRates",
    "plan_cost",
    "ResourcePlan",
    "generate_resource_plans",
    "ResourceEstimator",
    "CachedEstimator",
    "CacheStats",
    "EstimateCache",
]
