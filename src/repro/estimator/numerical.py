"""Numerical estimation baseline (Fig. 7's comparison).

The state-of-the-art approach the paper compares against [62, 95, 101]:
traverse the circuit against the QPU's calibration data, multiplying gate
success probabilities (fidelity) or summing gate durations (runtime).
Crucially, it is blind to error mitigation — it neither credits the
fidelity improvement nor charges the extra shots — which is exactly why
the regression estimator beats it on mitigated jobs.
"""

from __future__ import annotations

import math

from ..backends.calibration import CalibrationData
from ..backends.models import QPUModel
from ..circuits.circuit import Circuit
from ..circuits.metrics import CircuitMetrics, compute_metrics
from ..cloud.execution import SHOT_OVERHEAD_US, QPU_SETUP_SECONDS
from ..cloud.proxy import TranspileProxy
from ..simulation.esp import esp_to_hellinger

__all__ = ["NumericalEstimator"]


class NumericalEstimator:
    """Calibration-product fidelity and duration-sum runtime estimates."""

    def __init__(self, proxy: TranspileProxy | None = None) -> None:
        self.proxy = proxy or TranspileProxy()

    def estimate_fidelity(
        self,
        metrics: CircuitMetrics,
        shots: int,
        mitigation: str,  # accepted for interface parity; deliberately unused
        calibration: CalibrationData,
        model: QPUModel,
    ) -> float:
        nm = calibration.noise_model
        phys_2q, phys_1q, duration_ns = self.proxy.physical_metrics(metrics, model)
        log_s = phys_2q * math.log1p(-min(nm.mean_gate_error_2q(), 0.5))
        log_s += phys_1q * math.log1p(-min(nm.mean_gate_error_1q(), 0.5))
        log_s += metrics.num_measurements * math.log1p(
            -min(nm.mean_readout_error(), 0.5)
        )
        # Decoherence over the estimated schedule (same form as prior work's
        # DAG traversal with T1/T2 factors).
        import numpy as np

        t1 = float(np.mean([q.t1_us for q in nm.qubits]))
        t2 = float(np.mean([q.t2_us for q in nm.qubits]))
        inv_tphi = max(0.0, 1.0 / t2 - 0.5 / t1)
        log_s += -(duration_ns / 1000.0) * metrics.num_qubits * 0.25 * (
            1.0 / t1 + inv_tphi
        )
        return esp_to_hellinger(math.exp(log_s), metrics.num_qubits)

    def estimate_runtime(
        self,
        metrics: CircuitMetrics,
        shots: int,
        mitigation: str,  # unused: the numerical method ignores mitigation
        calibration: CalibrationData,
        model: QPUModel,
    ) -> float:
        """Seconds of QPU time: shots x (circuit duration + readout gap)."""
        _, _, duration_ns = self.proxy.physical_metrics(metrics, model)
        per_shot_s = duration_ns / 1e9 + SHOT_OVERHEAD_US / 1e6
        return QPU_SETUP_SECONDS + shots * per_shot_s

    # Circuit-level convenience used by tests.
    def estimate_circuit_fidelity(
        self, circuit: Circuit, calibration: CalibrationData, model: QPUModel
    ) -> float:
        return self.estimate_fidelity(
            compute_metrics(circuit), 1, "none", calibration, model
        )
