"""Multiple-criteria decision making over a Pareto front (§7, Eq. 2).

Pseudo-weights measure each solution's normalized distance to the worst
value per objective; the selection stage picks the solution whose
pseudo-weight vector is closest to the user's preference vector
(fidelity-priority, JCT-priority, or balanced).
"""

from __future__ import annotations

import numpy as np

__all__ = ["pseudo_weights", "select_by_preference", "PREFERENCES"]

#: Canonical preference vectors over (objective 0, objective 1). For the
#: scheduler these are (JCT, error): "jct" prioritizes completion time,
#: "fidelity" prioritizes quality, "balanced" weighs both equally.
PREFERENCES: dict[str, tuple[float, float]] = {
    "jct": (0.8, 0.2),
    "balanced": (0.5, 0.5),
    "fidelity": (0.2, 0.8),
}


def pseudo_weights(F: np.ndarray) -> np.ndarray:
    """Pseudo-weight matrix (Eq. 2): row i = importance profile of solution i.

    ``w[i, m] = (f_max[m] - F[i, m]) / (f_max[m] - f_min[m])``, normalized
    per row. Degenerate objectives (constant over the front) contribute
    equal weight.
    """
    F = np.asarray(F, dtype=float)
    if F.ndim != 2:
        raise ValueError("F must be (n_solutions, n_objectives)")
    fmax = F.max(axis=0)
    fmin = F.min(axis=0)
    span = fmax - fmin
    degenerate = span <= 1e-300
    span = np.where(degenerate, 1.0, span)
    w = (fmax - F) / span
    w[:, degenerate] = 0.5
    totals = w.sum(axis=1, keepdims=True)
    # A solution that is worst on every objective has an all-zero row;
    # give it uniform weights so each row remains a proper profile.
    zero_rows = (totals <= 1e-300).reshape(-1)
    w[zero_rows] = 1.0 / F.shape[1]
    totals[zero_rows[:, None]] = 1.0
    return w / totals


def select_by_preference(
    F: np.ndarray, preference: str | tuple[float, ...] = "balanced"
) -> int:
    """Index of the front solution whose pseudo-weights best match
    ``preference`` (a name from :data:`PREFERENCES` or an explicit vector
    summing to 1)."""
    F = np.asarray(F, dtype=float)
    if isinstance(preference, str):
        if preference not in PREFERENCES:
            raise KeyError(
                f"unknown preference {preference!r}; options: {sorted(PREFERENCES)}"
            )
        pref = np.asarray(PREFERENCES[preference])
    else:
        pref = np.asarray(preference, dtype=float)
    if pref.shape != (F.shape[1],):
        raise ValueError(
            f"preference length {pref.shape} does not match {F.shape[1]} objectives"
        )
    if abs(pref.sum() - 1.0) > 1e-6:
        raise ValueError("preference vector must sum to 1")
    w = pseudo_weights(F)
    return int(np.argmin(np.linalg.norm(w - pref[None, :], axis=1)))
