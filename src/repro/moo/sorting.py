"""Non-dominated sorting and crowding distance (NSGA-II internals).

Vectorized with NumPy.  Domination is computed as a pairwise boolean
matrix built in one fused pass over the objectives (two ``(n, n)``
accumulators instead of materializing the ``(n, n, m)`` broadcast
twice), fronts are peeled iteratively into a rank vector without
re-sorting, and crowding distances for *every* front come from one
segment-wise ranked sweep per objective (:func:`crowding_by_rank`) —
the kernel :class:`~repro.moo.nsga2.NSGA2` shares between selection
and elitist truncation.  All outputs are bit-identical to the
per-front reference loops (locked in ``tests/test_ml_moo.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dominates_matrix",
    "front_ranks",
    "fast_non_dominated_sort",
    "crowding_distance",
    "crowding_by_rank",
    "pareto_front_mask",
]


def dominates_matrix(F: np.ndarray) -> np.ndarray:
    """``D[i, j]`` True iff individual i dominates j (all <=, any <).

    Fused single pass: one ``(n, n)`` comparison per objective folded
    into two boolean accumulators, instead of broadcasting the full
    ``(n, n, m)`` tensor twice and reducing it.
    """
    n, m = F.shape
    less_eq = np.ones((n, n), dtype=bool)
    less = np.zeros((n, n), dtype=bool)
    for j in range(m):
        col_i = F[:, j, None]
        col_j = F[None, :, j]
        less_eq &= col_i <= col_j
        less |= col_i < col_j
    return less_eq & less


def front_ranks(F: np.ndarray) -> np.ndarray:
    """Pareto front rank per individual (0 = non-dominated).

    One domination matrix, then iterative peeling on the dominator
    counters — no per-front re-sorting, no index-list bookkeeping.
    """
    n = len(F)
    rank = np.zeros(n, dtype=np.int64)
    if n == 0:
        return rank
    dom = dominates_matrix(F)
    counts = dom.sum(axis=0).astype(np.int64)
    remaining = np.ones(n, dtype=bool)
    r = 0
    while remaining.any():
        current = np.where(remaining & (counts == 0))[0]
        if len(current) == 0:  # numerical ties: flush the rest as one front
            current = np.where(remaining)[0]
        rank[current] = r
        remaining[current] = False
        # Removing the current front decrements its dominatees' counters.
        counts -= dom[current].sum(axis=0)
        r += 1
    return rank


def fast_non_dominated_sort(F: np.ndarray) -> list[np.ndarray]:
    """Partition indices into Pareto fronts (front 0 = non-dominated)."""
    if len(F) == 0:
        return []
    rank = front_ranks(F)
    return [np.where(rank == r)[0] for r in range(int(rank.max()) + 1)]


def pareto_front_mask(F: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows of ``F``."""
    dom = dominates_matrix(F)
    return ~dom.any(axis=0)


def crowding_distance(F: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance within one front (larger = less crowded)."""
    n, m = F.shape
    if n <= 2:
        return np.full(n, np.inf)
    dist = np.zeros(n)
    for j in range(m):
        order = np.argsort(F[:, j], kind="stable")
        fmin, fmax = F[order[0], j], F[order[-1], j]
        dist[order[0]] = dist[order[-1]] = np.inf
        span = fmax - fmin
        if span <= 1e-300:
            continue
        gaps = (F[order[2:], j] - F[order[:-2], j]) / span
        dist[order[1:-1]] += gaps
    return dist


def crowding_by_rank(F: np.ndarray, rank: np.ndarray) -> np.ndarray:
    """Crowding distances for *all* fronts in one ranked sweep.

    Equivalent to ``crowding_distance(F[front])`` scattered back per
    front, but each objective is handled with a single stable lexsort
    keyed on ``(rank, F[:, j])`` followed by segment-wise extreme
    marking and interior-gap accumulation — no per-front Python loop.
    Ties within a front break on array position, exactly like the
    per-front stable argsort (front index arrays are position-ordered),
    so results are bit-identical to the reference loop.
    """
    n, m = F.shape
    dist = np.zeros(n)
    if n == 0:
        return dist
    positions = np.arange(n)
    for j in range(m):
        order = np.lexsort((F[:, j], rank))
        ranks_sorted = rank[order]
        starts = np.flatnonzero(
            np.r_[True, ranks_sorted[1:] != ranks_sorted[:-1]]
        )
        ends = np.r_[starts[1:], n]  # exclusive
        Fo = F[order, j]
        # Segment extremes get infinite distance (assignment, matching
        # the reference's overwrite semantics across objectives).
        dist[order[starts]] = np.inf
        dist[order[ends - 1]] = np.inf
        sizes = ends - starts
        span = Fo[ends - 1] - Fo[starts]
        seg_of = np.repeat(np.arange(len(starts)), sizes)
        pos_in_seg = positions - starts[seg_of]
        interior = (
            (pos_in_seg >= 1)
            & (pos_in_seg <= sizes[seg_of] - 2)
            & (span[seg_of] > 1e-300)
        )
        if interior.any():
            p = positions[interior]
            gaps = (Fo[p + 1] - Fo[p - 1]) / span[seg_of[interior]]
            dist[order[p]] += gaps
    return dist
