"""Non-dominated sorting and crowding distance (NSGA-II internals).

Vectorized with NumPy: domination is computed as a pairwise boolean matrix
(fine for the population sizes the scheduler uses), fronts are peeled
iteratively, and crowding distances are per-objective sorted sweeps.
"""

from __future__ import annotations

import numpy as np

__all__ = ["dominates_matrix", "fast_non_dominated_sort", "crowding_distance", "pareto_front_mask"]


def dominates_matrix(F: np.ndarray) -> np.ndarray:
    """``D[i, j]`` True iff individual i dominates j (all <=, any <)."""
    less_eq = (F[:, None, :] <= F[None, :, :]).all(axis=2)
    less = (F[:, None, :] < F[None, :, :]).any(axis=2)
    return less_eq & less


def fast_non_dominated_sort(F: np.ndarray) -> list[np.ndarray]:
    """Partition indices into Pareto fronts (front 0 = non-dominated)."""
    n = len(F)
    if n == 0:
        return []
    dom = dominates_matrix(F)
    n_dominators = dom.sum(axis=0)  # how many dominate each individual
    fronts: list[np.ndarray] = []
    remaining = np.ones(n, dtype=bool)
    counts = n_dominators.astype(np.int64).copy()
    while remaining.any():
        current = np.where(remaining & (counts == 0))[0]
        if len(current) == 0:  # numerical ties: flush the rest as one front
            current = np.where(remaining)[0]
        fronts.append(current)
        remaining[current] = False
        # Removing the current front decrements its dominatees' counters.
        counts -= dom[current].sum(axis=0)
    return fronts


def pareto_front_mask(F: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows of ``F``."""
    dom = dominates_matrix(F)
    return ~dom.any(axis=0)


def crowding_distance(F: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance within one front (larger = less crowded)."""
    n, m = F.shape
    if n <= 2:
        return np.full(n, np.inf)
    dist = np.zeros(n)
    for j in range(m):
        order = np.argsort(F[:, j], kind="stable")
        fmin, fmax = F[order[0], j], F[order[-1], j]
        dist[order[0]] = dist[order[-1]] = np.inf
        span = fmax - fmin
        if span <= 1e-300:
            continue
        gaps = (F[order[2:], j] - F[order[:-2], j]) / span
        dist[order[1:-1]] += gaps
    return dist
