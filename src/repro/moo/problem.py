"""Optimization problem interface for integer-encoded multi-objective
minimization (the scheduler's job->QPU assignment problem, Eq. 1)."""

from __future__ import annotations

import numpy as np

__all__ = ["Problem"]


class Problem:
    """A vector-valued minimization problem over integer decision variables.

    Subclasses implement :meth:`evaluate` returning an
    ``(n_individuals, n_objectives)`` array. Decision variables are integers
    in ``[lower[i], upper[i]]`` inclusive. Infeasible assignments should be
    handled via :meth:`repair` (projection into the feasible set), which
    NSGA-II calls after every variation step — the paper's constraint
    ``q_i <= s_{x_i}`` (job fits QPU) is enforced this way.
    """

    def __init__(self, n_var: int, n_obj: int, lower, upper) -> None:
        if n_var < 1 or n_obj < 1:
            raise ValueError("need n_var >= 1 and n_obj >= 1")
        self.n_var = n_var
        self.n_obj = n_obj
        self.lower = np.broadcast_to(np.asarray(lower, dtype=np.int64), (n_var,)).copy()
        self.upper = np.broadcast_to(np.asarray(upper, dtype=np.int64), (n_var,)).copy()
        if np.any(self.upper < self.lower):
            raise ValueError("upper bound below lower bound")

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        """Objective values for a population ``X`` of shape (pop, n_var)."""
        raise NotImplementedError

    def repair(self, X: np.ndarray) -> np.ndarray:
        """Project a population into the feasible set (default: clip)."""
        return np.clip(X, self.lower, self.upper)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Random feasible population (paper: random-integer initialization)."""
        X = rng.integers(
            self.lower[None, :], self.upper[None, :] + 1, size=(n, self.n_var)
        )
        return self.repair(X)
