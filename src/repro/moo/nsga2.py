"""NSGA-II (Deb et al. 2002) on integer genomes.

The optimizer behind the Qonductor scheduler's optimization stage. All
population-level operations are vectorized; one generation is
select -> crossover -> mutate -> repair -> evaluate -> elitist truncation
by (front rank, crowding distance).

:meth:`NSGA2.minimize` is a pure function of ``(problem, termination,
seed)``: the random stream is rebuilt from the configured seed on every
call instead of advancing a long-lived generator, so identical inputs
give identical outputs no matter how many times — or on which worker
process — the optimizer runs.  That purity is what lets the parallel
scheduling engine ship cycles to a worker pool while staying bit-identical
to serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .operators import (
    exponential_crossover,
    polynomial_mutation,
    tournament_selection,
)
from .problem import Problem
from .sorting import crowding_distance, fast_non_dominated_sort
from .termination import Termination

__all__ = ["NSGA2", "NSGA2Result"]


@dataclass
class NSGA2Result:
    """Final population restricted to the first front."""

    X: np.ndarray  # (n_front, n_var) decision vectors
    F: np.ndarray  # (n_front, n_obj) objective values
    generations: int
    evaluations: int
    reason: str
    history: list[np.ndarray] = field(default_factory=list)

    @property
    def n_solutions(self) -> int:
        return len(self.X)


class NSGA2:
    """Elitist non-dominated sorting GA with the paper's custom operators."""

    def __init__(
        self,
        pop_size: int = 64,
        *,
        crossover_rate: float = 0.9,
        mutation_eta: float = 12.0,
        seed: int | np.random.SeedSequence | None = None,
        keep_history: bool = False,
    ) -> None:
        if pop_size < 4 or pop_size % 2:
            raise ValueError("pop_size must be an even number >= 4")
        self.pop_size = pop_size
        self.crossover_rate = crossover_rate
        self.mutation_eta = mutation_eta
        self.keep_history = keep_history
        self.seed = seed

    def minimize(
        self,
        problem: Problem,
        termination: Termination | None = None,
        *,
        seed: int | np.random.SeedSequence | None = None,
    ) -> NSGA2Result:
        """Run the GA; ``seed`` (or the constructor seed) fixes the stream.

        The generator is created fresh per call, so repeated calls with
        the same problem and seed are bit-identical — there is no hidden
        RNG state carried between cycles.
        """
        rng = np.random.default_rng(self.seed if seed is None else seed)
        term = termination or Termination()
        X = problem.sample(self.pop_size, rng)
        F = problem.evaluate(X)
        term.update(F)
        history: list[np.ndarray] = []

        rank, crowd = self._rank_and_crowd(F)
        while not term.should_stop():
            parents_idx = tournament_selection(rank, crowd, self.pop_size, rng)
            pa = X[parents_idx[: self.pop_size // 2]]
            pb = X[parents_idx[self.pop_size // 2 :]]
            c1, c2 = exponential_crossover(
                pa, pb, problem.lower, problem.upper, rng, rate=self.crossover_rate
            )
            children = np.vstack([c1, c2])
            children = polynomial_mutation(
                children, problem.lower, problem.upper, rng, eta=self.mutation_eta
            )
            children = problem.repair(children)
            Fc = problem.evaluate(children)
            term.update(Fc)

            # Elitist environmental selection over parents + children.
            X_all = np.vstack([X, children])
            F_all = np.vstack([F, Fc])
            X, F, rank, crowd = self._truncate(X_all, F_all)
            if self.keep_history:
                history.append(F[rank == 0].copy())

        fronts = fast_non_dominated_sort(F)
        first = fronts[0]
        # Deduplicate identical objective vectors for a clean Pareto front.
        _, unique_idx = np.unique(F[first], axis=0, return_index=True)
        sel = first[np.sort(unique_idx)]
        return NSGA2Result(
            X=X[sel].copy(),
            F=F[sel].copy(),
            generations=term.generations,
            evaluations=term.evaluations,
            reason=term.reason or "unknown",
            history=history,
        )

    # ------------------------------------------------------------------
    def _rank_and_crowd(self, F: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        fronts = fast_non_dominated_sort(F)
        rank = np.empty(len(F), dtype=np.int64)
        crowd = np.empty(len(F))
        for r, front in enumerate(fronts):
            rank[front] = r
            crowd[front] = crowding_distance(F[front])
        return rank, crowd

    def _truncate(self, X: np.ndarray, F: np.ndarray):
        """Elitist truncation to ``pop_size`` by (front, crowding).

        The survivors' ranks and crowding come straight from the front
        partition computed here — re-running non-dominated sorting on the
        truncated set is provably redundant (every survivor in front ``r``
        is still dominated by a surviving member of front ``r - 1``, and
        never by a peer), so the second O(pop^2) sort the old
        implementation paid per generation is skipped.  Values are
        bit-identical: full fronts keep their whole member set, and the
        one split front's crowding is recomputed over exactly the
        surviving subset, matching what a fresh rank-and-crowd over the
        survivors would produce (asserted in ``tests/test_ml_moo.py``).
        """
        fronts = fast_non_dominated_sort(F)
        chosen: list[np.ndarray] = []
        count = 0
        for front in fronts:
            if count + len(front) <= self.pop_size:
                chosen.append(front)
                count += len(front)
            else:
                crowd = crowding_distance(F[front])
                order = np.argsort(-crowd, kind="stable")
                chosen.append(front[order[: self.pop_size - count]])
                count = self.pop_size
                break
        idx = np.concatenate(chosen)
        Xs, Fs = X[idx], F[idx]
        rank = np.concatenate(
            [np.full(len(sel), r, dtype=np.int64) for r, sel in enumerate(chosen)]
        )
        crowd = np.empty(len(idx))
        offset = 0
        for sel in chosen:
            crowd[offset : offset + len(sel)] = crowding_distance(
                Fs[offset : offset + len(sel)]
            )
            offset += len(sel)
        return Xs, Fs, rank, crowd
