"""NSGA-II (Deb et al. 2002) on integer genomes.

The optimizer behind the Qonductor scheduler's optimization stage. All
population-level operations are vectorized; one generation is
select -> crossover -> mutate -> repair -> evaluate -> elitist truncation
by (front rank, crowding distance).

:meth:`NSGA2.minimize` is a pure function of ``(problem, termination,
seed)``: the random stream is rebuilt from the configured seed on every
call instead of advancing a long-lived generator, so identical inputs
give identical outputs no matter how many times — or on which worker
process — the optimizer runs.  That purity is what lets the parallel
scheduling engine ship cycles to a worker pool while staying bit-identical
to serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .operators import (
    exponential_crossover,
    polynomial_mutation,
    tournament_selection,
)
from .problem import Problem
from .sorting import crowding_by_rank, crowding_distance, front_ranks
from .termination import Termination

__all__ = ["NSGA2", "NSGA2Result"]


@dataclass
class NSGA2Result:
    """Final population restricted to the first front."""

    X: np.ndarray  # (n_front, n_var) decision vectors
    F: np.ndarray  # (n_front, n_obj) objective values
    generations: int
    evaluations: int
    reason: str
    history: list[np.ndarray] = field(default_factory=list)

    @property
    def n_solutions(self) -> int:
        return len(self.X)


class NSGA2:
    """Elitist non-dominated sorting GA with the paper's custom operators."""

    def __init__(
        self,
        pop_size: int = 64,
        *,
        crossover_rate: float = 0.9,
        mutation_eta: float = 12.0,
        seed: int | np.random.SeedSequence | None = None,
        keep_history: bool = False,
    ) -> None:
        if pop_size < 4 or pop_size % 2:
            raise ValueError("pop_size must be an even number >= 4")
        self.pop_size = pop_size
        self.crossover_rate = crossover_rate
        self.mutation_eta = mutation_eta
        self.keep_history = keep_history
        self.seed = seed

    def minimize(
        self,
        problem: Problem,
        termination: Termination | None = None,
        *,
        seed: int | np.random.SeedSequence | None = None,
    ) -> NSGA2Result:
        """Run the GA; ``seed`` (or the constructor seed) fixes the stream.

        The generator is created fresh per call, so repeated calls with
        the same problem and seed are bit-identical — there is no hidden
        RNG state carried between cycles.
        """
        rng = np.random.default_rng(self.seed if seed is None else seed)
        term = termination or Termination()
        X = problem.sample(self.pop_size, rng)
        F = problem.evaluate(X)
        term.update(F)
        history: list[np.ndarray] = []

        rank, crowd = self._rank_and_crowd(F)
        while not term.should_stop():
            parents_idx = tournament_selection(rank, crowd, self.pop_size, rng)
            pa = X[parents_idx[: self.pop_size // 2]]
            pb = X[parents_idx[self.pop_size // 2 :]]
            c1, c2 = exponential_crossover(
                pa, pb, problem.lower, problem.upper, rng, rate=self.crossover_rate
            )
            children = np.vstack([c1, c2])
            children = polynomial_mutation(
                children, problem.lower, problem.upper, rng, eta=self.mutation_eta
            )
            children = problem.repair(children)
            Fc = problem.evaluate(children)
            term.update(Fc)

            # Elitist environmental selection over parents + children.
            X_all = np.vstack([X, children])
            F_all = np.vstack([F, Fc])
            X, F, rank, crowd = self._truncate(X_all, F_all)
            if self.keep_history:
                history.append(F[rank == 0].copy())

        # The loop state already carries every survivor's front rank
        # (from `_rank_and_crowd` initially, `_truncate` thereafter), so
        # the final first front needs no third non-dominated sort.
        first = np.where(rank == 0)[0]
        # Deduplicate identical objective vectors for a clean Pareto front.
        _, unique_idx = np.unique(F[first], axis=0, return_index=True)
        sel = first[np.sort(unique_idx)]
        return NSGA2Result(
            X=X[sel].copy(),
            F=F[sel].copy(),
            generations=term.generations,
            evaluations=term.evaluations,
            reason=term.reason or "unknown",
            history=history,
        )

    # ------------------------------------------------------------------
    def _rank_and_crowd(self, F: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        rank = front_ranks(F)
        return rank, crowding_by_rank(F, rank)

    def _truncate(self, X: np.ndarray, F: np.ndarray):
        """Elitist truncation to ``pop_size`` by (front, crowding).

        One domination matrix per selection: fronts are peeled into a
        rank vector (:func:`front_ranks`) and crowding for every front
        comes from the single ranked sweep (:func:`crowding_by_rank`)
        shared with :meth:`_rank_and_crowd` — no per-front Python loop
        and no re-sorting of the truncated set (every survivor in front
        ``r`` is still dominated only by surviving members of front
        ``r - 1``).  Values are bit-identical to the per-front reference
        loop: full fronts keep their whole member set, and the one split
        front's crowding is recomputed over exactly the surviving
        subset, matching what a fresh rank-and-crowd over the survivors
        would produce (asserted in ``tests/test_ml_moo.py``).
        """
        rank_all = front_ranks(F)
        crowd_all = crowding_by_rank(F, rank_all)
        counts = np.bincount(rank_all)
        cum = np.cumsum(counts)
        # First rank whose cumulative count exceeds pop_size is split.
        r_split = int(np.searchsorted(cum, self.pop_size, side="right"))
        n_full = int(cum[r_split - 1]) if r_split > 0 else 0
        # Fronts 0..r_split-1 concatenated in (rank, index) order.
        by_rank = np.argsort(rank_all, kind="stable")
        idx = by_rank[:n_full]
        n_rest = self.pop_size - n_full
        if n_rest > 0:
            front = np.where(rank_all == r_split)[0]
            order = np.argsort(-crowd_all[front], kind="stable")
            idx = np.concatenate([idx, front[order[:n_rest]]])
        Xs, Fs = X[idx], F[idx]
        rank = rank_all[idx]
        crowd = crowd_all[idx]
        if n_rest > 0:
            # The split front survives only partially; its crowding is
            # defined over the surviving subset, not the full front.
            crowd[n_full:] = crowding_distance(Fs[n_full:])
        return Xs, Fs, rank, crowd
