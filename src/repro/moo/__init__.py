"""Multi-objective optimization (pymoo substitute): NSGA-II on integer
genomes, non-dominated sorting, and pseudo-weight MCDM selection."""

from .mcdm import PREFERENCES, pseudo_weights, select_by_preference
from .nsga2 import NSGA2, NSGA2Result
from .operators import (
    exponential_crossover,
    polynomial_mutation,
    tournament_selection,
)
from .problem import Problem
from .sorting import (
    crowding_by_rank,
    crowding_distance,
    dominates_matrix,
    fast_non_dominated_sort,
    front_ranks,
    pareto_front_mask,
)
from .termination import Termination

__all__ = [
    "Problem",
    "crowding_by_rank",
    "crowding_distance",
    "dominates_matrix",
    "fast_non_dominated_sort",
    "front_ranks",
    "pareto_front_mask",
    "exponential_crossover",
    "polynomial_mutation",
    "tournament_selection",
    "Termination",
    "NSGA2",
    "NSGA2Result",
    "PREFERENCES",
    "pseudo_weights",
    "select_by_preference",
]
