"""Genetic operators customized per the paper (§7):

* random-integer population initialization (in :meth:`Problem.sample`),
* crossover "simulating the operation on real values using an exponential
  probability distribution" — an SBX-style blend whose spread factor is
  drawn from an exponential distribution, rounded back to integers,
* mutation "perturbing solutions within a parent's vicinity using a
  polynomial probability distribution" — classic polynomial mutation,
  rounded to integers,
* binary tournament selection on (rank, crowding distance).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "tournament_selection",
    "exponential_crossover",
    "polynomial_mutation",
]


def tournament_selection(
    rank: np.ndarray,
    crowding: np.ndarray,
    n_parents: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Binary tournaments: lower rank wins; ties broken by larger crowding."""
    n = len(rank)
    a = rng.integers(0, n, n_parents)
    b = rng.integers(0, n, n_parents)
    better_rank = rank[a] < rank[b]
    tie = rank[a] == rank[b]
    better_crowd = crowding[a] >= crowding[b]
    pick_a = better_rank | (tie & better_crowd)
    return np.where(pick_a, a, b)


def exponential_crossover(
    parents_a: np.ndarray,
    parents_b: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    rng: np.random.Generator,
    *,
    rate: float = 0.9,
    beta_scale: float = 0.35,
) -> tuple[np.ndarray, np.ndarray]:
    """SBX-flavoured integer crossover with exponentially distributed spread.

    Children are ``0.5 [(1 ± beta) p_a + (1 ∓ beta) p_b]`` with
    ``beta ~ Exp(beta_scale)`` per gene, rounded and clipped. ``rate`` is
    the per-gene crossover probability; untouched genes copy the parents.
    """
    pa = parents_a.astype(float)
    pb = parents_b.astype(float)
    shape = pa.shape
    beta = rng.exponential(beta_scale, shape)
    do = rng.random(shape) < rate
    c1 = np.where(do, 0.5 * ((1 + beta) * pa + (1 - beta) * pb), pa)
    c2 = np.where(do, 0.5 * ((1 - beta) * pa + (1 + beta) * pb), pb)
    c1 = np.clip(np.rint(c1), lower, upper).astype(np.int64)
    c2 = np.clip(np.rint(c2), lower, upper).astype(np.int64)
    return c1, c2


def polynomial_mutation(
    X: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    rng: np.random.Generator,
    *,
    rate: float | None = None,
    eta: float = 12.0,
) -> np.ndarray:
    """Deb's polynomial mutation on integers.

    Default per-gene rate is ``1/n_var``. The perturbation magnitude follows
    the polynomial distribution with index ``eta``; larger eta keeps
    children closer to the parent ("within a parent's vicinity").
    """
    X = X.astype(float)
    n_var = X.shape[1]
    p = 1.0 / n_var if rate is None else rate
    span = (upper - lower).astype(float)
    span[span == 0] = 1.0
    u = rng.random(X.shape)
    do = rng.random(X.shape) < p
    # delta in [-1, 1] with polynomial density.
    exp = 1.0 / (eta + 1.0)
    delta = np.where(
        u < 0.5,
        (2.0 * u) ** exp - 1.0,
        1.0 - (2.0 * (1.0 - u)) ** exp,
    )
    mutated = X + do * delta * span
    return np.clip(np.rint(mutated), lower, upper).astype(np.int64)
