"""Termination criteria (§7): generation/evaluation caps plus the paper's
sliding-window tolerance — convergence is judged over a window of recent
generations rather than only the latest one."""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["Termination"]


class Termination:
    """Composite stop condition for NSGA-II.

    Stops when any of:
    * ``max_generations`` reached,
    * ``max_evaluations`` objective evaluations spent,
    * the best (ideal-point) objective vector improved less than ``tol``
      over a sliding window of ``window`` generations.
    """

    def __init__(
        self,
        *,
        max_generations: int = 60,
        max_evaluations: int = 100_000,
        tol: float = 1e-3,
        window: int = 8,
    ) -> None:
        if max_generations < 1:
            raise ValueError("max_generations must be >= 1")
        self.max_generations = max_generations
        self.max_evaluations = max_evaluations
        self.tol = tol
        self.window = window
        self._ideal_history: deque[np.ndarray] = deque(maxlen=window)
        self.generations = 0
        self.evaluations = 0
        self.reason: str | None = None

    def update(self, F: np.ndarray) -> None:
        """Record one generation's objective matrix."""
        self.generations += 1
        self.evaluations += len(F)
        self._ideal_history.append(F.min(axis=0))

    def should_stop(self) -> bool:
        if self.generations >= self.max_generations:
            self.reason = "max_generations"
            return True
        if self.evaluations >= self.max_evaluations:
            self.reason = "max_evaluations"
            return True
        if len(self._ideal_history) == self._ideal_history.maxlen:
            hist = np.stack(self._ideal_history)
            span = hist.max(axis=0) - hist.min(axis=0)
            scale = np.abs(hist).max(axis=0) + 1e-12
            if np.all(span / scale < self.tol):
                self.reason = "tolerance_window"
                return True
        return False
