"""Quantum phase estimation and a ripple-carry adder workload."""

from __future__ import annotations

import math

from ..circuits.circuit import Circuit
from .qft import qft

__all__ = ["phase_estimation", "ripple_adder"]


def phase_estimation(
    num_counting: int, phase: float = 0.3125, *, measure: bool = True
) -> Circuit:
    """QPE of a Z-rotation eigenphase on one target qubit.

    The target qubit (index ``num_counting``) is prepared in |1>, an
    eigenstate of the phase gate; counting qubits read out ``phase`` in
    binary. Total width is ``num_counting + 1``.
    """
    if num_counting < 1:
        raise ValueError("QPE needs >= 1 counting qubit")
    n = num_counting + 1
    target = num_counting
    circ = Circuit(n, f"qpe_{n}")
    circ.metadata["phase"] = phase
    circ.x(target)
    for q in range(num_counting):
        circ.h(q)
    for q in range(num_counting):
        reps = 2**q
        angle = 2.0 * math.pi * phase * reps
        circ.cp(angle, q, target)
    inverse_qft = qft(num_counting, swaps=True).inverse()
    circ.compose(inverse_qft, qubits=list(range(num_counting)))
    if measure:
        for q in range(num_counting):
            circ.measure(q)
    return circ


def ripple_adder(
    num_bits: int, a: int | None = None, b: int | None = None, *, measure: bool = True
) -> Circuit:
    """Cuccaro-style ripple-carry adder computing a+b into register b.

    Layout: qubit 0 = carry-in ancilla, then interleaved b_i, a_i pairs,
    final qubit = carry-out. Width = 2*num_bits + 2.
    """
    if num_bits < 1:
        raise ValueError("adder needs >= 1 bit")
    if a is None:
        a = (1 << num_bits) - 1
    if b is None:
        b = 1
    n = 2 * num_bits + 2
    circ = Circuit(n, f"adder_{num_bits}b")
    circ.metadata["a"] = a
    circ.metadata["b"] = b

    def a_q(i: int) -> int:
        return 2 + 2 * i

    def b_q(i: int) -> int:
        return 1 + 2 * i

    carry_in, carry_out = 0, n - 1
    for i in range(num_bits):
        if (a >> i) & 1:
            circ.x(a_q(i))
        if (b >> i) & 1:
            circ.x(b_q(i))

    def maj(c: int, bq: int, aq: int) -> None:
        circ.cx(aq, bq)
        circ.cx(aq, c)
        # Toffoli(c, bq -> aq) via standard H/T decomposition
        _toffoli(circ, c, bq, aq)

    def uma(c: int, bq: int, aq: int) -> None:
        _toffoli(circ, c, bq, aq)
        circ.cx(aq, c)
        circ.cx(c, bq)

    maj(carry_in, b_q(0), a_q(0))
    for i in range(1, num_bits):
        maj(a_q(i - 1), b_q(i), a_q(i))
    circ.cx(a_q(num_bits - 1), carry_out)
    for i in range(num_bits - 1, 0, -1):
        uma(a_q(i - 1), b_q(i), a_q(i))
    uma(carry_in, b_q(0), a_q(0))

    if measure:
        for i in range(num_bits):
            circ.measure(b_q(i))
        circ.measure(carry_out)
    return circ


def _toffoli(circ: Circuit, c1: int, c2: int, target: int) -> None:
    """Standard 6-CX Toffoli decomposition into the Clifford+T set."""
    circ.h(target)
    circ.cx(c2, target)
    circ.tdg(target)
    circ.cx(c1, target)
    circ.t(target)
    circ.cx(c2, target)
    circ.tdg(target)
    circ.cx(c1, target)
    circ.t(c2)
    circ.t(target)
    circ.h(target)
    circ.cx(c1, c2)
    circ.t(c1)
    circ.tdg(c2)
    circ.cx(c1, c2)
