"""Benchmark suite catalog and workload sampler.

Plays the role of the MQT Benchmark library in the paper's evaluation: a
named catalog of parameterised circuit generators (2-130 qubits) plus a
sampler that draws random applications the way the paper's load generator
does — random algorithm, normally distributed width, random shot counts.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit
from .ghz import ghz, ghz_linear, w_state
from .oracles import bernstein_vazirani, deutsch_jozsa
from .qaoa import qaoa_maxcut
from .qft import qft, qft_entangled
from .qpe import phase_estimation, ripple_adder
from .random_circuits import random_circuit
from .vqe import real_amplitudes, two_local

__all__ = ["BENCHMARKS", "generate", "benchmark_names", "WorkloadSampler", "SampledJob"]


def _qft_measured(n: int, seed: int) -> Circuit:
    return qft(n, measure=True)


def _adder(n: int, seed: int) -> Circuit:
    bits = max(1, (n - 2) // 2)
    return ripple_adder(bits)


def _qpe(n: int, seed: int) -> Circuit:
    return phase_estimation(max(1, n - 1))


#: name -> (generator(num_qubits, seed) -> Circuit, min_qubits, max_qubits)
BENCHMARKS: dict[str, tuple[Callable[[int, int], Circuit], int, int]] = {
    "ghz": (lambda n, s: ghz(n), 2, 130),
    "ghz_linear": (lambda n, s: ghz_linear(n), 2, 130),
    "wstate": (lambda n, s: w_state(n), 2, 130),
    "qft": (_qft_measured, 2, 130),
    "qft_entangled": (lambda n, s: qft_entangled(n), 2, 130),
    "qaoa": (lambda n, s: qaoa_maxcut(n, p_layers=1, seed=s), 2, 130),
    "qaoa_deep": (lambda n, s: qaoa_maxcut(n, p_layers=3, seed=s), 2, 130),
    "vqe_real_amplitudes": (lambda n, s: real_amplitudes(n, reps=2, seed=s), 2, 130),
    "vqe_two_local": (lambda n, s: two_local(n, reps=1, seed=s), 2, 60),
    "bv": (lambda n, s: bernstein_vazirani(n), 1, 130),
    "dj": (lambda n, s: deutsch_jozsa(n, seed=s), 1, 130),
    "qpe": (_qpe, 2, 40),
    "adder": (_adder, 4, 130),
    "random": (lambda n, s: random_circuit(n, depth=max(2, n // 2), seed=s), 1, 130),
}

# Grover is exponential-size; only offered at small widths.
from .grover import grover  # noqa: E402

BENCHMARKS["grover"] = (lambda n, s: grover(n), 2, 8)

from .dynamics import amplitude_estimation, tfim_trotter  # noqa: E402

BENCHMARKS["tfim"] = (lambda n, s: tfim_trotter(n, steps=2), 2, 130)
BENCHMARKS["amplitude_estimation"] = (
    lambda n, s: amplitude_estimation(n, grover_power=1), 2, 8
)


def benchmark_names() -> list[str]:
    return sorted(BENCHMARKS)


def generate(name: str, num_qubits: int, seed: int = 0) -> Circuit:
    """Instantiate benchmark ``name`` at ``num_qubits`` qubits."""
    if name not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; see benchmark_names()")
    fn, lo, hi = BENCHMARKS[name]
    if not lo <= num_qubits <= hi:
        raise ValueError(
            f"benchmark {name!r} supports {lo}..{hi} qubits, got {num_qubits}"
        )
    circ = fn(num_qubits, seed)
    circ.metadata.setdefault("benchmark", name)
    return circ


@dataclass(frozen=True)
class SampledJob:
    """One synthetic application drawn by the sampler."""

    circuit: Circuit
    shots: int
    benchmark: str
    uses_mitigation: bool


class WorkloadSampler:
    """Draws random applications mirroring the paper's load generator (§8.2).

    Widths follow a (truncated) normal distribution, shots are drawn
    log-uniformly from {1k..20k}, and a configurable fraction of jobs
    request error mitigation (50 % on average in the paper).
    """

    def __init__(
        self,
        *,
        mean_qubits: float = 12.0,
        std_qubits: float = 6.0,
        min_qubits: int = 2,
        max_qubits: int = 130,
        mitigation_fraction: float = 0.5,
        benchmarks: list[str] | None = None,
        shots_choices: tuple[int, ...] | None = None,
        seed: int | None = None,
    ) -> None:
        if min_qubits > max_qubits:
            raise ValueError(
                f"min_qubits ({min_qubits}) must be <= "
                f"max_qubits ({max_qubits})"
            )
        self.mean_qubits = mean_qubits
        self.std_qubits = std_qubits
        self.min_qubits = min_qubits
        self.max_qubits = max_qubits
        self.mitigation_fraction = mitigation_fraction
        #: When set, shots are drawn from this grid instead of the
        #: log-uniform continuum — real cloud users overwhelmingly request
        #: round shot counts, which is what makes estimate caching pay off.
        if shots_choices is not None and len(shots_choices) == 0:
            raise ValueError("shots_choices must be non-empty when given")
        self.shots_choices = shots_choices
        requested = benchmarks or [
            n
            for n in benchmark_names()
            if n not in ("grover", "amplitude_estimation")
        ]
        # A benchmark whose own width range misses [min_qubits,
        # max_qubits] would silently clamp every draw outside the
        # documented bounds (e.g. grover caps at 8 qubits: min_qubits=10
        # would yield 8-qubit jobs).  Explicitly requested benchmarks
        # fail loudly; the default catalog is filtered.
        def _compatible(name: str) -> bool:
            _, blo, bhi = BENCHMARKS[name]
            return blo <= self.max_qubits and bhi >= self.min_qubits

        incompatible = [n for n in requested if not _compatible(n)]
        if incompatible and benchmarks:
            raise ValueError(
                f"benchmarks {incompatible} cannot produce widths in "
                f"[{self.min_qubits}, {self.max_qubits}]"
            )
        self.benchmarks = [n for n in requested if _compatible(n)]
        if not self.benchmarks:
            raise ValueError(
                f"no benchmark can produce widths in "
                f"[{self.min_qubits}, {self.max_qubits}]"
            )
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    def sample(self) -> SampledJob:
        """Draw one application."""
        rng = self._rng
        name = self.benchmarks[int(rng.integers(len(self.benchmarks)))]
        _, lo, hi = BENCHMARKS[name]
        lo = max(lo, self.min_qubits)
        hi = min(hi, self.max_qubits)
        width = int(round(rng.normal(self.mean_qubits, self.std_qubits)))
        width = int(min(hi, max(lo, width)))
        self._counter += 1
        circ = generate(name, width, seed=self._counter)
        if self.shots_choices is not None:
            shots = int(self.shots_choices[int(rng.integers(len(self.shots_choices)))])
        else:
            shots = int(2 ** rng.uniform(10, 14.3))  # ~1k .. ~20k
        uses_mit = bool(rng.random() < self.mitigation_fraction)
        return SampledJob(
            circuit=circ, shots=shots, benchmark=name, uses_mitigation=uses_mit
        )

    def sample_many(self, count: int) -> list[SampledJob]:
        return [self.sample() for _ in range(count)]
