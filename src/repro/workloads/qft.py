"""Quantum Fourier Transform circuits."""

from __future__ import annotations

import math

from ..circuits.circuit import Circuit

__all__ = ["qft", "qft_entangled"]


def qft(num_qubits: int, *, swaps: bool = True, measure: bool = False,
        approximation_degree: int = 0) -> Circuit:
    """Textbook QFT: H + controlled-phase ladder (+ reversing swaps).

    ``approximation_degree`` drops the smallest-angle controlled phases
    (AQFT), trading exactness for two-qubit count on noisy hardware.
    """
    if num_qubits < 1:
        raise ValueError("QFT needs >= 1 qubit")
    circ = Circuit(num_qubits, f"qft_{num_qubits}")
    # Qubit 0 is the least-significant bit of the transformed index; with
    # the final swaps the unitary matches the textbook DFT matrix exactly.
    for i in reversed(range(num_qubits)):
        circ.h(i)
        for j in reversed(range(i)):
            k = i - j + 1
            if approximation_degree and k > num_qubits - approximation_degree:
                continue
            circ.cp(2.0 * math.pi / (2**k), j, i)
    if swaps:
        for i in range(num_qubits // 2):
            circ.swap(i, num_qubits - 1 - i)
    if measure:
        circ.measure_all()
    return circ


def qft_entangled(num_qubits: int, *, measure: bool = True) -> Circuit:
    """QFT applied to a GHZ input — MQT Bench's 'qftentangled' workload."""
    circ = Circuit(num_qubits, f"qft_entangled_{num_qubits}")
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    circ.compose(qft(num_qubits, swaps=True, measure=False))
    if measure:
        circ.measure_all()
    return circ
