"""Benchmark circuit library (MQT-Bench substitute)."""

from .dynamics import amplitude_estimation, tfim_trotter
from .ghz import ghz, ghz_linear, w_state
from .grover import diffuser, grover, grover_oracle, mcp, mcx
from .oracles import bernstein_vazirani, deutsch_jozsa
from .qaoa import (
    maxcut_cost,
    qaoa_maxcut,
    qaoa_ring_maxcut,
    random_maxcut_graph,
)
from .qft import qft, qft_entangled
from .qpe import phase_estimation, ripple_adder
from .random_circuits import clustered_circuit, random_circuit
from .suite import (
    BENCHMARKS,
    SampledJob,
    WorkloadSampler,
    benchmark_names,
    generate,
)
from .vqe import real_amplitudes, two_local, vqe_ansatz

__all__ = [
    "ghz",
    "ghz_linear",
    "w_state",
    "qft",
    "qft_entangled",
    "maxcut_cost",
    "qaoa_maxcut",
    "qaoa_ring_maxcut",
    "random_maxcut_graph",
    "real_amplitudes",
    "two_local",
    "vqe_ansatz",
    "diffuser",
    "grover",
    "grover_oracle",
    "mcp",
    "mcx",
    "bernstein_vazirani",
    "deutsch_jozsa",
    "phase_estimation",
    "ripple_adder",
    "clustered_circuit",
    "amplitude_estimation",
    "tfim_trotter",
    "random_circuit",
    "BENCHMARKS",
    "SampledJob",
    "WorkloadSampler",
    "benchmark_names",
    "generate",
]
