"""Grover search circuits with a phase-oracle for one marked bitstring."""

from __future__ import annotations

import math

from ..circuits.circuit import Circuit

__all__ = ["grover", "grover_oracle", "diffuser", "mcp", "mcx"]


def mcp(circ: Circuit, theta: float, qubits: list[int]) -> None:
    """Multi-controlled phase: phase ``theta`` on the all-ones state.

    Standard ancilla-free recursion (Barenco et al.): gate count grows
    exponentially in the register size, which is acceptable for the
    benchmark widths (<= ~10 qubits) where Grover is simulable anyway.
    """
    if not qubits:
        raise ValueError("mcp needs at least one qubit")
    if len(qubits) == 1:
        circ.p(theta, qubits[0])
        return
    if len(qubits) == 2:
        circ.cp(theta, qubits[0], qubits[1])
        return
    controls, target = qubits[:-1], qubits[-1]
    pivot = controls[-1]
    circ.cp(theta / 2.0, pivot, target)
    mcx(circ, controls[:-1], pivot)
    circ.cp(-theta / 2.0, pivot, target)
    mcx(circ, controls[:-1], pivot)
    mcp(circ, theta / 2.0, controls[:-1] + [target])


def mcx(circ: Circuit, controls: list[int], target: int) -> None:
    """Multi-controlled X built from H-sandwiched :func:`mcp`."""
    if not controls:
        circ.x(target)
        return
    if len(controls) == 1:
        circ.cx(controls[0], target)
        return
    circ.h(target)
    mcp(circ, math.pi, controls + [target])
    circ.h(target)


def _multi_controlled_z(circ: Circuit, qubits: list[int]) -> None:
    """(n-1)-controlled Z: phase pi on the all-ones state."""
    if len(qubits) == 1:
        circ.z(qubits[0])
        return
    if len(qubits) == 2:
        circ.cz(qubits[0], qubits[1])
        return
    mcp(circ, math.pi, qubits)


def grover_oracle(num_qubits: int, marked: str) -> Circuit:
    """Phase oracle flipping the sign of ``|marked>`` (bit 0 rightmost)."""
    if len(marked) != num_qubits:
        raise ValueError("marked bitstring length must equal num_qubits")
    circ = Circuit(num_qubits, f"oracle_{marked}")
    zeros = [q for q in range(num_qubits) if marked[num_qubits - 1 - q] == "0"]
    for q in zeros:
        circ.x(q)
    _multi_controlled_z(circ, list(range(num_qubits)))
    for q in zeros:
        circ.x(q)
    return circ


def diffuser(num_qubits: int) -> Circuit:
    """Grover diffuser: inversion about the mean."""
    circ = Circuit(num_qubits, "diffuser")
    for q in range(num_qubits):
        circ.h(q)
        circ.x(q)
    _multi_controlled_z(circ, list(range(num_qubits)))
    for q in range(num_qubits):
        circ.x(q)
        circ.h(q)
    return circ


def grover(
    num_qubits: int,
    marked: str | None = None,
    iterations: int | None = None,
    *,
    measure: bool = True,
) -> Circuit:
    """Full Grover search for one marked item.

    Default iteration count is the optimal ``round(pi/4 * sqrt(2^n))``.
    """
    if num_qubits < 2:
        raise ValueError("Grover needs >= 2 qubits")
    if marked is None:
        marked = "1" * num_qubits
    if iterations is None:
        iterations = max(1, round(math.pi / 4.0 * math.sqrt(2**num_qubits)))
    circ = Circuit(num_qubits, f"grover_{num_qubits}")
    circ.metadata["marked"] = marked
    for q in range(num_qubits):
        circ.h(q)
    oracle = grover_oracle(num_qubits, marked)
    diff = diffuser(num_qubits)
    for _ in range(iterations):
        circ.compose(oracle)
        circ.compose(diff)
    if measure:
        circ.measure_all()
    return circ
