"""Hamiltonian-simulation and amplitude-estimation workloads.

Rounds out the quantum library with two more families the quantum-cloud
literature benchmarks against: first-order Trotterized transverse-field
Ising evolution, and (ancilla-free, maximum-likelihood-style) amplitude
estimation built from Grover powers.
"""

from __future__ import annotations

from ..circuits.circuit import Circuit
from .grover import diffuser, grover_oracle

__all__ = ["tfim_trotter", "amplitude_estimation"]


def tfim_trotter(
    num_qubits: int,
    steps: int = 2,
    *,
    time: float = 1.0,
    j_coupling: float = 1.0,
    h_field: float = 1.0,
    measure: bool = True,
) -> Circuit:
    """First-order Trotter circuit for the 1-D transverse-field Ising model.

    ``H = -J sum Z_i Z_{i+1} - h sum X_i``; each Trotter step applies the
    ZZ layer (rzz) then the X layer (rx). Chain topology: routes swap-free.
    """
    if num_qubits < 2:
        raise ValueError("TFIM needs >= 2 qubits")
    if steps < 1:
        raise ValueError("need >= 1 Trotter step")
    dt = time / steps
    circ = Circuit(num_qubits, f"tfim_{num_qubits}_s{steps}")
    circ.metadata["hamiltonian"] = {
        "J": j_coupling, "h": h_field, "time": time, "steps": steps,
    }
    for _ in range(steps):
        for q in range(num_qubits - 1):
            circ.rzz(-2.0 * j_coupling * dt, q, q + 1)
        for q in range(num_qubits):
            circ.rx(-2.0 * h_field * dt, q)
    if measure:
        circ.measure_all()
    return circ


def amplitude_estimation(
    num_qubits: int,
    grover_power: int = 1,
    *,
    marked: str | None = None,
    measure: bool = True,
) -> Circuit:
    """Amplitude-amplification circuit at one Grover power.

    MLAE-style amplitude estimation executes the state-preparation
    operator followed by ``Q^k`` (oracle + diffuser repeated ``k`` times)
    and post-processes hit rates across several powers classically; this
    generates the quantum piece for one power.
    """
    if num_qubits < 2:
        raise ValueError("amplitude estimation needs >= 2 qubits")
    if grover_power < 0:
        raise ValueError("grover_power must be >= 0")
    if marked is None:
        marked = "1" * num_qubits
    circ = Circuit(num_qubits, f"ae_{num_qubits}_k{grover_power}")
    circ.metadata["marked"] = marked
    circ.metadata["grover_power"] = grover_power
    for q in range(num_qubits):
        circ.h(q)
    oracle = grover_oracle(num_qubits, marked)
    diff = diffuser(num_qubits)
    for _ in range(grover_power):
        circ.compose(oracle)
        circ.compose(diff)
    if measure:
        circ.measure_all()
    return circ
