"""Oracle-style textbook algorithms: Bernstein-Vazirani, Deutsch-Jozsa."""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit

__all__ = ["bernstein_vazirani", "deutsch_jozsa"]


def bernstein_vazirani(
    num_qubits: int, secret: str | None = None, *, measure: bool = True
) -> Circuit:
    """BV with the phase-kickback oracle folded into Z gates.

    ``num_qubits`` counts only the data register (the ancilla is optimized
    away by compiling the oracle into Z gates on the secret's 1-bits, the
    standard ancilla-free formulation).
    """
    if num_qubits < 1:
        raise ValueError("BV needs >= 1 qubit")
    if secret is None:
        secret = "10" * (num_qubits // 2) + ("1" if num_qubits % 2 else "")
    if len(secret) != num_qubits:
        raise ValueError("secret length must equal num_qubits")
    circ = Circuit(num_qubits, f"bv_{num_qubits}")
    circ.metadata["secret"] = secret
    for q in range(num_qubits):
        circ.h(q)
    for q in range(num_qubits):
        if secret[num_qubits - 1 - q] == "1":
            circ.z(q)
    for q in range(num_qubits):
        circ.h(q)
    if measure:
        circ.measure_all()
    return circ


def deutsch_jozsa(
    num_qubits: int,
    *,
    balanced: bool = True,
    seed: int = 0,
    measure: bool = True,
) -> Circuit:
    """DJ distinguishing constant vs balanced oracles (ancilla-free form)."""
    if num_qubits < 1:
        raise ValueError("DJ needs >= 1 qubit")
    circ = Circuit(num_qubits, f"dj_{num_qubits}")
    circ.metadata["balanced"] = balanced
    for q in range(num_qubits):
        circ.h(q)
    if balanced:
        # A balanced phase oracle: f(x) = x . s for a random nonzero mask s.
        rng = np.random.default_rng(seed)
        mask = 0
        while mask == 0:
            mask = int(rng.integers(1, 2**num_qubits))
        for q in range(num_qubits):
            if (mask >> q) & 1:
                circ.z(q)
    # constant oracle: global phase, nothing to apply
    for q in range(num_qubits):
        circ.h(q)
    if measure:
        circ.measure_all()
    return circ
