"""GHZ and W entangled-state preparation circuits.

The 12-qubit GHZ circuit is the probe the paper uses for the spatial
performance-variance study (Fig. 2b).
"""

from __future__ import annotations

import math

from ..circuits.circuit import Circuit

__all__ = ["ghz", "ghz_linear", "w_state"]


def ghz(num_qubits: int, *, measure: bool = True) -> Circuit:
    """Star-shaped GHZ: H on qubit 0 then fan-out CNOTs from qubit 0."""
    if num_qubits < 2:
        raise ValueError("GHZ needs >= 2 qubits")
    circ = Circuit(num_qubits, f"ghz_{num_qubits}")
    circ.h(0)
    for q in range(1, num_qubits):
        circ.cx(0, q)
    if measure:
        circ.measure_all()
    return circ


def ghz_linear(num_qubits: int, *, measure: bool = True) -> Circuit:
    """Chain GHZ: CNOT ladder, hardware-friendlier on linear couplings."""
    if num_qubits < 2:
        raise ValueError("GHZ needs >= 2 qubits")
    circ = Circuit(num_qubits, f"ghz_linear_{num_qubits}")
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    if measure:
        circ.measure_all()
    return circ


def w_state(num_qubits: int, *, measure: bool = True) -> Circuit:
    """W-state preparation via cascaded controlled rotations.

    Uses the standard recursive construction: a chain of F-gates (ry + cz
    sandwich) distributing a single excitation across all qubits.
    """
    if num_qubits < 2:
        raise ValueError("W state needs >= 2 qubits")
    circ = Circuit(num_qubits, f"w_{num_qubits}")
    circ.x(0)
    for k in range(1, num_qubits):
        # F gate: rotate amplitude from qubit k-1 onto qubit k.
        theta = math.acos(math.sqrt(1.0 / (num_qubits - k + 1)))
        circ.ry(-theta, k)
        circ.cz(k - 1, k)
        circ.ry(theta, k)
        circ.cx(k, k - 1)
    if measure:
        circ.measure_all()
    return circ
