"""QAOA max-cut circuits.

The 20-qubit QAOA max-cut instance drives the paper's resource-plan Pareto
study (Fig. 7a), and QAOA is one of the headline quantum-library algorithms
of the Qonductor programming model (§5).
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit

__all__ = ["qaoa_maxcut", "qaoa_ring_maxcut", "random_maxcut_graph", "maxcut_cost"]


def random_maxcut_graph(
    num_nodes: int, edge_prob: float = 0.5, rng: np.random.Generator | None = None
) -> list[tuple[int, int]]:
    """Erdős–Rényi graph edge list for max-cut instances."""
    rng = rng or np.random.default_rng(0)
    edges = [
        (i, j)
        for i in range(num_nodes)
        for j in range(i + 1, num_nodes)
        if rng.random() < edge_prob
    ]
    if not edges:  # guarantee a connected-ish instance
        edges = [(i, i + 1) for i in range(num_nodes - 1)]
    return edges


def qaoa_maxcut(
    num_qubits: int,
    p_layers: int = 1,
    *,
    edges: list[tuple[int, int]] | None = None,
    gammas: list[float] | None = None,
    betas: list[float] | None = None,
    measure: bool = True,
    seed: int = 0,
) -> Circuit:
    """QAOA ansatz for max-cut: |+>^n then alternating cost/mixer layers."""
    if num_qubits < 2:
        raise ValueError("QAOA needs >= 2 qubits")
    rng = np.random.default_rng(seed)
    if edges is None:
        edges = random_maxcut_graph(num_qubits, 3.0 / max(3, num_qubits), rng)
    gammas = gammas if gammas is not None else list(rng.uniform(0.1, np.pi, p_layers))
    betas = betas if betas is not None else list(rng.uniform(0.1, np.pi / 2, p_layers))
    if len(gammas) != p_layers or len(betas) != p_layers:
        raise ValueError("need one gamma and one beta per layer")
    circ = Circuit(num_qubits, f"qaoa_{num_qubits}_p{p_layers}")
    circ.metadata["edges"] = list(edges)
    for q in range(num_qubits):
        circ.h(q)
    for layer in range(p_layers):
        for a, b in edges:
            circ.rzz(2.0 * gammas[layer], a, b)
        for q in range(num_qubits):
            circ.rx(2.0 * betas[layer], q)
    if measure:
        circ.measure_all()
    return circ


def qaoa_ring_maxcut(
    num_qubits: int, p_layers: int = 1, *, measure: bool = True, seed: int = 0
) -> Circuit:
    """QAOA on a ring (cycle) max-cut instance.

    Degree-2 interaction graph: routes swap-free along a physical path,
    making it the hardware-friendly QAOA variant used for the resource-plan
    study (Fig. 7a).
    """
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    circ = qaoa_maxcut(
        num_qubits, p_layers, edges=edges, measure=measure, seed=seed
    )
    circ.name = f"qaoa_ring_{num_qubits}_p{p_layers}"
    return circ


def maxcut_cost(bitstring: str, edges: list[tuple[int, int]]) -> int:
    """Cut value of an assignment; bit for qubit q is ``bitstring[-1-q]``."""
    n = len(bitstring)
    return sum(1 for a, b in edges if bitstring[n - 1 - a] != bitstring[n - 1 - b])
