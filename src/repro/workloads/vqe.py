"""VQE ansatz circuits (RealAmplitudes / TwoLocal style)."""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit

__all__ = ["real_amplitudes", "two_local", "vqe_ansatz"]


def real_amplitudes(
    num_qubits: int,
    reps: int = 2,
    *,
    parameters: list[float] | None = None,
    entanglement: str = "linear",
    measure: bool = True,
    seed: int = 0,
) -> Circuit:
    """RealAmplitudes ansatz: ry layers interleaved with CX entanglers."""
    if num_qubits < 2:
        raise ValueError("ansatz needs >= 2 qubits")
    n_params = num_qubits * (reps + 1)
    if parameters is None:
        parameters = list(np.random.default_rng(seed).uniform(-np.pi, np.pi, n_params))
    if len(parameters) != n_params:
        raise ValueError(f"expected {n_params} parameters, got {len(parameters)}")
    circ = Circuit(num_qubits, f"vqe_ra_{num_qubits}_r{reps}")
    it = iter(parameters)
    for _rep in range(reps):
        for q in range(num_qubits):
            circ.ry(next(it), q)
        for a, b in _entangler_pairs(num_qubits, entanglement):
            circ.cx(a, b)
    for q in range(num_qubits):
        circ.ry(next(it), q)
    if measure:
        circ.measure_all()
    return circ


def two_local(
    num_qubits: int,
    reps: int = 2,
    *,
    rotation_gates: tuple[str, ...] = ("ry", "rz"),
    entangler: str = "cz",
    entanglement: str = "full",
    measure: bool = True,
    seed: int = 0,
) -> Circuit:
    """TwoLocal ansatz with configurable rotations and entangler."""
    rng = np.random.default_rng(seed)
    circ = Circuit(num_qubits, f"vqe_tl_{num_qubits}_r{reps}")
    for rep in range(reps + 1):
        for gate in rotation_gates:
            for q in range(num_qubits):
                circ.add(gate, [q], float(rng.uniform(-np.pi, np.pi)))
        if rep < reps:
            for a, b in _entangler_pairs(num_qubits, entanglement):
                circ.add(entangler, [a, b])
    if measure:
        circ.measure_all()
    return circ


def vqe_ansatz(num_qubits: int, reps: int = 2, *, measure: bool = True, seed: int = 0) -> Circuit:
    """Default VQE workload used by the load generator."""
    return real_amplitudes(num_qubits, reps, measure=measure, seed=seed)


def _entangler_pairs(num_qubits: int, entanglement: str) -> list[tuple[int, int]]:
    if entanglement == "linear":
        return [(q, q + 1) for q in range(num_qubits - 1)]
    if entanglement == "circular":
        pairs = [(q, q + 1) for q in range(num_qubits - 1)]
        if num_qubits > 2:
            pairs.append((num_qubits - 1, 0))
        return pairs
    if entanglement == "full":
        return [
            (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
        ]
    raise ValueError(f"unknown entanglement {entanglement!r}")
