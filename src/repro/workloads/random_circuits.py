"""Random circuit generators: generic layered circuits and the clustered
two-block circuits used for the circuit-cutting study (Fig. 2a)."""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit

__all__ = ["random_circuit", "clustered_circuit"]

_ONE_Q = ("h", "x", "sx", "rz", "rx", "ry", "t", "s")
_TWO_Q = ("cx", "cz", "rzz")


def random_circuit(
    num_qubits: int,
    depth: int,
    *,
    two_qubit_prob: float = 0.5,
    measure: bool = True,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> Circuit:
    """Layered random circuit: each layer pairs up free qubits with
    probability ``two_qubit_prob`` and fills the rest with random 1q gates."""
    if num_qubits < 1 or depth < 1:
        raise ValueError("need num_qubits >= 1 and depth >= 1")
    rng = rng or np.random.default_rng(seed)
    circ = Circuit(num_qubits, f"random_{num_qubits}x{depth}")
    for _ in range(depth):
        free = list(rng.permutation(num_qubits))
        while free:
            q = int(free.pop())
            if free and rng.random() < two_qubit_prob:
                partner = int(free.pop())
                name = _TWO_Q[int(rng.integers(len(_TWO_Q)))]
                if name == "rzz":
                    circ.rzz(float(rng.uniform(0, 2 * np.pi)), q, partner)
                else:
                    circ.add(name, [q, partner])
            else:
                name = _ONE_Q[int(rng.integers(len(_ONE_Q)))]
                if name in ("rz", "rx", "ry"):
                    circ.add(name, [q], float(rng.uniform(0, 2 * np.pi)))
                else:
                    circ.add(name, [q])
    if measure:
        circ.measure_all()
    return circ


def clustered_circuit(
    num_qubits: int,
    depth: int,
    *,
    num_clusters: int = 2,
    bridge_gates: int = 1,
    measure: bool = True,
    seed: int | None = None,
) -> Circuit:
    """Random circuit with dense intra-cluster and sparse inter-cluster
    entanglement — the structure circuit cutting exploits.

    ``bridge_gates`` cross-cluster CZ gates connect adjacent clusters; a
    wire/gate cut across those bridges splits the circuit into fragments
    of roughly ``num_qubits / num_clusters`` qubits each (Fig. 2a's setup
    cuts 12- and 24-qubit circuits in half).
    """
    if num_clusters < 2 or num_qubits < 2 * num_clusters:
        raise ValueError("need >= 2 clusters with >= 2 qubits each")
    rng = np.random.default_rng(seed)
    bounds = np.linspace(0, num_qubits, num_clusters + 1).astype(int)
    clusters = [list(range(bounds[i], bounds[i + 1])) for i in range(num_clusters)]
    circ = Circuit(num_qubits, f"clustered_{num_qubits}x{depth}")
    circ.metadata["clusters"] = [list(c) for c in clusters]
    bridges: list[tuple[int, int]] = []
    for _layer in range(depth):
        for cluster in clusters:
            free = list(rng.permutation(cluster))
            while free:
                q = int(free.pop())
                if free and rng.random() < 0.6:
                    partner = int(free.pop())
                    circ.cx(q, partner)
                else:
                    name = _ONE_Q[int(rng.integers(len(_ONE_Q)))]
                    if name in ("rz", "rx", "ry"):
                        circ.add(name, [q], float(rng.uniform(0, 2 * np.pi)))
                    else:
                        circ.add(name, [q])
    # Sparse bridges between adjacent clusters, placed mid-circuit.
    for i in range(num_clusters - 1):
        for _ in range(bridge_gates):
            a = int(rng.choice(clusters[i]))
            b = int(rng.choice(clusters[i + 1]))
            circ.cz(a, b)
            bridges.append((a, b))
    circ.metadata["bridges"] = bridges
    if measure:
        circ.measure_all()
    return circ
