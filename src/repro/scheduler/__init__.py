"""Hybrid scheduling (§7): the NSGA-II/MCDM quantum scheduler, the
filter-score classical scheduler, baseline policies, triggers, and
calibration-crossover re-evaluation."""

from .calibration_crossover import (
    CrossoverReport,
    reevaluate_post_calibration,
    split_at_calibration,
)
from .classical import ClassicalNode, ClassicalRequest, ClassicalScheduler
from .cycle import (
    ConstantCycleLatency,
    NsgaCycleLatencyModel,
    OptimizationResult,
    OptimizationTask,
    cycle_seed,
    make_latency_model,
    run_optimization,
)
from .formulation import SchedulingInput, SchedulingProblem
from .policies import (
    BatchedFCFSPolicy,
    FCFSPolicy,
    LeastBusyPolicy,
    RandomPolicy,
)
from .quantum import (
    CyclePlan,
    QonductorScheduler,
    QuantumSchedule,
    ScheduleDecision,
)
from .reservations import Reservation, ReservationManager
from .triggers import SchedulingTrigger

__all__ = [
    "SchedulingInput",
    "SchedulingProblem",
    "QonductorScheduler",
    "QuantumSchedule",
    "ScheduleDecision",
    "CyclePlan",
    "OptimizationTask",
    "OptimizationResult",
    "cycle_seed",
    "run_optimization",
    "ConstantCycleLatency",
    "NsgaCycleLatencyModel",
    "make_latency_model",
    "ClassicalNode",
    "ClassicalRequest",
    "ClassicalScheduler",
    "FCFSPolicy",
    "BatchedFCFSPolicy",
    "LeastBusyPolicy",
    "RandomPolicy",
    "SchedulingTrigger",
    "Reservation",
    "ReservationManager",
    "CrossoverReport",
    "reevaluate_post_calibration",
    "split_at_calibration",
]
