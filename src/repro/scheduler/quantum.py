"""The Qonductor quantum scheduler (§7, Fig. 5).

Three configurable stages:

1. **Job pre-processing** — filter jobs/QPUs, fetch fidelity and runtime
   estimates (from the resource estimator via the system monitor).
2. **Optimization** — NSGA-II over the Eq. 1 problem, producing a Pareto
   front of batch assignments.
3. **Selection** — MCDM pseudo-weights pick one solution matching the
   operator's preference (fidelity / balanced / JCT).

Stage runtimes are measured individually (Fig. 9c).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..backends.qpu import QPU
from ..cloud.job import QuantumJob, feasibility_matrix
from ..moo import NSGA2, Termination, select_by_preference
from .formulation import SchedulingInput, SchedulingProblem

__all__ = ["ScheduleDecision", "QuantumSchedule", "QonductorScheduler"]

#: Estimate callback signature: (job, qpu) -> (fidelity, exec_seconds).
EstimateFn = Callable[[QuantumJob, QPU], tuple[float, float]]


@dataclass
class ScheduleDecision:
    """One job's assignment."""

    job: QuantumJob
    qpu_name: str
    est_fidelity: float
    est_exec_seconds: float


@dataclass
class QuantumSchedule:
    """Output of one scheduling cycle."""

    decisions: list[ScheduleDecision]
    unschedulable: list[QuantumJob]
    front_F: np.ndarray  # Pareto front objective matrix (JCT, error)
    chosen_index: int
    stats: dict
    stage_seconds: dict = field(default_factory=dict)
    #: Mean per-job execution seconds of every front solution (Fig. 10a).
    front_exec_seconds: np.ndarray = field(
        default_factory=lambda: np.zeros(0)
    )

    @property
    def front_min_jct(self) -> float:
        return float(self.front_F[:, 0].min()) if len(self.front_F) else 0.0

    @property
    def front_max_jct(self) -> float:
        return float(self.front_F[:, 0].max()) if len(self.front_F) else 0.0

    @property
    def front_min_fidelity(self) -> float:
        return float(1.0 - self.front_F[:, 1].max()) if len(self.front_F) else 0.0

    @property
    def front_max_fidelity(self) -> float:
        return float(1.0 - self.front_F[:, 1].min()) if len(self.front_F) else 0.0


class QonductorScheduler:
    """Many-to-many hybrid scheduler balancing fidelity vs JCT."""

    def __init__(
        self,
        estimate_fn: EstimateFn,
        *,
        preference: str | tuple[float, float] = "balanced",
        pop_size: int = 64,
        max_generations: int = 40,
        seed: int = 0,
        on_recalibrate: Callable[[list[QPU]], None] | None = None,
    ) -> None:
        self.estimate_fn = estimate_fn
        self.preference = preference
        self.pop_size = pop_size
        self.max_generations = max_generations
        self._seed = seed
        self._cycle = 0
        self._on_recalibrate = on_recalibrate

    def spawn(self, shard_id: int) -> "QonductorScheduler":
        """A per-shard scheduler over this one's configuration.

        Shares the estimate source (one fleet-wide cache) and derives the
        NSGA-II seed from the shard id, so shard 0 of a 1-shard fleet is
        seeded exactly like the unsharded scheduler and a sharded run
        stays deterministic.
        """
        return QonductorScheduler(
            self.estimate_fn,
            preference=self.preference,
            pop_size=self.pop_size,
            max_generations=self.max_generations,
            seed=self._seed + shard_id,
            on_recalibrate=self._on_recalibrate,
        )

    def on_recalibration(self, qpus: list[QPU]) -> None:
        """Calibration-cycle hook (called by the cloud simulator).

        Forwards to a caching ``estimate_fn`` (so memoized estimates from
        the dead calibration epoch are dropped) and to the optional
        ``on_recalibrate`` callback — the standard wiring passes the
        resource estimator's ``refresh_templates`` so template averages
        track fresh calibration data.
        """
        fn_hook = getattr(self.estimate_fn, "on_recalibration", None)
        if fn_hook is not None:
            fn_hook(qpus)
        if self._on_recalibrate is not None:
            self._on_recalibrate(qpus)

    # ------------------------------------------------------------------
    def preprocess(
        self, jobs: list[QuantumJob], qpus: list[QPU], waiting_seconds: dict[str, float]
    ) -> tuple[SchedulingInput | None, list[QuantumJob], list[QuantumJob]]:
        """Stage 1: filter and build estimate matrices.

        When ``estimate_fn`` exposes an ``estimate_matrix`` fast path (see
        :class:`~repro.estimator.cache.CachedEstimator`), the whole pending
        set is scored in vectorized array passes instead of one estimator
        call per (job, QPU) pair.

        Returns (input | None, schedulable_jobs, filtered_out_jobs).
        """
        online = [q for q in qpus if q.online]
        max_width = max((q.num_qubits for q in online), default=0)
        schedulable = [j for j in jobs if j.num_qubits <= max_width]
        rejected = [j for j in jobs if j.num_qubits > max_width]
        if not schedulable or not online:
            return None, schedulable, rejected
        n, m = len(schedulable), len(online)
        feas = feasibility_matrix(schedulable, online)
        if hasattr(self.estimate_fn, "estimate_matrix"):
            fid, sec = self.estimate_fn.estimate_matrix(schedulable, online, feas)
        else:
            fid = np.zeros((n, m))
            sec = np.zeros((n, m))
            for i, job in enumerate(schedulable):
                for k, qpu in enumerate(online):
                    if feas[i, k]:
                        fid[i, k], sec[i, k] = self.estimate_fn(job, qpu)
        wait = np.array([waiting_seconds.get(q.name, 0.0) for q in online])
        data = SchedulingInput(
            fidelity=fid, exec_seconds=sec, waiting_seconds=wait, feasible=feas
        )
        return data, schedulable, rejected

    def schedule(
        self,
        jobs: list[QuantumJob],
        qpus: list[QPU],
        waiting_seconds: dict[str, float] | None = None,
    ) -> QuantumSchedule:
        """Run one full scheduling cycle over ``jobs``."""
        self._cycle += 1
        waiting_seconds = waiting_seconds or {}
        online = [q for q in qpus if q.online]

        t0 = time.perf_counter()
        data, schedulable, rejected = self.preprocess(jobs, qpus, waiting_seconds)
        t_pre = time.perf_counter() - t0
        if data is None:
            return QuantumSchedule(
                decisions=[],
                unschedulable=rejected,
                front_F=np.zeros((0, 2)),
                chosen_index=-1,
                stats={},
                stage_seconds={"preprocess": t_pre, "optimize": 0.0, "select": 0.0},
            )

        t0 = time.perf_counter()
        problem = SchedulingProblem(data, seed=self._seed + self._cycle)
        algo = NSGA2(pop_size=self.pop_size, seed=self._seed + self._cycle)
        result = algo.minimize(
            problem, Termination(max_generations=self.max_generations)
        )
        t_opt = time.perf_counter() - t0

        t0 = time.perf_counter()
        chosen = select_by_preference(result.F, self.preference)
        assignment = result.X[chosen]
        t_sel = time.perf_counter() - t0

        rows = np.arange(data.num_jobs)
        # Mean per-job execution time of every front solution, in one
        # fancy-indexing pass over (front, jobs).
        front_exec = (
            data.exec_seconds[rows[None, :], np.atleast_2d(result.X)].mean(axis=1)
            if len(result.X)
            else np.zeros(0)
        )

        decisions = [
            ScheduleDecision(
                job=job,
                qpu_name=online[assignment[i]].name,
                est_fidelity=float(data.fidelity[i, assignment[i]]),
                est_exec_seconds=float(data.exec_seconds[i, assignment[i]]),
            )
            for i, job in enumerate(schedulable)
        ]
        return QuantumSchedule(
            decisions=decisions,
            unschedulable=rejected,
            front_F=result.F,
            chosen_index=chosen,
            stats=problem.assignment_stats(assignment),
            stage_seconds={
                "preprocess": t_pre,
                "optimize": t_opt,
                "select": t_sel,
            },
            front_exec_seconds=front_exec,
        )
