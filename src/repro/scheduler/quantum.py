"""The Qonductor quantum scheduler (§7, Fig. 5).

Three configurable stages:

1. **Job pre-processing** — filter jobs/QPUs, fetch fidelity and runtime
   estimates (from the resource estimator via the system monitor).
2. **Optimization** — NSGA-II over the Eq. 1 problem, producing a Pareto
   front of batch assignments.
3. **Selection** — MCDM pseudo-weights pick one solution matching the
   operator's preference (fidelity / balanced / JCT).

Stage runtimes are measured individually (Fig. 9c).

The stages are exposed both fused (:meth:`QonductorScheduler.schedule`,
one call per cycle) and split (:meth:`begin_cycle` -> the pure
:func:`~repro.scheduler.cycle.run_optimization` -> :meth:`finish_cycle`)
so the cloud simulator's parallel engine can run pre-processing and
selection on the main thread — where the shared estimate cache lives —
while the dominant optimization stage runs on a worker pool.  Cycle
randomness derives from ``(seed, shard_id, cycle_index)`` (see
:func:`~repro.scheduler.cycle.cycle_seed`), so results never depend on
execution order.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..backends.qpu import QPU
from ..cloud.job import QuantumJob, feasibility_matrix
from ..cloud.tenancy import tier_preference, tier_sort
from ..estimator.source import as_estimate_source
from ..moo import select_by_preference
from .cycle import OptimizationResult, OptimizationTask, run_optimization
from .formulation import SchedulingInput, assignment_stats

__all__ = [
    "ScheduleDecision",
    "QuantumSchedule",
    "CyclePlan",
    "QonductorScheduler",
]

#: Estimate callback signature: (job, qpu) -> (fidelity, exec_seconds).
EstimateFn = Callable[[QuantumJob, QPU], tuple[float, float]]


@dataclass
class ScheduleDecision:
    """One job's assignment."""

    job: QuantumJob
    qpu_name: str
    est_fidelity: float
    est_exec_seconds: float


@dataclass
class QuantumSchedule:
    """Output of one scheduling cycle."""

    decisions: list[ScheduleDecision]
    unschedulable: list[QuantumJob]
    front_F: np.ndarray  # Pareto front objective matrix (JCT, error)
    chosen_index: int
    stats: dict
    stage_seconds: dict = field(default_factory=dict)
    #: Mean per-job execution seconds of every front solution (Fig. 10a).
    front_exec_seconds: np.ndarray = field(
        default_factory=lambda: np.zeros(0)
    )

    @property
    def front_min_jct(self) -> float:
        return float(self.front_F[:, 0].min()) if len(self.front_F) else 0.0

    @property
    def front_max_jct(self) -> float:
        return float(self.front_F[:, 0].max()) if len(self.front_F) else 0.0

    @property
    def front_min_fidelity(self) -> float:
        return float(1.0 - self.front_F[:, 1].max()) if len(self.front_F) else 0.0

    @property
    def front_max_fidelity(self) -> float:
        return float(1.0 - self.front_F[:, 1].min()) if len(self.front_F) else 0.0


@dataclass
class CyclePlan:
    """Stage-1 output carried between :meth:`QonductorScheduler.begin_cycle`
    and :meth:`~QonductorScheduler.finish_cycle`.

    Holds the main-thread state of one in-flight cycle: the filtered job
    lists, the picklable :class:`OptimizationTask` snapshot (``None`` when
    nothing is schedulable and the cycle short-circuits), and the
    pre-processing stage time.
    """

    task: OptimizationTask | None
    schedulable: list[QuantumJob]
    rejected: list[QuantumJob]
    online: list[QPU]
    preprocess_seconds: float


class QonductorScheduler:
    """Many-to-many hybrid scheduler balancing fidelity vs JCT."""

    def __init__(
        self,
        estimate_fn: EstimateFn,
        *,
        preference: str | tuple[float, float] = "balanced",
        pop_size: int = 64,
        max_generations: int = 40,
        seed: int = 0,
        shard_id: int = 0,
        on_recalibrate: Callable[[list[QPU]], None] | None = None,
        tier_preferences: dict | None = None,
        warm_start: bool = False,
    ) -> None:
        self.estimate_fn = estimate_fn
        #: The batched scoring surface; legacy pair-wise callables are
        #: adapted (with a DeprecationWarning) by
        #: :func:`~repro.estimator.source.as_estimate_source`.
        self.source = as_estimate_source(estimate_fn)
        self.preference = preference
        #: Optional tier -> MCDM preference mapping for tenant-weighted
        #: selection (see :func:`~repro.cloud.tenancy.tier_preference`):
        #: when a batch carries tenants, the most-premium tier present
        #: overrides ``preference`` for that cycle.  ``None`` (default)
        #: always uses the operator preference.
        self.tier_preferences = tier_preferences
        self.pop_size = pop_size
        self.max_generations = max_generations
        self._seed = seed
        self.shard_id = shard_id
        self._cycle = 0
        self._on_recalibrate = on_recalibrate
        #: Cross-cycle Pareto warm-starting (opt-in, off by default —
        #: the default path stays bit-identical to cold starts).  When
        #: on, :meth:`finish_cycle` remembers the cycle's Pareto front
        #: and :meth:`begin_cycle` remaps it onto the next cycle's
        #: pending jobs as initial-population seed rows, so the GA
        #: reaches the tolerance-window termination in fewer
        #: generations.  Determinism is preserved: the warm rows ride
        #: in the :class:`OptimizationTask` snapshot and are a pure
        #: function of the (seeded) previous cycle's result.
        self.warm_start = warm_start
        self._warm_memory: tuple[np.ndarray, list[int], list[str]] | None = None

    def spawn(self, shard_id: int) -> "QonductorScheduler":
        """A per-shard scheduler over this one's configuration.

        Shares the estimate source (one fleet-wide cache) and keeps the
        base seed, tagging the instance with ``shard_id`` instead: cycle
        randomness derives from ``(seed, shard_id, cycle_index)``, so
        shard 0 of a 1-shard fleet is seeded exactly like the unsharded
        scheduler, shards never collide on a stream, and results are
        independent of which worker runs which cycle first.
        """
        return QonductorScheduler(
            self.source,
            preference=self.preference,
            pop_size=self.pop_size,
            max_generations=self.max_generations,
            seed=self._seed,
            shard_id=shard_id,
            on_recalibrate=self._on_recalibrate,
            tier_preferences=self.tier_preferences,
            warm_start=self.warm_start,
        )

    def on_recalibration(self, qpus: list[QPU]) -> None:
        """Calibration-cycle hook (called by the cloud simulator).

        Forwards to a caching ``estimate_fn`` (so memoized estimates from
        the dead calibration epoch are dropped) and to the optional
        ``on_recalibrate`` callback — the standard wiring passes the
        resource estimator's ``refresh_templates`` so template averages
        track fresh calibration data.
        """
        fn_hook = getattr(self.source, "on_recalibration", None)
        if fn_hook is not None:
            fn_hook(qpus)
        if self._on_recalibrate is not None:
            self._on_recalibrate(qpus)

    # ------------------------------------------------------------------
    def preprocess(
        self, jobs: list[QuantumJob], qpus: list[QPU], waiting_seconds: dict[str, float]
    ) -> tuple[SchedulingInput | None, list[QuantumJob], list[QuantumJob]]:
        """Stage 1: filter and build estimate matrices.

        The whole pending set is scored through one
        :meth:`~repro.estimator.source.EstimateSource.estimate_block`
        call — batch-capable sources (:class:`~repro.estimator.cache.CachedEstimator`,
        :class:`~repro.cloud.proxy.AnalyticEstimateSource`) vectorize it;
        adapted legacy callables replay the per-pair loop inside the
        adapter.

        Returns (input | None, schedulable_jobs, filtered_out_jobs).
        """
        online = [q for q in qpus if q.online]
        max_width = max((q.num_qubits for q in online), default=0)
        schedulable = [j for j in jobs if j.num_qubits <= max_width]
        rejected = [j for j in jobs if j.num_qubits > max_width]
        if not schedulable or not online:
            return None, schedulable, rejected
        feas = feasibility_matrix(schedulable, online)
        fid, sec = self.source.estimate_block(schedulable, online, feas)
        wait = np.array([waiting_seconds.get(q.name, 0.0) for q in online])
        data = SchedulingInput(
            fidelity=fid, exec_seconds=sec, waiting_seconds=wait, feasible=feas
        )
        return data, schedulable, rejected

    def begin_cycle(
        self,
        jobs: list[QuantumJob],
        qpus: list[QPU],
        waiting_seconds: dict[str, float] | None = None,
    ) -> CyclePlan:
        """Stage 1, main-thread half of a cycle: snapshot the inputs.

        Runs pre-processing (which reads and warms the shared estimate
        cache — the only stateful part of a cycle) and packages the
        result as a picklable :class:`OptimizationTask`.  The cycle
        counter advances here, so the task's seed entropy is fixed before
        any worker runs.
        """
        self._cycle += 1
        waiting_seconds = waiting_seconds or {}
        # Tier-weighted batches: premium tiers first, best-effort last
        # (stable within a tier).  Untenanted batches come back as the
        # *same list object*, so tenancy-off cycles are bit-identical.
        jobs = tier_sort(jobs)
        online = [q for q in qpus if q.online]
        t0 = time.perf_counter()
        data, schedulable, rejected = self.preprocess(jobs, qpus, waiting_seconds)
        t_pre = time.perf_counter() - t0
        task = None
        if data is not None:
            warm = (
                self._warm_rows(data, schedulable, online)
                if self.warm_start
                else None
            )
            task = OptimizationTask(
                data=data,
                pop_size=self.pop_size,
                max_generations=self.max_generations,
                base_seed=self._seed,
                shard_id=self.shard_id,
                cycle_index=self._cycle,
                warm_X=warm,
            )
        return CyclePlan(
            task=task,
            schedulable=schedulable,
            rejected=rejected,
            online=online,
            preprocess_seconds=t_pre,
        )

    def _warm_rows(
        self,
        data,
        schedulable: list[QuantumJob],
        online: list[QPU],
    ) -> np.ndarray | None:
        """Remap the remembered Pareto front onto this cycle's batch.

        Each remembered front solution becomes one seed row: genes for
        jobs still pending keep their previous QPU (remapped by name and
        re-checked against this cycle's feasibility mask), genes for new
        jobs — or assignments to QPUs that went offline — are ``-1`` and
        are filled from the objective extremes / random draw inside
        :meth:`SchedulingProblem.sample <repro.scheduler.formulation.SchedulingProblem.sample>`.
        """
        memory = self._warm_memory
        if memory is None:
            return None
        prev_X, prev_job_ids, prev_qpu_names = memory
        qpu_index = {q.name: k for k, q in enumerate(online)}
        # Previous QPU column -> this cycle's column (-1 if offline/gone).
        remap = np.array(
            [qpu_index.get(name, -1) for name in prev_qpu_names],
            dtype=np.int64,
        )
        col_of = {jid: c for c, jid in enumerate(prev_job_ids)}
        rows = min(len(prev_X), max(self.pop_size - 2, 0))
        if rows == 0:
            return None
        warm = np.full((rows, len(schedulable)), -1, dtype=np.int64)
        for i, job in enumerate(schedulable):
            c = col_of.get(job.job_id)
            if c is None:
                continue
            genes = remap[prev_X[:rows, c]]
            valid = genes >= 0
            valid &= data.feasible[i, np.where(valid, genes, 0)]
            warm[:, i] = np.where(valid, genes, -1)
        if not (warm >= 0).any():
            return None
        return warm

    def finish_cycle(
        self, plan: CyclePlan, result: OptimizationResult | None
    ) -> QuantumSchedule:
        """Stage 3, main-thread half: select one solution and build the
        schedule from a completed optimization run.

        ``result`` is ``None`` exactly when ``plan.task`` was ``None``
        (nothing schedulable); the cycle then returns an empty schedule.
        """
        if plan.task is None or result is None:
            return QuantumSchedule(
                decisions=[],
                unschedulable=plan.rejected,
                front_F=np.zeros((0, 2)),
                chosen_index=-1,
                stats={},
                stage_seconds={
                    "preprocess": plan.preprocess_seconds,
                    "optimize": 0.0,
                    "select": 0.0,
                },
            )
        data = plan.task.data
        online = plan.online
        if self.warm_start and len(result.X):
            # Remember this cycle's Pareto assignments by (job id, QPU
            # name) so the next cycle can seed its population from them
            # regardless of how its job/QPU indexing shifts.
            self._warm_memory = (
                np.asarray(result.X, dtype=np.int64),
                [job.job_id for job in plan.schedulable],
                [q.name for q in online],
            )

        t0 = time.perf_counter()
        # The most-premium tier waiting in this batch may override the
        # operator preference (None — the default, and every untenanted
        # batch — keeps it).
        override = tier_preference(plan.schedulable, self.tier_preferences)
        chosen = select_by_preference(
            result.F, override if override is not None else self.preference
        )
        assignment = result.X[chosen]
        t_sel = time.perf_counter() - t0

        rows = np.arange(data.num_jobs)
        # Mean per-job execution time of every front solution, in one
        # fancy-indexing pass over (front, jobs).
        front_exec = (
            data.exec_seconds[rows[None, :], np.atleast_2d(result.X)].mean(axis=1)
            if len(result.X)
            else np.zeros(0)
        )

        decisions = [
            ScheduleDecision(
                job=job,
                qpu_name=online[assignment[i]].name,
                est_fidelity=float(data.fidelity[i, assignment[i]]),
                est_exec_seconds=float(data.exec_seconds[i, assignment[i]]),
            )
            for i, job in enumerate(plan.schedulable)
        ]
        return QuantumSchedule(
            decisions=decisions,
            unschedulable=plan.rejected,
            front_F=result.F,
            chosen_index=chosen,
            stats=assignment_stats(data, assignment),
            stage_seconds={
                "preprocess": plan.preprocess_seconds,
                "optimize": result.optimize_seconds,
                "select": t_sel,
            },
            front_exec_seconds=front_exec,
        )

    def schedule(
        self,
        jobs: list[QuantumJob],
        qpus: list[QPU],
        waiting_seconds: dict[str, float] | None = None,
    ) -> QuantumSchedule:
        """Run one full scheduling cycle over ``jobs`` (fused stages)."""
        plan = self.begin_cycle(jobs, qpus, waiting_seconds)
        result = run_optimization(plan.task) if plan.task is not None else None
        return self.finish_cycle(plan, result)
