"""Classical task scheduling: Kubernetes-style filter-scoring (§7).

Classical (pre/post-processing) tasks are matched to worker nodes in two
stages: *filter* removes nodes that cannot satisfy the request (cores,
memory, accelerators), *score* ranks the survivors with pluggable policies
(default: least-allocated, like kube-scheduler's NodeResourcesFit).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import ClassVar

__all__ = ["ClassicalNode", "ClassicalRequest", "ClassicalScheduler"]


@dataclass
class ClassicalNode:
    """One classical worker node's capacity and current allocation."""

    name: str
    cores: int
    memory_gb: float
    gpus: int = 0
    tier: str = "standard_vm"
    alloc_cores: int = 0
    alloc_memory_gb: float = 0.0
    alloc_gpus: int = 0

    @property
    def free_cores(self) -> int:
        return self.cores - self.alloc_cores

    @property
    def free_memory_gb(self) -> float:
        return self.memory_gb - self.alloc_memory_gb

    @property
    def free_gpus(self) -> int:
        return self.gpus - self.alloc_gpus

    def allocate(self, req: "ClassicalRequest") -> None:
        self.alloc_cores += req.cores
        self.alloc_memory_gb += req.memory_gb
        self.alloc_gpus += req.gpus

    def release(self, req: "ClassicalRequest") -> None:
        self.alloc_cores = max(0, self.alloc_cores - req.cores)
        self.alloc_memory_gb = max(0.0, self.alloc_memory_gb - req.memory_gb)
        self.alloc_gpus = max(0, self.alloc_gpus - req.gpus)


@dataclass(frozen=True)
class ClassicalRequest:
    """Resource request of one classical task (the YAML limits of Listing 1)."""

    cores: int = 1
    memory_gb: float = 2.0
    gpus: int = 0
    tier: str | None = None  # require a specific VM tier


def _least_allocated_score(node: ClassicalNode, req: ClassicalRequest) -> float:
    """Higher = better: prefer the emptiest node (spreads load)."""
    cpu_frac = (node.free_cores - req.cores) / max(1, node.cores)
    mem_frac = (node.free_memory_gb - req.memory_gb) / max(1e-9, node.memory_gb)
    return cpu_frac + mem_frac


def _most_allocated_score(node: ClassicalNode, req: ClassicalRequest) -> float:
    """Bin-packing policy: prefer the fullest node that still fits."""
    return -_least_allocated_score(node, req)


class ClassicalScheduler:
    """Two-stage filter/score scheduler over a node pool."""

    POLICIES: ClassVar[
        dict[str, Callable[[ClassicalNode, ClassicalRequest], float]]
    ] = {
        "least_allocated": _least_allocated_score,
        "most_allocated": _most_allocated_score,
    }

    def __init__(self, nodes: list[ClassicalNode], policy: str = "least_allocated"):
        if policy not in self.POLICIES:
            raise ValueError(f"unknown scoring policy {policy!r}")
        self.nodes = list(nodes)
        self.policy = policy

    def filter(self, req: ClassicalRequest) -> list[ClassicalNode]:
        out = []
        for node in self.nodes:
            if node.free_cores < req.cores:
                continue
            if node.free_memory_gb < req.memory_gb:
                continue
            if node.free_gpus < req.gpus:
                continue
            if req.tier is not None and node.tier != req.tier:
                continue
            out.append(node)
        return out

    def schedule(self, req: ClassicalRequest) -> ClassicalNode | None:
        """Pick and allocate the best node; ``None`` when nothing fits."""
        candidates = self.filter(req)
        if not candidates:
            return None
        score = self.POLICIES[self.policy]
        best = max(candidates, key=lambda n: score(n, req))
        best.allocate(req)
        return best

    def release(self, node_name: str, req: ClassicalRequest) -> None:
        for node in self.nodes:
            if node.name == node_name:
                node.release(req)
                return
        raise KeyError(f"unknown node {node_name!r}")
