"""The scheduling optimization problem (§7, Eq. 1).

Decision vector: ``x[i]`` = index of the QPU assigned to job ``i``.
Objectives (both minimized):

* ``f1`` — mean JCT: each job pays its QPU's current queue waiting time
  plus the execution time of every batch job co-assigned to that QPU;
* ``f2`` — mean error: ``1 - fidelity`` of each (job, QPU) assignment.

Constraint ``q_i <= s_{x_i}`` (job width fits the QPU) is enforced by
repair: infeasible genes are projected to a random feasible QPU.
Complexity is O(N) in the number of jobs, independent of fleet size.

The hot per-generation passes are population-flat kernels routed through
the pluggable array backend (:mod:`repro.simulation.array_ops`):
:func:`evaluate_population` folds the whole ``(pop, N)`` population into
one offset-encoded segment sum instead of ``pop`` Python iterations, and
:func:`repair_population` projects every infeasible gene with one
bounded-integer draw per violation in row-major order — bit-identical to
the scalar reference loops (:func:`evaluate_reference` /
:func:`repair_reference`), which the tests and the
``test_perf_nsga_kernels`` gate keep pinned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..moo.problem import Problem
from ..simulation.array_ops import ArrayBackend, make_array_backend

__all__ = [
    "SchedulingInput",
    "SchedulingProblem",
    "assignment_stats",
    "pack_feasible",
    "evaluate_population",
    "repair_population",
    "evaluate_reference",
    "repair_reference",
]


@dataclass
class SchedulingInput:
    """Pre-processed matrices the optimizer consumes.

    fidelity[i, q] / exec_seconds[i, q] come from the resource estimator;
    waiting_seconds[q] is the system monitor's queue estimate;
    feasible[i, q] marks assignments satisfying the size constraint.
    """

    fidelity: np.ndarray  # (N, Q)
    exec_seconds: np.ndarray  # (N, Q)
    waiting_seconds: np.ndarray  # (Q,)
    feasible: np.ndarray  # (N, Q) bool

    def __post_init__(self) -> None:
        n, q = self.fidelity.shape
        if self.exec_seconds.shape != (n, q):
            raise ValueError("exec_seconds shape mismatch")
        if self.waiting_seconds.shape != (q,):
            raise ValueError("waiting_seconds shape mismatch")
        if self.feasible.shape != (n, q):
            raise ValueError("feasible shape mismatch")
        if not self.feasible.any(axis=1).all():
            raise ValueError("some job has no feasible QPU (filter first)")

    @property
    def num_jobs(self) -> int:
        return self.fidelity.shape[0]

    @property
    def num_qpus(self) -> int:
        return self.fidelity.shape[1]


# ---------------------------------------------------------------------------
# Population-flat kernels (stage-2 hot path; pure, worker-safe)


def pack_feasible(
    feasible: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack the ragged per-job feasible-QPU lists into flat arrays.

    Returns ``(flat, offsets, counts)``: ``flat[offsets[i] :
    offsets[i] + counts[i]]`` is ``np.where(feasible[i])[0]`` — the
    ascending feasible QPU indices of job ``i`` — without materializing
    one Python list per job.
    """
    counts = feasible.sum(axis=1).astype(np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(np.int64)
    flat = np.nonzero(feasible)[1].astype(np.int64)  # row-major: per-job runs
    return flat, offsets, counts


def evaluate_population(
    data: SchedulingInput,
    X: np.ndarray,
    backend: ArrayBackend | None = None,
) -> np.ndarray:
    """Eq. 1 objectives for a whole ``(pop, N)`` population in one pass.

    Per-QPU batch loads for *all* individuals come from a single
    offset-encoded segment sum (individual ``p``'s genes land in bins
    ``[p * Q, (p + 1) * Q)``), so the per-generation objective pass is
    one vectorized kernel instead of ``pop`` Python-level ``bincount``
    iterations.  Bit-identical to :func:`evaluate_reference`: the flat
    segment sum accumulates each bin's weights in the same row-major
    order the per-individual ``bincount`` does, and the row means reduce
    the same contiguous values.
    """
    b = backend if backend is not None else make_array_backend()
    xp = b.xp
    pop, n = X.shape
    q = data.num_qpus
    # Flat (job, qpu) cell ids: a[i, X[p, i]] == a.ravel()[i * Q + X[p, i]],
    # so one index matrix feeds both estimate gathers as flattened takes.
    cell = X + (xp.arange(n) * q)[None, :]
    exec_sel = b.take(data.exec_seconds, cell)  # (pop, N)
    fid_sel = b.take(data.fidelity, cell)
    wait_sel = b.take(data.waiting_seconds, X)
    # Per-individual bins: individual p's genes land in [p * Q, (p+1) * Q).
    seg = X + (xp.arange(pop) * q)[:, None]
    totals = b.segment_sum(exec_sel.ravel(), seg.ravel(), pop * q)
    # The same bin ids read the summed loads back: totals[p*Q + X[p, i]].
    jct = wait_sel + b.take(totals, seg)
    F = xp.empty((pop, 2))
    F[:, 0] = jct.mean(axis=1)
    F[:, 1] = 1.0 - fid_sel.mean(axis=1)
    return b.to_numpy(F)


def repair_population(
    data: SchedulingInput,
    X: np.ndarray,
    rng: np.random.Generator,
    packed: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    backend: ArrayBackend | None = None,
) -> np.ndarray:
    """Project every infeasible gene to a random feasible QPU, batched.

    All violations are located with one mask pass and repaired with one
    bounded-integer draw per violation in row-major ``(individual,
    gene)`` order — the exact order, bounds, and bit stream of the
    scalar per-violation loop (:func:`repair_reference`), so seeded runs
    are unchanged by the batching.
    """
    b = backend if backend is not None else make_array_backend()
    X = np.clip(X, 0, data.num_qpus - 1)
    rows = np.arange(data.num_jobs)
    bad = ~b.gather(data.feasible, rows[None, :], X)
    if bad.any():
        flat, offsets, counts = (
            packed if packed is not None else pack_feasible(data.feasible)
        )
        ps, js = np.nonzero(bad)  # row-major: the scalar loop's order
        draws = b.bounded_integers(rng, counts[js])
        X[ps, js] = flat[offsets[js] + draws]
    return X


def evaluate_reference(data: SchedulingInput, X: np.ndarray) -> np.ndarray:
    """The per-individual objective loop :func:`evaluate_population`
    replaced — kept as the regression/benchmark reference."""
    pop, n = X.shape
    q = data.num_qpus
    rows = np.arange(n)
    F = np.empty((pop, 2))
    exec_sel = data.exec_seconds[rows[None, :], X]  # (pop, N)
    fid_sel = data.fidelity[rows[None, :], X]
    wait_sel = data.waiting_seconds[X]
    for p in range(pop):
        # Total batch execution time landing on each QPU.
        totals = np.bincount(X[p], weights=exec_sel[p], minlength=q)
        jct = wait_sel[p] + totals[X[p]]
        F[p, 0] = jct.mean()
        F[p, 1] = 1.0 - fid_sel[p].mean()
    return F


def repair_reference(
    data: SchedulingInput,
    X: np.ndarray,
    rng: np.random.Generator,
    feasible_lists: list[np.ndarray] | None = None,
) -> np.ndarray:
    """The scalar per-violation repair loop :func:`repair_population`
    replaced — kept as the regression/benchmark reference."""
    if feasible_lists is None:
        feasible_lists = [
            np.where(data.feasible[i])[0] for i in range(data.num_jobs)
        ]
    X = np.clip(X, 0, data.num_qpus - 1)
    bad = ~data.feasible[np.arange(data.num_jobs)[None, :], X]
    if bad.any():
        for p, i in zip(*np.nonzero(bad)):
            options = feasible_lists[i]
            X[p, i] = options[int(rng.integers(len(options)))]
    return X


class SchedulingProblem(Problem):
    """Integer-encoded Eq. 1 instance over a :class:`SchedulingInput`.

    ``warm`` optionally seeds the initial population with cross-cycle
    Pareto assignments (see
    :meth:`~repro.scheduler.quantum.QonductorScheduler.begin_cycle`): a
    ``(k, N)`` integer array whose entries are either a feasible QPU
    index for the job or ``-1`` for "no carry-over" (new jobs, vanished
    QPUs).  Warm rows replace random individuals after the two objective
    extremes; missing genes fill from the extremes and the random draw,
    cycling per row, so the warm population never consumes extra RNG and
    stays a pure function of ``(data, seed, warm)``.
    """

    def __init__(
        self,
        data: SchedulingInput,
        seed: int | np.random.SeedSequence = 0,
        *,
        warm: np.ndarray | None = None,
        backend: ArrayBackend | str | None = None,
    ) -> None:
        super().__init__(
            n_var=data.num_jobs, n_obj=2, lower=0, upper=data.num_qpus - 1
        )
        self.data = data
        self._rng = np.random.default_rng(seed)
        self._backend = make_array_backend(backend)
        # Flat feasible-QPU index arrays for the batched repair kernel.
        self._packed = pack_feasible(data.feasible)
        self._warm = self._validate_warm(warm)

    def _validate_warm(self, warm: np.ndarray | None) -> np.ndarray | None:
        if warm is None:
            return None
        warm = np.asarray(warm, dtype=np.int64)
        if warm.ndim != 2 or warm.shape[1] != self.n_var:
            raise ValueError(
                f"warm-start rows must be (k, {self.n_var}), got {warm.shape}"
            )
        known = warm >= 0
        cols = np.broadcast_to(np.arange(self.n_var), warm.shape)
        if known.any():
            if warm[known].max() >= self.data.num_qpus:
                raise ValueError("warm-start gene out of QPU range")
            if not self.data.feasible[cols[known], warm[known]].all():
                raise ValueError("warm-start genes must be feasible or -1")
        warm = warm[known.any(axis=1)]
        return warm if len(warm) else None

    # ------------------------------------------------------------------
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        return evaluate_population(self.data, X, backend=self._backend)

    def repair(self, X: np.ndarray) -> np.ndarray:
        return repair_population(
            self.data, X, self._rng, packed=self._packed, backend=self._backend
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Random init seeded with the two objective extremes.

        The first individual assigns every job to its highest-fidelity
        feasible QPU (the fidelity extreme); the second greedily packs for
        minimum JCT (the completion-time extreme). Seeding both stretches
        the initial front across the whole tradeoff, which plain random
        integer initialization cannot reach for batch sizes of ~100 genes.

        With warm-start rows, slots after the extremes are overwritten by
        the previous cycle's Pareto assignments (missing genes fall back
        to the extremes / the random draw already in the slot).
        """
        X = rng.integers(0, self.data.num_qpus, size=(n, self.n_var))
        X = self.repair(X)
        data = self.data
        masked_fid = np.where(data.feasible, data.fidelity, -np.inf)
        X[0] = np.argmax(masked_fid, axis=1)
        if n > 1:
            # Greedy min-JCT: place each job where queue + load so far is
            # smallest, updating the projected load as we go.  The
            # feasibility masking is hoisted out of the loop: adding the
            # running load to a pre-masked (inf at infeasible) cost row
            # keeps infeasible entries at inf, so each argmin matches the
            # per-iteration np.where of the original loop bit for bit.
            cost_base = np.where(data.feasible, data.exec_seconds, np.inf)
            load = data.waiting_seconds.copy()
            greedy = np.zeros(self.n_var, dtype=np.int64)
            for i in range(self.n_var):
                q = int(np.argmin(load + cost_base[i]))
                greedy[i] = q
                load[q] += data.exec_seconds[i, q]
            X[1] = greedy
        if self._warm is not None and n > 2:
            k = min(len(self._warm), n - 2)
            W = self._warm[:k]
            missing = W < 0
            # Fill missing genes from the fidelity extreme, the JCT
            # extreme, and the feasible random draw already in the slot,
            # cycling per warm row — deterministic, no extra RNG draws,
            # and every fill is feasible so no repair pass is needed.
            mode = np.arange(k) % 3
            base = np.where(
                (mode == 0)[:, None],
                X[0][None, :],
                np.where((mode == 1)[:, None], X[1][None, :], X[2 : 2 + k]),
            )
            X[2 : 2 + k] = np.where(missing, base, W)
        return X

    # ------------------------------------------------------------------
    def assignment_stats(self, x: np.ndarray) -> dict:
        """Mean JCT / fidelity / exec time of one assignment vector."""
        return assignment_stats(self.data, x)


def assignment_stats(data: SchedulingInput, x: np.ndarray) -> dict:
    """Mean JCT / fidelity / exec stats of one assignment over ``data``.

    Module-level so the scheduler's fold-in stage can score a worker's
    chosen solution without reconstructing the (worker-side)
    :class:`SchedulingProblem`.
    """
    rows = np.arange(data.num_jobs)
    exec_sel = data.exec_seconds[rows, x]
    fid_sel = data.fidelity[rows, x]
    totals = np.bincount(x, weights=exec_sel, minlength=data.num_qpus)
    jct = data.waiting_seconds[x] + totals[x]
    return {
        "mean_jct": float(jct.mean()),
        "p95_jct": float(np.percentile(jct, 95)),
        "mean_fidelity": float(fid_sel.mean()),
        "p95_fidelity": float(np.percentile(fid_sel, 95)),
        "mean_exec_seconds": float(exec_sel.mean()),
        "per_qpu_load": totals.tolist(),
    }
