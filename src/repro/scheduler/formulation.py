"""The scheduling optimization problem (§7, Eq. 1).

Decision vector: ``x[i]`` = index of the QPU assigned to job ``i``.
Objectives (both minimized):

* ``f1`` — mean JCT: each job pays its QPU's current queue waiting time
  plus the execution time of every batch job co-assigned to that QPU;
* ``f2`` — mean error: ``1 - fidelity`` of each (job, QPU) assignment.

Constraint ``q_i <= s_{x_i}`` (job width fits the QPU) is enforced by
repair: infeasible genes are projected to a random feasible QPU.
Complexity is O(N) in the number of jobs, independent of fleet size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..moo.problem import Problem

__all__ = ["SchedulingInput", "SchedulingProblem", "assignment_stats"]


@dataclass
class SchedulingInput:
    """Pre-processed matrices the optimizer consumes.

    fidelity[i, q] / exec_seconds[i, q] come from the resource estimator;
    waiting_seconds[q] is the system monitor's queue estimate;
    feasible[i, q] marks assignments satisfying the size constraint.
    """

    fidelity: np.ndarray  # (N, Q)
    exec_seconds: np.ndarray  # (N, Q)
    waiting_seconds: np.ndarray  # (Q,)
    feasible: np.ndarray  # (N, Q) bool

    def __post_init__(self) -> None:
        n, q = self.fidelity.shape
        if self.exec_seconds.shape != (n, q):
            raise ValueError("exec_seconds shape mismatch")
        if self.waiting_seconds.shape != (q,):
            raise ValueError("waiting_seconds shape mismatch")
        if self.feasible.shape != (n, q):
            raise ValueError("feasible shape mismatch")
        if not self.feasible.any(axis=1).all():
            raise ValueError("some job has no feasible QPU (filter first)")

    @property
    def num_jobs(self) -> int:
        return self.fidelity.shape[0]

    @property
    def num_qpus(self) -> int:
        return self.fidelity.shape[1]


class SchedulingProblem(Problem):
    """Integer-encoded Eq. 1 instance over a :class:`SchedulingInput`."""

    def __init__(
        self,
        data: SchedulingInput,
        seed: int | np.random.SeedSequence = 0,
    ) -> None:
        super().__init__(
            n_var=data.num_jobs, n_obj=2, lower=0, upper=data.num_qpus - 1
        )
        self.data = data
        self._rng = np.random.default_rng(seed)
        # Pre-extract feasible QPU lists for repair.
        self._feasible_lists = [
            np.where(data.feasible[i])[0] for i in range(data.num_jobs)
        ]

    # ------------------------------------------------------------------
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        data = self.data
        pop, n = X.shape
        q = data.num_qpus
        rows = np.arange(n)
        F = np.empty((pop, 2))
        exec_sel = data.exec_seconds[rows[None, :], X]  # (pop, N)
        fid_sel = data.fidelity[rows[None, :], X]
        wait_sel = data.waiting_seconds[X]
        for p in range(pop):
            # Total batch execution time landing on each QPU.
            totals = np.bincount(X[p], weights=exec_sel[p], minlength=q)
            jct = wait_sel[p] + totals[X[p]]
            F[p, 0] = jct.mean()
            F[p, 1] = 1.0 - fid_sel[p].mean()
        return F

    def repair(self, X: np.ndarray) -> np.ndarray:
        X = np.clip(X, self.lower, self.upper)
        bad = ~self.data.feasible[
            np.arange(self.n_var)[None, :], X
        ]  # (pop, N) True where infeasible
        if bad.any():
            for p, i in zip(*np.nonzero(bad)):
                options = self._feasible_lists[i]
                X[p, i] = options[int(self._rng.integers(len(options)))]
        return X

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Random init seeded with the two objective extremes.

        The first individual assigns every job to its highest-fidelity
        feasible QPU (the fidelity extreme); the second greedily packs for
        minimum JCT (the completion-time extreme). Seeding both stretches
        the initial front across the whole tradeoff, which plain random
        integer initialization cannot reach for batch sizes of ~100 genes.
        """
        X = rng.integers(0, self.data.num_qpus, size=(n, self.n_var))
        X = self.repair(X)
        data = self.data
        masked_fid = np.where(data.feasible, data.fidelity, -np.inf)
        X[0] = np.argmax(masked_fid, axis=1)
        if n > 1:
            # Greedy min-JCT: place each job where queue + load so far is
            # smallest, updating the projected load as we go.
            load = data.waiting_seconds.copy()
            greedy = np.zeros(self.n_var, dtype=np.int64)
            for i in range(self.n_var):
                cost = np.where(
                    data.feasible[i], load + data.exec_seconds[i], np.inf
                )
                q = int(np.argmin(cost))
                greedy[i] = q
                load[q] += data.exec_seconds[i, q]
            X[1] = greedy
        return X

    # ------------------------------------------------------------------
    def assignment_stats(self, x: np.ndarray) -> dict:
        """Mean JCT / fidelity / exec time of one assignment vector."""
        return assignment_stats(self.data, x)


def assignment_stats(data: SchedulingInput, x: np.ndarray) -> dict:
    """Mean JCT / fidelity / exec stats of one assignment over ``data``.

    Module-level so the scheduler's fold-in stage can score a worker's
    chosen solution without reconstructing the (worker-side)
    :class:`SchedulingProblem`.
    """
    rows = np.arange(data.num_jobs)
    exec_sel = data.exec_seconds[rows, x]
    totals = np.bincount(x, weights=exec_sel, minlength=data.num_qpus)
    jct = data.waiting_seconds[x] + totals[x]
    return {
        "mean_jct": float(jct.mean()),
        "p95_jct": float(np.percentile(jct, 95)),
        "mean_fidelity": float(data.fidelity[rows, x].mean()),
        "p95_fidelity": float(np.percentile(data.fidelity[rows, x], 95)),
        "mean_exec_seconds": float(exec_sel.mean()),
        "per_qpu_load": totals.tolist(),
    }
