"""The pure optimization stage of a scheduling cycle.

One NSGA-II cycle is, after pre-processing, a deterministic function of a
:class:`~repro.scheduler.formulation.SchedulingInput` snapshot plus a seed
— no scheduler, estimator, or simulator state is involved.  This module
isolates that function so the cloud simulator's parallel engine can ship
concurrently-due cycles to thread or process workers:

* :class:`OptimizationTask` is the picklable work unit: the estimate
  matrices (prefetched through the shared cache *before* the fork, so a
  worker never touches shared mutable state), the optimizer knobs, and
  the ``(base_seed, shard_id, cycle_index)`` entropy that pins the random
  stream.
* :func:`run_optimization` is the module-level pure worker function
  (importable by name, as ``multiprocessing`` spawn contexts require).
  Given the same task it returns bit-identical results on any backend in
  any order, which is what keeps parallel runs identical to serial ones.

Seeds derive from :func:`cycle_seed`: a ``numpy`` ``SeedSequence`` over
``(base_seed, shard_id, cycle_index)``.  Every (shard, cycle) pair gets a
collision-free, execution-order-independent stream — unlike the old
``seed + cycle`` counters, where shard 0's cycle 3 and shard 1's cycle 2
drew identical randomness and results depended on per-instance call
counts.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..moo import NSGA2, Termination
from .formulation import SchedulingInput, SchedulingProblem

__all__ = [
    "OptimizationTask",
    "OptimizationResult",
    "CycleLatencyModel",
    "cycle_seed",
    "run_optimization",
    "ConstantCycleLatency",
    "NsgaCycleLatencyModel",
    "make_latency_model",
]

#: A latency model maps one batch's tasks (``None`` for shards whose
#: policy has no optimization stage) to simulated seconds until fold.
CycleLatencyModel = Callable[[Sequence["OptimizationTask | None"]], float]


def cycle_seed(
    base_seed: int, shard_id: int, cycle_index: int
) -> np.random.SeedSequence:
    """The root seed of one scheduling cycle's random stream.

    Pure function of identity, not of execution order: two shards' cycles
    running concurrently (or a cycle re-run on a worker process) always
    draw the same stream a serial run would have.
    """
    return np.random.SeedSequence(entropy=(base_seed, shard_id, cycle_index))


@dataclass(frozen=True)
class OptimizationTask:
    """Everything one optimization-stage run needs, picklable.

    ``warm_X`` optionally carries the previous cycle's Pareto
    assignments, remapped to this cycle's job/QPU indexing by
    :meth:`~repro.scheduler.quantum.QonductorScheduler.begin_cycle`
    (``-1`` marks genes with no carry-over).  It is part of the task
    snapshot, so the optimization stage stays a pure function of the
    task — warm-started cycles are just as deterministic and
    backend-independent as cold ones.
    """

    data: SchedulingInput
    pop_size: int
    max_generations: int
    base_seed: int
    shard_id: int
    cycle_index: int
    warm_X: np.ndarray | None = None


@dataclass(frozen=True)
class OptimizationResult:
    """What the optimization stage hands back to the fold-in step."""

    X: np.ndarray  # (n_front, n_jobs) front decision vectors
    F: np.ndarray  # (n_front, 2) front objective values
    generations: int
    evaluations: int
    #: Wall seconds the NSGA-II run itself took (measured in the worker).
    optimize_seconds: float = field(default=0.0, compare=False)


def run_optimization(task: OptimizationTask) -> OptimizationResult:
    """Stage 2 (NSGA-II over Eq. 1) as a pure function of the task.

    Builds the problem and the optimizer from the snapshot, derives the
    repair and GA streams from :func:`cycle_seed`, and returns only
    arrays — safe to run on any :class:`~repro.cloud.cycle_executor`
    backend.
    """
    t0 = time.perf_counter()
    root = cycle_seed(task.base_seed, task.shard_id, task.cycle_index)
    repair_seed, ga_seed = root.spawn(2)
    problem = SchedulingProblem(task.data, seed=repair_seed, warm=task.warm_X)
    algo = NSGA2(pop_size=task.pop_size, seed=ga_seed)
    result = algo.minimize(
        problem, Termination(max_generations=task.max_generations)
    )
    return OptimizationResult(
        X=result.X,
        F=result.F,
        generations=result.generations,
        evaluations=result.evaluations,
        optimize_seconds=time.perf_counter() - t0,
    )


# ---------------------------------------------------------------------------
# Cycle-latency models
#
# The simulator's pipelined engine needs to know *when in simulated time*
# a batch of cycles folds back: the scheduler's own runtime delays
# dispatch (the paper's Fig. 9c stage breakdown is exactly that runtime).
# A latency model maps a batch — the list of per-shard
# :class:`OptimizationTask` snapshots, ``None`` for shards whose policy
# has no optimization stage — to a latency in simulated seconds.  The
# model is a pure function of the batch, so the fold instant never
# depends on wall-clock worker timing and seeded runs reproduce on every
# executor backend.


@dataclass(frozen=True)
class ConstantCycleLatency:
    """Every batch folds a fixed ``seconds`` after its trigger."""

    seconds: float = 0.0

    def __call__(self, tasks: Sequence[OptimizationTask | None]) -> float:
        return self.seconds


@dataclass(frozen=True)
class NsgaCycleLatencyModel:
    """Latency proportional to the heaviest cycle in the batch.

    One NSGA-II cycle evaluates ``pop_size * max_generations``
    individuals, each a vector pass over the cycle's jobs, so its runtime
    scales as ``pop_size * max_generations * n_jobs``.  Cycles in a batch
    run concurrently on the worker pool, so the batch folds when its
    *slowest* member does — ``overhead_seconds`` (pre/postprocessing,
    dispatch) plus the max per-cycle term.  Shards without an
    optimization stage contribute only the overhead.
    """

    seconds_per_evaluation: float = 2e-5
    overhead_seconds: float = 0.05

    def __call__(self, tasks: Sequence[OptimizationTask | None]) -> float:
        if not tasks:
            return 0.0
        slowest = max(
            (
                t.pop_size * t.max_generations * max(1, t.data.num_jobs)
                for t in tasks
                if t is not None
            ),
            default=0,
        )
        return self.overhead_seconds + slowest * self.seconds_per_evaluation


def make_latency_model(
    spec: float | CycleLatencyModel | None,
) -> CycleLatencyModel:
    """Resolve a cycle-latency spec to a model callable.

    ``None`` or ``0`` mean the legacy instant fold (bit-identical to the
    synchronous engine); a number becomes a :class:`ConstantCycleLatency`;
    any callable (e.g. :class:`NsgaCycleLatencyModel`) passes through.
    """
    if spec is None:
        return ConstantCycleLatency(0.0)
    if callable(spec):
        return spec
    seconds = float(spec)
    if seconds < 0:
        raise ValueError(f"cycle latency must be >= 0, got {seconds}")
    return ConstantCycleLatency(seconds)
