"""Calibration-crossover handling (§7).

When a generated schedule spans a calibration boundary, jobs projected to
start after the boundary are re-estimated against the *next* calibration
(approximated by the post-cycle snapshot once available, or flagged for
re-scheduling) and reassigned if a better QPU emerges.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..backends.qpu import QPU
from ..cloud.job import QuantumJob
from .quantum import QuantumSchedule, ScheduleDecision

__all__ = ["CrossoverReport", "split_at_calibration", "reevaluate_post_calibration"]

EstimateFn = Callable[[QuantumJob, QPU], tuple[float, float]]


@dataclass
class CrossoverReport:
    """Result of a calibration-boundary re-evaluation."""

    pre_boundary: list[ScheduleDecision]
    post_boundary: list[ScheduleDecision]
    reassigned: int


def split_at_calibration(
    schedule: QuantumSchedule,
    waiting_seconds: dict[str, float],
    boundary_seconds_from_now: float,
) -> tuple[list[ScheduleDecision], list[ScheduleDecision]]:
    """Partition decisions by projected start time vs the boundary.

    Projection: jobs assigned to a QPU start after its current queue plus
    the batch jobs placed before them on the same QPU.
    """
    clock: dict[str, float] = dict(waiting_seconds)
    pre: list[ScheduleDecision] = []
    post: list[ScheduleDecision] = []
    for dec in schedule.decisions:
        start = clock.get(dec.qpu_name, 0.0)
        clock[dec.qpu_name] = start + dec.est_exec_seconds
        if start < boundary_seconds_from_now:
            pre.append(dec)
        else:
            post.append(dec)
    return pre, post


def reevaluate_post_calibration(
    schedule: QuantumSchedule,
    qpus: list[QPU],
    waiting_seconds: dict[str, float],
    boundary_seconds_from_now: float,
    estimate_fn: EstimateFn,
    *,
    improvement_threshold: float = 0.02,
) -> CrossoverReport:
    """Re-estimate post-boundary jobs with fresh calibration data and move
    any whose fidelity improves by more than ``improvement_threshold`` on a
    different QPU."""
    pre, post = split_at_calibration(
        schedule, waiting_seconds, boundary_seconds_from_now
    )
    by_name = {q.name: q for q in qpus if q.online}
    reassigned = 0
    updated: list[ScheduleDecision] = []
    for dec in post:
        job = dec.job
        current = by_name.get(dec.qpu_name)
        if current is None:
            updated.append(dec)
            continue
        cur_fid, cur_sec = estimate_fn(job, current)
        best_name, best_fid, best_sec = dec.qpu_name, cur_fid, cur_sec
        for qpu in by_name.values():
            if qpu.num_qubits < job.num_qubits or qpu.name == dec.qpu_name:
                continue
            fid, sec = estimate_fn(job, qpu)
            if fid > best_fid + improvement_threshold:
                best_name, best_fid, best_sec = qpu.name, fid, sec
        if best_name != dec.qpu_name:
            reassigned += 1
        updated.append(
            ScheduleDecision(
                job=job,
                qpu_name=best_name,
                est_fidelity=best_fid,
                est_exec_seconds=best_sec,
            )
        )
    return CrossoverReport(pre_boundary=pre, post_boundary=updated, reassigned=reassigned)
