"""Scheduling triggers (§7): queue-size and time-based invocation.

Deferred-trigger contract (pipelined engine): while a shard has a cycle
in flight, the simulator drops the shard's trigger pops instead of
firing a second overlapping cycle; the fold calls :meth:`fired` at the
fold instant and re-arms the next interval deadline from there.  Any
deadline entries pushed before the fold go stale naturally — they sort
before the re-armed deadline and fail the ``next_deadline`` check.

ε-window coalescing uses a *hold*: when a shard becomes eligible on the
arrival path and ``trigger_epsilon > 0``, the simulator arms a hold and
schedules the actual firing ε later, so other shards becoming eligible
inside the window merge into one engine batch.  The hold flag here just
dedupes arming — one pending hold event per shard at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SchedulingTrigger"]


@dataclass
class SchedulingTrigger:
    """Fires when the pending queue reaches ``queue_limit`` jobs or when
    ``interval_seconds`` have elapsed since the last cycle — the paper's
    defaults are 100 jobs / 120 s."""

    queue_limit: int = 100
    interval_seconds: float = 120.0
    _last_fired: float = 0.0
    _hold_armed: bool = field(default=False, repr=False)

    def should_fire(self, queue_size: int, now: float) -> bool:
        if queue_size <= 0:
            return False
        if queue_size >= self.queue_limit:
            return True
        return (now - self._last_fired) >= self.interval_seconds

    def fired(self, now: float) -> None:
        self._last_fired = now

    def next_deadline(self, now: float) -> float:
        return self._last_fired + self.interval_seconds

    def arm_hold(self) -> bool:
        """Arm the ε-window hold; False if one is already pending."""
        if self._hold_armed:
            return False
        self._hold_armed = True
        return True

    def disarm_hold(self) -> bool:
        """Consume the hold; False if none was armed (stale hold event)."""
        was_armed = self._hold_armed
        self._hold_armed = False
        return was_armed
