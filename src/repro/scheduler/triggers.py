"""Scheduling triggers (§7): queue-size and time-based invocation."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SchedulingTrigger"]


@dataclass
class SchedulingTrigger:
    """Fires when the pending queue reaches ``queue_limit`` jobs or when
    ``interval_seconds`` have elapsed since the last cycle — the paper's
    defaults are 100 jobs / 120 s."""

    queue_limit: int = 100
    interval_seconds: float = 120.0
    _last_fired: float = 0.0

    def should_fire(self, queue_size: int, now: float) -> bool:
        if queue_size <= 0:
            return False
        if queue_size >= self.queue_limit:
            return True
        return (now - self._last_fired) >= self.interval_seconds

    def fired(self, now: float) -> None:
        self._last_fired = now

    def next_deadline(self, now: float) -> float:
        return self._last_fired + self.interval_seconds
