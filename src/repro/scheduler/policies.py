"""Baseline quantum scheduling policies.

* :class:`FCFSPolicy` — the paper's baseline: jobs are served strictly in
  arrival order and each picks the **highest-fidelity** QPU that fits
  (standard current practice, which is what creates hotspots, §3).
* :class:`BatchedFCFSPolicy` — the same decision rule driven by the
  scheduling trigger: jobs accumulate in the shard's pending queue and
  one cycle assigns the whole batch.  Because it queues (rather than
  dispatching on arrival), it is the cheap batched policy work-stealing
  rebalancers can act on at fleet scale.
* :class:`LeastBusyPolicy` — IBM's ``least_busy`` selector [15].
* :class:`RandomPolicy` — load-oblivious control.

FCFS scores every batch through one
:meth:`~repro.estimator.source.EstimateSource.estimate_block` call —
batch-capable sources (:class:`~repro.estimator.cache.CachedEstimator`,
:class:`~repro.cloud.proxy.AnalyticEstimateSource`) vectorize it, and
legacy pair-wise callables are adapted by
:func:`~repro.estimator.source.as_estimate_source` (bit-identical, with a
DeprecationWarning).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..backends.qpu import QPU
from ..cloud.job import QuantumJob, feasibility_matrix
from ..cloud.tenancy import tier_sort
from ..estimator.source import as_estimate_source

__all__ = [
    "FCFSPolicy",
    "BatchedFCFSPolicy",
    "BatchDecision",
    "BatchSchedule",
    "LeastBusyPolicy",
    "RandomPolicy",
]

EstimateFn = Callable[[QuantumJob, QPU], tuple[float, float]]


def _forward_recalibration(estimate_fn, qpus: list[QPU]) -> None:
    hook = getattr(estimate_fn, "on_recalibration", None)
    if hook is not None:
        hook(qpus)


class FCFSPolicy:
    """First-come-first-serve onto the best-fidelity feasible QPU."""

    name = "fcfs"

    def __init__(self, estimate_fn: EstimateFn, *, shard_id: int = 0) -> None:
        self.estimate_fn = estimate_fn
        self.source = as_estimate_source(estimate_fn)
        self.shard_id = shard_id

    def spawn(self, shard_id: int) -> "FCFSPolicy":
        """A per-shard instance sharing this policy's estimate source."""
        return type(self)(self.source, shard_id=shard_id)

    def on_recalibration(self, qpus: list[QPU]) -> None:
        _forward_recalibration(self.source, qpus)

    def assign(
        self,
        jobs: list[QuantumJob],
        qpus: list[QPU],
        waiting_seconds: dict[str, float],
    ) -> list[tuple[QuantumJob, str | None]]:
        if not jobs:
            return []
        feas = feasibility_matrix(jobs, qpus)
        fid, _ = self.source.estimate_block(jobs, qpus, feas)
        scored = np.where(feas, fid, -np.inf)
        # argmax returns the first maximum, matching the pre-block
        # per-job max() over feasible QPUs in listing order.
        best = scored.argmax(axis=1)
        return [
            (job, qpus[best[i]].name if feas[i].any() else None)
            for i, job in enumerate(jobs)
        ]


@dataclass
class BatchDecision:
    """One job's assignment out of a batched baseline cycle."""

    job: QuantumJob
    qpu_name: str


@dataclass
class BatchSchedule:
    """Output of one :class:`BatchedFCFSPolicy` cycle.

    The structural subset of
    :class:`~repro.scheduler.quantum.QuantumSchedule` the cloud
    simulator's batched path consumes: ``decisions`` + ``unschedulable``.
    """

    decisions: list[BatchDecision]
    unschedulable: list[QuantumJob]


class BatchedFCFSPolicy(FCFSPolicy):
    """Trigger-driven FCFS: queue arrivals, assign the batch per cycle.

    Exposing ``schedule`` (instead of only ``assign``) makes the owning
    :class:`~repro.cloud.fleet.FleetShard` batched: arrivals wait in the
    shard's pending queue until the trigger fires, which is what gives a
    :class:`~repro.cloud.fleet.RebalancePolicy` a window to migrate them.
    The per-job decision rule is exactly FCFS (highest-fidelity feasible
    online QPU, arrival order preserved), so it remains a *baseline* —
    just one that can be driven at fleet scale without NSGA-II cost.

    Tenant-tagged batches are served in **tier order** (premium tiers
    first, degraded best-effort jobs last, arrival order within a tier);
    untenanted batches pass through :func:`~repro.cloud.tenancy.tier_sort`
    unchanged, keeping tenancy-off runs bit-identical.
    """

    name = "fcfs_batched"

    def schedule(
        self,
        jobs: list[QuantumJob],
        qpus: list[QPU],
        waiting_seconds: dict[str, float] | None = None,
    ) -> BatchSchedule:
        jobs = tier_sort(jobs)
        decisions: list[BatchDecision] = []
        unschedulable: list[QuantumJob] = []
        for job, qpu_name in self.assign(jobs, qpus, waiting_seconds or {}):
            if qpu_name is None:
                unschedulable.append(job)
            else:
                decisions.append(BatchDecision(job=job, qpu_name=qpu_name))
        return BatchSchedule(decisions=decisions, unschedulable=unschedulable)


class LeastBusyPolicy:
    """Each job goes to the feasible QPU with the shortest queue."""

    name = "least_busy"

    def __init__(self, estimate_fn: EstimateFn, *, shard_id: int = 0) -> None:
        self.estimate_fn = estimate_fn
        self.shard_id = shard_id

    def spawn(self, shard_id: int) -> "LeastBusyPolicy":
        """A per-shard instance sharing this policy's estimate source."""
        return LeastBusyPolicy(self.estimate_fn, shard_id=shard_id)

    def on_recalibration(self, qpus: list[QPU]) -> None:
        _forward_recalibration(self.estimate_fn, qpus)

    def assign(
        self,
        jobs: list[QuantumJob],
        qpus: list[QPU],
        waiting_seconds: dict[str, float],
    ) -> list[tuple[QuantumJob, str | None]]:
        # Track queue growth within the batch so assignments spread.
        local_wait = dict(waiting_seconds)
        out: list[tuple[QuantumJob, str | None]] = []
        for job in jobs:
            feasible = [q for q in qpus if q.online and q.num_qubits >= job.num_qubits]
            if not feasible:
                out.append((job, None))
                continue
            best = min(feasible, key=lambda q: local_wait.get(q.name, 0.0))
            _, sec = self.estimate_fn(job, best)
            local_wait[best.name] = local_wait.get(best.name, 0.0) + sec
            out.append((job, best.name))
        return out


class RandomPolicy:
    """Uniform random feasible assignment."""

    name = "random"

    def __init__(self, seed: int = 0, *, shard_id: int | None = None) -> None:
        self._seed = seed
        self.shard_id = shard_id or 0
        # Shard 0 (and the unsharded prototype) keeps the plain seeded
        # stream — the fleet contract requires a 1-shard sharded run to
        # be bit-identical to the unsharded simulator.  Every other shard
        # draws from an explicit (seed, shard_id) substream, distinct
        # from shard 0's and from each other's.
        if shard_id is None or shard_id == 0:
            self._rng = np.random.default_rng(seed)
        else:
            self._rng = np.random.default_rng(
                np.random.SeedSequence(entropy=(seed, shard_id))
            )

    def spawn(self, shard_id: int) -> "RandomPolicy":
        """A per-shard instance with a shard-derived RNG stream."""
        return RandomPolicy(seed=self._seed, shard_id=shard_id)

    def assign(
        self,
        jobs: list[QuantumJob],
        qpus: list[QPU],
        waiting_seconds: dict[str, float],
    ) -> list[tuple[QuantumJob, str | None]]:
        out: list[tuple[QuantumJob, str | None]] = []
        for job in jobs:
            feasible = [q for q in qpus if q.online and q.num_qubits >= job.num_qubits]
            if not feasible:
                out.append((job, None))
                continue
            pick = feasible[int(self._rng.integers(len(feasible)))]
            out.append((job, pick.name))
        return out
