"""Priority access / provider reservations (§7).

Qonductor deliberately does not implement reservations itself (they
exacerbate load imbalance); when the surrounding cloud does, reserved QPUs
are treated as *temporarily offline* — removed from the schedulable pool
for the reservation window and restored afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..backends.qpu import QPU

__all__ = ["Reservation", "ReservationManager"]


@dataclass(frozen=True)
class Reservation:
    """One exclusive-access window on one device."""

    qpu_name: str
    start: float
    end: float
    holder: str = "unknown"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("reservation must have positive duration")

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass
class ReservationManager:
    """Tracks reservations and toggles QPU availability accordingly."""

    reservations: list[Reservation] = field(default_factory=list)

    def reserve(
        self, qpu_name: str, start: float, end: float, holder: str = "unknown"
    ) -> Reservation:
        """Register a window; overlapping windows on one device are rejected."""
        candidate = Reservation(qpu_name, start, end, holder)
        for existing in self.reservations:
            if existing.qpu_name != qpu_name:
                continue
            if candidate.start < existing.end and existing.start < candidate.end:
                raise ValueError(
                    f"overlapping reservation on {qpu_name!r}: "
                    f"[{existing.start}, {existing.end})"
                )
        self.reservations.append(candidate)
        return candidate

    def cancel(self, reservation: Reservation) -> None:
        self.reservations.remove(reservation)

    def reserved_names(self, now: float) -> set[str]:
        return {r.qpu_name for r in self.reservations if r.active_at(now)}

    def apply(self, fleet: list[QPU], now: float) -> list[str]:
        """Set each QPU's ``online`` flag per the active reservations.

        Returns the names currently held offline. The scheduler's
        pre-processing stage already filters offline devices, so this is
        the complete §7 behaviour: reserved == temporarily offline.
        """
        held = self.reserved_names(now)
        for qpu in fleet:
            qpu.online = qpu.name not in held
        return sorted(held)

    def prune(self, now: float) -> int:
        """Drop expired reservations; returns how many were removed."""
        before = len(self.reservations)
        self.reservations = [r for r in self.reservations if r.end > now]
        return before - len(self.reservations)
