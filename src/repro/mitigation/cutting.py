"""Circuit knitting via quasi-probability gate cutting (paper refs [60, 89]).

Cuts the cross-partition CZ "bridge" gates of a circuit using the exact
Mitarai-Fujii decomposition of the CZ channel into local channels
(gamma = 3, verified numerically in the test suite):

    CZ  =  1/2 [S (x) S]  +  1/2 [Sdg (x) Sdg]
         + 1/2 [I (x) Dz] - 1/2 [Z (x) Dz]
         + 1/2 [Dz (x) I] - 1/2 [Dz (x) Z]

where ``Dz(rho) = P0 rho P0 - P1 rho P1`` is the measure-Z-and-weight-by-
outcome channel. Each Dz expands into its two projective branches, giving
10 signed local-op assignments per cut CZ. Fragments are executed
independently (on smaller devices, or sequentially on one device — Fig. 2a)
and the full distribution is reconstructed as the signed tensor-product sum.

Knitting cost: 10^k weighted variants for k cuts; reconstruction is a dense
outer-product accumulation, O(10^k * 2^(nA+nB)).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate

__all__ = [
    "CutInstruction",
    "FragmentVariant",
    "CutPlan",
    "cut_circuit",
    "knit",
    "sampling_overhead",
    "CZ_QPD_TERMS",
]

# Each entry: (coefficient, op_a, op_b). Ops: "s", "sdg", "id", "z",
# "p0" (project |0>), "p1" (project |1>). Dz branches carry the outcome sign.
CZ_QPD_TERMS: tuple[tuple[float, str, str], ...] = (
    (+0.5, "s", "s"),
    (+0.5, "sdg", "sdg"),
    (+0.5, "id", "p0"),
    (-0.5, "id", "p1"),
    (-0.5, "z", "p0"),
    (+0.5, "z", "p1"),
    (+0.5, "p0", "id"),
    (-0.5, "p1", "id"),
    (-0.5, "p0", "z"),
    (+0.5, "p1", "z"),
)


def sampling_overhead(num_cuts: int) -> float:
    """Quasi-probability sampling overhead gamma^2 = 9^k for k cut CZs."""
    return float(9**num_cuts)


@dataclass(frozen=True)
class CutInstruction:
    """One cross-partition CZ selected for cutting."""

    op_index: int
    qubit_a: int  # lives in partition A
    qubit_b: int  # lives in partition B


@dataclass
class FragmentVariant:
    """One signed variant of one fragment."""

    circuit: Circuit
    coefficient: float  # signed coefficient of the *combo* (set on frag A)
    variant_id: int
    fragment: str  # "A" or "B"


@dataclass
class CutPlan:
    """Everything needed to execute and knit a cut circuit."""

    partition_a: tuple[int, ...]
    partition_b: tuple[int, ...]
    cuts: tuple[CutInstruction, ...]
    variants_a: list[Circuit] = field(default_factory=list)
    variants_b: list[Circuit] = field(default_factory=list)
    coefficients: list[float] = field(default_factory=list)

    @property
    def num_variants(self) -> int:
        return len(self.coefficients)

    @property
    def gamma(self) -> float:
        return 3.0 ** len(self.cuts)


def _apply_local_op(circ: Circuit, op: str, qubit: int) -> None:
    if op == "id":
        return
    if op in ("s", "sdg", "z"):
        circ.add(op, [qubit])
    elif op == "p0":
        circ.project(0, qubit)
    elif op == "p1":
        circ.project(1, qubit)
    else:
        raise ValueError(f"unknown QPD local op {op!r}")


def cut_circuit(
    circuit: Circuit,
    partition_a: list[int],
    partition_b: list[int] | None = None,
) -> CutPlan:
    """Cut every CZ bridging the two qubit partitions.

    Requirements: the partitions cover all qubits, and the *only* gates
    crossing the partition boundary are CZ gates (the clustered workloads
    of :func:`repro.workloads.clustered_circuit` satisfy this by
    construction). Raises ``ValueError`` otherwise.

    Returns a :class:`CutPlan` whose ``variants_a[i]`` / ``variants_b[i]``
    / ``coefficients[i]`` triples enumerate all 10^k signed variants.
    """
    set_a = set(partition_a)
    if partition_b is None:
        partition_b = [q for q in range(circuit.num_qubits) if q not in set_a]
    set_b = set(partition_b)
    if set_a & set_b:
        raise ValueError("partitions overlap")
    if set_a | set_b != set(range(circuit.num_qubits)):
        raise ValueError("partitions must cover all qubits")

    cuts: list[CutInstruction] = []
    for idx, g in enumerate(circuit.ops):
        if g.name == "barrier" or g.num_qubits < 2:
            continue
        qa, qb = g.qubits
        crosses = (qa in set_a) != (qb in set_a)
        if not crosses:
            continue
        if g.name != "cz":
            raise ValueError(
                f"cross-partition gate {g.name!r} at op {idx} is not a CZ; "
                "only CZ bridges can be cut"
            )
        a, b = (qa, qb) if qa in set_a else (qb, qa)
        cuts.append(CutInstruction(idx, a, b))

    plan = CutPlan(
        partition_a=tuple(sorted(set_a)),
        partition_b=tuple(sorted(set_b)),
        cuts=tuple(cuts),
    )
    map_a = {q: i for i, q in enumerate(plan.partition_a)}
    map_b = {q: i for i, q in enumerate(plan.partition_b)}
    cut_indices = {c.op_index: c for c in cuts}

    for combo_id, combo in enumerate(
        itertools.product(range(len(CZ_QPD_TERMS)), repeat=len(cuts))
    ):
        coeff = 1.0
        frag_a = Circuit(len(plan.partition_a), f"{circuit.name}_A_v{combo_id}")
        frag_b = Circuit(len(plan.partition_b), f"{circuit.name}_B_v{combo_id}")
        cut_pos = 0
        for idx, g in enumerate(circuit.ops):
            if idx in cut_indices:
                c, op_a, op_b = CZ_QPD_TERMS[combo[cut_pos]]
                cut = cut_indices[idx]
                coeff *= c
                _apply_local_op(frag_a, op_a, map_a[cut.qubit_a])
                _apply_local_op(frag_b, op_b, map_b[cut.qubit_b])
                cut_pos += 1
                continue
            if g.name == "barrier":
                qa = tuple(map_a[q] for q in g.qubits if q in set_a)
                qb = tuple(map_b[q] for q in g.qubits if q in set_b)
                if qa or not g.qubits:
                    frag_a.append(Gate("barrier", qa))
                if qb or not g.qubits:
                    frag_b.append(Gate("barrier", qb))
                continue
            if all(q in set_a for q in g.qubits):
                frag_a.append(g.remap(map_a))
            elif all(q in set_b for q in g.qubits):
                frag_b.append(g.remap(map_b))
            else:  # pragma: no cover - already validated above
                raise AssertionError("unexpected cross-partition gate")
        plan.variants_a.append(frag_a)
        plan.variants_b.append(frag_b)
        plan.coefficients.append(coeff)
    return plan


def knit(
    plan: CutPlan,
    probs_a: list[np.ndarray],
    probs_b: list[np.ndarray],
) -> tuple[np.ndarray, float]:
    """Reconstruct the full distribution from fragment variant outputs.

    ``probs_a[i]`` / ``probs_b[i]`` are (possibly unnormalized — projective
    branches carry their branch probability as their total mass) outcome
    distributions of variant ``i``. Returns ``(distribution, classical_s)``
    where the second element is the measured reconstruction wall time.

    Bit layout of the output index: partition-A qubits occupy the positions
    of ``plan.partition_a`` in the original register, B likewise.
    """
    if not (len(probs_a) == len(probs_b) == plan.num_variants):
        raise ValueError("variant result count mismatch")
    t0 = time.perf_counter()
    n_total = len(plan.partition_a) + len(plan.partition_b)
    na = len(plan.partition_a)
    nb = len(plan.partition_b)
    joint = np.zeros((2**na, 2**nb))
    for coeff, pa, pb in zip(plan.coefficients, probs_a, probs_b):
        joint += coeff * np.outer(pa, pb)
    # Scatter joint (a, b) into the original qubit positions.
    full = np.zeros(2**n_total)
    a_positions = np.array(plan.partition_a)
    b_positions = np.array(plan.partition_b)
    a_idx = np.arange(2**na)
    b_idx = np.arange(2**nb)
    a_scatter = np.zeros(2**na, dtype=np.int64)
    for bit, pos in enumerate(a_positions):
        a_scatter |= ((a_idx >> bit) & 1) << pos
    b_scatter = np.zeros(2**nb, dtype=np.int64)
    for bit, pos in enumerate(b_positions):
        b_scatter |= ((b_idx >> bit) & 1) << pos
    flat_targets = (a_scatter[:, None] | b_scatter[None, :]).reshape(-1)
    np.add.at(full, flat_targets, joint.reshape(-1))
    full = np.clip(full, 0.0, None)
    total = full.sum()
    if total > 0:
        full /= total
    elapsed = time.perf_counter() - t0
    return full, elapsed
