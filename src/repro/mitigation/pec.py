"""Probabilistic error cancellation (PEC).

Models each noisy gate as ideal-gate ∘ depolarizing channel (rate from the
calibration data) and samples from the quasi-probability representation of
the *inverse* channel: with the appropriate probabilities a Pauli is
inserted after the gate and the sample's sign is flipped. Averaging signed
results and rescaling by the total gamma cancels the modeled noise in
expectation (Temme et al. 2017).

Sampling overhead is gamma_total^2, growing exponentially with gate count —
which is exactly the classical/quantum cost the resource estimator has to
price in (§6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit
from ..simulation.noise import NoiseModel

__all__ = ["PEC", "PECSample", "pec_gamma", "pec_sample_circuits", "pec_combine_probs"]

_PAULI_NAMES = ("x", "y", "z")


def _inverse_coeffs(error: float) -> tuple[float, float, float]:
    """(c_identity, c_pauli_each, gamma) for the inverse depolarizing channel.

    Depolarizing with Pauli rate p (p/3 per Pauli) has lambda = 4p/3 in the
    ``(1-lambda) rho + lambda I/2`` parameterization. The inverse map's
    quasi-probabilities follow from I/2 = (rho + X rho X + Y rho Y + Z rho Z)/4.
    """
    lam = 4.0 * error / 3.0
    if lam >= 1.0:
        raise ValueError(f"gate error {error} too large to invert")
    c_i = (4.0 - lam) / (4.0 * (1.0 - lam))
    c_p = -lam / (4.0 * (1.0 - lam))
    gamma = abs(c_i) + 3.0 * abs(c_p)
    return c_i, c_p, gamma


def pec_gamma(circuit: Circuit, noise_model: NoiseModel) -> float:
    """Total gamma of the inverse representation over all unitary gates."""
    gamma = 1.0
    for g in circuit.ops:
        if not g.is_unitary:
            continue
        err = noise_model.gate_noise(g.name, g.qubits).error
        if err <= 0.0:
            continue
        gamma *= _inverse_coeffs(err)[2]
    return gamma


@dataclass
class PECSample:
    """One signed PEC circuit instance."""

    circuit: Circuit
    sign: float


@dataclass(frozen=True)
class PEC:
    """PEC configuration: number of sampled instances."""

    num_samples: int = 16

    def apply(
        self,
        circuit: Circuit,
        noise_model: NoiseModel,
        rng: np.random.Generator | None = None,
    ) -> tuple[list[PECSample], float]:
        return pec_sample_circuits(circuit, noise_model, self.num_samples, rng)

    @property
    def sampling_overhead(self) -> float:
        return float(self.num_samples)


def pec_sample_circuits(
    circuit: Circuit,
    noise_model: NoiseModel,
    num_samples: int,
    rng: np.random.Generator | None = None,
) -> tuple[list[PECSample], float]:
    """Draw ``num_samples`` signed instances; returns (samples, gamma)."""
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    rng = rng or np.random.default_rng(0)
    gamma_total = 1.0
    # Precompute per-gate sampling tables.
    tables: list[tuple[int, float, float] | None] = []
    for g in circuit.ops:
        if not g.is_unitary:
            tables.append(None)
            continue
        err = noise_model.gate_noise(g.name, g.qubits).error
        if err <= 0.0:
            tables.append(None)
            continue
        c_i, c_p, gamma = _inverse_coeffs(err)
        gamma_total *= gamma
        tables.append((1, abs(c_i) / gamma, abs(c_p) / gamma))

    samples: list[PECSample] = []
    for k in range(num_samples):
        inst = Circuit(circuit.num_qubits, f"{circuit.name}_pec{k}")
        inst.metadata = dict(circuit.metadata)
        sign = 1.0
        for g, table in zip(circuit.ops, tables):
            inst.append(g)
            if table is None:
                continue
            _, p_id, p_pauli = table
            r = rng.random()
            if r < p_id:
                continue
            # A Pauli correction fires: negative quasi-probability.
            sign *= -1.0
            which = int((r - p_id) / p_pauli)
            which = min(which, 2)
            victim = g.qubits[int(rng.integers(len(g.qubits)))]
            inst.add(_PAULI_NAMES[which], [victim])
        samples.append(PECSample(circuit=inst, sign=sign))
    return samples, gamma_total


def pec_combine_probs(
    samples: list[PECSample], probs: list[np.ndarray], gamma: float
) -> np.ndarray:
    """Signed average of sampled distributions, rescaled by gamma and
    projected back onto the simplex."""
    if len(samples) != len(probs):
        raise ValueError("samples/results length mismatch")
    acc = np.zeros_like(np.asarray(probs[0], dtype=float))
    for s, p in zip(samples, probs):
        acc += s.sign * np.asarray(p, dtype=float)
    acc *= gamma / len(samples)
    acc = np.clip(acc, 0.0, None)
    total = acc.sum()
    if total <= 0:
        return np.asarray(probs[0], dtype=float)
    return acc / total
