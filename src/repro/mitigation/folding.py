"""Unitary folding for ZNE noise amplification.

Folding maps ``G -> G G^dag G`` so the circuit computes the same unitary
while passing through the noise channel more times. Global folding scales
the whole circuit; gate folding scales individual gates, allowing
non-integer scale factors via partial folds (Mitiq's scheme).
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import inverse_gate

__all__ = ["fold_global", "fold_gates", "fold_to_factor"]


def fold_global(circuit: Circuit, num_folds: int) -> Circuit:
    """Apply ``num_folds`` global folds: U -> U (U^dag U)^k, scale 2k+1.

    Measurements stay at the end; only the unitary body is folded.
    """
    if num_folds < 0:
        raise ValueError("num_folds must be >= 0")
    body = circuit.without_measurements()
    out = Circuit(circuit.num_qubits, f"{circuit.name}_fold{2 * num_folds + 1}")
    out.metadata = dict(circuit.metadata)
    out.compose(body)
    inv = body.inverse()
    for _ in range(num_folds):
        out.compose(inv)
        out.compose(body)
    for g in circuit.ops:
        if not g.is_unitary:
            out.append(g)
    return out


def fold_gates(
    circuit: Circuit,
    gate_indices: list[int],
) -> Circuit:
    """Fold the unitary gates at ``gate_indices`` (indices into ``ops``)."""
    chosen = set(gate_indices)
    out = Circuit(circuit.num_qubits, f"{circuit.name}_gfold")
    out.metadata = dict(circuit.metadata)
    for idx, g in enumerate(circuit.ops):
        out.append(g)
        if idx in chosen:
            if not g.is_unitary:
                raise ValueError(f"cannot fold non-unitary op at {idx}")
            out.append(inverse_gate(g))
            out.append(g)
    return out


def fold_to_factor(
    circuit: Circuit,
    scale_factor: float,
    *,
    rng: np.random.Generator | None = None,
    prefer_2q: bool = True,
) -> Circuit:
    """Fold to an arbitrary ``scale_factor >= 1``.

    Integer part comes from global folds; the fractional remainder folds a
    random subset of gates (two-qubit gates first when ``prefer_2q`` — they
    dominate the error budget so this tracks effective noise scale best).
    """
    if scale_factor < 1.0:
        raise ValueError("scale_factor must be >= 1")
    rng = rng or np.random.default_rng(0)
    num_global = int((scale_factor - 1.0) // 2.0)
    folded = fold_global(circuit, num_global)
    achieved = 2 * num_global + 1
    remainder = scale_factor - achieved  # in [0, 2)
    if remainder <= 1e-9:
        return folded
    unitary_idx = [i for i, g in enumerate(folded.ops) if g.is_unitary]
    if not unitary_idx:
        return folded
    # Each partial fold adds 2 gates; fraction of gates to fold:
    frac = min(1.0, remainder / 2.0)
    if prefer_2q:
        two_q = [i for i in unitary_idx if folded.ops[i].num_qubits == 2]
        one_q = [i for i in unitary_idx if folded.ops[i].num_qubits == 1]
        pool = two_q + one_q
    else:
        pool = list(unitary_idx)
    k = max(1, int(round(frac * len(unitary_idx))))
    chosen = pool[:k] if prefer_2q else list(
        rng.choice(pool, size=min(k, len(pool)), replace=False)
    )
    out = fold_gates(folded, chosen)
    out.name = f"{circuit.name}_fold{scale_factor:g}"
    return out
