"""Dynamical decoupling (DD).

Fills idle windows with refocusing pulse sequences. Because the trajectory
simulator applies quasi-static dephasing as a coherent RZ over elapsed idle
time, inserted X pairs *mechanistically* refocus it (an X conjugates RZ to
RZ^-1, so symmetric halves cancel) — fidelity gains emerge from the physics
rather than a fudge factor, at the cost of the pulses' own gate errors.

Sequences: ``XX`` / ``XpXm`` (two pulses, equivalent in this Pauli-level
model) and ``XY4`` (four pulses, also refocusing stochastic X/Y to first
order).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import Circuit
from ..simulation.noise import NoiseModel

__all__ = ["DD", "insert_dd"]

_SEQUENCES: dict[str, tuple[str, ...]] = {
    "XX": ("x", "x"),
    "XpXm": ("x", "x"),  # +X then -X pulse; identical at the Pauli level
    "XY4": ("x", "y", "x", "y"),
}

#: Idle-time fractions before/between/after pulses. Chosen so the signed sum
#: of segments (sign flips at every pulse, since X and Y both anticommute
#: with Z) is exactly zero — the CPMG condition for full refocusing of
#: quasi-static dephasing.
_SPACINGS: dict[str, tuple[float, ...]] = {
    "XX": (0.25, 0.5, 0.25),
    "XpXm": (0.25, 0.5, 0.25),
    "XY4": (0.125, 0.25, 0.25, 0.25, 0.125),
}


@dataclass(frozen=True)
class DD:
    """Configuration for DD insertion."""

    sequence_type: str = "XpXm"
    min_idle_ns: float = 150.0

    def apply(self, circuit: Circuit, noise_model: NoiseModel) -> Circuit:
        return insert_dd(
            circuit,
            noise_model,
            sequence_type=self.sequence_type,
            min_idle_ns=self.min_idle_ns,
        )

    @property
    def sampling_overhead(self) -> float:
        return 1.0


def insert_dd(
    circuit: Circuit,
    noise_model: NoiseModel,
    *,
    sequence_type: str = "XpXm",
    min_idle_ns: float = 150.0,
) -> Circuit:
    """Insert DD sequences into idle windows longer than ``min_idle_ns``.

    An ASAP pass finds, for every op, the gap since each involved qubit was
    last active; gaps large enough to fit the pulse sequence are replaced
    by ``delay - pulse - delay - pulse - ... - delay`` with equal spacing
    (a symmetric CPMG-style placement).
    """
    if sequence_type not in _SEQUENCES:
        raise ValueError(
            f"unknown DD sequence {sequence_type!r}; options: {sorted(_SEQUENCES)}"
        )
    pulses = _SEQUENCES[sequence_type]
    pulse_dur = noise_model.default_1q.duration_ns

    finish = [0.0] * circuit.num_qubits
    out = Circuit(circuit.num_qubits, f"{circuit.name}_dd")
    out.metadata = dict(circuit.metadata)
    out.metadata["dd_sequence"] = sequence_type
    inserted = 0

    spacings = _SPACINGS[sequence_type]

    def emit_dd(q: int, gap_ns: float) -> None:
        nonlocal inserted
        n_pulses = len(pulses)
        slack = gap_ns - n_pulses * pulse_dur
        for i, p in enumerate(pulses):
            out.delay(slack * spacings[i], q)
            out.add(p, [q])
        out.delay(slack * spacings[-1], q)
        inserted += n_pulses

    for g in circuit.ops:
        if g.name == "barrier":
            wires = g.qubits if g.qubits else tuple(range(circuit.num_qubits))
            sync = max((finish[q] for q in wires), default=0.0)
            for q in wires:
                finish[q] = sync
            out.append(g)
            continue
        if g.name == "delay":
            finish[g.qubits[0]] += g.params[0]
            out.append(g)
            continue
        if g.name in ("measure", "reset"):
            dur = noise_model.readout_duration_ns
        elif g.is_unitary:
            dur = noise_model.gate_noise(g.name, g.qubits).duration_ns
        else:
            dur = 0.0
        start = max(finish[q] for q in g.qubits)
        for q in g.qubits:
            gap = start - finish[q]
            if gap >= max(min_idle_ns, len(pulses) * pulse_dur * 1.5):
                emit_dd(q, gap)
        out.append(g)
        for q in g.qubits:
            finish[q] = start + dur
    out.metadata["dd_pulses_inserted"] = inserted
    return out
