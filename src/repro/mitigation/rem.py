"""Readout error mitigation (REM).

Inverts the measurement confusion matrix. Two modes:

* ``tensored`` (default) — per-qubit 2x2 inverses applied axis-by-axis,
  O(n 2^n), valid for uncorrelated readout noise (which is how our
  simulator generates it).
* ``full`` — dense pseudo-inverse over measured qubits (<= 12), matching
  the correlated-matrix method.

Both project the result back onto the probability simplex via clipping +
renormalization; ``least_squares`` instead solves a constrained problem
with scipy for the highest-accuracy (and priciest) mode.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import nnls

from ..simulation.noise import NoiseModel
from ..simulation.readout import apply_confusion_single, full_confusion_matrix

__all__ = ["REM", "mitigate_probs", "mitigate_counts"]


class REM:
    """Readout-error mitigator bound to a noise model's confusion data."""

    def __init__(self, noise_model: NoiseModel, method: str = "tensored") -> None:
        if method not in ("tensored", "full", "least_squares"):
            raise ValueError(f"unknown REM method {method!r}")
        self.noise_model = noise_model
        self.method = method

    def mitigate_probs(self, probs: np.ndarray, num_qubits: int) -> np.ndarray:
        return mitigate_probs(probs, self.noise_model, num_qubits, self.method)

    def mitigate_counts(self, counts: dict[str, int], num_qubits: int) -> np.ndarray:
        return mitigate_counts(counts, self.noise_model, num_qubits, self.method)

    @property
    def sampling_overhead(self) -> float:
        """REM reuses the same shots; overhead is classical only."""
        return 1.0


def _simplex_project(vec: np.ndarray) -> np.ndarray:
    out = np.clip(vec, 0.0, None)
    total = out.sum()
    if total <= 0:
        return np.full_like(vec, 1.0 / len(vec))
    return out / total


def mitigate_probs(
    probs: np.ndarray,
    noise_model: NoiseModel,
    num_qubits: int,
    method: str = "tensored",
) -> np.ndarray:
    """Undo readout noise on a dense distribution."""
    if method == "tensored":
        out = np.asarray(probs, dtype=float)
        for q in range(num_qubits):
            conf = noise_model.confusion_matrix(q)
            inv = np.linalg.inv(conf)
            out = apply_confusion_single(out, inv, q, num_qubits)
        return _simplex_project(out)
    qubits = list(range(num_qubits))
    mat = full_confusion_matrix(noise_model, qubits)
    if method == "full":
        out = np.linalg.pinv(mat) @ np.asarray(probs, dtype=float)
        return _simplex_project(out)
    # least_squares: min ||M x - p|| s.t. x >= 0, then renormalize.
    sol, _ = nnls(mat, np.asarray(probs, dtype=float))
    return _simplex_project(sol)


def mitigate_counts(
    counts: dict[str, int],
    noise_model: NoiseModel,
    num_qubits: int,
    method: str = "tensored",
) -> np.ndarray:
    """Counts-dict entry point; returns a mitigated dense distribution."""
    total = sum(counts.values())
    vec = np.zeros(2**num_qubits)
    for bits, c in counts.items():
        vec[int(bits, 2)] = c / total
    return mitigate_probs(vec, noise_model, num_qubits, method)
