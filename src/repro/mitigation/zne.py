"""Zero-noise extrapolation (ZNE).

Pipeline (matching Listing 2 of the paper): ``ZNE.apply`` expands one
circuit into several noise-scaled instances; after execution,
``ZNE.inference`` extrapolates the measured results back to the zero-noise
limit. Works on scalar expectation values and on full probability
distributions (extrapolated per basis state, then projected back onto the
probability simplex).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit
from .extrapolation import get_factory
from .folding import fold_to_factor

__all__ = ["ZNE", "zne_expand", "zne_infer_value", "zne_infer_probs"]

DEFAULT_NOISE_FACTORS = (1.0, 3.0, 5.0)


@dataclass(frozen=True)
class ZNE:
    """Configuration object for a ZNE application."""

    noise_factors: tuple[float, ...] = DEFAULT_NOISE_FACTORS
    factory: str = "linear"

    def apply(self, circuit: Circuit) -> list[Circuit]:
        """Generate the noise-scaled circuit instances (§6's expansion)."""
        return zne_expand(circuit, self.noise_factors)

    def inference_value(self, values: list[float]) -> float:
        return zne_infer_value(list(self.noise_factors), values, self.factory)

    def inference_probs(self, probs: list[np.ndarray]) -> np.ndarray:
        return zne_infer_probs(list(self.noise_factors), probs, self.factory)

    @property
    def sampling_overhead(self) -> float:
        """Relative quantum-shot overhead vs the unmitigated run."""
        return float(len(self.noise_factors))

    @property
    def gate_overhead(self) -> float:
        """Mean gate-count multiplier across the scaled instances."""
        return float(np.mean(self.noise_factors))


def zne_expand(
    circuit: Circuit, noise_factors: tuple[float, ...] = DEFAULT_NOISE_FACTORS
) -> list[Circuit]:
    """One folded instance per noise factor (factor 1 = original)."""
    if any(f < 1.0 for f in noise_factors):
        raise ValueError("noise factors must be >= 1")
    out = []
    for factor in noise_factors:
        folded = circuit.copy() if abs(factor - 1.0) < 1e-12 else fold_to_factor(
            circuit, factor
        )
        folded.metadata["zne_scale"] = factor
        out.append(folded)
    return out


def zne_infer_value(
    noise_factors: list[float], values: list[float], factory: str = "linear"
) -> float:
    """Extrapolate a scalar observable to zero noise."""
    return get_factory(factory)(noise_factors, values)


def zne_infer_probs(
    noise_factors: list[float],
    probs: list[np.ndarray],
    factory: str = "linear",
) -> np.ndarray:
    """Extrapolate a distribution to zero noise, per basis state.

    The raw extrapolation may leave the simplex; negative entries are
    clipped and the vector renormalized (standard practice).
    """
    if len(noise_factors) != len(probs):
        raise ValueError("need one distribution per noise factor")
    stack = np.stack([np.asarray(p, dtype=float) for p in probs])
    x = np.asarray(noise_factors, dtype=float)
    if factory in ("linear", "LinearFactory"):
        # Vectorized linear extrapolation across all basis states at once.
        xm = x.mean()
        ym = stack.mean(axis=0)
        denom = np.sum((x - xm) ** 2)
        slope = ((x - xm)[:, None] * (stack - ym)).sum(axis=0) / denom
        zero = ym - slope * xm
    else:
        fac = get_factory(factory)
        zero = np.array(
            [fac(list(x), list(stack[:, i])) for i in range(stack.shape[1])]
        )
    zero = np.clip(zero, 0.0, None)
    total = zero.sum()
    if total <= 0:
        return stack[0]
    return zero / total
