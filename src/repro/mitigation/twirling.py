"""Pauli twirling.

Conjugates every CX by random Pauli pairs chosen so the ideal circuit is
unchanged, converting coherent two-qubit noise into stochastic Pauli noise
(Wallman & Emerson 2016). Generates an ensemble of logically equivalent
circuit instances whose averaged output tailored the noise channel.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit

__all__ = ["pauli_twirl", "twirl_ensemble", "CX_TWIRL_SET"]

# Pauli pairs (P_c, P_t) with matching correction pairs (Q_c, Q_t) such that
# (Q_c (x) Q_t) . CX . (P_c (x) P_t) = CX exactly (up to global phase).
# CX propagation rules: X_c -> X_c X_t, X_t -> X_t, Z_c -> Z_c,
# Z_t -> Z_c Z_t, Y = iXZ.
CX_TWIRL_SET: list[tuple[str, str, str, str]] = [
    ("id", "id", "id", "id"),
    ("id", "x", "id", "x"),
    ("id", "z", "z", "z"),
    ("id", "y", "z", "y"),
    ("x", "id", "x", "x"),
    ("x", "x", "x", "id"),
    ("x", "z", "y", "y"),
    ("x", "y", "y", "z"),
    ("z", "id", "z", "id"),
    ("z", "x", "z", "x"),
    ("z", "z", "id", "z"),
    ("z", "y", "id", "y"),
    ("y", "id", "y", "x"),
    ("y", "x", "y", "id"),
    ("y", "z", "x", "y"),
    ("y", "y", "x", "z"),
]


def pauli_twirl(
    circuit: Circuit, rng: np.random.Generator | None = None
) -> Circuit:
    """One random twirled instance: every CX dressed with a random
    sandwich from :data:`CX_TWIRL_SET`."""
    # Deterministic by default: callers wanting varied instances inject
    # their own Generator (twirl_ensemble shares one across instances).
    rng = rng if rng is not None else np.random.default_rng(0)
    out = Circuit(circuit.num_qubits, f"{circuit.name}_twirled")
    out.metadata = dict(circuit.metadata)
    for g in circuit.ops:
        if g.name != "cx":
            out.append(g)
            continue
        pc, pt, qc, qt = CX_TWIRL_SET[int(rng.integers(len(CX_TWIRL_SET)))]
        c, t = g.qubits
        for name, q in ((pc, c), (pt, t)):
            if name != "id":
                out.add(name, [q])
        out.append(g)
        for name, q in ((qc, c), (qt, t)):
            if name != "id":
                out.add(name, [q])
    return out


def twirl_ensemble(
    circuit: Circuit, num_instances: int = 8, seed: int | None = None
) -> list[Circuit]:
    """An ensemble of independently twirled instances; average their
    output distributions to realize the tailored channel."""
    if num_instances < 1:
        raise ValueError("need >= 1 instance")
    rng = np.random.default_rng(seed)
    return [pauli_twirl(circuit, rng) for _ in range(num_instances)]
