"""Stacked mitigation pipelines (§6: "integrates complementary error
mitigation techniques in a stacked manner").

A :class:`MitigationStack` is an ordered recipe of techniques, e.g.
``["dd", "twirling", "zne", "rem"]``. It exposes the three hooks the
resource estimator and executor need:

* :meth:`expand` — circuit -> list of circuit instances to execute
  (ZNE noise scales x twirl ensemble x ... );
* :meth:`post_process` — raw distributions -> one mitigated distribution;
* overhead properties — quantum-shot and classical-runtime multipliers
  that feed the resource-plan cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import Circuit
from ..simulation.noise import NoiseModel
from .dd import DD
from .rem import REM
from .twirling import twirl_ensemble
from .zne import ZNE

__all__ = ["MitigationStack", "StackPlan", "STANDARD_STACKS"]

#: Ready-made recipes, ordered from cheap to expensive. These are the
#: "resource plan" knobs the estimator sweeps (§6, Fig. 7a).
STANDARD_STACKS: dict[str, list[str]] = {
    "none": [],
    "rem": ["rem"],
    "dd": ["dd"],
    "dd+rem": ["dd", "rem"],
    "twirl+rem": ["twirling", "rem"],
    "zne": ["zne"],
    "zne+rem": ["zne", "rem"],
    "dd+zne+rem": ["dd", "zne", "rem"],
    "dd+twirl+zne+rem": ["dd", "twirling", "zne", "rem"],
}


@dataclass
class StackPlan:
    """Expansion result: executable instances plus recombination metadata."""

    instances: list[Circuit]
    zne_factors: list[float] | None
    twirl_group: int  # instances per ZNE factor (1 when twirling is off)


@dataclass(frozen=True)
class MitigationStack:
    """An ordered error-mitigation recipe."""

    techniques: tuple[str, ...] = ()
    zne: ZNE = field(default_factory=ZNE)
    dd: DD = field(default_factory=DD)
    rem_method: str = "tensored"
    twirl_instances: int = 4
    seed: int = 0

    @classmethod
    def from_names(cls, names: list[str], **kwargs) -> "MitigationStack":
        known = {"dd", "twirling", "zne", "rem"}
        unknown = set(names) - known
        if unknown:
            raise ValueError(f"unknown mitigation techniques: {sorted(unknown)}")
        return cls(techniques=tuple(names), **kwargs)

    @classmethod
    def preset(cls, name: str, **kwargs) -> "MitigationStack":
        if name not in STANDARD_STACKS:
            raise KeyError(f"unknown stack preset {name!r}")
        return cls.from_names(STANDARD_STACKS[name], **kwargs)

    # ------------------------------------------------------------------
    @property
    def uses(self) -> set[str]:
        return set(self.techniques)

    @property
    def shot_overhead(self) -> float:
        """Multiplier on quantum executions vs the bare circuit."""
        overhead = 1.0
        if "zne" in self.uses:
            overhead *= len(self.zne.noise_factors)
        if "twirling" in self.uses:
            overhead *= self.twirl_instances
        return overhead

    @property
    def gate_overhead(self) -> float:
        """Mean gate-count multiplier of the expanded instances."""
        return self.zne.gate_overhead if "zne" in self.uses else 1.0

    @property
    def classical_overhead(self) -> float:
        """Relative classical post-processing cost (1 = negligible)."""
        cost = 1.0
        if "rem" in self.uses:
            cost += 2.0 if self.rem_method == "tensored" else 6.0
        if "zne" in self.uses:
            cost += 1.0
        if "twirling" in self.uses:
            cost += 0.5 * self.twirl_instances
        return cost

    # ------------------------------------------------------------------
    def expand(self, circuit: Circuit, noise_model: NoiseModel) -> StackPlan:
        """Generate the executable instances for ``circuit``."""
        base = circuit
        if "dd" in self.uses:
            base = self.dd.apply(base, noise_model)
        if "zne" in self.uses:
            scaled = self.zne.apply(base)
            factors = list(self.zne.noise_factors)
        else:
            scaled = [base]
            factors = None
        if "twirling" in self.uses:
            instances: list[Circuit] = []
            for i, circ in enumerate(scaled):
                instances.extend(
                    twirl_ensemble(circ, self.twirl_instances, seed=self.seed + i)
                )
            group = self.twirl_instances
        else:
            instances = list(scaled)
            group = 1
        return StackPlan(instances=instances, zne_factors=factors, twirl_group=group)

    def post_process(
        self,
        plan: StackPlan,
        probs: list[np.ndarray],
        noise_model: NoiseModel,
        num_qubits: int,
    ) -> np.ndarray:
        """Recombine executed distributions into the mitigated result."""
        if len(probs) != len(plan.instances):
            raise ValueError("result count does not match plan instances")
        # 1. Average twirl groups.
        if plan.twirl_group > 1:
            grouped = [
                np.mean(probs[i : i + plan.twirl_group], axis=0)
                for i in range(0, len(probs), plan.twirl_group)
            ]
        else:
            grouped = [np.asarray(p, dtype=float) for p in probs]
        # 2. REM before extrapolation (readout errors are not amplified by
        #    folding, so they must be removed before ZNE inference).
        if "rem" in self.uses:
            rem = REM(noise_model, self.rem_method)
            grouped = [rem.mitigate_probs(p, num_qubits) for p in grouped]
        # 3. ZNE inference.
        if plan.zne_factors is not None:
            return self.zne.inference_probs(grouped)
        return grouped[0]
