"""Zero-noise extrapolation factories.

Each factory fits measured expectation values (or probabilities) at several
noise scale factors and extrapolates to the zero-noise limit. Mirrors
Mitiq's ``LinearFactory`` / ``RichardsonFactory`` / ``ExpFactory`` /
``PolyFactory``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import curve_fit

__all__ = [
    "LinearFactory",
    "PolyFactory",
    "RichardsonFactory",
    "ExpFactory",
    "get_factory",
]


class _Factory:
    name = "base"

    def extrapolate(self, scale_factors, values) -> float:
        raise NotImplementedError

    def __call__(self, scale_factors, values) -> float:
        x = np.asarray(scale_factors, dtype=float)
        y = np.asarray(values, dtype=float)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("scale_factors and values must be equal-length 1-D")
        if len(x) < 2:
            raise ValueError("extrapolation needs at least two scale factors")
        if len(np.unique(x)) != len(x):
            raise ValueError("scale factors must be distinct")
        return float(self.extrapolate(x, y))


class LinearFactory(_Factory):
    """Least-squares straight line through (scale, value), read at scale 0."""

    name = "linear"

    def extrapolate(self, x, y) -> float:
        coeffs = np.polyfit(x, y, 1)
        return float(np.polyval(coeffs, 0.0))


class PolyFactory(_Factory):
    """Polynomial fit of configurable order."""

    name = "poly"

    def __init__(self, order: int = 2) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order

    def extrapolate(self, x, y) -> float:
        order = min(self.order, len(x) - 1)
        coeffs = np.polyfit(x, y, order)
        return float(np.polyval(coeffs, 0.0))


class RichardsonFactory(_Factory):
    """Richardson extrapolation: exact-degree polynomial through all points.

    Classic ZNE (Temme et al. 2017): the zero-noise value is the
    Lagrange-interpolant evaluated at 0.
    """

    name = "richardson"

    def extrapolate(self, x, y) -> float:
        total = 0.0
        for i in range(len(x)):
            term = y[i]
            for j in range(len(x)):
                if i != j:
                    term *= x[j] / (x[j] - x[i])
            total += term
        return float(total)


class ExpFactory(_Factory):
    """Exponential-decay fit ``y = a + b * exp(-c * x)``.

    Matches how fidelity-like observables decay with noise; falls back to
    linear when the nonlinear fit fails to converge.
    """

    name = "exp"

    def __init__(self, asymptote: float | None = None) -> None:
        self.asymptote = asymptote

    def extrapolate(self, x, y) -> float:
        try:
            if self.asymptote is not None:
                a = self.asymptote

                def model(t, b, c):
                    return a + b * np.exp(-c * t)

                popt, _ = curve_fit(
                    model, x, y, p0=(y[0] - a, 0.5), maxfev=5000
                )
                return float(a + popt[0])

            def model(t, a, b, c):
                return a + b * np.exp(-c * t)

            popt, _ = curve_fit(
                model, x, y, p0=(y[-1], y[0] - y[-1], 0.5), maxfev=5000
            )
            return float(popt[0] + popt[1])
        except (RuntimeError, TypeError):
            return LinearFactory().extrapolate(x, y)


def get_factory(name: str, **kwargs) -> _Factory:
    """Factory registry keyed by the names used in execution configs."""
    table = {
        "linear": LinearFactory,
        "LinearFactory": LinearFactory,
        "poly": PolyFactory,
        "PolyFactory": PolyFactory,
        "richardson": RichardsonFactory,
        "RichardsonFactory": RichardsonFactory,
        "exp": ExpFactory,
        "ExpFactory": ExpFactory,
    }
    if name not in table:
        raise KeyError(f"unknown extrapolation factory {name!r}")
    return table[name](**kwargs)
