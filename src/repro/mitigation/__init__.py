"""Error-mitigation library: ZNE, REM, DD, Pauli twirling, PEC, and
quasi-probability circuit knitting, plus stacked pipelines."""

from .cutting import (
    CZ_QPD_TERMS,
    CutInstruction,
    CutPlan,
    cut_circuit,
    knit,
    sampling_overhead,
)
from .dd import DD, insert_dd
from .extrapolation import (
    ExpFactory,
    LinearFactory,
    PolyFactory,
    RichardsonFactory,
    get_factory,
)
from .folding import fold_gates, fold_global, fold_to_factor
from .pec import (
    PEC,
    PECSample,
    pec_combine_probs,
    pec_gamma,
    pec_sample_circuits,
)
from .rem import REM, mitigate_counts, mitigate_probs
from .stack import STANDARD_STACKS, MitigationStack, StackPlan
from .twirling import CX_TWIRL_SET, pauli_twirl, twirl_ensemble
from .zne import ZNE, zne_expand, zne_infer_probs, zne_infer_value

__all__ = [
    "fold_gates",
    "fold_global",
    "fold_to_factor",
    "ExpFactory",
    "LinearFactory",
    "PolyFactory",
    "RichardsonFactory",
    "get_factory",
    "ZNE",
    "zne_expand",
    "zne_infer_probs",
    "zne_infer_value",
    "REM",
    "mitigate_counts",
    "mitigate_probs",
    "DD",
    "insert_dd",
    "CX_TWIRL_SET",
    "pauli_twirl",
    "twirl_ensemble",
    "PEC",
    "PECSample",
    "pec_combine_probs",
    "pec_gamma",
    "pec_sample_circuits",
    "CZ_QPD_TERMS",
    "CutInstruction",
    "CutPlan",
    "cut_circuit",
    "knit",
    "sampling_overhead",
    "STANDARD_STACKS",
    "MitigationStack",
    "StackPlan",
]
