"""Calibration-data generation.

Produces per-QPU :class:`~repro.simulation.noise.NoiseModel` snapshots the
way IBM's periodic calibration procedure does (§2.1): every qubit and gate
gets its own figure drawn around the model baseline, scaled by the device's
*quality factor* — the knob that creates the spatial performance variance of
Fig. 2(b) — and re-drawn every calibration cycle with temporal drift
(see :mod:`repro.backends.drift`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulation.noise import GateNoise, NoiseModel, QubitNoise
from .models import QPUModel

__all__ = [
    "CalibrationAggregates",
    "CalibrationData",
    "sample_calibration",
    "average_calibrations",
]

#: Default wall-clock spacing between calibration cycles (seconds). IBM
#: recalibrates roughly daily; experiments can shorten this.
DEFAULT_CALIBRATION_PERIOD_S = 24 * 3600.0


@dataclass
class CalibrationData:
    """One calibration snapshot of one QPU."""

    qpu_name: str
    model_name: str
    cycle: int
    timestamp: float
    noise_model: NoiseModel
    quality_factor: float

    @property
    def epoch(self) -> tuple[str, int]:
        """Cache-invalidation key: a fresh snapshot means a fresh epoch."""
        return (self.qpu_name, self.cycle)

    @property
    def mean_error_2q(self) -> float:
        return self.noise_model.mean_gate_error_2q()

    @property
    def mean_readout_error(self) -> float:
        return self.noise_model.mean_readout_error()

    def aggregates(self) -> "CalibrationAggregates":
        """Scalar summaries used by estimators, computed once per snapshot.

        Hot paths touch these per (job, QPU) pair; recomputing the means
        over every qubit/gate each time dominated estimation cost.
        """
        agg = getattr(self, "_aggregates", None)
        if agg is None:
            nm = self.noise_model
            if nm.gates_2q:
                dur_2q = float(
                    np.mean([g.duration_ns for g in nm.gates_2q.values()])
                )
            else:
                dur_2q = nm.default_2q.duration_ns
            agg = CalibrationAggregates(
                t1_us=float(np.mean([q.t1_us for q in nm.qubits])),
                t2_us=float(np.mean([q.t2_us for q in nm.qubits])),
                error_2q=nm.mean_gate_error_2q(),
                error_1q=nm.mean_gate_error_1q(),
                readout_error=nm.mean_readout_error(),
                duration_2q_ns=dur_2q,
            )
            self._aggregates = agg
        return agg

    def summary(self) -> dict:
        nm = self.noise_model
        return {
            "qpu": self.qpu_name,
            "cycle": self.cycle,
            "quality_factor": round(self.quality_factor, 4),
            "mean_t1_us": round(float(np.mean([q.t1_us for q in nm.qubits])), 2),
            "mean_t2_us": round(float(np.mean([q.t2_us for q in nm.qubits])), 2),
            "mean_error_1q": nm.mean_gate_error_1q(),
            "mean_error_2q": nm.mean_gate_error_2q(),
            "mean_readout_error": nm.mean_readout_error(),
        }


@dataclass(frozen=True)
class CalibrationAggregates:
    """Fleet-wide scalar view of one calibration snapshot."""

    t1_us: float
    t2_us: float
    error_2q: float
    error_1q: float
    readout_error: float
    duration_2q_ns: float


def sample_calibration(
    model: QPUModel,
    qpu_name: str,
    quality_factor: float,
    cycle: int,
    rng: np.random.Generator,
    *,
    timestamp: float = 0.0,
    qubit_spread: float = 0.35,
) -> CalibrationData:
    """Draw a full calibration snapshot.

    ``quality_factor`` scales error rates multiplicatively (>1 = worse) and
    divides coherence times. Per-qubit/per-gate dispersion is lognormal with
    ``qubit_spread`` sigma, mirroring the heavy-tailed spread of real
    calibration data.
    """
    if quality_factor <= 0:
        raise ValueError("quality_factor must be positive")
    n = model.num_qubits

    def lognorm(size: int) -> np.ndarray:
        return np.exp(rng.normal(0.0, qubit_spread, size))

    t1 = model.base_t1_us / quality_factor * lognorm(n)
    t2_raw = model.base_t2_us / quality_factor * lognorm(n)
    # Physical constraint: T2 <= 2 T1.
    t2 = np.minimum(t2_raw, 2.0 * t1 * 0.98)
    ro = np.clip(model.base_readout_error * quality_factor * lognorm(n), 1e-4, 0.4)
    asym = rng.uniform(0.8, 1.6, n)  # P(1|0) vs P(0|1) asymmetry

    qubits = [
        QubitNoise(
            t1_us=float(max(5.0, t1[i])),
            t2_us=float(max(3.0, t2[i])),
            readout_p01=float(min(0.45, ro[i] / asym[i])),
            readout_p10=float(min(0.45, ro[i] * asym[i])),
        )
        for i in range(n)
    ]

    e1 = np.clip(model.base_error_1q * quality_factor * lognorm(n), 1e-6, 0.05)
    gates_1q: dict[tuple[str, int], GateNoise] = {}
    for q in range(n):
        for gate_name in ("sx", "x"):
            gates_1q[(gate_name, q)] = GateNoise(
                float(e1[q]), model.duration_1q_ns
            )

    edges = list(model.coupling)
    e2 = np.clip(
        model.base_error_2q * quality_factor * lognorm(len(edges)), 1e-5, 0.25
    )
    # Device-level gate-speed factor: control electronics and pulse
    # calibrations make whole devices systematically faster or slower,
    # which is what differentiates execution-time estimates across QPUs.
    speed = float(rng.uniform(0.75, 1.35))
    dur2 = model.duration_2q_ns * speed * rng.uniform(0.9, 1.15, len(edges))
    gates_2q = {
        (min(a, b), max(a, b)): GateNoise(float(e2[i]), float(dur2[i]))
        for i, (a, b) in enumerate(edges)
    }

    nm = NoiseModel(
        qubits=qubits,
        gates_1q=gates_1q,
        gates_2q=gates_2q,
        default_1q=GateNoise(
            float(model.base_error_1q * quality_factor), model.duration_1q_ns
        ),
        default_2q=GateNoise(
            float(model.base_error_2q * quality_factor),
            model.duration_2q_ns * speed,
        ),
        readout_duration_ns=model.readout_duration_ns,
    )
    return CalibrationData(
        qpu_name=qpu_name,
        model_name=model.name,
        cycle=cycle,
        timestamp=timestamp,
        noise_model=nm,
        quality_factor=quality_factor,
    )


def average_calibrations(
    calibrations: list[CalibrationData], template_name: str
) -> CalibrationData:
    """Average several same-model calibrations into a template snapshot (§6).

    Template QPUs keep the model's coupling map and basis gates but use the
    fleet-average of every noise figure.
    """
    if not calibrations:
        raise ValueError("need at least one calibration to average")
    model_names = {c.model_name for c in calibrations}
    if len(model_names) != 1:
        raise ValueError(f"cannot average across models: {model_names}")
    n = calibrations[0].noise_model.num_qubits
    mats = [c.noise_model for c in calibrations]

    qubits = []
    for q in range(n):
        qubits.append(
            QubitNoise(
                t1_us=float(np.mean([m.qubits[q].t1_us for m in mats])),
                t2_us=float(np.mean([m.qubits[q].t2_us for m in mats])),
                readout_p01=float(np.mean([m.qubits[q].readout_p01 for m in mats])),
                readout_p10=float(np.mean([m.qubits[q].readout_p10 for m in mats])),
            )
        )
    keys_1q = set().union(*(m.gates_1q.keys() for m in mats))
    gates_1q = {
        k: GateNoise(
            float(np.mean([m.gates_1q[k].error for m in mats if k in m.gates_1q])),
            float(
                np.mean([m.gates_1q[k].duration_ns for m in mats if k in m.gates_1q])
            ),
        )
        for k in keys_1q
    }
    keys_2q = set().union(*(m.gates_2q.keys() for m in mats))
    gates_2q = {
        k: GateNoise(
            float(np.mean([m.gates_2q[k].error for m in mats if k in m.gates_2q])),
            float(
                np.mean([m.gates_2q[k].duration_ns for m in mats if k in m.gates_2q])
            ),
        )
        for k in keys_2q
    }
    nm = NoiseModel(
        qubits=qubits,
        gates_1q=gates_1q,
        gates_2q=gates_2q,
        default_1q=mats[0].default_1q,
        default_2q=mats[0].default_2q,
        readout_duration_ns=mats[0].readout_duration_ns,
    )
    return CalibrationData(
        qpu_name=template_name,
        model_name=calibrations[0].model_name,
        cycle=calibrations[0].cycle,
        timestamp=calibrations[0].timestamp,
        noise_model=nm,
        quality_factor=float(np.mean([c.quality_factor for c in calibrations])),
    )
