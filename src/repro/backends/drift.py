"""Temporal calibration drift.

QPU noise fluctuates unpredictably between calibration cycles (§2.1, §3).
We model each device's quality factor as a mean-reverting Ornstein-Uhlenbeck
process sampled once per calibration cycle: devices wander around their
intrinsic quality, occasionally crossing each other — which is what makes
calibration-crossover rescheduling (§7) matter.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OUDrift"]


class OUDrift:
    """Discrete-time Ornstein-Uhlenbeck process on log quality factor.

    ``log q_{t+1} = log q_t + theta (log q_mean - log q_t) + sigma eps``

    Working in log space keeps quality factors positive and makes the
    stationary distribution lognormal, matching the heavy-tailed dispersion
    of real calibration histories.
    """

    def __init__(
        self,
        mean_quality: float,
        *,
        theta: float = 0.35,
        sigma: float = 0.12,
        rng: np.random.Generator | None = None,
    ) -> None:
        if mean_quality <= 0:
            raise ValueError("mean_quality must be positive")
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must be in (0, 1]")
        self.log_mean = float(np.log(mean_quality))
        self.theta = theta
        self.sigma = sigma
        # Deterministic by default: an injected Generator keys the drift
        # stream; the fallback is a fixed seed, never ambient OS entropy.
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._log_q = self.log_mean

    @property
    def quality(self) -> float:
        return float(np.exp(self._log_q))

    def step(self) -> float:
        """Advance one calibration cycle; returns the new quality factor."""
        eps = self._rng.normal()
        self._log_q += self.theta * (self.log_mean - self._log_q) + self.sigma * eps
        return self.quality

    def trajectory(self, cycles: int) -> np.ndarray:
        """Quality factors over ``cycles`` future cycles (advances state)."""
        return np.array([self.step() for _ in range(cycles)])
