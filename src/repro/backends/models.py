"""QPU model (processor-type) definitions.

A *model* is what the paper calls a template's architecture: qubit count,
coupling map, basis gate set, and baseline noise figures. IBM offers only a
few models at a time (§6: "up to three"), which is exactly why template-QPU
estimation scales.

The 27-qubit Falcon coupling map is the real IBM heavy-hex layout used by
cairo/hanoi/kolkata/mumbai/algiers/auckland. Larger models use a generated
heavy-hex-like lattice (degree <= 3), preserving the sparsity and routing
behaviour of the real devices.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

__all__ = ["QPUModel", "MODELS", "falcon27_coupling", "heavy_hex_like", "get_model"]


def falcon27_coupling() -> list[tuple[int, int]]:
    """The IBM 27-qubit Falcon heavy-hex coupling map."""
    return [
        (0, 1), (1, 2), (2, 3), (3, 5), (4, 1), (5, 8), (6, 7), (7, 10),
        (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15), (13, 14),
        (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20), (19, 22),
        (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
    ]


def falcon7_coupling() -> list[tuple[int, int]]:
    """7-qubit Falcon (H-shape) coupling: lagos/nairobi layout."""
    return [(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)]


def falcon16_coupling() -> list[tuple[int, int]]:
    """16-qubit Falcon (guadalupe) heavy-hex coupling."""
    return [
        (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
        (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
        (13, 14),
    ]


def heavy_hex_like(num_qubits: int) -> list[tuple[int, int]]:
    """Heavy-hex-flavoured lattice for synthetic large models.

    Two parallel chains with sparse rungs every 4 qubits: every vertex has
    degree <= 3 and the diameter grows like the real heavy-hex lattice, so
    routing overheads behave comparably.
    """
    if num_qubits < 4:
        return [(i, i + 1) for i in range(num_qubits - 1)]
    half = num_qubits // 2
    edges = [(i, i + 1) for i in range(half - 1)]
    edges += [(half + i, half + i + 1) for i in range(num_qubits - half - 1)]
    for i in range(0, half, 4):
        j = half + i
        if j < num_qubits:
            edges.append((i, j))
    return edges


@dataclass(frozen=True)
class QPUModel:
    """Static architecture description of a processor type."""

    name: str
    num_qubits: int
    coupling: tuple[tuple[int, int], ...]
    basis_gates: tuple[str, ...] = ("rz", "sx", "x", "cx")
    # Baseline noise figures the calibration sampler perturbs:
    base_t1_us: float = 150.0
    base_t2_us: float = 110.0
    base_error_1q: float = 2.5e-4
    base_error_2q: float = 8.5e-3
    base_readout_error: float = 1.5e-2
    duration_1q_ns: float = 35.0
    duration_2q_ns: float = 320.0
    readout_duration_ns: float = 780.0
    price_per_hour: float = 4500.0  # Table 1: QPU-hour 3000-6000 $

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.num_qubits))
        g.add_edges_from(self.coupling)
        return g

    def degree_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for _, d in self.graph().degree():
            hist[d] = hist.get(d, 0) + 1
        return hist


MODELS: dict[str, QPUModel] = {
    "falcon_r5_27": QPUModel(
        name="falcon_r5_27",
        num_qubits=27,
        coupling=tuple(falcon27_coupling()),
    ),
    "falcon_r5_16": QPUModel(
        name="falcon_r5_16",
        num_qubits=16,
        coupling=tuple(falcon16_coupling()),
        base_error_2q=9.5e-3,
    ),
    "falcon_r5_7": QPUModel(
        name="falcon_r5_7",
        num_qubits=7,
        coupling=tuple(falcon7_coupling()),
        base_error_2q=9.0e-3,
        price_per_hour=3200.0,
    ),
    "eagle_r3_127": QPUModel(
        name="eagle_r3_127",
        num_qubits=127,
        coupling=tuple(heavy_hex_like(127)),
        base_t1_us=220.0,
        base_t2_us=140.0,
        base_error_2q=7.5e-3,
        price_per_hour=6000.0,
    ),
}


def get_model(name: str) -> QPUModel:
    if name not in MODELS:
        raise KeyError(f"unknown QPU model {name!r}; available: {sorted(MODELS)}")
    return MODELS[name]
