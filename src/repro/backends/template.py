"""Template QPUs (§6).

A template QPU adopts the basis gate set and coupling map of a QPU *model*
but carries the **average** calibration of all fleet devices of that model.
The resource estimator transpiles against templates — one per model rather
than one per device — which is what makes estimation scale with models
(a handful) instead of devices.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulation.noise import NoiseModel
from .calibration import CalibrationData, average_calibrations
from .models import QPUModel, get_model
from .qpu import QPU

__all__ = ["TemplateQPU", "build_templates"]


@dataclass
class TemplateQPU:
    """Model-average pseudo-device used for estimation."""

    model: QPUModel
    calibration: CalibrationData
    member_names: tuple[str, ...]

    @property
    def name(self) -> str:
        return f"template_{self.model.name}"

    @property
    def num_qubits(self) -> int:
        return self.model.num_qubits

    @property
    def basis_gates(self) -> tuple[str, ...]:
        return self.model.basis_gates

    @property
    def coupling(self) -> tuple[tuple[int, int], ...]:
        return self.model.coupling

    @property
    def noise_model(self) -> NoiseModel:
        return self.calibration.noise_model


def build_templates(fleet: list[QPU]) -> dict[str, TemplateQPU]:
    """Group ``fleet`` by model and average each group's calibration.

    Returns ``{model_name: TemplateQPU}``. Call again after calibration
    cycles to refresh the averages.
    """
    by_model: dict[str, list[QPU]] = {}
    for qpu in fleet:
        by_model.setdefault(qpu.model.name, []).append(qpu)
    templates: dict[str, TemplateQPU] = {}
    for model_name, members in by_model.items():
        model = get_model(model_name)
        avg = average_calibrations(
            [m.calibration for m in members], f"template_{model_name}"
        )
        templates[model_name] = TemplateQPU(
            model=model,
            calibration=avg,
            member_names=tuple(m.name for m in members),
        )
    return templates
