"""QPU models, calibration data with temporal drift, the synthetic fleet,
and template QPUs for scalable estimation."""

from .calibration import (
    CalibrationData,
    average_calibrations,
    sample_calibration,
)
from .drift import OUDrift
from .fleet import FLEET_SPEC, default_fleet, fleet_of_size, make_fleet
from .models import (
    MODELS,
    QPUModel,
    falcon27_coupling,
    get_model,
    heavy_hex_like,
)
from .qpu import QPU
from .template import TemplateQPU, build_templates

__all__ = [
    "MODELS",
    "QPUModel",
    "falcon27_coupling",
    "get_model",
    "heavy_hex_like",
    "CalibrationData",
    "average_calibrations",
    "sample_calibration",
    "OUDrift",
    "QPU",
    "FLEET_SPEC",
    "default_fleet",
    "fleet_of_size",
    "make_fleet",
    "TemplateQPU",
    "build_templates",
]
