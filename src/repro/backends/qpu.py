"""QPU device abstraction: a model instance with live calibration state."""

from __future__ import annotations

import numpy as np

from ..simulation.noise import NoiseModel
from .calibration import CalibrationData, sample_calibration
from .drift import OUDrift
from .models import QPUModel

__all__ = ["QPU"]


class QPU:
    """A named quantum device: static architecture + drifting calibration.

    Parameters
    ----------
    name:
        Device name (e.g. ``"ibm_auckland"``-style short names).
    model:
        The :class:`QPUModel` architecture.
    quality:
        Intrinsic mean quality factor; < 1 is better than the model
        baseline, > 1 worse. Drives the Fig. 2(b) spatial variance.
    seed:
        Seeds both calibration sampling and the drift process.
    """

    def __init__(
        self,
        name: str,
        model: QPUModel,
        *,
        quality: float = 1.0,
        seed: int | None = None,
        calibration_period_s: float = 24 * 3600.0,
    ) -> None:
        self.name = name
        self.model = model
        self.calibration_period_s = calibration_period_s
        self._rng = np.random.default_rng(seed)
        self._drift = OUDrift(quality, rng=self._rng)
        self._cycle = 0
        self.calibration: CalibrationData = sample_calibration(
            model, name, self._drift.quality, cycle=0, rng=self._rng
        )
        self.online = True

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self.model.num_qubits

    @property
    def basis_gates(self) -> tuple[str, ...]:
        return self.model.basis_gates

    @property
    def coupling(self) -> tuple[tuple[int, int], ...]:
        return self.model.coupling

    @property
    def noise_model(self) -> NoiseModel:
        return self.calibration.noise_model

    @property
    def cycle(self) -> int:
        return self._cycle

    def next_calibration_time(self, now: float) -> float:
        """Wall-clock time of the next calibration boundary after ``now``."""
        k = int(now // self.calibration_period_s) + 1
        return k * self.calibration_period_s

    # ------------------------------------------------------------------
    def recalibrate(self, timestamp: float | None = None) -> CalibrationData:
        """Advance one calibration cycle: drift quality, resample noise."""
        self._cycle += 1
        quality = self._drift.step()
        self.calibration = sample_calibration(
            self.model,
            self.name,
            quality,
            cycle=self._cycle,
            rng=self._rng,
            timestamp=timestamp if timestamp is not None else self._cycle
            * self.calibration_period_s,
        )
        return self.calibration

    def __repr__(self) -> str:
        return (
            f"QPU({self.name!r}, model={self.model.name}, "
            f"qubits={self.num_qubits}, cycle={self._cycle}, "
            f"q={self.calibration.quality_factor:.3f})"
        )
