"""The synthetic IBM-like QPU fleet.

The paper's experiments use the freely available IBM devices of late 2023:
eight QPUs spanning 7-, 16-, and 27-qubit Falcon models. We reproduce that
fleet with per-device intrinsic quality factors tuned so a 12-qubit GHZ
probe lands near the Fig. 2(b) fidelities (auckland ~0.72 best, algiers
~0.52 worst, ~38 % spread).
"""

from __future__ import annotations

import numpy as np

from .models import get_model
from .qpu import QPU

__all__ = ["default_fleet", "make_fleet", "FLEET_SPEC", "fleet_of_size"]

#: (name, model, intrinsic quality factor). Lower quality factor = better.
FLEET_SPEC: list[tuple[str, str, float]] = [
    ("auckland", "falcon_r5_27", 0.62),
    ("hanoi", "falcon_r5_27", 0.80),
    ("cairo", "falcon_r5_27", 0.95),
    ("kolkata", "falcon_r5_27", 1.15),
    ("mumbai", "falcon_r5_27", 1.15),
    ("algiers", "falcon_r5_27", 1.35),
    ("guadalupe", "falcon_r5_16", 1.00),
    ("lagos", "falcon_r5_7", 0.85),
    ("nairobi", "falcon_r5_7", 1.10),
]


def default_fleet(seed: int = 7, *, names: list[str] | None = None) -> list[QPU]:
    """Instantiate the named default fleet (8-9 devices).

    ``names`` filters to a subset, preserving FLEET_SPEC order.
    """
    rng = np.random.default_rng(seed)
    fleet = []
    for name, model_name, quality in FLEET_SPEC:
        if names is not None and name not in names:
            continue
        fleet.append(
            QPU(
                name,
                get_model(model_name),
                quality=quality,
                seed=int(rng.integers(2**31)),
            )
        )
    return fleet


def make_fleet(
    spec: list[tuple[str, str, float]], seed: int = 7
) -> list[QPU]:
    """Instantiate a fleet from an explicit (name, model, quality) spec."""
    rng = np.random.default_rng(seed)
    return [
        QPU(name, get_model(model), quality=q, seed=int(rng.integers(2**31)))
        for name, model, q in spec
    ]


def fleet_of_size(num_qpus: int, seed: int = 7) -> list[QPU]:
    """A scalability fleet of ``num_qpus`` 27-qubit devices (Fig. 9a/c).

    Quality factors are spread log-uniformly over [0.6, 1.4] so the fleet
    always contains both hot and cold devices regardless of size.
    """
    if num_qpus < 1:
        raise ValueError("need at least one QPU")
    rng = np.random.default_rng(seed)
    qualities = np.exp(np.linspace(np.log(0.62), np.log(1.38), num_qpus))
    fleet = []
    for i in range(num_qpus):
        fleet.append(
            QPU(
                f"qpu{i:02d}",
                get_model("falcon_r5_27"),
                quality=float(qualities[i]),
                seed=int(rng.integers(2**31)),
            )
        )
    return fleet
