"""Qonductor reproduction: a cloud orchestrator for hybrid
quantum-classical computing (SC '25).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.circuits` — circuit IR
* :mod:`repro.workloads` — benchmark circuit library
* :mod:`repro.simulation` — ideal/noisy simulators, fidelity metrics
* :mod:`repro.backends` — QPU models, calibration, the synthetic fleet
* :mod:`repro.transpiler` — basis translation, layout, routing
* :mod:`repro.mitigation` — ZNE/REM/DD/twirling/PEC/circuit knitting
* :mod:`repro.ml` — regression stack
* :mod:`repro.moo` — NSGA-II and MCDM
* :mod:`repro.estimator` — the hybrid resource estimator (§6)
* :mod:`repro.scheduler` — the hybrid scheduler (§7)
* :mod:`repro.cloud` — the quantum-cloud simulator (§8.2)
* :mod:`repro.orchestrator` — control/data plane and the Qonductor API
* :mod:`repro.experiments` — figure/table regeneration harness
"""

from .circuits import Circuit, Gate
from .orchestrator import Qonductor

__version__ = "1.0.0"

__all__ = ["Circuit", "Gate", "Qonductor", "__version__"]
