"""Figure 9: scheduler scalability (§8.5, RQ5).

(a) mean JCT vs cluster size; (b) pending-queue stability vs workload;
(c) per-stage scheduler runtime vs cluster size.
"""

from __future__ import annotations

import numpy as np

from ..backends.fleet import fleet_of_size
from ..cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
)
from ..cloud.job import QuantumJob
from ..scheduler import QonductorScheduler, SchedulingTrigger
from ..workloads import WorkloadSampler
from .common import trained_estimator

__all__ = ["fig9a_cluster_scaling", "fig9b_load_scaling", "fig9c_stage_runtimes"]


def _run_sim(
    num_qpus: int,
    rate: float,
    duration: float,
    seed: int,
    *,
    num_shards: int = 1,
    balancer: str = "least_loaded",
):
    estimator = trained_estimator(seed=7)
    fleet = fleet_of_size(num_qpus, seed=7)
    gen = LoadGenerator(mean_rate_per_hour=rate, seed=seed)
    sim = CloudSimulator.sharded(
        fleet,
        QonductorScheduler(
            estimator.cached(), preference="balanced", seed=seed,
            max_generations=20,
        ),
        num_shards=num_shards,
        balancer=balancer,
        execution_model=ExecutionModel(seed=11),
        trigger_factory=lambda i: SchedulingTrigger(),
        config=SimulationConfig(duration_seconds=duration, seed=seed),
    )
    # Streaming pull keeps memory flat at any rate x duration product.
    return sim.run(gen.iter_arrivals(duration))


def fig9a_cluster_scaling(
    *,
    sizes=(4, 8, 16),
    rate_per_hour: float = 1500.0,
    scale: float = 0.15,
    seed: int = 5,
) -> dict:
    """Mean JCT vs QPU count. Paper: 4->8 improves 52.8 %, 4->16 by 81 %."""
    duration = 3600.0 * scale
    jcts = {}
    for size in sizes:
        metrics = _run_sim(size, rate_per_hour, duration, seed)
        jcts[size] = metrics.summary()["final_mean_jct"]
    base = jcts[sizes[0]]
    return {
        "paper": {"improvement_4_to_8_pct": 52.8, "improvement_4_to_16_pct": 81.0},
        "measured": {
            "mean_jct_by_size": {k: round(v, 1) for k, v in jcts.items()},
            "improvement_4_to_8_pct": 100.0 * (1.0 - jcts[sizes[1]] / base),
            "improvement_4_to_16_pct": 100.0 * (1.0 - jcts[sizes[-1]] / base),
        },
    }


def fig9b_load_scaling(
    *,
    rates=(1500.0, 3000.0, 4500.0),
    num_qpus: int = 8,
    scale: float = 0.15,
    seed: int = 5,
    num_shards: int = 1,
    balancer: str = "least_loaded",
) -> dict:
    """Scheduler queue size vs workload. Paper: stable up to 3x IBM load
    (queue oscillates with the trigger instead of growing unboundedly)."""
    duration = 3600.0 * scale
    result = {}
    for rate in rates:
        metrics = _run_sim(
            num_qpus, rate, duration, seed,
            num_shards=num_shards, balancer=balancer,
        )
        _, values = metrics.scheduler_queue_size.as_arrays()
        # Stability criterion: the queue is drained (returns near zero)
        # repeatedly rather than trending upward.
        drained = int(np.sum(values <= 5))
        result[int(rate)] = {
            "max_queue": int(values.max()) if len(values) else 0,
            "mean_queue": float(values.mean()) if len(values) else 0.0,
            "samples_drained": drained,
            "stable": bool(drained >= max(1, len(values) // 4)),
        }
    return {
        "paper": {"stable_up_to_rate": 4500},
        "measured": {
            "per_rate": result,
            "stable_up_to_rate": max(
                (r for r, v in result.items() if v["stable"]), default=0
            ),
        },
    }


def fig9c_stage_runtimes(
    *,
    sizes=(4, 8, 16),
    jobs: int = 100,
    seed: int = 5,
) -> dict:
    """Per-stage runtimes vs cluster size.

    Paper: only job pre-processing grows (more per-QPU estimations);
    optimization and selection stay ~constant.
    """
    estimator = trained_estimator(seed=7)
    sampler = WorkloadSampler(seed=seed, max_qubits=27, mean_qubits=6, std_qubits=3)
    batch = [
        QuantumJob.from_circuit(
            s.circuit, shots=s.shots,
            mitigation="zne+rem" if s.uses_mitigation else "none",
            keep_circuit=False,
        )
        for s in sampler.sample_many(jobs)
    ]
    stages = {}
    for size in sizes:
        fleet = fleet_of_size(size, seed=7)
        scheduler = QonductorScheduler(
            estimator.cached(), seed=seed, max_generations=30
        )
        schedule = scheduler.schedule(batch, fleet, {q.name: 0.0 for q in fleet})
        stages[size] = {k: round(v, 4) for k, v in schedule.stage_seconds.items()}
    pre = [stages[s]["preprocess"] for s in sizes]
    opt = [stages[s]["optimize"] for s in sizes]
    return {
        "paper": {
            "preprocess_grows": True,
            "optimize_flat": True,
        },
        "measured": {
            "stage_seconds_by_size": stages,
            "preprocess_grows": bool(pre[-1] > pre[0]),
            # "Flat": optimization grows far slower than the 4x cluster growth.
            "optimize_flat": bool(opt[-1] < opt[0] * 2.5),
        },
    }
