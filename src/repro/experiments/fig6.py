"""Figure 6: end-to-end performance, Qonductor vs FCFS (§8.3).

Paper: one simulated hour at 1500 applications/hour on 8 QPUs —
fidelity within 3 %, completion times ~48 % lower, utilization ~66 %
higher.
"""

from __future__ import annotations

from ..cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
)
from ..scheduler import FCFSPolicy, QonductorScheduler, SchedulingTrigger
from .common import make_fleet, trained_estimator

__all__ = ["fig6_end_to_end"]


def fig6_end_to_end(
    *,
    scale: float = 0.25,
    rate_per_hour: float = 1500.0,
    seed: int = 5,
    num_shards: int = 1,
    balancer: str = "least_loaded",
) -> dict:
    """Run both policies on identical arrivals; compare the three metrics.

    ``num_shards`` > 1 partitions the fleet with per-shard schedulers and
    routes arrivals through ``balancer`` (the production configuration
    for large fleets; 1 shard reproduces the paper's setup exactly).
    """
    duration = 3600.0 * scale
    estimator = trained_estimator(seed=7)
    gen = LoadGenerator(mean_rate_per_hour=rate_per_hour, seed=seed)

    def run(policy_name: str):
        fleet = make_fleet(seed=7)
        apps = gen.generate(duration)  # same seed -> same arrivals
        em = ExecutionModel(seed=11)
        if policy_name == "qonductor":
            policy = QonductorScheduler(
                estimator.cached(), preference="balanced", seed=seed,
                max_generations=25,
            )
        else:
            policy = FCFSPolicy(estimator.cached())
        sim = CloudSimulator.sharded(
            fleet,
            policy,
            num_shards=num_shards,
            balancer=balancer,
            execution_model=em,
            trigger_factory=lambda i: SchedulingTrigger(
                queue_limit=100, interval_seconds=120
            ),
            config=SimulationConfig(duration_seconds=duration, seed=seed),
        )
        return sim.run(apps)

    m_qon = run("qonductor")
    m_fcfs = run("fcfs")
    s_qon, s_fcfs = m_qon.summary(), m_fcfs.summary()
    fid_drop_pct = 100.0 * (
        s_fcfs["mean_fidelity"] - s_qon["mean_fidelity"]
    ) / max(1e-9, s_fcfs["mean_fidelity"])
    jct_red_pct = 100.0 * (
        1.0 - s_qon["final_mean_jct"] / max(1e-9, s_fcfs["final_mean_jct"])
    )
    util_inc_pct = 100.0 * (
        s_qon["mean_utilization"] / max(1e-9, s_fcfs["mean_utilization"]) - 1.0
    )
    return {
        "paper": {
            "fidelity_drop_pct": 3.0,
            "jct_reduction_pct": 48.0,
            "utilization_increase_pct": 66.0,
        },
        "measured": {
            "fidelity_drop_pct": fid_drop_pct,
            "jct_reduction_pct": jct_red_pct,
            "utilization_increase_pct": util_inc_pct,
            "qonductor": {k: v for k, v in s_qon.items() if k != "per_qpu_busy_seconds"},
            "fcfs": {k: v for k, v in s_fcfs.items() if k != "per_qpu_busy_seconds"},
        },
        "series": {
            "qonductor_fidelity": m_qon.mean_fidelity.as_arrays(),
            "fcfs_fidelity": m_fcfs.mean_fidelity.as_arrays(),
            "qonductor_jct": m_qon.mean_completion_time.as_arrays(),
            "fcfs_jct": m_fcfs.mean_completion_time.as_arrays(),
            "qonductor_util": m_qon.mean_utilization.as_arrays(),
            "fcfs_util": m_fcfs.mean_utilization.as_arrays(),
        },
    }
