"""Table 1: IBM Cloud pricing and the classical-for-quantum trade."""

from __future__ import annotations

from ..estimator.cost import TABLE1_RATES, plan_cost

__all__ = ["table1_pricing"]


def table1_pricing() -> dict:
    """Check the cost model reproduces Table 1's orders of magnitude and
    the key claim: even high-end VM-hours cost two orders of magnitude
    less than QPU-hours."""
    qpu = TABLE1_RATES["qpu"]
    std = TABLE1_RATES["standard_vm"]
    high = TABLE1_RATES["highend_vm"]
    ratio = qpu.price_per_hour / high.price_per_hour
    # A worked example: 60 s of QPU + 120 s of classical mitigation
    mitigated = plan_cost(60.0, 120.0, classical_tier="highend_vm")
    # vs 3x the QPU time without mitigation for the same fidelity target.
    unmitigated = plan_cost(180.0, 0.0)
    return {
        "paper": {
            "qpu_per_hour_range": (3000, 6000),
            "highend_vm_per_hour_range": (10, 40),
            "standard_vm_per_hour_range": (1, 5),
            "qpu_vs_highend_orders_of_magnitude": 2,
        },
        "measured": {
            "qpu_per_hour": qpu.price_per_hour,
            "highend_vm_per_hour": high.price_per_hour,
            "standard_vm_per_hour": std.price_per_hour,
            "qpu_vs_highend_ratio": ratio,
            "qpu_vs_highend_orders_of_magnitude": int(
                len(str(int(ratio))) - 1
            ),
            "mitigated_plan_usd": round(mitigated, 2),
            "unmitigated_3x_qpu_usd": round(unmitigated, 2),
            "classical_trade_cheaper": mitigated < unmitigated,
        },
    }
