"""Experiment harness: one function per paper figure/table."""

from .fig10 import fig10a_exec_time, fig10b_priorities
from .fig2 import (
    fig2a_circuit_cutting,
    fig2b_spatial_variance,
    fig2c_load_imbalance,
)
from .fig6 import fig6_end_to_end
from .fig7 import fig7a_resource_plans, fig7bc_estimation_error
from .fig8 import fig8ab_tradeoff, fig8c_load_balance, run_scheduling_cycles
from .fig9 import (
    fig9a_cluster_scaling,
    fig9b_load_scaling,
    fig9c_stage_runtimes,
)
from .rebalance import rebalance_study
from .report import run_all
from .table1 import table1_pricing
from .tenant import tenant_study

__all__ = [
    "fig2a_circuit_cutting",
    "fig2b_spatial_variance",
    "fig2c_load_imbalance",
    "fig6_end_to_end",
    "fig7a_resource_plans",
    "fig7bc_estimation_error",
    "fig8ab_tradeoff",
    "fig8c_load_balance",
    "run_scheduling_cycles",
    "fig9a_cluster_scaling",
    "fig9b_load_scaling",
    "fig9c_stage_runtimes",
    "fig10a_exec_time",
    "fig10b_priorities",
    "table1_pricing",
    "rebalance_study",
    "run_all",
    "tenant_study",
]
