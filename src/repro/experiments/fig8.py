"""Figure 8: scheduler tradeoff and load balance (§8.5, RQ3).

(a, b) per-cycle Pareto min/max vs the chosen solution for JCT and
fidelity; (c) per-QPU total runtime at increasing workloads.
"""

from __future__ import annotations

import numpy as np

from ..cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
)
from ..cloud.job import QuantumJob
from ..scheduler import QonductorScheduler, SchedulingTrigger
from ..workloads import WorkloadSampler
from .common import make_fleet, trained_estimator

__all__ = ["fig8ab_tradeoff", "fig8c_load_balance", "run_scheduling_cycles"]


def run_scheduling_cycles(
    *,
    num_cycles: int = 15,
    jobs_per_cycle: int = 50,
    preference: str = "balanced",
    seed: int = 5,
    fleet=None,
    estimator=None,
):
    """Standalone scheduler loop: batch arrivals, schedule, dispatch.

    Returns the per-cycle :class:`QuantumSchedule` list. Queue waiting
    evolves realistically: dispatched jobs extend their QPU's backlog.
    """
    fleet = fleet or make_fleet(seed=7)
    estimator = estimator or trained_estimator(seed=7)
    scheduler = QonductorScheduler(
        estimator.cached(), preference=preference, seed=seed,
        max_generations=30,
    )
    sampler = WorkloadSampler(
        seed=seed, max_qubits=max(q.num_qubits for q in fleet),
        mean_qubits=6.0, std_qubits=3.0,
    )
    rng = np.random.default_rng(seed)
    waiting = {q.name: 0.0 for q in fleet}
    cycle_seconds = 120.0
    schedules = []
    for _ in range(num_cycles):
        jobs = []
        for sampled in sampler.sample_many(jobs_per_cycle):
            mitigation = "zne+rem" if sampled.uses_mitigation else "none"
            jobs.append(
                QuantumJob.from_circuit(
                    sampled.circuit,
                    shots=sampled.shots,
                    mitigation=mitigation,
                    keep_circuit=False,
                )
            )
        schedule = scheduler.schedule(jobs, fleet, waiting)
        schedules.append(schedule)
        # Advance queues: append dispatched work, drain one cycle of time.
        for dec in schedule.decisions:
            waiting[dec.qpu_name] = waiting.get(dec.qpu_name, 0.0) + dec.est_exec_seconds
        for name in waiting:
            waiting[name] = max(0.0, waiting[name] - cycle_seconds)
    return schedules


def fig8ab_tradeoff(
    *, num_cycles: int = 15, jobs_per_cycle: int = 50, seed: int = 5
) -> dict:
    """Chosen solution vs front extremes.

    Paper: chosen mean JCT 34 % below the front max (15.1 % above min);
    chosen fidelity only 4 % below the front max.
    """
    schedules = run_scheduling_cycles(
        num_cycles=num_cycles, jobs_per_cycle=jobs_per_cycle, seed=seed
    )
    jct_chosen, jct_min, jct_max = [], [], []
    fid_chosen, fid_min, fid_max = [], [], []
    for s in schedules:
        if len(s.front_F) == 0:
            continue
        jct_chosen.append(s.stats["mean_jct"])
        jct_min.append(s.front_min_jct)
        jct_max.append(s.front_max_jct)
        fid_chosen.append(s.stats["mean_fidelity"])
        fid_min.append(s.front_min_fidelity)
        fid_max.append(s.front_max_fidelity)
    jct_chosen, jct_max = np.array(jct_chosen), np.array(jct_max)
    jct_min = np.array(jct_min)
    fid_chosen, fid_max = np.array(fid_chosen), np.array(fid_max)
    return {
        "paper": {
            "jct_below_max_pct": 34.0,
            "jct_above_min_pct": 15.1,
            "fid_below_max_pct": 4.0,
        },
        "measured": {
            "jct_below_max_pct": 100.0 * float(np.mean(1.0 - jct_chosen / jct_max)),
            "jct_above_min_pct": 100.0
            * float(np.mean(jct_chosen / np.maximum(jct_min, 1e-9) - 1.0)),
            "fid_below_max_pct": 100.0 * float(np.mean(1.0 - fid_chosen / fid_max)),
            "num_cycles": len(jct_chosen),
        },
        "series": {
            "jct": (jct_min, jct_chosen, jct_max),
            "fidelity": (np.array(fid_min), fid_chosen, fid_max),
        },
    }


def fig8c_load_balance(
    *,
    rates=(1500.0, 3000.0, 4500.0),
    scale: float = 0.15,
    seed: int = 5,
    num_shards: int = 1,
    balancer: str = "least_loaded",
) -> dict:
    """Per-QPU total runtime; paper: <= 15.8 % load spread at 1500 j/h."""
    estimator = trained_estimator(seed=7)
    duration = 3600.0 * scale
    per_rate = {}
    for rate in rates:
        fleet = make_fleet(seed=7)
        gen = LoadGenerator(mean_rate_per_hour=rate, seed=seed)
        sim = CloudSimulator.sharded(
            fleet,
            QonductorScheduler(
                estimator.cached(), preference="balanced", seed=seed,
                max_generations=25,
            ),
            num_shards=num_shards,
            balancer=balancer,
            execution_model=ExecutionModel(seed=11),
            trigger_factory=lambda i: SchedulingTrigger(),
            config=SimulationConfig(duration_seconds=duration, seed=seed),
        )
        metrics = sim.run(gen.iter_arrivals(duration))
        loads = metrics.per_qpu_busy_seconds
        values = np.array(list(loads.values()))
        # The paper's spread is between comparable devices; our fleet mixes
        # 7/16/27-qubit models with different speeds, so we report the
        # spread over the six same-model 27q devices plus the overall CV.
        names_27q = [q.name for q in fleet if q.num_qubits == 27]
        v27 = np.array([loads[n] for n in names_27q])
        spread_27 = float((v27.max() - v27.min()) / max(v27.max(), 1e-9))
        cv = float(values.std() / max(1e-9, values.mean()))
        per_rate[int(rate)] = {
            "per_qpu_busy_seconds": {k: round(v, 1) for k, v in loads.items()},
            "load_spread_pct_27q": 100.0 * spread_27,
            "load_cv": cv,
            "qpus_used": int(np.sum(values > 0)),
        }
    return {
        "paper": {"load_spread_pct_at_1500": 15.8},
        "measured": {
            "load_spread_pct_at_1500": per_rate[int(rates[0])]["load_spread_pct_27q"],
            "per_rate": per_rate,
        },
    }
