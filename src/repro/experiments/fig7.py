"""Figure 7: resource-estimator evaluation (§8.4).

(a) Pareto front of resource plans for a 20-qubit QAOA max-cut circuit;
(b, c) CDFs of fidelity / execution-time estimation error, regression vs
the numerical baseline.
"""

from __future__ import annotations

import numpy as np

from ..circuits.metrics import compute_metrics
from ..cloud.execution import ExecutionModel
from ..cloud.job import QuantumJob
from ..estimator.numerical import NumericalEstimator
from ..mitigation.stack import STANDARD_STACKS
from ..workloads import WorkloadSampler, qaoa_ring_maxcut
from .common import make_fleet, trained_estimator

__all__ = ["fig7a_resource_plans", "fig7bc_estimation_error"]


def fig7a_resource_plans(*, num_qubits: int = 20, shots: int = 4000, seed: int = 7) -> dict:
    """Plan Pareto front for QAOA-20 max-cut.

    Paper: the second-highest-fidelity plan costs 34.6 % less runtime for
    only 3.6 % less fidelity.
    """
    estimator = trained_estimator(seed=7)
    circuit = qaoa_ring_maxcut(num_qubits, seed=seed)
    plans = estimator.generate_plans(
        compute_metrics(circuit), shots, num_plans=8
    )
    result = {
        "paper": {"second_best_runtime_saving_pct": 34.6, "second_best_fid_loss_pct": 3.6},
        "measured": {
            "num_plans": len(plans),
            "plans": [
                {
                    "mitigation": p.mitigation,
                    "tier": p.classical_tier,
                    "fidelity": round(p.est_fidelity, 3),
                    "total_seconds": round(p.est_total_seconds, 2),
                    "cost_usd": round(p.est_cost_usd, 2),
                }
                for p in plans
            ],
        },
    }
    if len(plans) >= 2:
        best, second = plans[0], plans[1]
        result["measured"]["second_best_runtime_saving_pct"] = 100.0 * (
            1.0 - second.est_total_seconds / best.est_total_seconds
        )
        result["measured"]["second_best_fid_loss_pct"] = 100.0 * (
            1.0 - second.est_fidelity / best.est_fidelity
        )
    return result


def fig7bc_estimation_error(
    *,
    num_jobs: int = 250,
    seed: int = 99,
) -> dict:
    """Held-out estimation-error CDFs.

    Paper: ~75 % of fidelity estimates within 0.1; 80 % of execution-time
    estimates within 500 ms; regression beats the numerical method, most
    visibly below 0.1 fidelity error.
    """
    estimator = trained_estimator(seed=7)
    fleet = make_fleet(seed=7)
    em = ExecutionModel(seed=31)
    numerical = NumericalEstimator(proxy=em.proxy)
    rng = np.random.default_rng(seed)
    sampler = WorkloadSampler(seed=seed, max_qubits=27, mean_qubits=8, std_qubits=4)
    names = list(STANDARD_STACKS)
    fid_err_reg, fid_err_num, run_err_reg, run_err_num = [], [], [], []
    for sampled in sampler.sample_many(num_jobs):
        mitigation = names[int(rng.integers(len(names)))]
        job = QuantumJob.from_circuit(
            sampled.circuit, shots=sampled.shots, mitigation=mitigation,
            keep_circuit=False,
        )
        candidates = [q for q in fleet if q.num_qubits >= job.num_qubits]
        if not candidates:
            continue
        qpu = candidates[int(rng.integers(len(candidates)))]
        real = em.execute(job, qpu.calibration, qpu.model, rng)
        f_reg, t_reg = estimator.estimate_for_qpu(job, qpu)
        f_num = numerical.estimate_fidelity(
            job.metrics, job.shots, mitigation, qpu.calibration, qpu.model
        )
        t_num = numerical.estimate_runtime(
            job.metrics, job.shots, mitigation, qpu.calibration, qpu.model
        )
        fid_err_reg.append(abs(f_reg - real.fidelity))
        fid_err_num.append(abs(f_num - real.fidelity))
        run_err_reg.append(abs(t_reg - real.quantum_seconds))
        run_err_num.append(abs(t_num - real.quantum_seconds))
    fid_err_reg = np.array(fid_err_reg)
    fid_err_num = np.array(fid_err_num)
    run_err_reg = np.array(run_err_reg)
    run_err_num = np.array(run_err_num)
    return {
        "paper": {
            "fid_err_lt_0.1_frac": 0.75,
            "runtime_err_lt_500ms_frac": 0.80,
            "regression_beats_numerical": True,
        },
        "measured": {
            "fid_err_lt_0.1_frac_regression": float(np.mean(fid_err_reg < 0.1)),
            "fid_err_lt_0.1_frac_numerical": float(np.mean(fid_err_num < 0.1)),
            "runtime_err_lt_500ms_frac_regression": float(np.mean(run_err_reg < 0.5)),
            "runtime_err_lt_500ms_frac_numerical": float(np.mean(run_err_num < 0.5)),
            "median_fid_err_regression": float(np.median(fid_err_reg)),
            "median_fid_err_numerical": float(np.median(fid_err_num)),
            "regression_beats_numerical": bool(
                np.mean(fid_err_reg < 0.1) >= np.mean(fid_err_num < 0.1)
            ),
            "n": int(len(fid_err_reg)),
        },
        "cdf_data": {
            "fid_err_regression": np.sort(fid_err_reg),
            "fid_err_numerical": np.sort(fid_err_num),
            "run_err_regression": np.sort(run_err_reg),
            "run_err_numerical": np.sort(run_err_num),
        },
    }
