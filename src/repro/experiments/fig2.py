"""Figure 2: the three motivating studies.

(a) circuit cutting's fidelity/runtime impact, (b) spatial performance
variance of a 12-qubit GHZ probe, (c) QPU queue imbalance over a week.
"""

from __future__ import annotations

import time

import numpy as np

from ..backends.fleet import default_fleet
from ..cloud.imbalance import simulate_queue_imbalance
from ..mitigation.cutting import cut_circuit, knit
from ..simulation import NoisySimulator, hellinger_fidelity, ideal_probabilities
from ..transpiler import Target, transpile
from ..workloads import clustered_circuit, ghz_linear

__all__ = ["fig2a_circuit_cutting", "fig2b_spatial_variance", "fig2c_load_imbalance"]


def fig2a_circuit_cutting(
    *,
    num_qubits: int = 12,
    depth: int = 4,
    trajectories: int = 16,
    seed: int = 3,
    qpu_name: str = "algiers",
) -> dict:
    """Cut a clustered circuit in half; measure fidelity and runtime ratios.

    Paper (24q): fidelity ~450x, quantum runtime ~12x, classical ~2.5x.
    Paper (12q): small fidelity gain, same runtime ordering. We run the
    12-qubit point (both halves remain simulable) on the noisiest device —
    the 24-qubit headline number needs the regime where the uncut fidelity
    collapses to ~0, which our analytic model confirms but a statevector
    cannot simulate.
    """
    fleet = default_fleet(seed=7)
    qpu = next(q for q in fleet if q.name == qpu_name)
    nm = qpu.noise_model
    circuit = clustered_circuit(
        num_qubits, depth=depth, num_clusters=2, bridge_gates=1, measure=False,
        seed=seed,
    )
    parts = circuit.metadata["clusters"]
    target = Target.from_backend(qpu)
    sim = NoisySimulator(nm, num_trajectories=trajectories, seed=seed)

    # --- uncut execution -------------------------------------------------
    ideal = ideal_probabilities(circuit)
    t0 = time.perf_counter()
    res_full = transpile(circuit, target)
    classical_uncut = time.perf_counter() - t0
    probs_full = _simulate_on_layout(sim, res_full, circuit.num_qubits)
    fid_uncut = hellinger_fidelity(probs_full, ideal)
    quantum_uncut = res_full.duration_ns / 1e9

    # --- cut execution ----------------------------------------------------
    # Classical work = QPD expansion + per-variant fragment transpilation
    # + reconstruction; quantum work = all fragment executions, run
    # sequentially on the same QPU (the paper's setup).
    t0 = time.perf_counter()
    plan = cut_circuit(circuit, parts[0], parts[1])
    classical_cut = time.perf_counter() - t0
    quantum_cut = 0.0
    pa, pb = [], []
    for va, vb in zip(plan.variants_a, plan.variants_b):
        t0 = time.perf_counter()
        ra = transpile(va, target)
        rb = transpile(vb, target)
        classical_cut += time.perf_counter() - t0
        quantum_cut += (ra.duration_ns + rb.duration_ns) / 1e9
        pa.append(_simulate_on_layout(sim, ra, va.num_qubits))
        pb.append(_simulate_on_layout(sim, rb, vb.num_qubits))
    t0 = time.perf_counter()
    knitted, knit_seconds = knit(plan, pa, pb)
    classical_cut += time.perf_counter() - t0
    fid_cut = hellinger_fidelity(knitted, ideal)

    err_uncut = max(1e-6, 1.0 - fid_uncut)
    err_cut = max(1e-6, 1.0 - fid_cut)
    return {
        "paper": {
            "fidelity_gain_24q": 450.0,
            "quantum_runtime_x_24q": 12.0,
            "classical_runtime_x_24q": 2.5,
        },
        "measured": {
            "num_qubits": num_qubits,
            "fid_uncut": fid_uncut,
            "fid_cut": fid_cut,
            "fidelity_gain_x": fid_cut / max(1e-9, fid_uncut),
            # Error-reduction factor is the scale-free analogue of the
            # paper's "relative fidelity increase" at high error rates.
            "error_reduction_x": err_uncut / err_cut,
            "quantum_runtime_x": quantum_cut / max(1e-9, quantum_uncut),
            "classical_runtime_x": classical_cut / max(1e-9, classical_uncut),
            "num_variants": plan.num_variants,
        },
    }


def _simulate_on_layout(sim, transpile_result, logical_width):
    """Noisy-simulate a transpiled fragment, marginalized to logical bits."""
    phys = transpile_result.circuit
    # Restrict to a compact register: remap physical->dense indices.
    used = sorted(phys.used_qubits())
    dense = {p: i for i, p in enumerate(used)}
    compact = phys.remap(dense, len(used))
    probs = sim.noisy_probabilities(compact)
    # Marginalize down to the logical qubits via the final mapping.
    fm = transpile_result.final_mapping
    n = len(used)
    out = np.zeros(2**logical_width)
    idx = np.arange(2**n)
    logical_idx = np.zeros(2**n, dtype=np.int64)
    for logical_q in range(logical_width):
        phys_q = dense[fm[logical_q]]
        logical_idx |= ((idx >> phys_q) & 1) << logical_q
    np.add.at(out, logical_idx, probs)
    return out


def fig2b_spatial_variance(*, trajectories: int = 24, seed: int = 11) -> dict:
    """12-qubit GHZ fidelity across the six 27-qubit QPUs.

    Paper: auckland best (~0.72), algiers worst (~0.52), 38 % spread.
    """
    names = ["cairo", "hanoi", "kolkata", "mumbai", "algiers", "auckland"]
    fleet = default_fleet(seed=7, names=names)
    probe = ghz_linear(12)
    ideal = ideal_probabilities(probe.without_measurements())
    fidelities: dict[str, float] = {}
    for qpu in fleet:
        res = transpile(probe, Target.from_backend(qpu))
        sim = NoisySimulator(
            qpu.noise_model, num_trajectories=trajectories, seed=seed
        )
        probs = _simulate_on_layout(sim, res, probe.num_qubits)
        fidelities[qpu.name] = hellinger_fidelity(probs, ideal)
    best = max(fidelities.values())
    worst = min(fidelities.values())
    return {
        "paper": {
            "auckland": 0.72,
            "algiers": 0.52,
            # "up to 38 % higher fidelity in auckland than algiers":
            "best_over_worst_pct": 38.0,
            "best_qpu": "auckland",
        },
        "measured": {
            **{k: round(v, 3) for k, v in fidelities.items()},
            "best_over_worst_pct": 100.0 * (best / worst - 1.0),
            "best_qpu": max(fidelities, key=fidelities.get),
        },
    }


def fig2c_load_imbalance(*, num_days: int = 7, seed: int = 5) -> dict:
    """Week-long queue-size trace; paper: up to ~100x spread across QPUs."""
    names = ["algiers", "cairo", "hanoi", "kolkata", "mumbai"]
    fleet = default_fleet(seed=9, names=names)
    trace = simulate_queue_imbalance(fleet, num_days=num_days, seed=seed)
    ratios = [trace.max_ratio(d) for d in range(num_days)]
    return {
        "paper": {"max_queue_ratio": 100.0},
        "measured": {
            "max_queue_ratio": float(max(ratios)),
            "daily_ratios": [round(r, 1) for r in ratios],
            "final_day_queues": {
                name: int(q)
                for name, q in zip(trace.qpu_names, trace.queue_sizes[-1])
            },
        },
    }
