"""Multi-tenant isolation study: one abusive tenant vs the front door.

Not a paper figure — an extension past the paper's single-tenant queue.
The scenario puts a bursty (MMPP) arrival stream shared by three normal
tenants and one flooding "abuser" onto a sharded fleet that also loses a
QPU to a mid-run flash outage, and asks the cloud-operator question: how
much of the abuser's load lands on the *premium* tenant's tail latency,
and how much of that does admission control claw back?

Three arms on matched seeds:

* ``no_abuser`` — the normal tenants alone, at the load they alone
  contribute.  The reference tail.
* ``admission_off`` — the abuser floods in with no front door; its queue
  depth is everyone's queue depth.
* ``admission_on`` — the same flood, but an :class:`AdmissionController`
  rate-limits the abuser and degrades its overflow to best effort, and
  the schedulers weight by tier.

The isolation claim (held as a CI perf gate in
``benchmarks/test_perf_simulator.py::test_perf_tenant_isolation``): with
admission on, the premium tenant's p95 JCT sits within a small margin of
the no-abuser reference, and Jain's fairness index improves over the
unprotected run.
"""

from __future__ import annotations

from ..backends.fleet import fleet_of_size
from ..cloud import (
    AdmissionController,
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
    TenantShare,
    ThresholdRebalancePolicy,
    abusive_mix,
    flash_outage,
)
from ..scheduler import BatchedFCFSPolicy, SchedulingTrigger
from .rebalance import skew_estimate

__all__ = ["tenant_scenario", "tenant_study"]

#: Share of the offered load the abuser contributes in the abusive arms.
_ABUSER_SHARE = 0.5


def _normal_only(mix: tuple[TenantShare, ...]) -> tuple[TenantShare, ...]:
    """The mix with the abuser removed and shares renormalized."""
    normal = [s for s in mix if s.tenant.tenant_id != "abuser"]
    total = sum(s.share for s in normal)
    return tuple(TenantShare(s.tenant, s.share / total) for s in normal)


def tenant_scenario(
    *,
    tenants: tuple[TenantShare, ...],
    admission: AdmissionController | None,
    rate_per_hour: float = 2400.0,
    duration_seconds: float = 1800.0,
    outage_start: float = 600.0,
    outage_seconds: float = 600.0,
    seed: int = 3,
) -> tuple[LoadGenerator, CloudSimulator]:
    """One configured arm of the abusive-tenant scenario.

    A bursty MMPP stream carrying ``tenants`` lands on a 3-shard fleet
    behind an optional admission front door, with tenant-aware threshold
    rebalancing and one QPU flashing out mid-run.  Returns the
    (load generator, simulator) pair; drive it with
    ``sim.run(gen.iter_arrivals(duration_seconds))``.
    """
    gen = LoadGenerator(
        mean_rate_per_hour=rate_per_hour,
        arrival_process="mmpp",
        diurnal=False,
        max_qubits=27,
        tenants=tenants,
        seed=seed,
    )
    sim = CloudSimulator.sharded(
        fleet_of_size(6, seed=7),
        BatchedFCFSPolicy(skew_estimate),
        num_shards=3,
        balancer="least_loaded",
        execution_model=ExecutionModel(seed=11),
        trigger_factory=lambda i: SchedulingTrigger(
            queue_limit=10_000, interval_seconds=60
        ),
        config=SimulationConfig(duration_seconds=duration_seconds, seed=seed),
        rebalance=ThresholdRebalancePolicy(
            min_gap=8, interval_seconds=30.0, tenant_aware=True
        ),
        availability=flash_outage(
            ["qpu01"], start=outage_start, duration_seconds=outage_seconds
        ),
        admission=admission,
    )
    return gen, sim


def tenant_study(
    *,
    rate_per_hour: float = 2400.0,
    duration_seconds: float = 1800.0,
    abuser_rate_limit_per_hour: float = 240.0,
    abuser_queue_quota: int = 10,
    seed: int = 3,
) -> dict:
    """No-abuser vs unprotected vs admission-controlled, matched seeds.

    Expected shape: the unprotected run lets the abuser's backlog queue
    ahead of everyone (premium p95 JCT inflates, Jain's index collapses
    toward 1/n); with the front door on, the abuser is rate-limited and
    degraded to best effort, pulling the premium tail back near the
    no-abuser reference and restoring fairness.
    """
    mix = abusive_mix(
        abuser_share=_ABUSER_SHARE,
        abuser_rate_limit_per_hour=abuser_rate_limit_per_hour,
        abuser_queue_quota=abuser_queue_quota,
        normal_slo_seconds=duration_seconds / 2,
    )

    def run(tenants, admission, rate):
        gen, sim = tenant_scenario(
            tenants=tenants,
            admission=admission,
            rate_per_hour=rate,
            duration_seconds=duration_seconds,
            seed=seed,
        )
        m = sim.run(gen.iter_arrivals(duration_seconds))
        report = m.tenant_report()
        tier0 = report["per_tier"][0]
        return {
            "tier0_p95_jct": tier0["p95_jct"],
            "tier0_mean_jct": tier0["mean_jct"],
            "tier0_completed": tier0["completed"],
            "jain_fairness": report["jain_fairness"],
            "admission_rejected": m.admission_rejected,
            "admission_degraded": m.admission_degraded,
            "slo_violations": sum(m.slo_violations.values()),
            "dispatched_jobs": m.dispatched_jobs,
            "per_tenant": report["per_tenant"],
        }

    arms = {
        # The abuser's traffic simply doesn't exist: normal tenants at
        # the offered load they alone contribute.
        "no_abuser": run(
            _normal_only(mix), None, rate_per_hour * (1.0 - _ABUSER_SHARE)
        ),
        "admission_off": run(mix, None, rate_per_hour),
        "admission_on": run(
            mix, AdmissionController(quota_action="degrade"), rate_per_hour
        ),
    }
    reference = arms["no_abuser"]["tier0_p95_jct"]
    protected = arms["admission_on"]["tier0_p95_jct"]
    return {
        "paper": {"single_tenant_queue": True},
        "scenario": {
            "rate_per_hour": rate_per_hour,
            "duration_seconds": duration_seconds,
            "abuser_share": _ABUSER_SHARE,
            "abuser_rate_limit_per_hour": abuser_rate_limit_per_hour,
            "abuser_queue_quota": abuser_queue_quota,
            "seed": seed,
        },
        "arms": arms,
        "isolation": {
            "tier0_p95_no_abuser": reference,
            "tier0_p95_admission_on": protected,
            "tier0_p95_degradation_pct": round(
                100.0 * (protected / reference - 1.0), 1
            ),
            "jain_admission_off": arms["admission_off"]["jain_fairness"],
            "jain_admission_on": arms["admission_on"]["jain_fairness"],
        },
    }
