"""Figure 10: execution-time tradeoff and MCDM priorities (§8.5, RQ3/RQ4).

(a) mean execution time of scheduled jobs: chosen vs front extremes;
(b) JCT-vs-fidelity picks under the three preference vectors.
"""

from __future__ import annotations

import numpy as np

from ..cloud.job import QuantumJob
from ..scheduler import QonductorScheduler
from ..workloads import WorkloadSampler
from .common import make_fleet, trained_estimator
from .fig8 import run_scheduling_cycles

__all__ = ["fig10a_exec_time", "fig10b_priorities"]


def fig10a_exec_time(
    *, num_cycles: int = 15, jobs_per_cycle: int = 50, seed: int = 5
) -> dict:
    """Chosen solution's mean execution time vs the front maximum.

    Paper: the chosen solution achieves 63.4 % lower execution time than
    the maximum Pareto front.
    """
    schedules = run_scheduling_cycles(
        num_cycles=num_cycles, jobs_per_cycle=jobs_per_cycle, seed=seed
    )
    chosen, fmin, fmax = [], [], []
    for s in schedules:
        if len(s.front_exec_seconds) == 0:
            continue
        chosen.append(s.stats["mean_exec_seconds"])
        fmin.append(float(s.front_exec_seconds.min()))
        fmax.append(float(s.front_exec_seconds.max()))
    chosen = np.array(chosen)
    fmax = np.array(fmax)
    return {
        "paper": {"exec_below_max_pct": 63.4},
        "measured": {
            "exec_below_max_pct": 100.0 * float(np.mean(1.0 - chosen / fmax)),
            "mean_exec_chosen": float(chosen.mean()),
            "mean_exec_front_max": float(fmax.mean()),
            "mean_exec_front_min": float(np.mean(fmin)),
        },
        "series": {"exec": (np.array(fmin), chosen, fmax)},
    }


def fig10b_priorities(*, num_jobs: int = 100, seed: int = 9) -> dict:
    """One batch of 100 random jobs under jct / balanced / fidelity priority.

    Paper: JCT priority gives 67 % lower JCT than fidelity priority;
    fidelity priority gives 16 % higher fidelity than JCT priority;
    balanced trades 6 % fidelity for 54 % lower JCT.
    """
    fleet = make_fleet(seed=7)
    estimator = trained_estimator(seed=7)
    sampler = WorkloadSampler(seed=seed, max_qubits=27, mean_qubits=6, std_qubits=3)
    jobs = [
        QuantumJob.from_circuit(
            s.circuit, shots=s.shots,
            mitigation="zne+rem" if s.uses_mitigation else "none",
            keep_circuit=False,
        )
        for s in sampler.sample_many(num_jobs)
    ]
    # A non-trivial starting queue landscape (hot best devices) so JCT
    # actually differentiates the preferences, as in the live system.
    waiting = {}
    for q in fleet:
        waiting[q.name] = 600.0 / max(0.3, q.calibration.quality_factor) ** 2
    picks = {}
    for pref in ("jct", "balanced", "fidelity"):
        scheduler = QonductorScheduler(
            estimator.cached(), preference=pref, seed=seed,
            max_generations=40, pop_size=80,
        )
        schedule = scheduler.schedule(list(jobs), fleet, dict(waiting))
        picks[pref] = {
            "mean_jct": schedule.stats["mean_jct"],
            "mean_fidelity": schedule.stats["mean_fidelity"],
        }
    jct_saving = 100.0 * (1.0 - picks["jct"]["mean_jct"] / picks["fidelity"]["mean_jct"])
    fid_gain = 100.0 * (
        picks["fidelity"]["mean_fidelity"] / picks["jct"]["mean_fidelity"] - 1.0
    )
    bal_jct = 100.0 * (
        1.0 - picks["balanced"]["mean_jct"] / picks["fidelity"]["mean_jct"]
    )
    bal_fid = 100.0 * (
        1.0 - picks["balanced"]["mean_fidelity"] / picks["fidelity"]["mean_fidelity"]
    )
    return {
        "paper": {
            "jct_priority_saving_pct": 67.0,
            "fidelity_priority_gain_pct": 16.0,
            "balanced_jct_saving_pct": 54.0,
            "balanced_fid_loss_pct": 6.0,
        },
        "measured": {
            "jct_priority_saving_pct": jct_saving,
            "fidelity_priority_gain_pct": fid_gain,
            "balanced_jct_saving_pct": bal_jct,
            "balanced_fid_loss_pct": bal_fid,
            "picks": {
                k: {kk: round(vv, 3) for kk, vv in v.items()}
                for k, v in picks.items()
            },
        },
    }
