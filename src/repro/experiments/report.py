"""Run every experiment and print a paper-vs-measured report.

``python -m repro.experiments.report [--scale S]`` regenerates the numbers
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json

from .common import print_table
from .fig10 import fig10a_exec_time, fig10b_priorities
from .fig2 import (
    fig2a_circuit_cutting,
    fig2b_spatial_variance,
    fig2c_load_imbalance,
)
from .fig6 import fig6_end_to_end
from .fig7 import fig7a_resource_plans, fig7bc_estimation_error
from .fig8 import fig8ab_tradeoff, fig8c_load_balance
from .fig9 import (
    fig9a_cluster_scaling,
    fig9b_load_scaling,
    fig9c_stage_runtimes,
)
from .table1 import table1_pricing

__all__ = ["run_all"]


def run_all(scale: float = 0.15, verbose: bool = True) -> dict:
    """Execute every experiment; returns {experiment_id: result}."""
    results = {}

    results["table1"] = table1_pricing()
    results["fig2a"] = fig2a_circuit_cutting()
    results["fig2b"] = fig2b_spatial_variance()
    results["fig2c"] = fig2c_load_imbalance()
    results["fig6"] = fig6_end_to_end(scale=scale)
    results["fig7a"] = fig7a_resource_plans()
    results["fig7bc"] = fig7bc_estimation_error()
    results["fig8ab"] = fig8ab_tradeoff()
    results["fig8c"] = fig8c_load_balance(scale=scale)
    results["fig9a"] = fig9a_cluster_scaling(scale=scale)
    results["fig9b"] = fig9b_load_scaling(scale=scale)
    results["fig9c"] = fig9c_stage_runtimes()
    results["fig10a"] = fig10a_exec_time()
    results["fig10b"] = fig10b_priorities()

    if verbose:
        from .ascii_plot import bar_chart, line_chart

        for exp_id, res in results.items():
            rows = []
            paper = res.get("paper", {})
            measured = res.get("measured", {})
            for key in paper:
                if key in measured:
                    rows.append((key, paper[key], measured[key]))
            print_table(exp_id, rows)
        series = results["fig6"].get("series", {})
        if series:
            print()
            print(line_chart(
                {"qonductor": series["qonductor_jct"], "fcfs": series["fcfs_jct"]},
                title="Fig 6b: mean completion time over simulated time [s]",
            ))
            print()
            print(line_chart(
                {"qonductor": series["qonductor_util"], "fcfs": series["fcfs_util"]},
                title="Fig 6c: mean QPU utilization over simulated time",
            ))
        loads = (
            results["fig8c"]["measured"]["per_rate"]
            .get(1500, {})
            .get("per_qpu_busy_seconds", {})
        )
        if loads:
            print()
            print(bar_chart(loads, title="Fig 8c: per-QPU busy seconds @1500 j/h"))
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--json", action="store_true", help="dump raw results")
    args = parser.parse_args()
    results = run_all(scale=args.scale)
    if args.json:
        def default(o):
            import numpy as np

            if isinstance(o, np.ndarray):
                return o.tolist()
            if isinstance(o, (np.floating, np.integer)):
                return o.item()
            return str(o)

        print(json.dumps(
            {k: {kk: vv for kk, vv in v.items() if kk not in ("series", "cdf_data")}
             for k, v in results.items()},
            indent=2,
            default=default,
        ))


if __name__ == "__main__":
    main()
