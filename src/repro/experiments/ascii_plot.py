"""Terminal-friendly figure rendering for experiment series data.

The experiment functions return raw (time, value) arrays under a
``series`` key; these helpers draw them as compact ASCII charts so the
report is inspectable without matplotlib (which is unavailable offline).
"""

from __future__ import annotations

import numpy as np

__all__ = ["line_chart", "bar_chart", "cdf_chart"]


def line_chart(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    *,
    width: int = 64,
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """Multi-series ASCII line chart; one glyph per series."""
    glyphs = "*o+x#@"
    all_x = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if len(all_x) == 0:
        return f"{title}\n  (no data)"
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for glyph, (_name, (xs, ys)) in zip(glyphs, series.items()):
        for x, y in zip(np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)):
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_lo:<10.3g}" + " " * (width - 20) + f"{x_hi:>10.3g}")
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(glyphs, series.keys())
    )
    lines.append(" " * 12 + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)


def bar_chart(
    values: dict[str, float], *, width: int = 48, title: str = ""
) -> str:
    """Horizontal ASCII bar chart (e.g. per-QPU load, Fig 8c)."""
    if not values:
        return f"{title}\n  (no data)"
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "█" * max(0, int(round(value / peak * width)))
        lines.append(f"  {name:<{label_w}s} │{bar:<{width}s}│ {value:.1f}")
    return "\n".join(lines)


def cdf_chart(
    samples: dict[str, np.ndarray],
    *,
    width: int = 64,
    height: int = 12,
    title: str = "",
) -> str:
    """CDF rendering for error distributions (Fig 7b/c)."""
    series = {}
    for name, data in samples.items():
        data = np.sort(np.asarray(data, dtype=float))
        probs = np.arange(1, len(data) + 1) / len(data)
        series[name] = (data, probs)
    return line_chart(series, width=width, height=height, title=title,
                      y_label="P(err <= x)")
