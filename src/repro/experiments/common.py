"""Shared experiment infrastructure.

Every experiment function returns a plain dict with a ``paper`` sub-dict
(the published numbers) and a ``measured`` sub-dict (ours), so benches can
print side-by-side rows and EXPERIMENTS.md can be regenerated from code.

Experiments accept a ``scale`` in (0, 1]: 1.0 reproduces the paper's
parameters; smaller values shrink durations/arrival counts proportionally
so the full suite runs in CI time. Trends are stable down to scale ~0.1.
"""

from __future__ import annotations

from ..backends.fleet import default_fleet
from ..backends.qpu import QPU
from ..cloud.execution import ExecutionModel
from ..estimator.estimator import ResourceEstimator

__all__ = [
    "EIGHT_QPU_NAMES",
    "make_fleet",
    "trained_estimator",
    "format_row",
    "print_table",
]

#: The paper's eight simulated devices (Fig. 8c's x-axis).
EIGHT_QPU_NAMES = [
    "auckland",
    "lagos",
    "cairo",
    "hanoi",
    "kolkata",
    "mumbai",
    "guadalupe",
    "nairobi",
]

_estimator_cache: dict[tuple, ResourceEstimator] = {}


def make_fleet(seed: int = 7, names: list[str] | None = None) -> list[QPU]:
    return default_fleet(seed=seed, names=names or EIGHT_QPU_NAMES)


def trained_estimator(
    *,
    seed: int = 7,
    names: tuple[str, ...] | None = None,
    num_records: int = 800,
    execution_model: ExecutionModel | None = None,
) -> ResourceEstimator:
    """Train (and cache per-process) the resource estimator for a fleet."""
    key = (seed, names or tuple(EIGHT_QPU_NAMES), num_records)
    if key not in _estimator_cache:
        fleet = make_fleet(seed=seed, names=list(names) if names else None)
        em = execution_model or ExecutionModel(seed=seed)
        _estimator_cache[key] = ResourceEstimator.train_for_fleet(
            fleet, num_records=num_records, execution_model=em, seed=seed
        )
    return _estimator_cache[key]


def format_row(label: str, paper, measured, unit: str = "") -> str:
    return f"  {label:<42s} paper={paper!s:>12s}  measured={measured!s:>12s} {unit}"


def print_table(title: str, rows: list[tuple]) -> None:
    print(f"\n=== {title} ===")
    for label, paper, measured, *rest in rows:
        unit = rest[0] if rest else ""
        if isinstance(paper, float):
            paper = round(paper, 3)
        if isinstance(measured, float):
            measured = round(measured, 3)
        print(format_row(label, paper, measured, unit))


def rel_change(new: float, old: float) -> float:
    """Relative change (new vs old), guarded against zero."""
    if abs(old) < 1e-12:
        return 0.0
    return (new - old) / old
