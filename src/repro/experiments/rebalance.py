"""Adaptive-fleet study: work stealing under skew and outages.

Not a paper figure — an extension past the paper's static, always-online
fleet.  The scenario stresses the two assumptions the paper's own
motivation undermines: a width-skewed arrival stream saturates the
tightest-fit shard while wider shards idle, and a mid-run flash outage
halves the hot shard's capacity.  The study compares static sharding
against the two work-stealing strategies on exactly the same stream and
outage schedule, reporting the paper's load-balance metric (busy-seconds
CV) and final mean JCT.
"""

from __future__ import annotations

from ..backends.fleet import make_fleet
from ..cloud import (
    CloudSimulator,
    ExecutionModel,
    LoadGenerator,
    SimulationConfig,
    StealHalfRebalancePolicy,
    ThresholdRebalancePolicy,
    flash_outage,
)
from ..scheduler import BatchedFCFSPolicy, SchedulingTrigger

__all__ = [
    "SKEW_FLEET_SPEC",
    "rebalance_study",
    "skew_estimate",
    "skew_scenario",
]

#: Wide/mid/narrow interleaved so a 3-shard `partition_fleet` deal is
#: width-segregated (shard 0 all 27q, shard 1 all 16q, shard 2 all 7q).
#: Shared with ``benchmarks/test_perf_simulator.py`` so the CI stress
#: scenario and this study never drift apart.
SKEW_FLEET_SPEC = [
    (name, model, quality)
    for i, quality in enumerate((0.7, 0.9, 1.1, 1.3))
    for name, model in (
        (f"wide{i:02d}", "falcon_r5_27"),
        (f"mid{i:02d}", "falcon_r5_16"),
        (f"narrow{i:02d}", "falcon_r5_7"),
    )
]


def skew_estimate(job, qpu):
    """Deterministic (width, device) synthetic estimates.

    Depends only on the job's width and the device name — never on job
    identity — so every arm scores every job identically and FCFS still
    spreads over a shard's devices (per-width best device varies)."""
    salt = (job.num_qubits * 131 + sum(qpu.name.encode())) % 97
    return 0.6 + 0.3 * salt / 97.0, 12.0


def skew_scenario(
    *,
    rebalance,
    duration_seconds: float = 3600.0,
    rate_per_hour: float = 1200.0,
    outage_start: float = 900.0,
    outage_seconds: float = 900.0,
    shots_grid: tuple[int, ...] | None = None,
    seed: int = 3,
) -> tuple[LoadGenerator, CloudSimulator]:
    """One configured arm of the skew + flash-outage scenario.

    The single builder behind both :func:`rebalance_study` and the CI
    stress benchmark (``test_perf_rebalance_skew_outage``): an 8-16q
    stream is qubit-fit onto the 3-shard wide/mid/narrow fleet (the mid
    shard fits every job tightest, so static routing saturates it while
    the wide shard idles) and two mid QPUs flash out mid-run.  Returns
    the (load generator, simulator) pair; drive it with
    ``sim.run(gen.iter_arrivals(duration_seconds))``.
    """
    gen = LoadGenerator(
        mean_rate_per_hour=rate_per_hour,
        diurnal=False,
        mean_qubits=12,
        std_qubits=2,
        min_qubits=8,
        max_qubits=16,
        shots_grid=shots_grid,
        seed=seed,
    )
    sim = CloudSimulator.sharded(
        make_fleet(SKEW_FLEET_SPEC, seed=7),
        BatchedFCFSPolicy(skew_estimate),
        num_shards=3,
        balancer="qubit_fit",
        execution_model=ExecutionModel(seed=11),
        trigger_factory=lambda i: SchedulingTrigger(
            queue_limit=10_000, interval_seconds=60
        ),
        config=SimulationConfig(duration_seconds=duration_seconds, seed=seed),
        rebalance=rebalance,
        availability=flash_outage(
            ["mid00", "mid01"],
            start=outage_start,
            duration_seconds=outage_seconds,
        ),
    )
    return gen, sim


def rebalance_study(
    *,
    rate_per_hour: float = 1200.0,
    duration_seconds: float = 3600.0,
    outage_start: float = 900.0,
    outage_seconds: float = 900.0,
    seed: int = 3,
) -> dict:
    """Static vs threshold vs steal-half sharding on a skewed stream.

    Expected shape: both work-stealing strategies migrate pending jobs
    from the saturated mid shard to the idle wide shard, cutting the
    fleet-wide busy-seconds CV and the final mean JCT versus the static
    partition.
    """

    def run(rebalance):
        gen, sim = skew_scenario(
            rebalance=rebalance,
            duration_seconds=duration_seconds,
            rate_per_hour=rate_per_hour,
            outage_start=outage_start,
            outage_seconds=outage_seconds,
            seed=seed,
        )
        return sim.run(gen.iter_arrivals(duration_seconds))

    arms = {
        "static": None,
        "threshold": ThresholdRebalancePolicy(
            min_gap=8, interval_seconds=30.0
        ),
        "steal_half": StealHalfRebalancePolicy(
            min_victim_depth=8, interval_seconds=30.0
        ),
    }
    measured = {}
    for name, rebalance in arms.items():
        m = run(rebalance)
        s = m.summary()
        measured[name] = {
            "load_cv": round(s["load_cv"], 4),
            "final_mean_jct": round(s["final_mean_jct"], 1),
            "jobs_migrated": m.jobs_migrated,
            "dispatched_jobs": m.dispatched_jobs,
            "unschedulable_jobs": m.unschedulable_jobs,
            "outage_events": m.outage_events,
        }
    static = measured["static"]
    for name in ("threshold", "steal_half"):
        arm = measured[name]
        arm["jct_improvement_pct"] = round(
            100.0 * (1.0 - arm["final_mean_jct"] / static["final_mean_jct"]),
            1,
        )
    return {
        # An extension, not a reproduction: the "paper" row records the
        # static-fleet assumption being relaxed.
        "paper": {"static_fleet": True, "always_online": True},
        "measured": measured,
    }
