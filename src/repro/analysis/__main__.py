"""``python -m repro.analysis`` — the detlint CLI.

Exit codes: 0 = zero unsuppressed findings, 1 = findings, 2 = usage or
parse error.  ``--json-output`` always writes the machine-readable
report (CI uploads it as an artifact on failure) regardless of the
terminal format.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .base import all_rules
from .runner import analyze_paths, format_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "detlint: determinism & purity static analysis for the repro "
            "engine.  Checks the contracts behind the bit-identity "
            "guarantees (identity-keyed RNG, simulated-time isolation, "
            "pure executor workers, sorted iteration, the TIMING_FIELDS "
            "allowlist) at lint time instead of at test time."
        ),
        epilog=(
            "Suppress an intentional violation inline with a reason: "
            "`expr  # detlint: disable=DET001 -- why this is safe`. "
            "A directive on its own comment line covers the next line."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="terminal output format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--json-output",
        metavar="FILE",
        help="also write the JSON report to FILE (for CI artifacts)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code, cls in sorted(all_rules().items()):
            print(f"{code}  {cls.name:<22} {cls.summary}")
        return 0
    select = (
        [c.strip() for c in args.select.split(",") if c.strip()]
        if args.select
        else None
    )
    try:
        report = analyze_paths(args.paths, select=select)
    except (FileNotFoundError, KeyError) as exc:
        print(f"detlint: error: {exc}", file=sys.stderr)
        return 2
    if args.json_output:
        Path(args.json_output).write_text(
            format_report(report, "json") + "\n", encoding="utf-8"
        )
    print(format_report(report, args.format))
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
