"""Rule framework: findings, module contexts, suppressions, registry.

Everything here is stdlib-only (``ast`` + ``re``) so the linter imports
in any environment the package itself does — including CI images with no
numpy wheel cached yet.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "ModuleContext",
    "Report",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "module_name_for_path",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  #: e.g. ``"DET001"``
    message: str
    path: str  #: repo-relative posix path
    line: int
    col: int = 0
    #: True when an inline ``# detlint: disable=`` directive covers it.
    suppressed: bool = False
    #: The justification text following the directive, when present.
    suppression_reason: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }


#: ``# detlint: disable=DET001,DET004 -- reason`` (codes optional: a bare
#: ``# detlint: disable`` silences every rule on that line).
_DIRECTIVE = re.compile(
    r"#\s*detlint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+?))?"
    r"(?:\s*--\s*(?P<reason>.*))?\s*$"
)


@dataclass
class Suppressions:
    """Per-line suppression directives parsed from source comments.

    A directive on a line covers findings on that line; a directive on a
    line that is *only* a comment covers the following line as well, so
    long statements can keep the justification readable::

        # detlint: disable=DET002 -- wall-clock accounting, lands in TIMING_FIELDS
        t0 = time.perf_counter()
    """

    by_line: dict[int, tuple[frozenset[str], str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        by_line: dict[int, tuple[frozenset[str], str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _DIRECTIVE.search(text)
            if not match:
                continue
            raw = match.group("codes")
            codes = frozenset(
                c.strip() for c in raw.split(",") if c.strip()
            ) if raw else frozenset()
            reason = (match.group("reason") or "").strip()
            by_line[lineno] = (codes, reason)
            if text.lstrip().startswith("#"):
                # Standalone comment: also covers the next line.
                by_line.setdefault(lineno + 1, (codes, reason))
        return cls(by_line)

    def lookup(self, rule: str, line: int) -> tuple[bool, str]:
        entry = self.by_line.get(line)
        if entry is None:
            return False, ""
        codes, reason = entry
        if not codes or rule in codes:
            return True, reason
        return False, ""


class ModuleContext:
    """One parsed source file plus everything rules need to judge it."""

    def __init__(
        self, path: str, source: str, module: str | None = None
    ) -> None:
        self.path = path
        self.source = source
        self.module = module if module is not None else module_name_for_path(path)
        self.tree = ast.parse(source, filename=path)
        self.suppressions = Suppressions.parse(source)

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        suppressed, reason = self.suppressions.lookup(rule, line)
        return Finding(
            rule=rule,
            message=message,
            path=self.path,
            line=line,
            col=col,
            suppressed=suppressed,
            suppression_reason=reason,
        )

    def in_package(self, packages: Iterable[str]) -> bool:
        """Is this module inside any of the given dotted packages?"""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )


def module_name_for_path(path: str) -> str:
    """Dotted module name for a file path (``src/repro/x/y.py`` ->
    ``repro.x.y``); falls back to the bare stem outside a src layout."""
    parts = list(Path(path).parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [Path(path).name]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or Path(path).stem


class Rule:
    """Base class for a per-module rule.

    Subclasses set the class metadata and implement :meth:`check`,
    yielding findings via ``ctx.finding(...)`` (which applies inline
    suppressions automatically).
    """

    code: str = "DET000"
    name: str = "base"
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs the whole analyzed module set at once."""

    def check_project(
        self, modules: dict[str, ModuleContext]
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """The registered rules, importing the built-in set on first use."""
    from . import rules  # noqa: F401  -- registration side effect

    return dict(sorted(_REGISTRY.items()))


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))

    def to_json(self) -> dict:
        return {
            "tool": "detlint",
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "counts": self.counts(),
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
        }
