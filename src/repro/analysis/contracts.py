"""The repo's determinism contracts, as data the rules consume.

This module is the single place where detlint's rules meet the actual
codebase: which packages run on simulated time, which functions are the
declared wall-clock accounting sites, which functions ship to executor
workers, and where the runtime metrics allowlist lives.  Keeping it
separate from the rule logic means the rules stay generic (and unit
testable on synthetic fixtures) while the repo-specific policy is
reviewable in one screenful.
"""

from __future__ import annotations

__all__ = [
    "SIMULATED_TIME_PACKAGES",
    "TIMING_ACCOUNTING_SITES",
    "AMBIENT_RNG_FACTORY_SITES",
    "WORKER_FUNCTIONS",
    "METRICS_MODULE",
    "METRICS_CLASS",
    "TIMING_TUPLE_NAME",
]

#: Packages whose notion of "now" is the event-loop's simulated clock.
#: A wall-clock read here (outside a declared accounting site) leaks
#: host timing into simulated behavior — the exact bug class the
#: parallel/pipelined bit-identity tests exist to catch.
SIMULATED_TIME_PACKAGES: tuple[str, ...] = (
    "repro.cloud",
    "repro.scheduler",
    "repro.moo",
)

#: The declared timing-accounting sites: ``module -> function names``
#: allowed to read the wall clock because their measurements land only
#: in ``SimulationMetrics.TIMING_FIELDS`` (or ``compare=False`` result
#: fields) and never influence simulated behavior.  DET005 statically
#: checks the "land only in TIMING_FIELDS" half of that claim.
TIMING_ACCOUNTING_SITES: dict[str, frozenset[str]] = {
    # stage_seconds["optimize_wall"] bookkeeping around submit/fold, and
    # the run-level wall_seconds stopwatch.
    "repro.cloud.simulator": frozenset({"_begin_batch", "_fold_batch", "_run"}),
    # OptimizationResult.optimize_seconds (a compare=False field).
    "repro.scheduler.cycle": frozenset({"run_optimization"}),
    # Per-stage preprocess/select timings, folded into stage_seconds.
    "repro.scheduler.quantum": frozenset({"begin_cycle", "finish_cycle"}),
}

#: Sites allowed to construct ambient (OS-entropy) generators:
#: ``module -> function names``.  Empty on purpose — every production
#: path injects a seeded ``Generator``; the rare intentional fallback
#: carries an inline ``# detlint: disable=DET001 -- reason`` instead,
#: so the justification lives next to the code.
AMBIENT_RNG_FACTORY_SITES: dict[str, frozenset[str]] = {}

#: Functions shipped to :class:`repro.cloud.cycle_executor.CycleExecutor`
#: workers, beyond what DET003 discovers from ``*.submit(fn, ...)`` /
#: ``*.run(fn, ...)`` call sites.  These must stay module-level, closure
#: free, and module-global free or process workers diverge from serial.
WORKER_FUNCTIONS: frozenset[tuple[str, str]] = frozenset(
    {
        ("repro.scheduler.cycle", "run_optimization"),
        # The population-flat NSGA-II kernels run inside run_optimization
        # on every executor backend; same purity bar.
        ("repro.scheduler.formulation", "evaluate_population"),
        ("repro.scheduler.formulation", "repair_population"),
    }
)

#: Where the runtime determinism allowlist lives (DET005's anchor).
METRICS_MODULE = "repro.cloud.metrics"
METRICS_CLASS = "SimulationMetrics"
TIMING_TUPLE_NAME = "TIMING_FIELDS"
