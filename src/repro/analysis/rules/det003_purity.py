"""DET003 — purity of functions shipped to cycle-executor workers.

The parallel engine's bit-identity claim needs stage 2 to be a pure
function of its ``OptimizationTask``: process workers get a *copy* of
the module, so a worker that reads or mutates module globals computes
against state the main process (and the serial reference run) does not
share.  The rule discovers worker functions two ways — any function
passed to an ``...executor.run(fn, ...)`` / ``.submit(fn, ...)`` /
``.map(fn, ...)`` call, plus the declared
:data:`repro.analysis.contracts.WORKER_FUNCTIONS` — and requires each to
be a module-level ``def`` (picklable by name, closure-free by
construction) that never declares ``global``/``nonlocal`` and never
reads a mutable module-level binding.  Imports, module-level
defs/classes, and ``UPPER_CASE`` constants are safe reads.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .. import contracts
from ..base import Finding, ModuleContext, ProjectRule, register
from .common import ImportMap

_SUBMIT_ATTRS = frozenset({"run", "submit", "map"})


def _receiver_is_executor(func: ast.Attribute) -> bool:
    try:
        text = ast.unparse(func.value)
    except Exception:  # pragma: no cover - unparse is total on 3.10+
        return False
    return "executor" in text.lower()


def _module_bindings(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Classify module-level names into (safe, mutable) for worker reads.

    Safe: imports, defs/classes, dunders, and ``UPPER_CASE`` constants.
    Everything else assigned at module level is treated as mutable state
    a forked worker must not depend on.
    """
    safe: set[str] = set()
    mutable: set[str] = set()

    def classify(name: str) -> None:
        if name.startswith("__") or name.isupper():
            safe.add(name)
        else:
            mutable.add(name)

    def handle(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    safe.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                safe.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            classify(leaf.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                classify(stmt.target.id)
            elif isinstance(stmt, ast.If):
                handle(stmt.body)
                handle(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                handle(stmt.body)
                handle(stmt.orelse)
                handle(stmt.finalbody)
                for h in stmt.handlers:
                    handle(h.body)
    handle(tree.body)
    return safe, mutable - safe


def _local_names(fn: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    args = fn.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


@register
class WorkerPurityRule(ProjectRule):
    code = "DET003"
    name = "worker-purity"
    summary = (
        "functions shipped to a CycleExecutor must be module-level, "
        "closure-free, and must not read/write module globals"
    )

    def check_project(
        self, modules: dict[str, ModuleContext]
    ) -> Iterator[Finding]:
        # (defining_module, function_name) -> context the reference was
        # seen in (for resolution failures we report at the call site).
        targets: dict[tuple[str, str], tuple[ModuleContext, ast.AST]] = {}
        inline: list[Finding] = []
        for name in sorted(modules):
            ctx = modules[name]
            self._discover(ctx, modules, targets, inline)
        for mod, fname in sorted(contracts.WORKER_FUNCTIONS):
            if mod in modules:
                node = modules[mod].tree
                targets.setdefault((mod, fname), (modules[mod], node))
        yield from inline
        for (mod, fname), (refctx, refnode) in sorted(targets.items()):
            defctx = modules.get(mod)
            if defctx is None:
                continue
            yield from self._check_worker(defctx, fname, refctx, refnode)

    # -- discovery -----------------------------------------------------
    def _discover(
        self,
        ctx: ModuleContext,
        modules: dict[str, ModuleContext],
        targets: dict,
        inline: list[Finding],
    ) -> None:
        imap = ImportMap(ctx.tree, ctx.module)
        toplevel = {
            stmt.name
            for stmt in ctx.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_ATTRS
                and node.args
                and _receiver_is_executor(node.func)
            ):
                continue
            worker = node.args[0]
            if isinstance(worker, ast.Lambda):
                inline.append(
                    ctx.finding(
                        self.code,
                        worker,
                        "lambda shipped to a CycleExecutor: workers must "
                        "be module-level functions (picklable by name, "
                        "closure-free)",
                    )
                )
            elif isinstance(worker, ast.Attribute):
                inline.append(
                    ctx.finding(
                        self.code,
                        worker,
                        f"`{ast.unparse(worker)}` shipped to a "
                        "CycleExecutor: workers must be module-level "
                        "functions, not bound methods or attributes",
                    )
                )
            elif isinstance(worker, ast.Name):
                if worker.id in toplevel:
                    targets.setdefault(
                        (ctx.module, worker.id), (ctx, worker)
                    )
                elif worker.id in imap.bindings:
                    bound = imap.bindings[worker.id]
                    if "." in bound:
                        mod, fname = bound.rsplit(".", 1)
                        targets.setdefault((mod, fname), (ctx, worker))
                elif any(
                    isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and sub.name == worker.id
                    for sub in ast.walk(ctx.tree)
                ):
                    inline.append(
                        ctx.finding(
                            self.code,
                            worker,
                            f"`{worker.id}` shipped to a CycleExecutor "
                            "resolves to a nested def: workers must be "
                            "module-level (nested defs capture closures "
                            "and cannot pickle by name)",
                        )
                    )
                # else: a parameter or unresolvable name (e.g. the
                # executor plumbing itself forwarding `fn`) — out of
                # static reach, skip.

    # -- purity --------------------------------------------------------
    def _check_worker(
        self,
        defctx: ModuleContext,
        fname: str,
        refctx: ModuleContext,
        refnode: ast.AST,
    ) -> Iterator[Finding]:
        fn = next(
            (
                stmt
                for stmt in defctx.tree.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == fname
            ),
            None,
        )
        if fn is None:
            yield refctx.finding(
                self.code,
                refnode,
                f"worker `{fname}` is not a module-level function in "
                f"`{defctx.module}` (nested defs / lambdas cannot be "
                "pickled by name and may capture closures)",
            )
            return
        _safe, mutable = _module_bindings(defctx.tree)
        local = _local_names(fn)
        seen: set[tuple[str, int]] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                yield defctx.finding(
                    self.code,
                    node,
                    f"worker `{fname}` declares `global "
                    f"{', '.join(node.names)}`: workers run in forked "
                    "processes and must not touch module state",
                )
            elif isinstance(node, ast.Nonlocal):
                yield defctx.finding(
                    self.code,
                    node,
                    f"worker `{fname}` declares `nonlocal`: workers "
                    "must be closure-free",
                )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutable
                and node.id not in local
                and (node.id, node.lineno) not in seen
            ):
                seen.add((node.id, node.lineno))
                yield defctx.finding(
                    self.code,
                    node,
                    f"worker `{fname}` reads module global `{node.id}`: "
                    "a process worker sees its own copy, so results "
                    "depend on which backend ran the cycle — pass the "
                    "value through the task instead",
                )
