"""DET001 — ambient / unseeded randomness.

Every random draw in the engine must come from an injected
``numpy.random.Generator`` whose stream is keyed by identity (seed,
shard, cycle — see ``repro.scheduler.cycle.cycle_seed``).  Three shapes
break that contract:

* ``np.random.<fn>(...)`` module-level sampling functions — they share
  one hidden global ``RandomState``, so results depend on every other
  draw in the process (and on which worker ran the code).
* bare stdlib ``random.<fn>(...)`` — same hidden-global problem, plus
  hash-randomized streams across interpreter runs.
* ``default_rng()`` / ``RandomState()`` / ``random.Random()`` with no
  seed — fresh OS entropy on every call, unreproducible by definition.

Calls on an injected generator object (``rng.normal(...)``,
``self._rng.choice(...)``) are fine and never flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .. import contracts
from ..base import Finding, ModuleContext, Rule, register
from .common import FunctionStackVisitor, ImportMap, call_dotted

#: numpy.random names that are seedable class constructors / types, not
#: ambient draws.  (``default_rng`` / ``RandomState`` are handled apart:
#: fine seeded, flagged unseeded.)
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

_NEEDS_SEED = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState", "random.Random"}
)


def _has_seed_argument(node: ast.Call) -> bool:
    if node.args:
        # default_rng(None) is still ambient entropy.
        first = node.args[0]
        return not (isinstance(first, ast.Constant) and first.value is None)
    return any(kw.arg == "seed" for kw in node.keywords)


class _Visitor(FunctionStackVisitor):
    def __init__(self, ctx: ModuleContext, rule: "AmbientRngRule") -> None:
        super().__init__()
        self.ctx = ctx
        self.rule = rule
        self.imap = ImportMap(ctx.tree, ctx.module)
        self.findings: list[Finding] = []

    def _allowlisted(self) -> bool:
        allowed = contracts.AMBIENT_RNG_FACTORY_SITES.get(
            self.ctx.module, frozenset()
        )
        return any(name in allowed for name in self.function_stack)

    def visit_Call(self, node: ast.Call) -> None:
        target = call_dotted(node, self.imap)
        if target is not None and not self._allowlisted():
            message = self._judge(target, node)
            if message:
                self.findings.append(
                    self.ctx.finding(self.rule.code, node, message)
                )
        self.generic_visit(node)

    def _judge(self, target: str, node: ast.Call) -> str | None:
        if target in _NEEDS_SEED:
            if not _has_seed_argument(node):
                return (
                    f"`{target}()` with no seed draws fresh OS entropy; "
                    "pass an explicit seed or inject a Generator"
                )
            return None
        if target.startswith("numpy.random."):
            fn = target.removeprefix("numpy.random.")
            if fn in _SEEDED_CONSTRUCTORS or "." in fn:
                return None
            return (
                f"ambient `{target}` uses the hidden global RandomState; "
                "draw from an injected, identity-keyed Generator instead"
            )
        if target.startswith("random."):
            fn = target.removeprefix("random.")
            if fn == "SystemRandom":
                return f"`{target}` is OS entropy and never reproducible"
            return (
                f"ambient stdlib `{target}` uses hidden global state; "
                "draw from an injected numpy Generator instead"
            )
        return None


@register
class AmbientRngRule(Rule):
    code = "DET001"
    name = "ambient-rng"
    summary = (
        "RNG must be an injected, identity-keyed Generator — no module-"
        "level np.random/random draws, no unseeded default_rng()"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        visitor = _Visitor(ctx, self)
        visitor.visit(ctx.tree)
        yield from visitor.findings
