"""DET002 — wall-clock reads inside simulated-time packages.

The event loop's ``now`` is simulated time; results must be a function
of the event sequence, never of how fast the host ran it.  A
``time.time()`` / ``perf_counter()`` / ``datetime.now()`` inside
``repro.cloud`` / ``repro.scheduler`` / ``repro.moo`` therefore either
(a) leaks host timing into simulated behavior — a bit-identity bug — or
(b) is timing *accounting* that lands in ``SimulationMetrics.
TIMING_FIELDS``.  The accounting sites are declared in
:data:`repro.analysis.contracts.TIMING_ACCOUNTING_SITES`; everything
else is a finding (DET005 separately checks that the declared sites
really do confine their measurements to the allowlisted fields).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .. import contracts
from ..base import Finding, ModuleContext, Rule, register
from .common import WALLCLOCK_CALLS, FunctionStackVisitor, ImportMap, call_dotted


class _Visitor(FunctionStackVisitor):
    def __init__(self, ctx: ModuleContext, rule: "WallClockRule") -> None:
        super().__init__()
        self.ctx = ctx
        self.rule = rule
        self.imap = ImportMap(ctx.tree, ctx.module)
        self.allowed = contracts.TIMING_ACCOUNTING_SITES.get(
            ctx.module, frozenset()
        )
        self.findings: list[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        target = call_dotted(node, self.imap)
        if target in WALLCLOCK_CALLS and not any(
            name in self.allowed for name in self.function_stack
        ):
            self.findings.append(
                self.ctx.finding(
                    self.rule.code,
                    node,
                    f"wall-clock `{target}()` in simulated-time module "
                    f"`{self.ctx.module}` outside the declared timing-"
                    "accounting sites; use the event loop's simulated "
                    "`now` (or declare the site in "
                    "repro.analysis.contracts.TIMING_ACCOUNTING_SITES)",
                )
            )
        self.generic_visit(node)


@register
class WallClockRule(Rule):
    code = "DET002"
    name = "wall-clock"
    summary = (
        "simulated-time packages may only read the wall clock at the "
        "declared timing-accounting sites"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_package(contracts.SIMULATED_TIME_PACKAGES):
            return
        visitor = _Visitor(ctx, self)
        visitor.visit(ctx.tree)
        yield from visitor.findings
