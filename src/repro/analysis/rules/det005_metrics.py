"""DET005 — the static mirror of the ``deterministic_state()`` contract.

At runtime, ``SimulationMetrics.deterministic_state()`` compares every
field *except* the explicit ``TIMING_FIELDS`` exclusion allowlist, and
raises on allowlist entries that are not real fields.  This rule checks
the same contract without running anything:

* every name in the ``TIMING_FIELDS`` tuple must be a declared
  ``SimulationMetrics`` dataclass field (a stale entry would silently
  exclude nothing at runtime until the first ``deterministic_state``
  call — here it fails at lint time);
* every store of a wall-clock-derived value into a ``SimulationMetrics``
  field (``metrics.x = ... perf_counter() ...``, directly or through a
  tainted local) must target a field *on* the allowlist — otherwise a
  wall-clock measurement would be compared by the bit-identity tests
  and parallel runs could never match serial ones.

``tests/test_parallel_engine.py`` locks the static view to the runtime
one via :func:`static_metrics_contract`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from .. import contracts
from ..base import Finding, ModuleContext, ProjectRule, register
from .common import FunctionStackVisitor, ImportMap, contains_wallclock_call

__all__ = ["MetricsAllowlistRule", "parse_metrics_contract", "static_metrics_contract"]


def parse_metrics_contract(
    tree: ast.Module,
    class_name: str = contracts.METRICS_CLASS,
    tuple_name: str = contracts.TIMING_TUPLE_NAME,
) -> tuple[tuple[str, ...], tuple[str, ...], ast.AST | None]:
    """Parse ``(field_names, timing_fields, timing_tuple_node)`` from the
    metrics module's AST.  Fields are the class-body ``AnnAssign``
    targets (dataclass fields); the timing tuple is the plain
    ``TIMING_FIELDS = (...)`` assignment."""
    fields: list[str] = []
    timing: list[str] = []
    tuple_node: ast.AST | None = None
    for stmt in tree.body:
        if not (isinstance(stmt, ast.ClassDef) and stmt.name == class_name):
            continue
        for item in stmt.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                fields.append(item.target.id)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == tuple_name
                        and isinstance(item.value, (ast.Tuple, ast.List))
                    ):
                        tuple_node = item
                        timing = [
                            elt.value
                            for elt in item.value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        ]
    return tuple(fields), tuple(timing), tuple_node


def static_metrics_contract(
    path: str | Path | None = None,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """``(field_names, timing_fields)`` parsed from the real metrics
    module on disk — what the runtime contract test compares against
    ``dataclasses.fields(SimulationMetrics)`` / ``TIMING_FIELDS``."""
    if path is None:
        path = Path(__file__).resolve().parents[2] / "cloud" / "metrics.py"
    tree = ast.parse(Path(path).read_text(), filename=str(path))
    fields, timing, _ = parse_metrics_contract(tree)
    return fields, timing


class _TaintVisitor(FunctionStackVisitor):
    """Finds wall-clock values flowing into metrics-field stores."""

    def __init__(
        self,
        ctx: ModuleContext,
        rule: "MetricsAllowlistRule",
        fields: frozenset[str],
        timing: frozenset[str],
    ) -> None:
        super().__init__()
        self.ctx = ctx
        self.rule = rule
        self.fields = fields
        self.timing = timing
        self.imap = ImportMap(ctx.tree, ctx.module)
        self.taint_stack: list[set[str]] = [set()]
        self.findings: list[Finding] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.taint_stack.append(set())
        super().visit_FunctionDef(node)
        self.taint_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.taint_stack.append(set())
        super().visit_AsyncFunctionDef(node)
        self.taint_stack.pop()

    def _value_tainted(self, value: ast.AST) -> bool:
        if contains_wallclock_call(value, self.imap):
            return True
        tainted = self.taint_stack[-1]
        return any(
            isinstance(sub, ast.Name)
            and isinstance(sub.ctx, ast.Load)
            and sub.id in tainted
            for sub in ast.walk(value)
        )

    def _field_of_target(self, target: ast.AST) -> str | None:
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            return target.attr
        return None

    def _check_store(self, target: ast.AST, value: ast.AST) -> None:
        field = self._field_of_target(target)
        if (
            field in self.fields
            and field not in self.timing
            and self._value_tainted(value)
        ):
            self.findings.append(
                self.ctx.finding(
                    self.rule.code,
                    target,
                    f"wall-clock-derived value stored into "
                    f"SimulationMetrics.{field}, which is not in "
                    "TIMING_FIELDS: it would be compared by "
                    "deterministic_state() and break bit-identity — "
                    "add it to the allowlist or use simulated time",
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        tainted = self._value_tainted(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if tainted:
                    self.taint_stack[-1].add(target.id)
                else:
                    self.taint_stack[-1].discard(target.id)
            else:
                self._check_store(target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            if self._value_tainted(node.value):
                self.taint_stack[-1].add(node.target.id)
        else:
            self._check_store(node.target, node.value)
        self.generic_visit(node)


@register
class MetricsAllowlistRule(ProjectRule):
    code = "DET005"
    name = "metrics-allowlist"
    summary = (
        "TIMING_FIELDS entries must be real SimulationMetrics fields, "
        "and wall-clock values may only land in allowlisted fields"
    )

    def check_project(
        self, modules: dict[str, ModuleContext]
    ) -> Iterator[Finding]:
        metrics_ctx = modules.get(contracts.METRICS_MODULE)
        if metrics_ctx is None:
            return
        fields, timing, tuple_node = parse_metrics_contract(metrics_ctx.tree)
        field_set = frozenset(fields)
        for name in timing:
            if name not in field_set:
                yield metrics_ctx.finding(
                    self.code,
                    tuple_node or metrics_ctx.tree,
                    f"TIMING_FIELDS entry `{name}` is not a "
                    f"{contracts.METRICS_CLASS} field: a stale allowlist "
                    "entry excludes nothing and hides its intent",
                )
        timing_set = frozenset(timing)
        for name in sorted(modules):
            visitor = _TaintVisitor(
                modules[name], self, field_set, timing_set
            )
            visitor.visit(modules[name].tree)
            yield from visitor.findings
