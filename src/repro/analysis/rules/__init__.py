"""The built-in detlint rule set.

Importing this package registers every rule with the framework
registry (see :func:`repro.analysis.base.all_rules`).
"""

from __future__ import annotations

from .det001_rng import AmbientRngRule
from .det002_wallclock import WallClockRule
from .det003_purity import WorkerPurityRule
from .det004_ordering import UnorderedIterationRule
from .det005_metrics import MetricsAllowlistRule, static_metrics_contract

__all__ = [
    "AmbientRngRule",
    "WallClockRule",
    "WorkerPurityRule",
    "UnorderedIterationRule",
    "MetricsAllowlistRule",
    "static_metrics_contract",
]
