"""DET004 — unordered collections feeding ordering-sensitive sinks.

Set iteration order depends on element hashes (randomized per process
for strings) and insertion history; ``os.listdir`` / ``glob.glob`` /
``Path.iterdir`` order depends on the filesystem.  When such a
collection flows into an ordering-sensitive sink — a ``for`` loop, a
``list(...)``/``tuple(...)``/``enumerate(...)`` conversion, a list or
dict comprehension — downstream behavior (RNG draw order, fold order,
float accumulation) silently varies run to run.  The fix is always the
same: ``sorted(...)`` with a deterministic key.

Order-insensitive consumers (``len``, ``min``/``max``, ``sum`` of ints,
membership tests, ``sorted`` itself, set algebra) are never flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..base import Finding, ModuleContext, Rule, register
from .common import ImportMap, call_dotted

#: Canonical call targets returning filesystem-ordered listings.
_FS_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
#: Method names returning filesystem-ordered listings (``Path`` API).
_FS_METHODS = frozenset({"iterdir", "rglob"})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)

_SINK_CALLS = frozenset({"list", "tuple", "enumerate"})


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext, rule: "UnorderedIterationRule") -> None:
        self.ctx = ctx
        self.rule = rule
        self.imap = ImportMap(ctx.tree, ctx.module)
        #: Stack of per-scope ``name -> reason`` maps for locals known to
        #: hold unordered collections (straight-line tracking).
        self.scopes: list[dict[str, str]] = [{}]
        self.findings: list[Finding] = []

    # -- classification ------------------------------------------------
    def _reason(self, node: ast.AST) -> str | None:
        """Why ``node`` evaluates to an unordered collection, or None."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            left = self._reason(node.left)
            right = self._reason(node.right)
            if left or right:
                return left or right
            return None
        if isinstance(node, ast.Name):
            for scope in reversed(self.scopes):
                if node.id in scope:
                    return scope[node.id]
            return None
        if isinstance(node, ast.Call):
            target = call_dotted(node, self.imap)
            if target in _FS_CALLS:
                return f"`{target}` output (filesystem order)"
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return "a set"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FS_METHODS
            ):
                return f"`.{node.func.attr}()` output (filesystem order)"
        return None

    def _flag(self, node: ast.AST, reason: str, sink: str) -> None:
        self.findings.append(
            self.ctx.finding(
                self.rule.code,
                node,
                f"iterating {reason} into {sink}: the order is "
                "nondeterministic — wrap in sorted(...) with a "
                "deterministic key",
            )
        )

    # -- scope tracking ------------------------------------------------
    def _visit_scope(self, node: ast.AST) -> None:
        self.scopes.append({})
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope

    def visit_Assign(self, node: ast.Assign) -> None:
        reason = self._reason(node.value)
        for target in node.targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    if reason and target is leaf:
                        self.scopes[-1][leaf.id] = reason
                    else:
                        self.scopes[-1].pop(leaf.id, None)
        self.generic_visit(node)

    # -- sinks ---------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        reason = self._reason(node.iter)
        if reason:
            self._flag(node.iter, reason, "a for loop")
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST, sink: str) -> None:
        for gen in node.generators:
            reason = self._reason(gen.iter)
            if reason:
                self._flag(gen.iter, reason, sink)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, "a list comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, "a dict comprehension")

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _SINK_CALLS
            and node.args
        ):
            reason = self._reason(node.args[0])
            if reason:
                self._flag(node.args[0], reason, f"`{node.func.id}(...)`")
        self.generic_visit(node)


@register
class UnorderedIterationRule(Rule):
    code = "DET004"
    name = "unordered-iteration"
    summary = (
        "sets and filesystem listings must pass through sorted(...) "
        "before any ordering-sensitive sink"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        visitor = _Visitor(ctx, self)
        visitor.visit(ctx.tree)
        yield from visitor.findings
