"""Shared AST plumbing for the detlint rules.

The one non-obvious piece is :class:`ImportMap` + :func:`dotted`: rules
match call targets against *canonical* dotted paths (``numpy.random.x``,
``time.perf_counter``) regardless of how the module spelled the import
(``import numpy as np``, ``from time import perf_counter``,
``from ..scheduler.cycle import run_optimization``).
"""

from __future__ import annotations

import ast

__all__ = [
    "ImportMap",
    "dotted",
    "call_dotted",
    "WALLCLOCK_CALLS",
    "contains_wallclock_call",
    "FunctionStackVisitor",
    "resolve_relative_import",
]

#: Canonical dotted names whose call reads the host wall clock.
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.thread_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Roots we canonicalize; anything else resolves to ``None`` (unknown).
_KNOWN_ROOTS = ("numpy", "random", "time", "datetime", "os", "glob", "repro")


def resolve_relative_import(module: str, node: ast.ImportFrom) -> str:
    """Absolute dotted target of a (possibly relative) ``from`` import.

    ``module`` is the importing module's dotted name; ``from ..a import b``
    inside ``repro.cloud.simulator`` resolves to ``repro.a``.
    """
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    # level 1 = current package: drop the module segment itself.
    base = parts[: len(parts) - node.level]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


class ImportMap:
    """Local name -> canonical dotted path, from a module's imports."""

    def __init__(self, tree: ast.AST, module: str = "") -> None:
        self.bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _KNOWN_ROOTS:
                        local = alias.asname or root
                        target = alias.name if alias.asname else root
                        self.bindings[local] = target
            elif isinstance(node, ast.ImportFrom):
                source = resolve_relative_import(module, node)
                if source.split(".")[0] not in _KNOWN_ROOTS:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{source}.{alias.name}"


def dotted(node: ast.AST, imap: ImportMap) -> str | None:
    """Canonical dotted path of a ``Name``/``Attribute`` chain, or None.

    ``np.random.default_rng`` -> ``numpy.random.default_rng`` under
    ``import numpy as np``; a chain rooted in anything unknown (``self``,
    a local) resolves to ``None`` so rules never misfire on instance
    attributes like ``self.rng.normal``.
    """
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = imap.bindings.get(cur.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def call_dotted(node: ast.Call, imap: ImportMap) -> str | None:
    """Canonical dotted path of a call's target, or None."""
    return dotted(node.func, imap)


def contains_wallclock_call(node: ast.AST, imap: ImportMap) -> bool:
    """Does any call inside ``node`` read the host wall clock?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            target = call_dotted(sub, imap)
            if target in WALLCLOCK_CALLS:
                return True
    return False


class FunctionStackVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the chain of enclosing function names."""

    def __init__(self) -> None:
        self.function_stack: list[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.function_stack.append(node.name)
        self.generic_visit(node)
        self.function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.function_stack.append(node.name)
        self.generic_visit(node)
        self.function_stack.pop()
