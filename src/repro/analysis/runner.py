"""File discovery, rule execution, and report formatting."""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from .base import (
    Finding,
    ModuleContext,
    ProjectRule,
    Report,
    all_rules,
)

__all__ = ["analyze_paths", "analyze_source", "discover_files", "format_report"]


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Sorted on purpose: detlint's own output order must not depend on
    filesystem enumeration (DET004 applies to us too).
    """
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
        else:
            raise FileNotFoundError(f"not a .py file or directory: {path}")
    return sorted(out)


def _build_contexts(files: Iterable[Path]) -> tuple[list[ModuleContext], list[Finding]]:
    contexts: list[ModuleContext] = []
    errors: list[Finding] = []
    for path in files:
        text = path.read_text(encoding="utf-8")
        try:
            contexts.append(ModuleContext(str(path), text))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule="DET000",
                    message=f"syntax error: {exc.msg}",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                )
            )
    return contexts, errors


def _run_rules(
    contexts: list[ModuleContext],
    select: Sequence[str] | None = None,
) -> Report:
    rules = all_rules()
    if select:
        unknown = sorted(set(select) - set(rules))
        if unknown:
            raise KeyError(
                f"unknown rule codes {unknown}; available: {sorted(rules)}"
            )
        rules = {code: rules[code] for code in sorted(select)}
    modules = {ctx.module: ctx for ctx in contexts}
    collected: list[Finding] = []
    for code in sorted(rules):
        rule = rules[code]()
        if isinstance(rule, ProjectRule):
            collected.extend(rule.check_project(modules))
        else:
            for ctx in contexts:
                collected.extend(rule.check(ctx))
    collected.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report = Report(
        findings=[f for f in collected if not f.suppressed],
        suppressed=[f for f in collected if f.suppressed],
        files_checked=len(contexts),
        rules_run=tuple(sorted(rules)),
    )
    return report


def analyze_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
) -> Report:
    """Lint files/directories; the library entry point behind the CLI."""
    contexts, errors = _build_contexts(discover_files(paths))
    report = _run_rules(contexts, select=select)
    report.findings = sorted(
        errors + report.findings,
        key=lambda f: (f.path, f.line, f.col, f.rule),
    )
    return report


def analyze_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    select: Sequence[str] | None = None,
    extra_modules: dict[str, str] | None = None,
) -> Report:
    """Lint one source string — the unit-test entry point.

    ``module`` overrides the dotted module name (so fixtures can claim
    to live inside e.g. ``repro.cloud``); ``extra_modules`` maps dotted
    names to additional sources for cross-module rules (DET003/DET005).
    """
    contexts = [ModuleContext(path, source, module=module)]
    for name, text in (extra_modules or {}).items():
        contexts.append(
            ModuleContext(name.replace(".", "/") + ".py", text, module=name)
        )
    return _run_rules(contexts, select=select)


def format_report(report: Report, fmt: str = "human") -> str:
    """Render a report as ``human`` text or a ``json`` document."""
    if fmt == "json":
        return json.dumps(report.to_json(), indent=2, sort_keys=True)
    lines = [f.format() for f in report.findings]
    counts = report.counts()
    summary = (
        ", ".join(f"{code}: {n}" for code, n in counts.items())
        if counts
        else "clean"
    )
    lines.append(
        f"detlint: {len(report.findings)} finding(s) in "
        f"{report.files_checked} file(s) "
        f"({len(report.suppressed)} suppressed) — {summary}"
    )
    return "\n".join(lines)
