"""detlint — determinism & purity static analysis for the repro engine.

Every equivalence claim this reproduction makes (1-shard ≡ unsharded,
parallel ≡ serial, pipelined ≡ synchronous) rests on a handful of code
conventions: cycle RNG keyed by ``SeedSequence((seed, shard, cycle))``,
pure picklable stage-2 workers, wall-clock confined to the
``TIMING_FIELDS`` accounting sites, shard-id-ordered folds.  The runtime
bit-identity tests catch a violation *after* it ships and only on the
scenarios they encode; this package catches the whole class at lint
time, on every line.

Rules (see :mod:`repro.analysis.rules`):

* **DET001** — ambient / unseeded RNG (``np.random.*`` module functions,
  bare ``random.*``, ``default_rng()`` with no seed).
* **DET002** — wall-clock reads inside simulated-time packages outside
  the declared timing-accounting sites.
* **DET003** — impurity in functions shipped to a ``CycleExecutor``
  (nested defs, lambdas, module-global reads/writes).
* **DET004** — iterating an unordered collection (``set``,
  ``os.listdir``, ``glob.glob``) into an ordering-sensitive sink
  without ``sorted(...)``.
* **DET005** — the static mirror of the
  ``SimulationMetrics.deterministic_state()`` contract: wall-clock may
  only flow into fields listed in ``TIMING_FIELDS``, and every
  allowlist entry must name a real field.

Use ``python -m repro.analysis [paths]`` (exit 0 means zero unsuppressed
findings) or the library API::

    from repro.analysis import analyze_paths
    report = analyze_paths(["src"])
    for f in report.findings:
        print(f.format())

Suppress an intentional violation inline with a justification::

    rng = np.random.default_rng()  # detlint: disable=DET001 -- why it is safe
"""

from __future__ import annotations

from .base import Finding, ModuleContext, Report, Rule, all_rules
from .runner import analyze_paths, analyze_source

__all__ = [
    "Finding",
    "ModuleContext",
    "Report",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
]
