"""Model selection: K-fold cross-validation and train/test splitting.

The paper trains and evaluates its estimators "through K-fold
cross-validation, using the R^2 score as the primary evaluation metric".
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .metrics import r2_score

__all__ = ["KFold", "train_test_split", "cross_val_score"]


class KFold:
    """K consecutive (optionally shuffled) folds."""

    def __init__(
        self, n_splits: int = 5, shuffle: bool = True, seed: int | None = 0
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(indices)
        sizes = np.full(self.n_splits, n_samples // self.n_splits)
        sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


def train_test_split(
    X, y, *, test_fraction: float = 0.2, seed: int | None = 0
):
    """Shuffled split into (X_train, X_test, y_train, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    X = np.asarray(X)
    y = np.asarray(y)
    n = len(X)
    idx = np.arange(n)
    np.random.default_rng(seed).shuffle(idx)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = idx[:n_test], idx[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def cross_val_score(
    model_factory,
    X,
    y,
    *,
    n_splits: int = 5,
    metric=r2_score,
    seed: int | None = 0,
) -> np.ndarray:
    """Fit a fresh model per fold; returns the per-fold metric values.

    ``model_factory`` is a zero-argument callable producing an unfitted
    model with ``fit``/``predict`` (e.g. ``lambda: make_poly_pipeline(2)``).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    scores = []
    for train, test in KFold(n_splits=n_splits, seed=seed).split(len(X)):
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(metric(y[test], model.predict(X[test])))
    return np.array(scores)
