"""Minimal transformer/estimator pipeline."""

from __future__ import annotations

import numpy as np

from .features import PolynomialFeatures, StandardScaler
from .linear import LinearRegression, Ridge

__all__ = ["Pipeline", "make_polynomial_regression"]


class Pipeline:
    """Chain of fitted transformers ending in an estimator.

    Steps are (name, object) pairs; every step but the last must expose
    ``fit``/``transform``, the last ``fit``/``predict``.
    """

    def __init__(self, steps: list[tuple[str, object]]) -> None:
        if not steps:
            raise ValueError("pipeline needs at least one step")
        self.steps = steps

    def fit(self, X, y) -> "Pipeline":
        data = np.asarray(X, dtype=float)
        for _, step in self.steps[:-1]:
            data = step.fit(data, y).transform(data)
        self.steps[-1][1].fit(data, y)
        return self

    def predict(self, X) -> np.ndarray:
        data = np.asarray(X, dtype=float)
        for _, step in self.steps[:-1]:
            data = step.transform(data)
        return self.steps[-1][1].predict(data)

    def __getitem__(self, name: str):
        for n, step in self.steps:
            if n == name:
                return step
        raise KeyError(name)


def make_polynomial_regression(
    degree: int = 2, *, alpha: float = 0.0, scale: bool = True
) -> Pipeline:
    """The paper's winning estimator family: polynomial regression.

    ``alpha > 0`` switches the final stage to ridge, which stabilizes the
    higher-degree fits on the smaller synthetic datasets.
    """
    steps: list[tuple[str, object]] = []
    steps.append(("poly", PolynomialFeatures(degree=degree)))
    if scale:
        steps.append(("scaler", StandardScaler()))
    estimator = Ridge(alpha=alpha) if alpha > 0 else LinearRegression()
    steps.append(("regressor", estimator))
    return Pipeline(steps)
