"""Minimal ML stack (scikit-learn substitute): linear/ridge regression,
polynomial features, scaling, K-fold CV, regression metrics, pipelines."""

from .features import PolynomialFeatures, StandardScaler
from .linear import LinearRegression, Ridge
from .metrics import mean_absolute_error, r2_score, root_mean_squared_error
from .model_selection import KFold, cross_val_score, train_test_split
from .pipeline import Pipeline, make_polynomial_regression

__all__ = [
    "LinearRegression",
    "Ridge",
    "PolynomialFeatures",
    "StandardScaler",
    "mean_absolute_error",
    "r2_score",
    "root_mean_squared_error",
    "KFold",
    "cross_val_score",
    "train_test_split",
    "Pipeline",
    "make_polynomial_regression",
]
