"""Feature maps: polynomial expansion and standardization."""

from __future__ import annotations

from itertools import combinations_with_replacement

import numpy as np

__all__ = ["PolynomialFeatures", "StandardScaler"]


class PolynomialFeatures:
    """All monomials of the input features up to ``degree``.

    Matches scikit-learn's ordering: bias (optional), then degree-1 terms,
    then degree-2 combinations with replacement, etc.
    """

    def __init__(self, degree: int = 2, include_bias: bool = False) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.include_bias = include_bias
        self._combos: list[tuple[int, ...]] | None = None

    def fit(self, X, y=None) -> "PolynomialFeatures":
        X = np.asarray(X, dtype=float)
        n_features = X.shape[1]
        # _combos keeps the flat sklearn-ordered monomial list; _blocks
        # holds the same combos as contiguous per-degree index arrays so
        # transform() fills whole column groups with O(degree) vectorized
        # passes instead of one Python iteration per monomial (the
        # scheduling hot path calls transform per estimate-cache miss).
        combos: list[tuple[int, ...]] = []
        if self.include_bias:
            combos.append(())
        self._blocks = []
        for d in range(1, self.degree + 1):
            combos_d = list(combinations_with_replacement(range(n_features), d))
            self._blocks.append(
                (len(combos), np.array(combos_d, dtype=np.intp))
            )
            combos.extend(combos_d)
        self._combos = combos
        return self

    def transform(self, X) -> np.ndarray:
        if self._combos is None:
            raise RuntimeError("transformer is not fitted")
        X = np.asarray(X, dtype=float)
        out = np.empty((X.shape[0], len(self._combos)))
        if self.include_bias:
            out[:, 0] = 1.0
        for start, idx in self._blocks:
            # Multiply factors left-to-right (matching the definitional
            # per-monomial loop bit-for-bit), vectorized across monomials.
            block = X[:, idx[:, 0]].copy()
            for k in range(1, idx.shape[1]):
                block *= X[:, idx[:, k]]
            out[:, start:start + len(idx)] = block
        return out

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def n_output_features_(self) -> int:
        if self._combos is None:
            raise RuntimeError("transformer is not fitted")
        return len(self._combos)


class StandardScaler:
    """Zero-mean unit-variance standardization (constant columns pass through)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X, y=None) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std < 1e-12] = 1.0
        self.scale_ = std
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X).transform(X)
