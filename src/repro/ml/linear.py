"""Linear models: ordinary least squares and ridge regression.

Solved via ``scipy.linalg.lstsq`` / normal equations with Tikhonov
regularization — the estimator's polynomial regression (paper §6) is a
pipeline of :class:`~repro.ml.features.PolynomialFeatures` and one of
these.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

__all__ = ["LinearRegression", "Ridge"]


class LinearRegression:
    """Ordinary least-squares ``y = X w + b``."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if self.fit_intercept:
            A = np.hstack([X, np.ones((len(X), 1))])
        else:
            A = X
        sol, *_ = linalg.lstsq(A, y, lapack_driver="gelsd")
        if self.fit_intercept:
            self.coef_ = sol[:-1]
            self.intercept_ = float(sol[-1])
        else:
            self.coef_ = sol
            self.intercept_ = 0.0
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_


class Ridge(LinearRegression):
    """L2-regularized least squares (closed form via normal equations)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        super().__init__(fit_intercept=fit_intercept)
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha

    def fit(self, X, y) -> "Ridge":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            Xc, yc = X, y
        n_features = Xc.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(n_features)
        self.coef_ = linalg.solve(gram, Xc.T @ yc, assume_a="pos")
        if self.fit_intercept:
            self.intercept_ = y_mean - float(x_mean @ self.coef_)
        else:
            self.intercept_ = 0.0
        return self
