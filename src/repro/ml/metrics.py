"""Regression metrics: R^2 (the paper's model-selection criterion), MAE, RMSE."""

from __future__ import annotations

import numpy as np

__all__ = ["r2_score", "mean_absolute_error", "root_mean_squared_error"]


def _check(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    if yt.shape != yp.shape:
        raise ValueError(f"shape mismatch {yt.shape} vs {yp.shape}")
    if yt.size == 0:
        raise ValueError("empty input")
    return yt, yp


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 1 = perfect, 0 = mean predictor."""
    yt, yp = _check(y_true, y_pred)
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - yt.mean()) ** 2))
    if ss_tot <= 1e-300:
        return 1.0 if ss_res <= 1e-300 else 0.0
    return 1.0 - ss_res / ss_tot


def mean_absolute_error(y_true, y_pred) -> float:
    yt, yp = _check(y_true, y_pred)
    return float(np.mean(np.abs(yt - yp)))


def root_mean_squared_error(y_true, y_pred) -> float:
    yt, yp = _check(y_true, y_pred)
    return float(np.sqrt(np.mean((yt - yp) ** 2)))
