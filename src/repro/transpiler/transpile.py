"""Top-level transpile entry point (§2.2's compilation stage).

Pipeline: basis decomposition -> initial layout -> SWAP routing ->
re-decomposition (swaps) -> 1q-run fusion -> ASAP schedule. The result
carries everything downstream consumers need: the physical circuit, the
layout, swap overhead, and the scheduled duration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import Circuit
from ..circuits.metrics import CircuitMetrics, compute_metrics
from ..simulation.noise import NoiseModel
from .decompose import decompose_circuit, fuse_1q_runs
from .layout import linear_path_layout, noise_aware_layout, trivial_layout
from .routing import route
from .scheduling import Schedule, schedule_circuit

__all__ = ["TranspileResult", "transpile", "Target"]


@dataclass(frozen=True)
class Target:
    """Device description the transpiler compiles against.

    Built from a :class:`~repro.backends.qpu.QPU`, a template QPU, or
    assembled by hand in tests.
    """

    num_qubits: int
    coupling: tuple[tuple[int, int], ...]
    basis_gates: tuple[str, ...]
    noise_model: NoiseModel

    @classmethod
    def from_backend(cls, backend) -> "Target":
        """Accepts any object with num_qubits/coupling/basis_gates/noise_model."""
        return cls(
            num_qubits=backend.num_qubits,
            coupling=tuple(tuple(e) for e in backend.coupling),
            basis_gates=tuple(backend.basis_gates),
            noise_model=backend.noise_model,
        )


@dataclass
class TranspileResult:
    """Physical circuit plus compilation metadata."""

    circuit: Circuit
    initial_mapping: dict[int, int]
    final_mapping: dict[int, int]
    num_swaps: int
    schedule: Schedule
    metrics: CircuitMetrics

    @property
    def duration_ns(self) -> float:
        return self.schedule.duration_ns


def transpile(
    circuit: Circuit,
    target: Target,
    *,
    layout_method: str = "noise_aware",
    optimize_1q: bool = True,
) -> TranspileResult:
    """Compile ``circuit`` for ``target``.

    Raises ``ValueError`` when the circuit is wider than the device.
    """
    if circuit.num_qubits > target.num_qubits:
        raise ValueError(
            f"{circuit.num_qubits}-qubit circuit does not fit "
            f"{target.num_qubits}-qubit target"
        )
    basis = decompose_circuit(circuit)
    if layout_method == "trivial":
        layout = trivial_layout(basis, target.num_qubits)
    elif layout_method == "noise_aware":
        # Chain-structured circuits map along a physical path (near-zero
        # routing); everything else gets the greedy best-region layout.
        layout = linear_path_layout(
            basis, list(target.coupling), target.noise_model, target.num_qubits
        )
        if layout is None:
            layout = noise_aware_layout(
                basis, list(target.coupling), target.noise_model, target.num_qubits
            )
    else:
        raise ValueError(f"unknown layout method {layout_method!r}")

    routed = route(
        basis,
        list(target.coupling),
        target.num_qubits,
        initial_mapping=layout.logical_to_physical,
    )
    physical = decompose_circuit(routed.circuit)  # expand inserted swaps
    if optimize_1q:
        physical = fuse_1q_runs(physical)
    sched = schedule_circuit(physical, target.noise_model)
    return TranspileResult(
        circuit=physical,
        initial_mapping=routed.initial_mapping,
        final_mapping=routed.final_mapping,
        num_swaps=routed.num_swaps,
        schedule=sched,
        metrics=compute_metrics(physical),
    )
