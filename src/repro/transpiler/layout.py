"""Initial layout selection: mapping logical to physical qubits.

Two policies:

* ``trivial`` — identity mapping (logical i -> physical i).
* ``noise_aware`` — greedy expansion over the coupling graph choosing the
  connected physical region with the best combined link/readout quality,
  then assigning the most interaction-heavy logical qubits to the
  best-connected physical seats. This mirrors what noise-adaptive mappers
  do and is the default for all experiments.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..circuits.circuit import Circuit
from ..simulation.noise import NoiseModel

__all__ = ["Layout", "trivial_layout", "noise_aware_layout", "linear_path_layout"]


class Layout:
    """Bijective logical->physical mapping for the used qubits."""

    def __init__(self, mapping: dict[int, int], num_physical: int) -> None:
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("layout must be injective")
        for p in mapping.values():
            if not 0 <= p < num_physical:
                raise ValueError(f"physical qubit {p} out of range")
        self.logical_to_physical = dict(mapping)
        self.num_physical = num_physical

    def physical(self, logical: int) -> int:
        return self.logical_to_physical[logical]

    def inverse(self) -> dict[int, int]:
        return {p: lq for lq, p in self.logical_to_physical.items()}

    def apply(self, circuit: Circuit) -> Circuit:
        """Remap ``circuit`` onto the physical register."""
        return circuit.remap(self.logical_to_physical, self.num_physical)

    def __repr__(self) -> str:
        return f"Layout({self.logical_to_physical})"


def trivial_layout(circuit: Circuit, num_physical: int) -> Layout:
    if circuit.num_qubits > num_physical:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits, device has {num_physical}"
        )
    return Layout({q: q for q in range(circuit.num_qubits)}, num_physical)


def _edge_quality(noise_model: NoiseModel, a: int, b: int) -> float:
    """Quality score of a physical link: survival of one CX + readouts."""
    gn = noise_model.gate_noise("cx", (a, b))
    qa, qb = noise_model.qubits[a], noise_model.qubits[b]
    return (1.0 - gn.error) * (1.0 - 0.5 * (qa.readout_error + qb.readout_error))


def _interaction_path(circuit: Circuit) -> list[int] | None:
    """If the 2q-interaction graph is a simple path (or ring), return the
    logical qubits in path order; else ``None``.

    Rings are opened at their weakest (least used) edge. Chain-structured
    workloads (GHZ ladders, linear-entanglement ansatze, QAOA rings, adders)
    dominate real suites, and mapping them along a physical path eliminates
    nearly all routing — mirroring what production layout passes achieve.
    """
    g = nx.Graph()
    g.add_nodes_from(range(circuit.num_qubits))
    weights: dict[tuple[int, int], int] = {}
    for gate in circuit.ops:
        if gate.is_unitary and gate.num_qubits == 2:
            e = (min(gate.qubits), max(gate.qubits))
            weights[e] = weights.get(e, 0) + 1
            g.add_edge(*e)
    if g.number_of_edges() == 0 or not nx.is_connected(g):
        return None
    degrees = dict(g.degree())
    if max(degrees.values()) > 2:
        return None
    ends = [q for q, d in degrees.items() if d == 1]
    if len(ends) == 0:  # ring: drop the least-used edge
        weakest = min(weights, key=weights.get)
        g.remove_edge(*weakest)
        ends = [q for q, d in g.degree() if d == 1]
    if len(ends) != 2:
        return None
    path = [ends[0]]
    prev = None
    while len(path) < circuit.num_qubits:
        nbrs = [x for x in g.neighbors(path[-1]) if x != prev]
        if not nbrs:
            return None
        prev = path[-1]
        path.append(nbrs[0])
    return path


def _best_physical_path(
    graph: nx.Graph,
    length: int,
    quality: dict[tuple[int, int], float],
) -> list[int] | None:
    """Greedy DFS for a high-quality simple path of ``length`` nodes."""
    def extend(path: list[int], seen: set[int]) -> list[int] | None:
        if len(path) == length:
            return path
        nbrs = sorted(
            (n for n in graph.neighbors(path[-1]) if n not in seen),
            key=lambda n: -quality.get((min(path[-1], n), max(path[-1], n)), 0.0),
        )
        for nb in nbrs:
            seen.add(nb)
            result = extend(path + [nb], seen)
            if result is not None:
                return result
            seen.remove(nb)
        return None

    # Try starts in quality order of their best incident edge.
    starts = sorted(
        graph.nodes(),
        key=lambda v: -max(
            (quality.get((min(v, n), max(v, n)), 0.0) for n in graph.neighbors(v)),
            default=0.0,
        ),
    )
    for start in starts:
        found = extend([start], {start})
        if found is not None:
            return found
    return None


def linear_path_layout(
    circuit: Circuit,
    coupling: list[tuple[int, int]],
    noise_model: NoiseModel,
    num_physical: int,
) -> Layout | None:
    """Map a path-structured circuit along a physical path; ``None`` when
    the circuit is not chain-like or no long-enough path exists."""
    order = _interaction_path(circuit)
    if order is None:
        return None
    graph = nx.Graph()
    graph.add_nodes_from(range(num_physical))
    graph.add_edges_from(coupling)
    quality = {
        (min(a, b), max(a, b)): _edge_quality(noise_model, a, b)
        for a, b in graph.edges()
    }
    path = _best_physical_path(graph, len(order), quality)
    if path is None:
        return None
    mapping = {logical: path[i] for i, logical in enumerate(order)}
    # Unused logical qubits (no 2q interactions) take any free seats.
    free = [p for p in range(num_physical) if p not in set(path)]
    for q in range(circuit.num_qubits):
        if q not in mapping:
            mapping[q] = free.pop()
    return Layout(mapping, num_physical)


def noise_aware_layout(
    circuit: Circuit,
    coupling: list[tuple[int, int]],
    noise_model: NoiseModel,
    num_physical: int,
) -> Layout:
    """Greedy best-region layout.

    1. Seed at the best edge; grow a connected region of the circuit's
       width, always adding the neighbouring physical qubit with the best
       incident-link quality.
    2. Assign logical qubits (sorted by 2q-interaction degree) to region
       seats (sorted by internal connectivity then quality).
    """
    n_logical = circuit.num_qubits
    if n_logical > num_physical:
        raise ValueError(
            f"circuit needs {n_logical} qubits, device has {num_physical}"
        )
    graph = nx.Graph()
    graph.add_nodes_from(range(num_physical))
    graph.add_edges_from(coupling)
    if n_logical == num_physical and graph.number_of_edges() == 0:
        return trivial_layout(circuit, num_physical)

    quality = {
        (min(a, b), max(a, b)): _edge_quality(noise_model, a, b)
        for a, b in graph.edges()
    }

    if quality:
        seed_edge = max(quality, key=quality.get)
        region = {seed_edge[0], seed_edge[1]}
    else:
        region = {0}
    while len(region) < n_logical:
        best_node, best_score = None, -1.0
        # Sorted: best_node ties break on score only, so the expansion
        # order must not depend on set iteration order.
        for node in sorted(region):
            for nb in graph.neighbors(node):
                if nb in region:
                    continue
                score = max(
                    quality.get((min(nb, x), max(nb, x)), 0.0)
                    for x in region
                    if graph.has_edge(nb, x)
                )
                if score > best_score:
                    best_node, best_score = nb, score
        if best_node is None:  # disconnected graph: take any free qubit
            free = [q for q in range(num_physical) if q not in region]
            if not free:
                break
            best_node = free[0]
        region.add(best_node)

    # Rank physical seats: connectivity within the region, then quality.
    seats = sorted(
        region,
        key=lambda p: (
            -sum(1 for nb in graph.neighbors(p) if nb in region),
            -max(
                (
                    quality.get((min(p, nb), max(p, nb)), 0.0)
                    for nb in graph.neighbors(p)
                    if nb in region
                ),
                default=0.0,
            ),
        ),
    )
    # Rank logical qubits by 2q-gate participation.
    degree = np.zeros(n_logical)
    for g in circuit.ops:
        if g.is_unitary and g.num_qubits == 2:
            degree[g.qubits[0]] += 1
            degree[g.qubits[1]] += 1
    order = np.argsort(-degree, kind="stable")
    mapping = {int(order[i]): int(seats[i]) for i in range(n_logical)}
    return Layout(mapping, num_physical)
