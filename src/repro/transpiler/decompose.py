"""Gate decomposition into the hardware basis {rz, sx, x, cx}.

Single-qubit gates go through ZYZ Euler angles and the standard
``u(theta, phi, lam) = rz(phi+pi) . sx . rz(theta+pi) . sx . rz(lam)``
identity (exact up to global phase). Two-qubit gates use textbook CX-based
identities. Runs of adjacent single-qubit gates are first fused into one
unitary so every run costs at most 2 sx + 3 rz after resynthesis.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate, gate_matrix

__all__ = [
    "zyz_angles",
    "u_to_basis_ops",
    "decompose_to_basis",
    "fuse_1q_runs",
    "decompose_circuit",
]

_EPS = 1e-10


def zyz_angles(unitary: np.ndarray) -> tuple[float, float, float]:
    """Euler angles (theta, phi, lam) with U ~ Rz(phi) Ry(theta) Rz(lam).

    Equality holds up to global phase. Handles the diagonal/anti-diagonal
    degenerate cases explicitly.
    """
    u = np.asarray(unitary, dtype=complex)
    det = u[0, 0] * u[1, 1] - u[0, 1] * u[1, 0]
    su = u / cmath.sqrt(det)
    a, b = su[0, 0], su[0, 1]
    theta = 2.0 * math.atan2(abs(b), abs(a))
    if abs(a) < _EPS:  # anti-diagonal: theta = pi
        phi_plus_lam = 0.0
        phi_minus_lam = 2.0 * cmath.phase(su[1, 0])
    elif abs(b) < _EPS:  # diagonal: theta = 0
        phi_plus_lam = 2.0 * cmath.phase(su[1, 1])
        phi_minus_lam = 0.0
    else:
        phi_plus_lam = 2.0 * cmath.phase(su[1, 1])
        phi_minus_lam = 2.0 * cmath.phase(su[1, 0])
    phi = 0.5 * (phi_plus_lam + phi_minus_lam)
    lam = 0.5 * (phi_plus_lam - phi_minus_lam)
    return theta, phi, lam


def u_to_basis_ops(theta: float, phi: float, lam: float, qubit: int) -> list[Gate]:
    """U(theta, phi, lam) on ``qubit`` as rz/sx ops (circuit order).

    Special-cases near-zero theta (pure rz) and theta ~ pi/2 (single sx)
    to keep transpiled gate counts realistic.
    """

    def rz(angle: float) -> Gate:
        return Gate("rz", (qubit,), (float(angle),))

    sx = Gate("sx", (qubit,))
    two_pi = 2.0 * math.pi
    theta_mod = theta % two_pi
    if abs(theta_mod) < _EPS or abs(theta_mod - two_pi) < _EPS:
        total = (phi + lam) % two_pi
        if abs(total) < _EPS or abs(total - two_pi) < _EPS:
            return []
        return [rz(total)]
    if abs(theta_mod - math.pi / 2) < _EPS:
        # U(pi/2, phi, lam) = rz(phi + pi/2) sx rz(lam - pi/2) up to phase.
        ops = []
        pre = (lam - math.pi / 2) % two_pi
        post = (phi + math.pi / 2) % two_pi
        if pre > _EPS and abs(pre - two_pi) > _EPS:
            ops.append(rz(pre))
        ops.append(sx)
        if post > _EPS and abs(post - two_pi) > _EPS:
            ops.append(rz(post))
        return ops
    # General case: two sx pulses.
    return [rz(lam), sx, rz(theta + math.pi), sx, rz(phi + 3.0 * math.pi)]


def _matrix_to_basis_ops(unitary: np.ndarray, qubit: int) -> list[Gate]:
    theta, phi, lam = zyz_angles(unitary)
    return u_to_basis_ops(theta, phi, lam, qubit)


# ----------------------------------------------------------------------
# Two-qubit decomposition rules (into cx + 1q ops on the same wires).
# ----------------------------------------------------------------------

def _decompose_2q(gate: Gate) -> list[Gate]:
    a, b = gate.qubits
    name = gate.name

    def h_ops(q: int) -> list[Gate]:
        return _matrix_to_basis_ops(gate_matrix("h"), q)

    if name == "cx":
        return [gate]
    if name == "cz":
        return [*h_ops(b), Gate("cx", (a, b)), *h_ops(b)]
    if name == "swap":
        return [Gate("cx", (a, b)), Gate("cx", (b, a)), Gate("cx", (a, b))]
    if name == "rzz":
        (theta,) = gate.params
        return [
            Gate("cx", (a, b)),
            Gate("rz", (b,), (theta,)),
            Gate("cx", (a, b)),
        ]
    if name == "rxx":
        (theta,) = gate.params
        return [
            *h_ops(a),
            *h_ops(b),
            Gate("cx", (a, b)),
            Gate("rz", (b,), (theta,)),
            Gate("cx", (a, b)),
            *h_ops(a),
            *h_ops(b),
        ]
    if name == "cp":
        (lam,) = gate.params
        return [
            Gate("rz", (a,), (lam / 2.0,)),
            Gate("cx", (a, b)),
            Gate("rz", (b,), (-lam / 2.0,)),
            Gate("cx", (a, b)),
            Gate("rz", (b,), (lam / 2.0,)),
        ]
    if name == "crz":
        (theta,) = gate.params
        return [
            Gate("rz", (b,), (theta / 2.0,)),
            Gate("cx", (a, b)),
            Gate("rz", (b,), (-theta / 2.0,)),
            Gate("cx", (a, b)),
        ]
    if name == "ecr":
        # ECR = CX up to single-qubit dressings; on a cx-basis target we
        # keep the entangling core and absorb the dressing numerically.
        # ecr(a,b) = (sdg a)(sx b)?  Use exact relation via unitary synthesis:
        raise NotImplementedError(
            "ecr decomposition to cx basis is not supported; use cx targets"
        )
    raise NotImplementedError(f"no decomposition rule for {name!r}")


def decompose_to_basis(gate: Gate) -> list[Gate]:
    """Decompose one gate into basis ops (1q via ZYZ, 2q via CX rules)."""
    if not gate.is_unitary:
        return [gate]
    if gate.num_qubits == 1:
        if gate.name in ("rz", "sx", "x"):
            return [gate]
        return _matrix_to_basis_ops(gate.matrix(), gate.qubits[0])
    return _decompose_2q(gate)


def fuse_1q_runs(circuit: Circuit) -> Circuit:
    """Fuse maximal runs of adjacent 1q unitaries into minimal rz/sx ops.

    Non-unitary ops and 2q gates act as fences. This is the optimization
    pass that keeps transpiled depth close to what production transpilers
    emit.
    """
    out = Circuit(circuit.num_qubits, circuit.name)
    out.metadata = dict(circuit.metadata)
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        mat = pending.pop(qubit, None)
        if mat is None:
            return
        for op in _matrix_to_basis_ops(mat, qubit):
            out.append(op)

    for gate in circuit.ops:
        if gate.is_unitary and gate.num_qubits == 1:
            q = gate.qubits[0]
            acc = pending.get(q)
            mat = gate.matrix()
            pending[q] = mat if acc is None else mat @ acc
            continue
        for q in gate.qubits if gate.qubits else range(circuit.num_qubits):
            flush(q)
        out.append(gate)
    for q in list(pending):
        flush(q)
    return out


def decompose_circuit(circuit: Circuit) -> Circuit:
    """Decompose every op of ``circuit`` into the hardware basis."""
    out = Circuit(circuit.num_qubits, circuit.name)
    out.metadata = dict(circuit.metadata)
    for gate in circuit.ops:
        for op in decompose_to_basis(gate):
            out.append(op)
    return out
