"""SWAP routing for restricted coupling maps.

A lightweight SABRE-flavoured router: gates are processed in dependency
order; when a two-qubit gate spans non-adjacent physical qubits, SWAPs are
inserted greedily along a shortest path, choosing at each step the swap
that minimizes the summed BFS distance of the *lookahead window* of pending
two-qubit gates. Distances are precomputed with one BFS per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate

__all__ = ["RoutedCircuit", "route", "distance_matrix"]

LOOKAHEAD = 8
_DECAY = 0.6


def distance_matrix(coupling: list[tuple[int, int]], num_qubits: int) -> np.ndarray:
    """All-pairs shortest-path hop counts over the coupling graph."""
    graph = nx.Graph()
    graph.add_nodes_from(range(num_qubits))
    graph.add_edges_from(coupling)
    dist = np.full((num_qubits, num_qubits), np.inf)
    for src, lengths in nx.all_pairs_shortest_path_length(graph):
        for dst, d in lengths.items():
            dist[src, dst] = d
    return dist


@dataclass
class RoutedCircuit:
    """Routing output: physical circuit + final logical->physical map."""

    circuit: Circuit
    initial_mapping: dict[int, int]
    final_mapping: dict[int, int]
    num_swaps: int


def route(
    circuit: Circuit,
    coupling: list[tuple[int, int]],
    num_physical: int,
    initial_mapping: dict[int, int] | None = None,
) -> RoutedCircuit:
    """Insert SWAPs so every 2q gate acts on coupled physical qubits.

    ``circuit`` is in *logical* indices; the returned circuit is in
    *physical* indices. ``initial_mapping`` defaults to identity.
    """
    if circuit.num_qubits > num_physical:
        raise ValueError("circuit wider than device")
    graph = nx.Graph()
    graph.add_nodes_from(range(num_physical))
    graph.add_edges_from(coupling)
    dist = distance_matrix(coupling, num_physical)

    l2p = dict(initial_mapping) if initial_mapping else {
        q: q for q in range(circuit.num_qubits)
    }
    # Check the initial region is routable at all.
    for lq, p in l2p.items():
        if not 0 <= p < num_physical:
            raise ValueError(f"initial mapping places {lq} at invalid {p}")

    out = Circuit(num_physical, circuit.name)
    out.metadata = dict(circuit.metadata)
    initial = dict(l2p)
    num_swaps = 0

    # Pending 2q gates (logical pairs) in program order, used for lookahead.
    pending_2q: list[tuple[int, int]] = [
        (g.qubits[0], g.qubits[1])
        for g in circuit.ops
        if g.is_unitary and g.num_qubits == 2
    ]
    next_2q = 0

    def lookahead_cost(mapping: dict[int, int], start: int) -> float:
        cost, weight = 0.0, 1.0
        for a, b in pending_2q[start : start + LOOKAHEAD]:
            d = dist[mapping[a], mapping[b]]
            if np.isinf(d):
                return float("inf")
            cost += weight * d
            weight *= _DECAY
        return cost

    for gate in circuit.ops:
        if gate.name == "barrier":
            out.append(Gate("barrier", tuple(l2p[q] for q in gate.qubits)))
            continue
        if gate.num_qubits <= 1 or not gate.is_unitary:
            out.append(gate.remap(l2p))
            continue
        a, b = gate.qubits
        pa, pb = l2p[a], l2p[b]
        if np.isinf(dist[pa, pb]):
            raise ValueError(
                f"qubits {pa} and {pb} are disconnected on this coupling map"
            )
        while dist[l2p[a], l2p[b]] > 1:
            pa, pb = l2p[a], l2p[b]
            p2l = {p: lq for lq, p in l2p.items()}
            # Candidate swaps: edges incident to either endpoint.
            best_swap, best_cost = None, float("inf")
            for endpoint in (pa, pb):
                for nb in graph.neighbors(endpoint):
                    trial = dict(l2p)
                    le = p2l.get(endpoint)
                    ln = p2l.get(nb)
                    if le is not None:
                        trial[le] = nb
                    if ln is not None:
                        trial[ln] = endpoint
                    cost = dist[trial[a], trial[b]] * 2.0 + lookahead_cost(
                        trial, next_2q
                    )
                    if cost < best_cost:
                        best_cost, best_swap = cost, (endpoint, nb, trial)
            assert best_swap is not None
            endpoint, nb, trial = best_swap
            out.append(Gate("swap", (endpoint, nb)))
            num_swaps += 1
            l2p = trial
        out.append(gate.remap(l2p))
        next_2q += 1

    return RoutedCircuit(
        circuit=out,
        initial_mapping=initial,
        final_mapping=dict(l2p),
        num_swaps=num_swaps,
    )
