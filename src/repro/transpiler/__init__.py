"""Transpiler: basis decomposition, layout, routing, scheduling."""

from .decompose import (
    decompose_circuit,
    decompose_to_basis,
    fuse_1q_runs,
    u_to_basis_ops,
    zyz_angles,
)
from .layout import Layout, linear_path_layout, noise_aware_layout, trivial_layout
from .routing import RoutedCircuit, distance_matrix, route
from .scheduling import Schedule, ScheduledOp, schedule_circuit
from .transpile import Target, TranspileResult, transpile

__all__ = [
    "decompose_circuit",
    "decompose_to_basis",
    "fuse_1q_runs",
    "u_to_basis_ops",
    "zyz_angles",
    "Layout",
    "linear_path_layout",
    "noise_aware_layout",
    "trivial_layout",
    "RoutedCircuit",
    "distance_matrix",
    "route",
    "Schedule",
    "ScheduledOp",
    "schedule_circuit",
    "Target",
    "TranspileResult",
    "transpile",
]
