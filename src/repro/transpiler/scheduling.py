"""ASAP scheduling: per-gate start times and total circuit duration."""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import Circuit
from ..simulation.noise import NoiseModel

__all__ = ["ScheduledOp", "Schedule", "schedule_circuit"]


@dataclass(frozen=True)
class ScheduledOp:
    """One op with resolved timing."""

    index: int
    name: str
    qubits: tuple[int, ...]
    start_ns: float
    duration_ns: float

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns


@dataclass
class Schedule:
    """ASAP schedule of a circuit against a device's gate durations."""

    ops: list[ScheduledOp]
    duration_ns: float
    qubit_busy_ns: dict[int, float]

    @property
    def duration_us(self) -> float:
        return self.duration_ns / 1000.0


def schedule_circuit(circuit: Circuit, noise_model: NoiseModel) -> Schedule:
    """Assign ASAP start times using the noise model's durations.

    Also accumulates per-qubit busy time, used to quantify idle windows for
    dynamical-decoupling insertion and decoherence estimates.
    """
    finish = [0.0] * circuit.num_qubits
    busy = {q: 0.0 for q in range(circuit.num_qubits)}
    ops: list[ScheduledOp] = []
    for idx, g in enumerate(circuit.ops):
        if g.name == "barrier":
            wires = g.qubits if g.qubits else tuple(range(circuit.num_qubits))
            sync = max((finish[q] for q in wires), default=0.0)
            for q in wires:
                finish[q] = sync
            continue
        if g.name == "delay":
            q = g.qubits[0]
            ops.append(ScheduledOp(idx, "delay", g.qubits, finish[q], g.params[0]))
            finish[q] += g.params[0]
            continue
        if g.name in ("measure", "reset"):
            dur = noise_model.readout_duration_ns
        elif g.is_unitary:
            dur = noise_model.gate_noise(g.name, g.qubits).duration_ns
        else:
            dur = 0.0
        start = max(finish[q] for q in g.qubits)
        ops.append(ScheduledOp(idx, g.name, g.qubits, start, dur))
        for q in g.qubits:
            finish[q] = start + dur
            busy[q] += dur
    return Schedule(
        ops=ops,
        duration_ns=max(finish, default=0.0),
        qubit_busy_ns=busy,
    )
