"""Job manager (§4): walks a workflow's DAG and runs each job.

Classical steps are placed by the filter-score classical scheduler (their
waiting time is effectively zero given abundant nodes); quantum steps go
through the hybrid scheduler onto simulated QPUs. Execution status and
results are persisted in the system monitor after every step (workflow
step 7).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..cloud.backend_sim import SimulatedQPU
from ..cloud.execution import ExecutionModel
from ..cloud.job import QuantumJob
from ..scheduler.classical import ClassicalRequest, ClassicalScheduler
from ..scheduler.quantum import QonductorScheduler
from .monitor import SystemMonitor
from .workflow import HybridWorkflow, StepKind

__all__ = ["WorkflowStatus", "WorkflowRun", "JobManager"]

_run_ids = itertools.count(1)


class WorkflowStatus(str, Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class WorkflowRun:
    """Execution state of one invoked workflow."""

    workflow: HybridWorkflow
    run_id: int = field(default_factory=lambda: next(_run_ids))
    status: WorkflowStatus = WorkflowStatus.PENDING
    step_results: dict[int, dict] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float | None = None
    error: str | None = None

    @property
    def results(self) -> dict:
        return {
            "status": self.status.value,
            "steps": {
                sid: dict(res) for sid, res in self.step_results.items()
            },
            "elapsed_seconds": (
                (self.finished_at - self.started_at)
                if self.finished_at is not None
                else None
            ),
        }


class JobManager:
    """Executes workflow runs against the cluster."""

    def __init__(
        self,
        scheduler: QonductorScheduler,
        classical_scheduler: ClassicalScheduler,
        backends: list[SimulatedQPU],
        execution_model: ExecutionModel,
        monitor: SystemMonitor,
        *,
        seed: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.classical_scheduler = classical_scheduler
        self.backends = backends
        self.execution_model = execution_model
        self.monitor = monitor
        self._rng = np.random.default_rng(seed)
        self.clock = 0.0

    # ------------------------------------------------------------------
    def run_workflow(self, workflow: HybridWorkflow) -> WorkflowRun:
        """Execute all steps in dependency order; returns the run record."""
        workflow.validate()
        run = WorkflowRun(workflow=workflow, started_at=self.clock)
        run.status = WorkflowStatus.RUNNING
        self.monitor.put("workflows", str(run.run_id), run.results)
        try:
            for step in workflow.topological_steps():
                if step.kind == StepKind.CLASSICAL:
                    result = self._run_classical(step)
                else:
                    result = self._run_quantum(step)
                run.step_results[step.step_id] = result
                self.monitor.put("workflows", str(run.run_id), run.results)
            run.status = WorkflowStatus.COMPLETED
        except Exception as exc:  # noqa: BLE001 - reported to the client
            run.status = WorkflowStatus.FAILED
            run.error = str(exc)
        run.finished_at = self.clock
        self.monitor.put("workflows", str(run.run_id), run.results)
        return run

    # ------------------------------------------------------------------
    def _run_classical(self, step) -> dict:
        req = ClassicalRequest(
            cores=int(step.requirements.get("cores", 1)),
            memory_gb=float(step.requirements.get("memory_gb", 2.0)),
            gpus=int(step.requirements.get("gpus", 0)),
        )
        node = self.classical_scheduler.schedule(req)
        if node is None:
            raise RuntimeError(f"no classical node satisfies step {step.name!r}")
        duration = float(step.requirements.get("seconds", 1.0))
        output = step.fn() if callable(step.fn) else None
        self.clock += duration
        self.classical_scheduler.release(node.name, req)
        return {
            "kind": "classical",
            "name": step.name,
            "node": node.name,
            "seconds": duration,
            "output": output,
        }

    def _run_quantum(self, step) -> dict:
        job = QuantumJob.from_circuit(
            step.circuit, shots=step.shots, mitigation=step.mitigation
        )
        waiting = {b.name: b.waiting_seconds(self.clock) for b in self.backends}
        schedule = self.scheduler.schedule(
            [job], [b.qpu for b in self.backends], waiting
        )
        if not schedule.decisions:
            raise RuntimeError(
                f"quantum step {step.name!r} is unschedulable "
                f"({job.num_qubits} qubits)"
            )
        decision = schedule.decisions[0]
        backend = next(b for b in self.backends if b.name == decision.qpu_name)
        record = backend.execute(job, self.clock, self.execution_model, self._rng)
        self.clock = max(self.clock, backend.free_at)
        return {
            "kind": "quantum",
            "name": step.name,
            "qpu": decision.qpu_name,
            "est_fidelity": decision.est_fidelity,
            "fidelity": record.fidelity,
            "quantum_seconds": record.quantum_seconds,
            "shots": step.shots,
            "mitigation": step.mitigation,
        }
