"""Qonductor orchestrator: data plane (workflows, images, registry),
control plane (API, job manager, monitor, Raft replicas), and workers."""

from .workflow import HybridWorkflow, StepKind, WorkflowStep
from .images import ExecutionConfig, HybridWorkflowImage, ResourceRequest
from .registry import WorkflowRegistry
from .monitor import SystemMonitor, WatchEvent
from .membership import HeartbeatTracker
from .raft import RaftCluster, RaftNode, Role
from .workers import ClassicalWorker, DeviceManager, QuantumWorker
from .job_manager import JobManager, WorkflowRun, WorkflowStatus
from .codegen import build_workflow, classical_task, quantum_task
from .api import Qonductor

__all__ = [
    "HybridWorkflow",
    "StepKind",
    "WorkflowStep",
    "ExecutionConfig",
    "HybridWorkflowImage",
    "ResourceRequest",
    "WorkflowRegistry",
    "SystemMonitor",
    "WatchEvent",
    "HeartbeatTracker",
    "RaftCluster",
    "RaftNode",
    "Role",
    "ClassicalWorker",
    "DeviceManager",
    "QuantumWorker",
    "JobManager",
    "WorkflowRun",
    "WorkflowStatus",
    "Qonductor",
    "build_workflow",
    "classical_task",
    "quantum_task",
]
