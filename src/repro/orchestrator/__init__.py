"""Qonductor orchestrator: data plane (workflows, images, registry),
control plane (API, job manager, monitor, Raft replicas), and workers."""

from .api import Qonductor
from .codegen import build_workflow, classical_task, quantum_task
from .images import ExecutionConfig, HybridWorkflowImage, ResourceRequest
from .job_manager import JobManager, WorkflowRun, WorkflowStatus
from .membership import HeartbeatTracker
from .monitor import SystemMonitor, WatchEvent
from .raft import RaftCluster, RaftNode, Role
from .registry import WorkflowRegistry
from .workers import ClassicalWorker, DeviceManager, QuantumWorker
from .workflow import HybridWorkflow, StepKind, WorkflowStep

__all__ = [
    "HybridWorkflow",
    "StepKind",
    "WorkflowStep",
    "ExecutionConfig",
    "HybridWorkflowImage",
    "ResourceRequest",
    "WorkflowRegistry",
    "SystemMonitor",
    "WatchEvent",
    "HeartbeatTracker",
    "RaftCluster",
    "RaftNode",
    "Role",
    "ClassicalWorker",
    "DeviceManager",
    "QuantumWorker",
    "JobManager",
    "WorkflowRun",
    "WorkflowStatus",
    "Qonductor",
    "build_workflow",
    "classical_task",
    "quantum_task",
]
