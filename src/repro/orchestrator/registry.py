"""Workflow registry (§5): a versioned repository of hybrid workflow images."""

from __future__ import annotations

from .images import HybridWorkflowImage

__all__ = ["WorkflowRegistry"]


class WorkflowRegistry:
    """In-memory image store keyed by ``name:tag``."""

    def __init__(self) -> None:
        self._images: dict[str, HybridWorkflowImage] = {}

    def register(self, image: HybridWorkflowImage) -> str:
        """Store ``image``; returns its registry key."""
        key = image.name
        self._images[key] = image
        return key

    def get(self, key: str) -> HybridWorkflowImage:
        if key not in self._images:
            # Allow untagged lookups of :latest images.
            latest = f"{key}:latest"
            if latest in self._images:
                return self._images[latest]
            raise KeyError(f"no image {key!r} in registry")
        return self._images[key]

    def list_images(self) -> list[str]:
        return sorted(self._images)

    def remove(self, key: str) -> None:
        if key not in self._images:
            raise KeyError(f"no image {key!r} in registry")
        del self._images[key]

    def __len__(self) -> int:
        return len(self._images)

    def __contains__(self, key: str) -> bool:
        return key in self._images or f"{key}:latest" in self._images
