"""Hybrid workflow representation (§5).

A workflow is a DAG of classical and quantum steps with data dependencies —
what the workflow manager builds when it "splits a Python file into quantum
and classical code files ... and creates a directed acyclic graph". Here
steps are callables/specs composed programmatically (the Listing 2 style),
and the DAG drives scheduling and execution order in the job manager.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

import networkx as nx

from ..circuits.circuit import Circuit

__all__ = ["StepKind", "WorkflowStep", "HybridWorkflow"]

_step_ids = itertools.count()


class StepKind(str, Enum):
    CLASSICAL = "classical"
    QUANTUM = "quantum"


@dataclass
class WorkflowStep:
    """One node of the hybrid DAG."""

    name: str
    kind: StepKind
    # Quantum steps carry a circuit + execution knobs; classical steps a
    # callable payload (fn(inputs) -> output) or a declarative mitigation tag.
    circuit: Circuit | None = None
    shots: int = 4000
    mitigation: str = "none"
    fn: object | None = None
    requirements: dict = field(default_factory=dict)
    step_id: int = field(default_factory=lambda: next(_step_ids))

    def __post_init__(self) -> None:
        if self.kind == StepKind.QUANTUM and self.circuit is None:
            raise ValueError(f"quantum step {self.name!r} needs a circuit")


class HybridWorkflow:
    """A DAG of :class:`WorkflowStep` with explicit data-flow edges."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.graph = nx.DiGraph()

    # ------------------------------------------------------------------
    def add_step(self, step: WorkflowStep, after: list[WorkflowStep] | None = None):
        """Add ``step``, depending on every step in ``after``."""
        self.graph.add_node(step.step_id, step=step)
        for dep in after or []:
            if dep.step_id not in self.graph:
                raise ValueError(f"dependency {dep.name!r} not in workflow")
            self.graph.add_edge(dep.step_id, step.step_id)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_node(step.step_id)
            raise ValueError("adding step would create a cycle")
        return step

    @classmethod
    def linear(cls, name: str, steps: list[WorkflowStep]) -> "HybridWorkflow":
        """The common pre -> quantum -> post chain (Listing 2's shape)."""
        wf = cls(name)
        prev: WorkflowStep | None = None
        for step in steps:
            wf.add_step(step, after=[prev] if prev else None)
            prev = step
        return wf

    # ------------------------------------------------------------------
    @property
    def steps(self) -> list[WorkflowStep]:
        return [self.graph.nodes[n]["step"] for n in self.graph.nodes]

    def topological_steps(self) -> list[WorkflowStep]:
        return [self.graph.nodes[n]["step"] for n in nx.topological_sort(self.graph)]

    def quantum_steps(self) -> list[WorkflowStep]:
        return [s for s in self.steps if s.kind == StepKind.QUANTUM]

    def classical_steps(self) -> list[WorkflowStep]:
        return [s for s in self.steps if s.kind == StepKind.CLASSICAL]

    def predecessors(self, step: WorkflowStep) -> list[WorkflowStep]:
        return [
            self.graph.nodes[n]["step"] for n in self.graph.predecessors(step.step_id)
        ]

    def validate(self) -> None:
        if self.graph.number_of_nodes() == 0:
            raise ValueError("workflow is empty")
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError("workflow graph has cycles")
