"""Hybrid workflow images and execution configuration (§5, Listing 1).

An image packages a workflow's graph model, code payloads, and the user's
execution configuration (resource requests like "one GPU" or "a QPU with
>= 20 qubits") into a reusable artifact stored in the workflow registry.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .workflow import HybridWorkflow

__all__ = ["ResourceRequest", "ExecutionConfig", "HybridWorkflowImage"]

_image_ids = itertools.count(1)


@dataclass(frozen=True)
class ResourceRequest:
    """One container's resource limits (a Listing-1 ``resources`` block)."""

    qpus: int = 0
    min_qubits: int = 0
    gpus: int = 0
    cores: int = 1
    memory_gb: float = 2.0
    classical_tier: str | None = None

    def __post_init__(self) -> None:
        if self.qpus < 0 or self.gpus < 0 or self.min_qubits < 0:
            raise ValueError("resource counts must be non-negative")


@dataclass
class ExecutionConfig:
    """User preferences attached to a deployment (Listing 1's YAML)."""

    requests: list[ResourceRequest] = field(default_factory=list)
    preferred_models: list[str] | None = None
    preference: str = "balanced"  # fidelity | balanced | jct
    num_plans: int = 3
    min_fidelity: float = 0.0

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionConfig":
        """Parse the dict form of a YAML deployment file."""
        requests = []
        for container in data.get("spec", {}).get("containers", []):
            limits = container.get("resources", {}).get("limits", {})
            qpus = sum(v for k, v in limits.items() if "qpu" in k.lower())
            gpus = sum(v for k, v in limits.items() if "gpu" in k.lower())
            requests.append(
                ResourceRequest(
                    qpus=int(qpus),
                    min_qubits=int(limits.get("qubits", 0)),
                    gpus=int(gpus),
                    cores=int(limits.get("cores", 1)),
                    memory_gb=float(limits.get("memory_gb", 2.0)),
                )
            )
        return cls(
            requests=requests,
            preferred_models=data.get("preferred_models"),
            preference=data.get("preference", "balanced"),
            num_plans=int(data.get("num_plans", 3)),
            min_fidelity=float(data.get("min_fidelity", 0.0)),
        )

    @property
    def min_qubits(self) -> int:
        return max((r.min_qubits for r in self.requests), default=0)


@dataclass
class HybridWorkflowImage:
    """A deployable workflow artifact."""

    workflow: HybridWorkflow
    config: ExecutionConfig
    image_id: int = field(default_factory=lambda: next(_image_ids))
    tag: str = "latest"

    @property
    def name(self) -> str:
        return f"{self.workflow.name}:{self.tag}"
