"""Workflow-manager code splitting (§5).

The paper's workflow manager "automatically splits a Python file into
quantum and classical code files while maintaining library dependencies and
keeping track of input/output data between the files", then builds the DAG
the job manager executes. The offline equivalent: users mark functions with
the :func:`quantum_task` / :func:`classical_task` decorators and declare
data-flow with ``after=``; :func:`build_workflow` collects every marked
callable from a namespace (module, class, or dict) into a
:class:`~repro.orchestrator.workflow.HybridWorkflow`.
"""

from __future__ import annotations

import inspect

from ..circuits.circuit import Circuit
from .workflow import HybridWorkflow, StepKind, WorkflowStep

__all__ = ["quantum_task", "classical_task", "build_workflow"]

_MARK = "_qonductor_task"


def quantum_task(
    *,
    name: str | None = None,
    shots: int = 4000,
    mitigation: str = "none",
    after: list[str] | None = None,
):
    """Mark a zero-argument function returning a :class:`Circuit` as a
    quantum step. The circuit is materialized at workflow-build time."""

    def decorate(fn):
        setattr(
            fn,
            _MARK,
            {
                "kind": StepKind.QUANTUM,
                "name": name or fn.__name__,
                "shots": shots,
                "mitigation": mitigation,
                "after": list(after or []),
            },
        )
        return fn

    return decorate


def classical_task(
    *,
    name: str | None = None,
    seconds: float = 1.0,
    after: list[str] | None = None,
    **requirements,
):
    """Mark a function as a classical step (pre/post-processing)."""

    def decorate(fn):
        setattr(
            fn,
            _MARK,
            {
                "kind": StepKind.CLASSICAL,
                "name": name or fn.__name__,
                "seconds": seconds,
                "after": list(after or []),
                "requirements": dict(requirements),
            },
        )
        return fn

    return decorate


def _collect(namespace) -> list:
    if isinstance(namespace, dict):
        values = namespace.values()
    else:
        values = (member for _, member in inspect.getmembers(namespace))
    tasks = []
    for value in values:
        meta = getattr(value, _MARK, None)
        if meta is not None:
            tasks.append((value, meta))
    return tasks


def build_workflow(namespace, name: str = "hybrid") -> HybridWorkflow:
    """Split a marked namespace into a hybrid workflow DAG.

    ``after=["step_name", ...]`` references resolve by task name; tasks
    without dependencies become roots. Quantum tasks are invoked once here
    to materialize their circuits (the "generation" part of Fig. 1's
    pre-processing).
    """
    tasks = _collect(namespace)
    if not tasks:
        raise ValueError("namespace contains no @quantum_task/@classical_task")
    names = [meta["name"] for _, meta in tasks]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate task names: {sorted(names)}")

    workflow = HybridWorkflow(name)
    steps: dict[str, WorkflowStep] = {}
    # Build steps first (dependency-order-insensitive), then wire edges.
    for fn, meta in tasks:
        if meta["kind"] is StepKind.QUANTUM:
            circuit = fn()
            if not isinstance(circuit, Circuit):
                raise TypeError(
                    f"quantum task {meta['name']!r} must return a Circuit, "
                    f"got {type(circuit).__name__}"
                )
            step = WorkflowStep(
                name=meta["name"],
                kind=StepKind.QUANTUM,
                circuit=circuit,
                shots=meta["shots"],
                mitigation=meta["mitigation"],
            )
        else:
            step = WorkflowStep(
                name=meta["name"],
                kind=StepKind.CLASSICAL,
                fn=fn,
                requirements={"seconds": meta["seconds"], **meta["requirements"]},
            )
        steps[meta["name"]] = step

    added: set[str] = set()

    def add(task_name: str, stack: tuple[str, ...] = ()) -> None:
        if task_name in added:
            return
        if task_name in stack:
            raise ValueError(f"dependency cycle through {task_name!r}")
        meta = next(m for _, m in tasks if m["name"] == task_name)
        deps = []
        for dep in meta["after"]:
            if dep not in steps:
                raise ValueError(
                    f"task {task_name!r} depends on unknown task {dep!r}"
                )
            add(dep, stack + (task_name,))
            deps.append(steps[dep])
        workflow.add_step(steps[task_name], after=deps)
        added.add(task_name)

    for _, meta in tasks:
        add(meta["name"])
    workflow.validate()
    return workflow
