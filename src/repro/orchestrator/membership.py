"""Failure detection (§4): heartbeats under partial synchrony.

Control-plane and monitor replicas exchange heartbeats; a peer whose
heartbeat is delayed beyond ``delta`` is suspected failed (the paper
assumes the partially synchronous model of Dwork/Lynch/Stockmeyer, with
failure detection triggering Raft re-election).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HeartbeatTracker"]


@dataclass
class HeartbeatTracker:
    """Tracks last-heard times and flags suspects past the delta bound."""

    delta_seconds: float = 5.0
    _last_heard: dict[str, float] = field(default_factory=dict)

    def register(self, node: str, now: float = 0.0) -> None:
        self._last_heard[node] = now

    def heartbeat(self, node: str, now: float) -> None:
        if node not in self._last_heard:
            raise KeyError(f"unknown node {node!r}; register first")
        self._last_heard[node] = now

    def deregister(self, node: str) -> None:
        self._last_heard.pop(node, None)

    @property
    def nodes(self) -> list[str]:
        return sorted(self._last_heard)

    def suspects(self, now: float) -> list[str]:
        """Nodes whose heartbeat is older than delta."""
        return sorted(
            n
            for n, t in self._last_heard.items()
            if now - t > self.delta_seconds
        )

    def alive(self, now: float) -> list[str]:
        return sorted(
            n
            for n, t in self._last_heard.items()
            if now - t <= self.delta_seconds
        )
