"""Raft-style leader election over 2f+1 replicas (§4's fault tolerance).

A deliberately compact, message-passing-free adaptation for the simulated
control plane: replicas share a virtual network (the cluster object),
elections follow Raft's term/vote rules (one vote per term, majority wins,
higher terms depose leaders), and failures are injected by marking nodes
down. Log replication is modeled as snapshot shipping from the leader's
:class:`~repro.orchestrator.monitor.SystemMonitor` (what etcd's raft does
for the paper's datastore).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = ["Role", "RaftNode", "RaftCluster"]


class Role(str, Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass
class RaftNode:
    """One control-plane replica's election state."""

    name: str
    term: int = 0
    role: Role = Role.FOLLOWER
    voted_for: str | None = None
    up: bool = True
    state: dict = field(default_factory=dict)  # replicated snapshot

    def request_vote(self, candidate: str, term: int) -> bool:
        """Raft §5.2 vote rule: one vote per term, step down on higher term."""
        if not self.up or term < self.term:
            return False
        if term > self.term:
            self.term = term
            self.voted_for = None
            if self.role is not Role.FOLLOWER:
                self.role = Role.FOLLOWER
        if self.voted_for in (None, candidate):
            self.voted_for = candidate
            return True
        return False


class RaftCluster:
    """A quorum of 2f+1 replicas with explicit election rounds."""

    def __init__(self, f: int = 1, seed: int = 0) -> None:
        if f < 0:
            raise ValueError("f must be >= 0")
        self.f = f
        self.nodes = [RaftNode(f"replica{i}") for i in range(2 * f + 1)]
        self._rng = np.random.default_rng(seed)
        # Bootstrap: replica0 starts as leader of term 1.
        self.nodes[0].role = Role.LEADER
        self.nodes[0].term = 1

    # ------------------------------------------------------------------
    @property
    def quorum(self) -> int:
        return self.f + 1

    def leader(self) -> RaftNode | None:
        up_leaders = [n for n in self.nodes if n.up and n.role is Role.LEADER]
        if not up_leaders:
            return None
        return max(up_leaders, key=lambda n: n.term)

    def node(self, name: str) -> RaftNode:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(name)

    # ------------------------------------------------------------------
    def fail(self, name: str) -> None:
        self.node(name).up = False

    def recover(self, name: str) -> None:
        node = self.node(name)
        node.up = True
        node.role = Role.FOLLOWER
        leader = self.leader()
        if leader is not None:
            node.term = leader.term
            node.state = dict(leader.state)

    def elect(self) -> RaftNode | None:
        """Run election rounds until some up-node wins a majority.

        Candidates start in randomized order (election-timeout jitter).
        Returns the new leader, or None when no quorum of nodes is up.
        """
        up = [n for n in self.nodes if n.up]
        if len(up) < self.quorum:
            return None
        for _ in range(20):  # bounded retries; jitter breaks ties quickly
            order = list(self._rng.permutation(len(up)))
            for idx in order:
                candidate = up[idx]
                candidate.term += 1
                candidate.role = Role.CANDIDATE
                candidate.voted_for = candidate.name
                votes = 1 + sum(
                    1
                    for peer in self.nodes
                    if peer is not candidate
                    and peer.request_vote(candidate.name, candidate.term)
                )
                if votes >= self.quorum:
                    for n in self.nodes:
                        if n is not candidate and n.role is Role.LEADER:
                            n.role = Role.FOLLOWER
                    candidate.role = Role.LEADER
                    return candidate
                candidate.role = Role.FOLLOWER
        return None

    def replicate(self, snapshot: dict) -> int:
        """Leader ships its state snapshot; returns the ack count."""
        leader = self.leader()
        if leader is None:
            raise RuntimeError("no leader to replicate from")
        leader.state = dict(snapshot)
        acks = 1
        for n in self.nodes:
            if n is leader or not n.up:
                continue
            n.state = dict(snapshot)
            n.term = leader.term
            acks += 1
        if acks < self.quorum:
            raise RuntimeError("lost quorum during replication")
        return acks

    def ensure_leader(self) -> RaftNode | None:
        """Heartbeat-driven recovery: elect when the leader is down."""
        leader = self.leader()
        if leader is not None:
            return leader
        return self.elect()
