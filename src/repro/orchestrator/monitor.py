"""System monitor (§4): the datastore persisting complete system state.

A watchable key-value store with namespaces for worker nodes, QPU state
(static + dynamic, including calibration), workflow execution status, and
intermediate results — the role etcd plays under Kubernetes in the paper's
implementation. Heartbeat liveness lives in
:mod:`repro.orchestrator.membership`; replication in
:mod:`repro.orchestrator.raft`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

__all__ = ["SystemMonitor", "WatchEvent"]


@dataclass(frozen=True)
class WatchEvent:
    """One mutation notification."""

    namespace: str
    key: str
    value: Any
    deleted: bool = False


@dataclass
class SystemMonitor:
    """Namespaced KV store with watchers and monotonically versioned writes."""

    _data: dict[str, dict[str, Any]] = field(default_factory=dict)
    _versions: dict[str, dict[str, int]] = field(default_factory=dict)
    _watchers: list[Callable[[WatchEvent], None]] = field(default_factory=list)
    revision: int = 0

    # ------------------------------------------------------------------
    def put(self, namespace: str, key: str, value: Any) -> int:
        """Write; returns the store revision of this write."""
        self.revision += 1
        self._data.setdefault(namespace, {})[key] = value
        ns_ver = self._versions.setdefault(namespace, {})
        ns_ver[key] = self.revision
        self._notify(WatchEvent(namespace, key, value))
        return self.revision

    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        return self._data.get(namespace, {}).get(key, default)

    def version(self, namespace: str, key: str) -> int:
        return self._versions.get(namespace, {}).get(key, 0)

    def delete(self, namespace: str, key: str) -> bool:
        ns = self._data.get(namespace, {})
        if key not in ns:
            return False
        del ns[key]
        self._versions.get(namespace, {}).pop(key, None)
        self.revision += 1
        self._notify(WatchEvent(namespace, key, None, deleted=True))
        return True

    def list_keys(self, namespace: str) -> list[str]:
        return sorted(self._data.get(namespace, {}))

    def items(self, namespace: str) -> dict[str, Any]:
        return dict(self._data.get(namespace, {}))

    def snapshot(self) -> dict:
        """Deep-enough copy for replication to a backup replica."""
        return {
            "revision": self.revision,
            "data": {ns: dict(kv) for ns, kv in self._data.items()},
        }

    def restore(self, snapshot: dict) -> None:
        self.revision = snapshot["revision"]
        self._data = {ns: dict(kv) for ns, kv in snapshot["data"].items()}

    # ------------------------------------------------------------------
    def watch(self, callback: Callable[[WatchEvent], None]) -> None:
        self._watchers.append(callback)

    def _notify(self, event: WatchEvent) -> None:
        for cb in self._watchers:
            cb(event)
