"""Worker nodes and device managers (§4).

Each worker's device manager (1) executes jobs on its underlying device and
(2) periodically pushes static and dynamic device state — including fresh
QPU calibration after every cycle — into the system monitor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.qpu import QPU
from ..scheduler.classical import ClassicalNode
from .monitor import SystemMonitor

__all__ = ["QuantumWorker", "ClassicalWorker", "DeviceManager"]


@dataclass
class QuantumWorker:
    """A worker node managing one QPU."""

    qpu: QPU

    @property
    def name(self) -> str:
        return f"worker-{self.qpu.name}"

    def static_info(self) -> dict:
        return {
            "device": self.qpu.name,
            "model": self.qpu.model.name,
            "num_qubits": self.qpu.num_qubits,
            "basis_gates": list(self.qpu.basis_gates),
            "coupling_edges": len(self.qpu.coupling),
        }

    def dynamic_info(self, queue_size: int = 0, waiting_seconds: float = 0.0) -> dict:
        return {
            "online": self.qpu.online,
            "calibration_cycle": self.qpu.cycle,
            "quality_factor": self.qpu.calibration.quality_factor,
            "mean_error_2q": self.qpu.calibration.mean_error_2q,
            "mean_readout_error": self.qpu.calibration.mean_readout_error,
            "queue_size": queue_size,
            "waiting_seconds": waiting_seconds,
        }


@dataclass
class ClassicalWorker:
    """A worker node managing one classical machine."""

    node: ClassicalNode

    @property
    def name(self) -> str:
        return f"worker-{self.node.name}"

    def static_info(self) -> dict:
        return {
            "device": self.node.name,
            "cores": self.node.cores,
            "memory_gb": self.node.memory_gb,
            "gpus": self.node.gpus,
            "tier": self.node.tier,
        }

    def dynamic_info(self) -> dict:
        return {
            "alloc_cores": self.node.alloc_cores,
            "alloc_memory_gb": self.node.alloc_memory_gb,
            "alloc_gpus": self.node.alloc_gpus,
        }


class DeviceManager:
    """Pushes all workers' state into the system monitor."""

    def __init__(
        self,
        monitor: SystemMonitor,
        quantum: list[QuantumWorker],
        classical: list[ClassicalWorker] | None = None,
    ) -> None:
        self.monitor = monitor
        self.quantum = quantum
        self.classical = classical or []
        self._last_cycle: dict[str, int] = {}
        for w in self.quantum:
            monitor.put("qpu_static", w.qpu.name, w.static_info())
        for w in self.classical:
            monitor.put("node_static", w.node.name, w.static_info())

    def poll(
        self,
        queue_sizes: dict[str, int] | None = None,
        waiting: dict[str, float] | None = None,
    ) -> list[str]:
        """Refresh dynamic state; returns QPUs whose calibration changed."""
        queue_sizes = queue_sizes or {}
        waiting = waiting or {}
        recalibrated = []
        for w in self.quantum:
            name = w.qpu.name
            self.monitor.put(
                "qpu_dynamic",
                name,
                w.dynamic_info(queue_sizes.get(name, 0), waiting.get(name, 0.0)),
            )
            if self._last_cycle.get(name) != w.qpu.cycle:
                self.monitor.put("qpu_calibration", name, w.qpu.calibration)
                self._last_cycle[name] = w.qpu.cycle
                recalibrated.append(name)
        for w in self.classical:
            self.monitor.put("node_dynamic", w.node.name, w.dynamic_info())
        return recalibrated
