"""The Qonductor API (§5, Table 2).

The user-facing surface has exactly four operations — ``create_workflow``,
``deploy``, ``invoke``, ``workflow_results`` (plus ``workflow_status`` for
polling, as in Listing 2) — everything else (estimation, scheduling,
placement) is delegated to the control plane.

:class:`Qonductor` wires the whole system together: fleet + templates +
trained estimator + hybrid scheduler + job manager + registry + monitor +
fault-tolerant control-plane replicas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.fleet import default_fleet
from ..backends.qpu import QPU
from ..circuits.metrics import compute_metrics
from ..cloud.backend_sim import SimulatedQPU
from ..cloud.execution import ExecutionModel
from ..estimator.estimator import ResourceEstimator
from ..estimator.plans import ResourcePlan
from ..scheduler.classical import ClassicalNode, ClassicalScheduler
from ..scheduler.quantum import QonductorScheduler
from .images import ExecutionConfig, HybridWorkflowImage
from .job_manager import JobManager, WorkflowRun
from .monitor import SystemMonitor
from .raft import RaftCluster
from .registry import WorkflowRegistry
from .workers import ClassicalWorker, DeviceManager, QuantumWorker
from .workflow import HybridWorkflow, StepKind, WorkflowStep

__all__ = ["Qonductor"]

_DEFAULT_CLASSICAL_NODES = [
    ClassicalNode("vm-std-0", cores=16, memory_gb=64, tier="standard_vm"),
    ClassicalNode("vm-std-1", cores=16, memory_gb=64, tier="standard_vm"),
    ClassicalNode("vm-hi-0", cores=64, memory_gb=512, gpus=4, tier="highend_vm"),
]


@dataclass
class _Deployment:
    image: HybridWorkflowImage
    workflow_id: int


class Qonductor:
    """An in-process Qonductor deployment over a (simulated) hybrid cluster."""

    def __init__(
        self,
        fleet: list[QPU] | None = None,
        classical_nodes: list[ClassicalNode] | None = None,
        *,
        estimator: ResourceEstimator | None = None,
        execution_model: ExecutionModel | None = None,
        preference: str = "balanced",
        estimator_records: int = 800,
        fault_tolerance_f: int = 1,
        seed: int = 0,
    ) -> None:
        self.fleet = fleet if fleet is not None else default_fleet(seed=seed)
        self.execution_model = execution_model or ExecutionModel(seed=seed)
        self.estimator = estimator or ResourceEstimator.train_for_fleet(
            self.fleet,
            num_records=estimator_records,
            execution_model=self.execution_model,
            seed=seed,
        )
        self.monitor = SystemMonitor()
        self.registry = WorkflowRegistry()
        self.backends = [SimulatedQPU(q) for q in self.fleet]
        nodes = classical_nodes or [
            ClassicalNode(n.name, n.cores, n.memory_gb, n.gpus, n.tier)
            for n in _DEFAULT_CLASSICAL_NODES
        ]
        self.classical_scheduler = ClassicalScheduler(nodes)
        self.scheduler = QonductorScheduler(
            self.estimator.cached(), preference=preference, seed=seed
        )
        self.job_manager = JobManager(
            self.scheduler,
            self.classical_scheduler,
            self.backends,
            self.execution_model,
            self.monitor,
            seed=seed,
        )
        self.device_manager = DeviceManager(
            self.monitor,
            [QuantumWorker(q) for q in self.fleet],
            [ClassicalWorker(n) for n in nodes],
        )
        self.control_plane = RaftCluster(f=fault_tolerance_f, seed=seed)
        self._runs: dict[int, WorkflowRun] = {}
        self.device_manager.poll()

    # ------------------------------------------------------------------
    # Table 2: the four user-facing operations.
    # ------------------------------------------------------------------
    def create_workflow(
        self,
        steps_or_workflow,
        config: dict | ExecutionConfig | None = None,
        *,
        name: str = "workflow",
    ) -> str:
        """Package steps (or a prebuilt DAG) + config into a registry image."""
        if isinstance(steps_or_workflow, HybridWorkflow):
            workflow = steps_or_workflow
        else:
            workflow = HybridWorkflow.linear(name, list(steps_or_workflow))
        if config is None:
            exec_config = ExecutionConfig()
        elif isinstance(config, ExecutionConfig):
            exec_config = config
        else:
            exec_config = ExecutionConfig.from_dict(config)
        image = HybridWorkflowImage(workflow=workflow, config=exec_config)
        key = self.registry.register(image)
        self.monitor.put("images", key, {"image_id": image.image_id})
        return key

    def deploy(self, image_key: str) -> int:
        """Validate an image against the cluster; returns a workflow ID."""
        image = self.registry.get(image_key)
        max_width = max(q.num_qubits for q in self.fleet)
        for step in image.workflow.quantum_steps():
            if step.circuit.num_qubits > max_width:
                raise ValueError(
                    f"step {step.name!r} needs {step.circuit.num_qubits} qubits; "
                    f"largest QPU has {max_width}"
                )
        if image.config.min_qubits > max_width:
            raise ValueError("config requests more qubits than any QPU offers")
        run = WorkflowRun(workflow=image.workflow)
        self._runs[run.run_id] = run
        self.monitor.put("workflows", str(run.run_id), run.results)
        return run.run_id

    def invoke(self, image_key: str) -> int:
        """Deploy + execute an image; returns the workflow ID."""
        self.control_plane.ensure_leader()
        workflow_id = self.deploy(image_key)
        image = self.registry.get(image_key)
        run = self.job_manager.run_workflow(image.workflow)
        run.run_id = workflow_id  # keep the externally visible id
        self._runs[workflow_id] = run
        self.monitor.put("workflows", str(workflow_id), run.results)
        self.control_plane.replicate(self.monitor.snapshot())
        return workflow_id

    def workflow_status(self, workflow_id: int) -> str:
        run = self._runs.get(workflow_id)
        if run is None:
            raise KeyError(f"unknown workflow {workflow_id}")
        return run.status.value

    def workflow_results(self, workflow_id: int) -> dict:
        run = self._runs.get(workflow_id)
        if run is None:
            raise KeyError(f"unknown workflow {workflow_id}")
        return run.results

    # ------------------------------------------------------------------
    # Control-plane internals exposed for clients and experiments.
    # ------------------------------------------------------------------
    def list_images(self) -> list[str]:
        return self.registry.list_images()

    def estimate_resources(self, circuit, shots: int = 4000, **kwargs) -> list[ResourcePlan]:
        """Table 2's "estimate the hybrid resources required"."""
        return self.estimator.generate_plans(
            compute_metrics(circuit), shots, **kwargs
        )

    def quantum_step(
        self,
        circuit,
        *,
        name: str = "quantum",
        shots: int = 4000,
        mitigation: str = "none",
    ) -> WorkflowStep:
        """Convenience constructor for a quantum step."""
        return WorkflowStep(
            name=name,
            kind=StepKind.QUANTUM,
            circuit=circuit,
            shots=shots,
            mitigation=mitigation,
        )

    def classical_step(
        self, fn=None, *, name: str = "classical", seconds: float = 1.0, **requirements
    ) -> WorkflowStep:
        """Convenience constructor for a classical step."""
        requirements = {"seconds": seconds, **requirements}
        return WorkflowStep(
            name=name, kind=StepKind.CLASSICAL, fn=fn, requirements=requirements
        )
