"""Simulation substrate: ideal statevector, noisy trajectories, readout
errors, distribution metrics, and the analytic ESP fidelity model."""

from .distributions import (
    counts_to_probs,
    hellinger_distance,
    hellinger_fidelity,
    marginal_counts,
    normalize_counts,
    probs_to_vector,
    total_variation_distance,
)
from .esp import (
    circuit_duration_ns,
    esp,
    esp_components,
    esp_to_hellinger,
    estimate_fidelity_analytic,
)
from .noise import GateNoise, NoiseModel, QubitNoise
from .readout import (
    apply_confusion_single,
    apply_readout_noise_probs,
    full_confusion_matrix,
)
from .statevector import (
    MAX_STATEVECTOR_QUBITS,
    apply_gate,
    apply_matrix,
    expectation_z,
    ideal_probabilities,
    sample_counts,
    simulate_statevector,
    zero_state,
)
from .trajectory import NoisyResult, NoisySimulator

__all__ = [
    "MAX_STATEVECTOR_QUBITS",
    "apply_gate",
    "apply_matrix",
    "expectation_z",
    "ideal_probabilities",
    "sample_counts",
    "simulate_statevector",
    "zero_state",
    "counts_to_probs",
    "hellinger_distance",
    "hellinger_fidelity",
    "marginal_counts",
    "normalize_counts",
    "probs_to_vector",
    "total_variation_distance",
    "GateNoise",
    "NoiseModel",
    "QubitNoise",
    "apply_confusion_single",
    "apply_readout_noise_probs",
    "full_confusion_matrix",
    "NoisyResult",
    "NoisySimulator",
    "circuit_duration_ns",
    "esp",
    "esp_components",
    "esp_to_hellinger",
    "estimate_fidelity_analytic",
]
