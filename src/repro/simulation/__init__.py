"""Simulation substrate: ideal statevector, noisy trajectories, readout
errors, distribution metrics, the analytic ESP fidelity model, and the
pluggable array-ops backend the hot loops run on."""

from .array_ops import (
    ARRAY_BACKEND_ENV,
    ArrayBackend,
    NumpyBackend,
    make_array_backend,
    register_array_backend,
)
from .distributions import (
    counts_to_probs,
    hellinger_distance,
    hellinger_fidelity,
    marginal_counts,
    normalize_counts,
    probs_to_vector,
    total_variation_distance,
)
from .esp import (
    CircuitEspFeatures,
    circuit_duration_ns,
    circuit_duration_ns_batch,
    esp,
    esp_batch,
    esp_components,
    esp_components_batch,
    esp_to_hellinger,
    esp_to_hellinger_batch,
    estimate_fidelity_analytic,
    estimate_fidelity_analytic_batch,
    extract_esp_features,
)
from .noise import GateNoise, NoiseModel, QubitNoise
from .readout import (
    apply_confusion_single,
    apply_readout_noise_probs,
    full_confusion_matrix,
)
from .statevector import (
    MAX_STATEVECTOR_QUBITS,
    apply_gate,
    apply_gate_to_matrix,
    apply_matrix,
    apply_matrix_batched,
    expectation_z,
    ideal_probabilities,
    sample_counts,
    simulate_statevector,
    zero_state,
)
from .trajectory import NoisyResult, NoisySimulator

__all__ = [
    "ARRAY_BACKEND_ENV",
    "ArrayBackend",
    "NumpyBackend",
    "make_array_backend",
    "register_array_backend",
    "MAX_STATEVECTOR_QUBITS",
    "apply_gate",
    "apply_gate_to_matrix",
    "apply_matrix",
    "apply_matrix_batched",
    "expectation_z",
    "ideal_probabilities",
    "sample_counts",
    "simulate_statevector",
    "zero_state",
    "counts_to_probs",
    "hellinger_distance",
    "hellinger_fidelity",
    "marginal_counts",
    "normalize_counts",
    "probs_to_vector",
    "total_variation_distance",
    "GateNoise",
    "NoiseModel",
    "QubitNoise",
    "apply_confusion_single",
    "apply_readout_noise_probs",
    "full_confusion_matrix",
    "NoisyResult",
    "NoisySimulator",
    "CircuitEspFeatures",
    "extract_esp_features",
    "circuit_duration_ns",
    "circuit_duration_ns_batch",
    "esp",
    "esp_batch",
    "esp_components",
    "esp_components_batch",
    "esp_to_hellinger",
    "esp_to_hellinger_batch",
    "estimate_fidelity_analytic",
    "estimate_fidelity_analytic_batch",
]
