"""Stochastic (quantum-trajectory) noisy simulation.

Noise is injected between ideal gates along an ASAP schedule of the circuit:

* **Gate errors** — after every unitary gate, a depolarizing-style Pauli
  error fires on each involved qubit with the gate's calibrated error
  probability.
* **Amplitude damping** — stochastic jumps toward |0> accumulate over both
  gate durations and idle windows, with probability ``1 - exp(-t/T1)``.
* **Dephasing** — split into a *quasi-static* component (a per-trajectory,
  per-qubit frequency detuning applied as a coherent RZ over elapsed time —
  this is the part dynamical-decoupling pulses genuinely refocus) and a
  *Markovian* component (stochastic Z flips, irrefocusable).
* **Readout errors** — per-qubit confusion matrices applied to the final
  distribution (:mod:`repro.simulation.readout`).

Averaging ``num_trajectories`` pure-state runs converges to the
density-matrix result at statevector cost — this plays the role Qiskit
Aer's noisy FakeBackends play in the paper's evaluation (§8.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import gate_matrix
from .noise import NoiseModel
from .readout import apply_readout_noise_probs
from .statevector import apply_gate, apply_matrix, sample_counts, zero_state

__all__ = ["NoisySimulator", "NoisyResult", "QUASI_STATIC_FRACTION"]

_PAULIS = {
    "x": gate_matrix("x"),
    "y": gate_matrix("y"),
    "z": gate_matrix("z"),
}

_PROJECTORS = (
    np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex),
    np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex),
)

#: Fraction of pure dephasing attributed to quasi-static (refocusable)
#: low-frequency noise; the remainder is Markovian. Superconducting qubits
#: are dominated by 1/f flux noise, hence the high default.
QUASI_STATIC_FRACTION = 0.75


@dataclass
class NoisyResult:
    """Outcome of a noisy execution."""

    counts: dict[str, int]
    probabilities: np.ndarray
    shots: int
    num_qubits: int
    num_trajectories: int


class NoisySimulator:
    """Trajectory-averaged noisy simulator for a given :class:`NoiseModel`."""

    def __init__(
        self,
        noise_model: NoiseModel,
        *,
        num_trajectories: int = 24,
        seed: int | None = None,
        include_idle_noise: bool = True,
        quasi_static_fraction: float = QUASI_STATIC_FRACTION,
    ) -> None:
        if num_trajectories < 1:
            raise ValueError("num_trajectories must be >= 1")
        if not 0.0 <= quasi_static_fraction <= 1.0:
            raise ValueError("quasi_static_fraction must be in [0, 1]")
        self.noise_model = noise_model
        self.num_trajectories = num_trajectories
        self.include_idle_noise = include_idle_noise
        self.quasi_static_fraction = quasi_static_fraction
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        shots: int = 1024,
        rng: np.random.Generator | None = None,
    ) -> NoisyResult:
        """Execute ``circuit`` with noise; returns counts over all qubits.

        The circuit's qubit indices must be physical qubits of the noise
        model (i.e. the circuit is already transpiled, or the model is as
        wide as the logical circuit).
        """
        if circuit.num_qubits > self.noise_model.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits, backend has "
                f"{self.noise_model.num_qubits}"
            )
        rng = rng or self._rng
        probs = self.noisy_probabilities(circuit, rng=rng)
        counts = sample_counts(probs, shots, rng, circuit.num_qubits)
        return NoisyResult(
            counts=counts,
            probabilities=probs,
            shots=shots,
            num_qubits=circuit.num_qubits,
            num_trajectories=self.num_trajectories,
        )

    def noisy_probabilities(
        self, circuit: Circuit, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Trajectory-averaged outcome distribution including readout noise."""
        rng = rng or self._rng
        n = circuit.num_qubits
        timeline = self._build_timeline(circuit)
        acc = np.zeros(2**n)
        for _ in range(self.num_trajectories):
            state = self._run_trajectory(circuit, timeline, rng)
            acc += np.abs(state) ** 2
        acc /= self.num_trajectories
        return apply_readout_noise_probs(acc, self.noise_model, n)

    # ------------------------------------------------------------------
    def _build_timeline(self, circuit: Circuit) -> list[tuple[int, float, float]]:
        """Per-op (op_index, start_ns, duration_ns) via a local ASAP pass."""
        nm = self.noise_model
        finish = [0.0] * circuit.num_qubits
        timeline: list[tuple[int, float, float]] = []
        for idx, g in enumerate(circuit.ops):
            if g.name == "barrier":
                wires = g.qubits if g.qubits else tuple(range(circuit.num_qubits))
                sync = max((finish[q] for q in wires), default=0.0)
                for q in wires:
                    finish[q] = sync
                timeline.append((idx, sync, 0.0))
                continue
            if g.name == "delay":
                q = g.qubits[0]
                timeline.append((idx, finish[q], g.params[0]))
                finish[q] += g.params[0]
                continue
            if g.name in ("measure", "reset", "project"):
                dur = nm.readout_duration_ns
            elif g.is_unitary:
                dur = nm.gate_noise(g.name, g.qubits).duration_ns
            else:
                dur = 0.0
            start = max(finish[q] for q in g.qubits)
            timeline.append((idx, start, dur))
            for q in g.qubits:
                finish[q] = start + dur
        return timeline

    def _sample_detunings(
        self, num_qubits: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-trajectory quasi-static angular detunings (rad/ns)."""
        nm = self.noise_model
        sigmas = np.empty(num_qubits)
        for q in range(num_qubits):
            qn = nm.qubits[q]
            inv_tphi_us = max(1e-9, 1.0 / qn.t2_us - 0.5 / qn.t1_us)
            tphi_ns = 1000.0 / inv_tphi_us
            # Gaussian quasi-static: coherence e^{-sigma^2 t^2 / 2}; match
            # e^{-t/Tphi} at t = Tphi => sigma = sqrt(2)/Tphi.
            sigmas[q] = math.sqrt(2.0) / tphi_ns * self.quasi_static_fraction
        return rng.normal(0.0, 1.0, num_qubits) * sigmas

    def _run_trajectory(
        self,
        circuit: Circuit,
        timeline: list[tuple[int, float, float]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = circuit.num_qubits
        state = zero_state(n)
        nm = self.noise_model
        detuning = self._sample_detunings(n, rng)
        last_end = [0.0] * n
        ops = circuit.ops

        markov_frac = 1.0 - self.quasi_static_fraction

        def decohere_window(state: np.ndarray, q: int, dt_ns: float) -> np.ndarray:
            if dt_ns <= 0.0:
                return state
            # Coherent quasi-static dephasing (refocusable by DD pulses).
            phi = detuning[q] * dt_ns
            if abs(phi) > 1e-12:
                state = apply_matrix(
                    state, gate_matrix("rz", phi), (q,), n
                )
            p_ad, p_pd = nm.decoherence_probs(q, dt_ns)
            r = rng.random()
            # Stochastic amplitude damping, Pauli-twirled.
            p_x = p_ad / 4.0
            p_y = p_ad / 4.0
            p_z = p_ad / 4.0 + markov_frac * p_pd / 2.0
            if r < p_x:
                return apply_matrix(state, _PAULIS["x"], (q,), n)
            if r < p_x + p_y:
                return apply_matrix(state, _PAULIS["y"], (q,), n)
            if r < p_x + p_y + p_z:
                return apply_matrix(state, _PAULIS["z"], (q,), n)
            return state

        for idx, start, dur in timeline:
            g = ops[idx]
            if g.name == "barrier":
                continue
            # Idle decoherence on each involved qubit since its last activity.
            if self.include_idle_noise:
                for q in g.qubits:
                    gap = start - last_end[q]
                    if gap > 0.0:
                        state = decohere_window(state, q, gap)
            if g.is_unitary:
                state = apply_gate(state, g, n)
                gn = nm.gate_noise(g.name, g.qubits)
                if gn.error > 0.0 and rng.random() < gn.error:
                    victim = g.qubits[int(rng.integers(len(g.qubits)))]
                    pauli = ("x", "y", "z")[int(rng.integers(3))]
                    state = apply_matrix(state, _PAULIS[pauli], (victim,), n)
            elif g.name == "project":
                proj = _PROJECTORS[int(g.params[0])]
                state = apply_matrix(state, proj, g.qubits, n)
            # Decoherence over the op duration itself (gates, delays, readout).
            if dur > 0.0:
                for q in g.qubits:
                    state = decohere_window(state, q, dur)
            for q in g.qubits:
                last_end[q] = start + dur
        return state
