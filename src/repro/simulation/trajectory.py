"""Stochastic (quantum-trajectory) noisy simulation.

Noise is injected between ideal gates along an ASAP schedule of the circuit:

* **Gate errors** — after every unitary gate, a depolarizing-style Pauli
  error fires on each involved qubit with the gate's calibrated error
  probability.
* **Amplitude damping** — stochastic jumps toward |0> accumulate over both
  gate durations and idle windows, with probability ``1 - exp(-t/T1)``.
* **Dephasing** — split into a *quasi-static* component (a per-trajectory,
  per-qubit frequency detuning applied as a coherent RZ over elapsed time —
  this is the part dynamical-decoupling pulses genuinely refocus) and a
  *Markovian* component (stochastic Z flips, irrefocusable).
* **Readout errors** — per-qubit confusion matrices applied to the final
  distribution (:mod:`repro.simulation.readout`).

All trajectories evolve together as one ``(num_trajectories, 2**n)``
array: each gate is a single batched contraction
(:func:`~repro.simulation.statevector.apply_matrix_batched`), quasi-static
phases broadcast per trajectory, and stochastic Pauli kicks apply to the
masked sub-batch where they fire.  Averaging the batch converges to the
density-matrix result at statevector cost — this plays the role Qiskit
Aer's noisy FakeBackends play in the paper's evaluation (§8.2).

RNG contract: randomness is drawn in **fixed-shape batches** in schedule
order — one ``(T, n)`` normal for the detunings (bit-identical to ``T``
sequential per-trajectory draws from the same stream), then one
length-``T`` draw per decision point (decoherence window, or noisy gate's
fire/victim/pauli triple — victim and pauli are drawn unconditionally so
the stream never depends on which trajectories fire).  The draw pass and
the evolution pass are split (:meth:`NoisySimulator._draw_randomness` /
:meth:`NoisySimulator._evolve_trajectories`), so the same draws can be
replayed per trajectory to verify the batched contractions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import gate_matrix
from .array_ops import ArrayBackend, make_array_backend
from .noise import NoiseModel
from .readout import apply_readout_noise_probs
from .statevector import apply_matrix_batched, sample_counts

__all__ = ["NoisySimulator", "NoisyResult", "QUASI_STATIC_FRACTION"]

_PAULIS = {
    "x": gate_matrix("x"),
    "y": gate_matrix("y"),
    "z": gate_matrix("z"),
}
_PAULI_NAMES = ("x", "y", "z")

_PROJECTORS = (
    np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex),
    np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex),
)

#: Fraction of pure dephasing attributed to quasi-static (refocusable)
#: low-frequency noise; the remainder is Markovian. Superconducting qubits
#: are dominated by 1/f flux noise, hence the high default.
QUASI_STATIC_FRACTION = 0.75


@dataclass
class NoisyResult:
    """Outcome of a noisy execution."""

    counts: dict[str, int]
    probabilities: np.ndarray
    shots: int
    num_qubits: int
    num_trajectories: int


@dataclass
class _TrajectoryDraws:
    """All randomness of one batched run, in schedule order.

    ``windows`` holds one uniform ``(T,)`` draw per decoherence window;
    the ``gate_*`` lists hold the fire/victim/pauli triples of every
    noisy unitary gate.  :meth:`select` slices out one trajectory so a
    per-trajectory reference run can replay the identical randomness.
    """

    num_trajectories: int
    detunings: np.ndarray  # (T, n) scaled detunings, rad/ns
    windows: list[np.ndarray]
    gate_fire: list[np.ndarray]
    gate_victim: list[np.ndarray]
    gate_pauli: list[np.ndarray]

    def select(self, t: int) -> "_TrajectoryDraws":
        return _TrajectoryDraws(
            num_trajectories=1,
            detunings=self.detunings[t : t + 1],
            windows=[w[t : t + 1] for w in self.windows],
            gate_fire=[f[t : t + 1] for f in self.gate_fire],
            gate_victim=[v[t : t + 1] for v in self.gate_victim],
            gate_pauli=[p[t : t + 1] for p in self.gate_pauli],
        )


class NoisySimulator:
    """Trajectory-averaged noisy simulator for a given :class:`NoiseModel`."""

    def __init__(
        self,
        noise_model: NoiseModel,
        *,
        num_trajectories: int = 24,
        seed: int | None = None,
        include_idle_noise: bool = True,
        quasi_static_fraction: float = QUASI_STATIC_FRACTION,
        backend: ArrayBackend | str | None = None,
    ) -> None:
        if num_trajectories < 1:
            raise ValueError("num_trajectories must be >= 1")
        if not 0.0 <= quasi_static_fraction <= 1.0:
            raise ValueError("quasi_static_fraction must be in [0, 1]")
        self.noise_model = noise_model
        self.num_trajectories = num_trajectories
        self.include_idle_noise = include_idle_noise
        self.quasi_static_fraction = quasi_static_fraction
        self.array_backend = make_array_backend(backend)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: Circuit,
        shots: int = 1024,
        rng: np.random.Generator | None = None,
    ) -> NoisyResult:
        """Execute ``circuit`` with noise; returns counts over all qubits.

        The circuit's qubit indices must be physical qubits of the noise
        model (i.e. the circuit is already transpiled, or the model is as
        wide as the logical circuit).
        """
        if circuit.num_qubits > self.noise_model.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits, backend has "
                f"{self.noise_model.num_qubits}"
            )
        rng = rng or self._rng
        probs = self.noisy_probabilities(circuit, rng=rng)
        counts = sample_counts(
            probs, shots, rng, circuit.num_qubits, backend=self.array_backend
        )
        return NoisyResult(
            counts=counts,
            probabilities=probs,
            shots=shots,
            num_qubits=circuit.num_qubits,
            num_trajectories=self.num_trajectories,
        )

    def noisy_probabilities(
        self, circuit: Circuit, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Trajectory-averaged outcome distribution including readout noise."""
        rng = rng or self._rng
        n = circuit.num_qubits
        b = self.array_backend
        plan = self._noise_plan(circuit)
        draws = self._draw_randomness(circuit, plan, rng)
        states = self._evolve_trajectories(circuit, plan, draws)
        acc = b.to_numpy(
            b.einsum("ti,ti->i", states.conj(), states).real
        )
        acc = acc / self.num_trajectories
        return apply_readout_noise_probs(acc, self.noise_model, n)

    # ------------------------------------------------------------------
    def _build_timeline(self, circuit: Circuit) -> list[tuple[int, float, float]]:
        """Per-op (op_index, start_ns, duration_ns) via a local ASAP pass."""
        nm = self.noise_model
        finish = [0.0] * circuit.num_qubits
        timeline: list[tuple[int, float, float]] = []
        for idx, g in enumerate(circuit.ops):
            if g.name == "barrier":
                wires = g.qubits if g.qubits else tuple(range(circuit.num_qubits))
                sync = max((finish[q] for q in wires), default=0.0)
                for q in wires:
                    finish[q] = sync
                timeline.append((idx, sync, 0.0))
                continue
            if g.name == "delay":
                q = g.qubits[0]
                timeline.append((idx, finish[q], g.params[0]))
                finish[q] += g.params[0]
                continue
            if g.name in ("measure", "reset", "project"):
                dur = nm.readout_duration_ns
            elif g.is_unitary:
                dur = nm.gate_noise(g.name, g.qubits).duration_ns
            else:
                dur = 0.0
            start = max(finish[q] for q in g.qubits)
            timeline.append((idx, start, dur))
            for q in g.qubits:
                finish[q] = start + dur
        return timeline

    def _noise_plan(self, circuit: Circuit) -> list[tuple]:
        """The deterministic event sequence of one run, in schedule order.

        Events: ``("window", qubit, dt_ns)`` for a decoherence window,
        ``("unitary", op_index)`` for an ideal gate application,
        ``("gate_error", op_index, error, qubits)`` for a noisy gate's
        stochastic Pauli kick, and ``("project", op_index)``.  Both the
        draw pass and the evolution pass iterate this plan, which is what
        keeps their randomness consumption in lockstep.
        """
        nm = self.noise_model
        ops = circuit.ops
        last_end = [0.0] * circuit.num_qubits
        plan: list[tuple] = []
        for idx, start, dur in self._build_timeline(circuit):
            g = ops[idx]
            if g.name == "barrier":
                continue
            # Idle decoherence on each involved qubit since its last activity.
            if self.include_idle_noise:
                for q in g.qubits:
                    gap = start - last_end[q]
                    if gap > 0.0:
                        plan.append(("window", q, gap))
            if g.is_unitary:
                plan.append(("unitary", idx))
                gn = nm.gate_noise(g.name, g.qubits)
                if gn.error > 0.0:
                    plan.append(("gate_error", idx, gn.error, g.qubits))
            elif g.name == "project":
                plan.append(("project", idx))
            # Decoherence over the op duration itself (gates, delays, readout).
            if dur > 0.0:
                for q in g.qubits:
                    plan.append(("window", q, dur))
            for q in g.qubits:
                last_end[q] = start + dur
        return plan

    def _detuning_sigmas(self, num_qubits: int) -> np.ndarray:
        """Per-qubit quasi-static detuning widths (rad/ns)."""
        nm = self.noise_model
        sigmas = np.empty(num_qubits)
        for q in range(num_qubits):
            qn = nm.qubits[q]
            inv_tphi_us = max(1e-9, 1.0 / qn.t2_us - 0.5 / qn.t1_us)
            tphi_ns = 1000.0 / inv_tphi_us
            # Gaussian quasi-static: coherence e^{-sigma^2 t^2 / 2}; match
            # e^{-t/Tphi} at t = Tphi => sigma = sqrt(2)/Tphi.
            sigmas[q] = math.sqrt(2.0) / tphi_ns * self.quasi_static_fraction
        return sigmas

    def _draw_randomness(
        self, circuit: Circuit, plan: list[tuple], rng: np.random.Generator
    ) -> _TrajectoryDraws:
        """Draw the run's randomness as fixed-shape length-T batches.

        The ``(T, n)`` detuning normal consumes the generator's stream
        bit-identically to T sequential per-trajectory draws; every plan
        decision point then takes one length-T draw (victim/pauli integers
        unconditionally), so the stream shape depends only on the circuit.
        """
        b = self.array_backend
        t = self.num_trajectories
        sigmas = self._detuning_sigmas(circuit.num_qubits)
        detunings = (
            b.normal(rng, 0.0, 1.0, (t, circuit.num_qubits)) * sigmas
        )
        windows: list[np.ndarray] = []
        fire: list[np.ndarray] = []
        victim: list[np.ndarray] = []
        pauli: list[np.ndarray] = []
        for ev in plan:
            if ev[0] == "window":
                windows.append(b.random(rng, t))
            elif ev[0] == "gate_error":
                fire.append(b.random(rng, t))
                victim.append(b.integers(rng, len(ev[3]), t))
                pauli.append(b.integers(rng, 3, t))
        return _TrajectoryDraws(
            num_trajectories=t,
            detunings=detunings,
            windows=windows,
            gate_fire=fire,
            gate_victim=victim,
            gate_pauli=pauli,
        )

    def _evolve_trajectories(
        self, circuit: Circuit, plan: list[tuple], draws: _TrajectoryDraws
    ) -> np.ndarray:
        """Evolve ``draws.num_trajectories`` stacked states through the plan.

        Pure in ``draws``: slicing the draws (:meth:`_TrajectoryDraws.select`)
        and evolving each trajectory separately yields bit-equivalent rows,
        which is the batched-vs-loop equivalence the tests assert.
        """
        n = circuit.num_qubits
        b = self.array_backend
        ops = circuit.ops
        t = draws.num_trajectories
        states = b.zeros((t, 2**n), dtype=complex)
        states[:, 0] = 1.0
        wi = gi = 0
        for ev in plan:
            if ev[0] == "window":
                states = self._decohere_window_batch(
                    states, ev[1], ev[2], draws, wi, n
                )
                wi += 1
            elif ev[0] == "unitary":
                g = ops[ev[1]]
                states = apply_matrix_batched(
                    states, g.matrix(), g.qubits, n, backend=b
                )
            elif ev[0] == "gate_error":
                _, _, error, qubits = ev
                fired = draws.gate_fire[gi] < error
                vic = draws.gate_victim[gi]
                pau = draws.gate_pauli[gi]
                gi += 1
                if fired.any():
                    for v in range(len(qubits)):
                        for p, name in enumerate(_PAULI_NAMES):
                            m = fired & (vic == v) & (pau == p)
                            if m.any():
                                states[m] = apply_matrix_batched(
                                    states[m], _PAULIS[name],
                                    (qubits[v],), n, backend=b,
                                )
            else:  # project
                g = ops[ev[1]]
                proj = _PROJECTORS[int(g.params[0])]
                states = apply_matrix_batched(
                    states, proj, g.qubits, n, backend=b
                )
        return states

    def _decohere_window_batch(
        self,
        states: np.ndarray,
        q: int,
        dt_ns: float,
        draws: _TrajectoryDraws,
        window_index: int,
        num_qubits: int,
    ) -> np.ndarray:
        """One decoherence window on qubit ``q`` over the whole batch.

        The coherent quasi-static dephasing is a per-trajectory RZ — a
        diagonal broadcast multiply, one fused pass for all trajectories.
        The stochastic part draws one uniform per trajectory and applies
        the selected Pauli to the masked sub-batch.
        """
        b = self.array_backend
        xp = b.xp
        # Coherent quasi-static dephasing (refocusable by DD pulses):
        # rz(phi) = diag(e^{-i phi/2}, e^{+i phi/2}) per trajectory.
        phi = draws.detunings[:, q] * dt_ns
        bits = (xp.arange(states.shape[1]) >> q) & 1
        states = states * xp.exp(1j * xp.outer(phi, bits - 0.5))
        p_ad, p_pd = self.noise_model.decoherence_probs(q, dt_ns)
        markov_frac = 1.0 - self.quasi_static_fraction
        # Stochastic amplitude damping, Pauli-twirled.
        p_x = p_ad / 4.0
        p_y = p_ad / 4.0
        p_z = p_ad / 4.0 + markov_frac * p_pd / 2.0
        r = draws.windows[window_index]
        masks = (
            r < p_x,
            (r >= p_x) & (r < p_x + p_y),
            (r >= p_x + p_y) & (r < p_x + p_y + p_z),
        )
        for m, name in zip(masks, _PAULI_NAMES):
            if m.any():
                states[m] = apply_matrix_batched(
                    states[m], _PAULIS[name], (q,), num_qubits, backend=b
                )
        return states
