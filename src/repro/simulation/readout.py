"""Readout (measurement assignment) noise.

Applies per-qubit confusion matrices to outcome distributions. The forward
direction models SPAM errors during simulation; the inverse direction is the
REM mitigation technique (see :mod:`repro.mitigation.rem`).

The full confusion matrix over n qubits is a tensor product of 2x2 per-qubit
matrices; we never materialize it for large n — the forward application is
done qubit-by-qubit on the reshaped probability tensor, which is O(n 2^n)
instead of O(4^n).
"""

from __future__ import annotations

import numpy as np

from .noise import NoiseModel

__all__ = [
    "apply_readout_noise_probs",
    "apply_confusion_single",
    "full_confusion_matrix",
]


def apply_confusion_single(
    probs: np.ndarray, confusion: np.ndarray, qubit: int, num_qubits: int
) -> np.ndarray:
    """Apply one qubit's 2x2 confusion matrix to a dense distribution."""
    tensor = probs.reshape((2,) * num_qubits)
    axis = num_qubits - 1 - qubit
    moved = np.moveaxis(tensor, axis, 0)
    mixed = np.tensordot(confusion, moved, axes=(1, 0))
    return np.moveaxis(mixed, 0, axis).reshape(-1)


def apply_readout_noise_probs(
    probs: np.ndarray, noise_model: NoiseModel, num_qubits: int
) -> np.ndarray:
    """Forward-apply every qubit's confusion matrix to ``probs``."""
    out = probs
    for q in range(num_qubits):
        conf = noise_model.confusion_matrix(q)
        if abs(conf[0, 0] - 1.0) < 1e-15 and abs(conf[1, 1] - 1.0) < 1e-15:
            continue
        out = apply_confusion_single(out, conf, q, num_qubits)
    return out


def full_confusion_matrix(noise_model: NoiseModel, qubits: list[int]) -> np.ndarray:
    """Dense tensor-product confusion matrix over ``qubits`` (small n only).

    Row/column index bit order matches the bitstring convention: qubit
    ``qubits[0]`` is the most significant bit of the index when ``qubits``
    is sorted descending; we sort ascending and build with qubit 0 least
    significant for consistency with the statevector layout.
    """
    if len(qubits) > 12:
        raise ValueError("dense confusion matrix limited to 12 qubits")
    mat = np.array([[1.0]])
    for q in sorted(qubits, reverse=True):
        mat = np.kron(mat, noise_model.confusion_matrix(q))
    return mat
