"""Noise model: per-qubit and per-gate error parameters.

A :class:`NoiseModel` carries exactly the quantities IBM publishes in its
calibration snapshots (the paper's §2.1): T1/T2 times, single- and two-qubit
gate error rates and durations, and per-qubit readout error probabilities.
The trajectory simulator consumes it stochastically; the analytic ESP model
consumes it multiplicatively; the numerical estimation baseline (Fig. 7)
traverses circuits against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QubitNoise", "GateNoise", "NoiseModel"]


@dataclass(frozen=True)
class QubitNoise:
    """Calibration data of a single physical qubit."""

    t1_us: float  # amplitude-damping time constant, microseconds
    t2_us: float  # dephasing time constant, microseconds
    readout_p01: float  # P(read 1 | prepared 0)
    readout_p10: float  # P(read 0 | prepared 1)

    def __post_init__(self) -> None:
        if self.t1_us <= 0 or self.t2_us <= 0:
            raise ValueError("T1/T2 must be positive")
        for p in (self.readout_p01, self.readout_p10):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"readout error {p} outside [0, 1]")

    @property
    def readout_error(self) -> float:
        """Symmetrized assignment error (what dashboards report)."""
        return 0.5 * (self.readout_p01 + self.readout_p10)


@dataclass(frozen=True)
class GateNoise:
    """Calibration data of one gate type on one qubit (or edge)."""

    error: float  # average gate error rate in [0, 1)
    duration_ns: float  # gate duration in nanoseconds

    def __post_init__(self) -> None:
        if not 0.0 <= self.error < 1.0:
            raise ValueError(f"gate error {self.error} outside [0, 1)")
        if self.duration_ns < 0:
            raise ValueError("duration must be non-negative")


@dataclass
class NoiseModel:
    """Complete noise description of a QPU.

    Attributes
    ----------
    qubits:
        Per-qubit :class:`QubitNoise`, indexed by physical qubit.
    gates_1q:
        ``(gate_name, qubit) -> GateNoise``. Missing entries fall back to
        ``default_1q``.
    gates_2q:
        ``(qubit_a, qubit_b) -> GateNoise`` with the edge stored sorted.
    """

    qubits: list[QubitNoise]
    gates_1q: dict[tuple[str, int], GateNoise] = field(default_factory=dict)
    gates_2q: dict[tuple[int, int], GateNoise] = field(default_factory=dict)
    default_1q: GateNoise = field(default_factory=lambda: GateNoise(3e-4, 35.0))
    default_2q: GateNoise = field(default_factory=lambda: GateNoise(8e-3, 300.0))
    readout_duration_ns: float = 800.0

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    # ------------------------------------------------------------------
    def gate_noise(self, name: str, qubits: tuple[int, ...]) -> GateNoise:
        """Look up the noise entry for a gate instance (with fallbacks)."""
        if len(qubits) == 2:
            edge = (min(qubits), max(qubits))
            return self.gates_2q.get(edge, self.default_2q)
        key = (name, qubits[0])
        if key in self.gates_1q:
            return self.gates_1q[key]
        # rz is virtual (frame change) on IBM hardware: error-free, 0 ns.
        if name == "rz":
            return GateNoise(0.0, 0.0)
        return self.default_1q

    def decoherence_probs(self, qubit: int, duration_ns: float) -> tuple[float, float]:
        """(p_amplitude_damp, p_phase_damp) over an idle window.

        p_ad = 1 - exp(-t/T1);  pure dephasing rate 1/T_phi = 1/T2 - 1/(2 T1).
        """
        q = self.qubits[qubit]
        t_us = duration_ns / 1000.0
        p_ad = 1.0 - np.exp(-t_us / q.t1_us)
        inv_tphi = max(0.0, 1.0 / q.t2_us - 0.5 / q.t1_us)
        p_pd = 1.0 - np.exp(-t_us * inv_tphi) if inv_tphi > 0 else 0.0
        return float(p_ad), float(p_pd)

    def confusion_matrix(self, qubit: int) -> np.ndarray:
        """2x2 readout confusion matrix M[i, j] = P(read i | prepared j)."""
        q = self.qubits[qubit]
        return np.array(
            [
                [1.0 - q.readout_p01, q.readout_p10],
                [q.readout_p01, 1.0 - q.readout_p10],
            ]
        )

    def mean_gate_error_1q(self) -> float:
        if not self.gates_1q:
            return self.default_1q.error
        return float(np.mean([g.error for g in self.gates_1q.values()]))

    def mean_gate_error_2q(self) -> float:
        if not self.gates_2q:
            return self.default_2q.error
        return float(np.mean([g.error for g in self.gates_2q.values()]))

    def mean_readout_error(self) -> float:
        return float(np.mean([q.readout_error for q in self.qubits]))

    def scaled(self, factor: float) -> "NoiseModel":
        """Return a copy with all gate/readout error rates scaled by ``factor``.

        Used by ZNE noise amplification and by what-if ablations. Error rates
        are clipped to stay valid probabilities.
        """

        def clip(p: float) -> float:
            return float(min(0.999, max(0.0, p * factor)))

        qubits = [
            QubitNoise(
                t1_us=q.t1_us / max(factor, 1e-9),
                t2_us=q.t2_us / max(factor, 1e-9),
                readout_p01=clip(q.readout_p01),
                readout_p10=clip(q.readout_p10),
            )
            for q in self.qubits
        ]
        g1 = {
            k: GateNoise(clip(v.error), v.duration_ns) for k, v in self.gates_1q.items()
        }
        g2 = {
            k: GateNoise(clip(v.error), v.duration_ns) for k, v in self.gates_2q.items()
        }
        return NoiseModel(
            qubits=qubits,
            gates_1q=g1,
            gates_2q=g2,
            default_1q=GateNoise(clip(self.default_1q.error), self.default_1q.duration_ns),
            default_2q=GateNoise(clip(self.default_2q.error), self.default_2q.duration_ns),
            readout_duration_ns=self.readout_duration_ns,
        )

    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        num_qubits: int,
        *,
        t1_us: float = 150.0,
        t2_us: float = 110.0,
        readout_error: float = 0.015,
        error_1q: float = 3e-4,
        error_2q: float = 8e-3,
        duration_1q_ns: float = 35.0,
        duration_2q_ns: float = 300.0,
        edges: list[tuple[int, int]] | None = None,
    ) -> "NoiseModel":
        """A homogeneous noise model; handy default for tests."""
        qubits = [
            QubitNoise(t1_us, t2_us, readout_error, readout_error)
            for _ in range(num_qubits)
        ]
        g2 = {}
        if edges:
            for a, b in edges:
                g2[(min(a, b), max(a, b))] = GateNoise(error_2q, duration_2q_ns)
        return cls(
            qubits=qubits,
            gates_2q=g2,
            default_1q=GateNoise(error_1q, duration_1q_ns),
            default_2q=GateNoise(error_2q, duration_2q_ns),
        )
