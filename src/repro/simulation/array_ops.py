"""Pluggable array-operations backend for the simulation hot loops.

Every inner-loop array computation in the simulation layer — statevector
contractions, trajectory batches, the vectorized ESP/critical-path pass,
measurement sampling — routes its primitives through an
:class:`ArrayBackend` instead of calling ``numpy`` directly.  The backend
surface is deliberately small: a handful of named tensor primitives
(``einsum``/``matmul``/``tensordot``/``take``/``where``), segment
reductions for per-circuit folds, and the seeded RNG draws
(``normal``/``random``/``integers``/``multinomial``).  NumPy is the
default and reference implementation; a GPU backend (CuPy exposes the
same call signatures for every primitive used here) slots in by
registering a factory — no call-site changes.

Selection mirrors the scheduling-cycle executor
(:mod:`repro.cloud.cycle_executor`): pass an instance or a name to the
consumer, or set the ``ARRAY_BACKEND`` environment variable to pick one
process-wide (CI runs one tier-1 job under ``ARRAY_BACKEND=numpy`` so
the registry path is exercised on every push).  Backends are resolved
once per name and cached, so ``make_array_backend`` is cheap to call
from hot paths.

Determinism contract: for a given seeded ``numpy.random.Generator``, the
draw primitives consume the generator's bit stream exactly like the
equivalent direct calls (``backend.normal(rng, 0, 1, (t, n))`` consumes
the same substream as ``t`` sequential ``rng.normal(0, 1, n)`` calls),
so batched code can draw in one fixed-shape call and stay bit-identical
to a per-trajectory loop over the same stream.
"""

from __future__ import annotations

import os
from collections.abc import Callable

import numpy as np

__all__ = [
    "ARRAY_BACKEND_ENV",
    "ArrayBackend",
    "NumpyBackend",
    "make_array_backend",
    "register_array_backend",
]

#: Environment variable naming the default backend (e.g. ``numpy``).
ARRAY_BACKEND_ENV = "ARRAY_BACKEND"


class ArrayBackend:
    """Named array primitives the simulation inner loops are written against.

    Implementations wrap an array module (``numpy``, ``cupy``, ...)
    exposed as :attr:`xp` plus explicit methods for the primitives whose
    semantics the hot paths rely on.  Methods accept and return the
    backend's native arrays; :meth:`to_numpy` converts back at the
    boundary (a no-op for NumPy).
    """

    name = "base"

    @property
    def xp(self):
        """The backing array module (``numpy``-compatible namespace)."""
        raise NotImplementedError

    # -- tensor primitives ---------------------------------------------
    def asarray(self, data, dtype=None):
        return self.xp.asarray(data, dtype=dtype)

    def zeros(self, shape, dtype=float):
        return self.xp.zeros(shape, dtype=dtype)

    def einsum(self, subscripts: str, *operands):
        return self.xp.einsum(subscripts, *operands)

    def matmul(self, a, b):
        return self.xp.matmul(a, b)

    def tensordot(self, a, b, axes):
        return self.xp.tensordot(a, b, axes=axes)

    def moveaxis(self, a, source, destination):
        return self.xp.moveaxis(a, source, destination)

    def take(self, a, indices, axis=None):
        return self.xp.take(a, indices, axis=axis)

    def where(self, condition, x, y):
        return self.xp.where(condition, x, y)

    def gather(self, a, rows, cols):
        """Pairwise gather ``a[rows, cols]`` (advanced integer indexing).

        The MOO evaluate kernel's shape: ``rows`` broadcast against a
        ``(pop, n)`` assignment matrix selects one matrix entry per
        (individual, gene) pair in a single indexing pass.
        """
        return a[rows, cols]

    # -- segment reductions (per-circuit folds over flat op arrays) ----
    def segment_sum(self, values, segment_ids, num_segments: int):
        """Sum ``values`` grouped by ``segment_ids`` into ``num_segments``
        bins (empty segments yield 0)."""
        return self.xp.bincount(
            segment_ids, weights=values, minlength=num_segments
        )

    def segment_max(self, values, starts):
        """Per-segment max of contiguous ``values`` slices starting at
        ``starts`` (every segment must be non-empty)."""
        return self.xp.maximum.reduceat(values, starts)

    # -- seeded RNG draws ----------------------------------------------
    def normal(self, rng: np.random.Generator, loc, scale, size):
        return rng.normal(loc, scale, size)

    def random(self, rng: np.random.Generator, size):
        return rng.random(size)

    def integers(self, rng: np.random.Generator, high, size):
        return rng.integers(high, size=size)

    def bounded_integers(self, rng: np.random.Generator, highs):
        """One draw in ``[0, highs[k])`` per element of ``highs``.

        Stream contract: consumes the generator's bit stream exactly like
        ``[rng.integers(h) for h in highs]`` — NumPy's per-element Lemire
        rejection with array bounds is the scalar algorithm applied in
        element order — so batched repair projections stay bit-identical
        to a scalar per-violation loop over the same stream (locked in
        ``tests/test_ml_moo.py``).
        """
        return rng.integers(highs)

    def multinomial(self, rng: np.random.Generator, n: int, pvals):
        return rng.multinomial(n, pvals)

    # -- boundary ------------------------------------------------------
    def to_numpy(self, a) -> np.ndarray:
        """Materialize a backend array as a host ``numpy.ndarray``."""
        return np.asarray(a)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class NumpyBackend(ArrayBackend):
    """The default (and reference) backend: plain NumPy on the host."""

    name = "numpy"

    @property
    def xp(self):
        return np


def _make_cupy_backend() -> ArrayBackend:
    """Factory for a CuPy-backed implementation (gated on availability).

    The container image ships without CuPy; the factory stays registered
    so ``ARRAY_BACKEND=cupy`` fails with an actionable message instead of
    an unknown-name error, and installs that do have CuPy get the GPU
    path with zero code changes (CuPy mirrors every primitive above;
    only the RNG draws go through ``cupy.random`` and ``to_numpy``
    becomes ``cupy.asnumpy``).
    """
    try:
        import cupy  # noqa: F401
    except ImportError as exc:  # pragma: no cover - cupy absent in CI
        raise RuntimeError(
            "ARRAY_BACKEND=cupy requested but cupy is not installed"
        ) from exc

    class CupyBackend(ArrayBackend):  # pragma: no cover - cupy absent in CI
        name = "cupy"

        @property
        def xp(self):
            return cupy

        def to_numpy(self, a) -> np.ndarray:
            return cupy.asnumpy(a)

    return CupyBackend()


_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {
    NumpyBackend.name: NumpyBackend,
    "cupy": _make_cupy_backend,
}

#: Resolved instances, one per backend name (backends are stateless).
_INSTANCES: dict[str, ArrayBackend] = {}


def register_array_backend(
    name: str, factory: Callable[[], ArrayBackend]
) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def make_array_backend(
    spec: str | ArrayBackend | None = None,
) -> ArrayBackend:
    """Resolve a backend spec (instance, name, or ``None`` for the
    ``ARRAY_BACKEND`` environment variable / NumPy)."""
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is None:
        spec = os.environ.get(ARRAY_BACKEND_ENV) or NumpyBackend.name
    backend = _INSTANCES.get(spec)
    if backend is None:
        if spec not in _FACTORIES:
            raise KeyError(
                f"unknown array backend {spec!r}; "
                f"choose from {sorted(_FACTORIES)}"
            )
        backend = _FACTORIES[spec]()
        _INSTANCES[spec] = backend
    return backend
