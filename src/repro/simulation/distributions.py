"""Probability-distribution utilities: counts, Hellinger fidelity, helpers.

The paper's quality metric is the *Hellinger fidelity* between the noisy
device distribution and the ideal distribution (its §2.1). We implement it
over both dense probability vectors and sparse counts dictionaries.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "counts_to_probs",
    "probs_to_vector",
    "hellinger_fidelity",
    "hellinger_distance",
    "total_variation_distance",
    "normalize_counts",
    "marginal_counts",
]


def counts_to_probs(counts: dict[str, int]) -> dict[str, float]:
    """Normalize a counts dict into a probability dict."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("empty counts")
    return {k: v / total for k, v in counts.items()}


def probs_to_vector(probs: dict[str, float], num_qubits: int) -> np.ndarray:
    """Dense probability vector from a bitstring-keyed dict."""
    vec = np.zeros(2**num_qubits)
    for bits, p in probs.items():
        vec[int(bits, 2)] = p
    return vec


def normalize_counts(counts: dict[str, int], num_qubits: int) -> np.ndarray:
    """Counts dict -> dense, normalized probability vector."""
    return probs_to_vector(counts_to_probs(counts), num_qubits)


def _as_vectors(p, q, num_qubits: int | None):
    if isinstance(p, dict) or isinstance(q, dict):
        if num_qubits is None:
            keys = list(p.keys() if isinstance(p, dict) else q.keys())
            num_qubits = len(keys[0]) if keys else 1
        if isinstance(p, dict):
            tot = sum(p.values())
            p = probs_to_vector({k: v / tot for k, v in p.items()}, num_qubits)
        if isinstance(q, dict):
            tot = sum(q.values())
            q = probs_to_vector({k: v / tot for k, v in q.items()}, num_qubits)
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch {p.shape} vs {q.shape}")
    return p, q


def hellinger_distance(p, q, num_qubits: int | None = None) -> float:
    """Hellinger distance H(p, q) in [0, 1]."""
    p, q = _as_vectors(p, q, num_qubits)
    bc = np.sum(np.sqrt(np.clip(p, 0, None) * np.clip(q, 0, None)))
    return math.sqrt(max(0.0, 1.0 - min(1.0, bc)))


def hellinger_fidelity(p, q, num_qubits: int | None = None) -> float:
    """Hellinger fidelity ``(sum sqrt(p q))**2`` in [0, 1]; 1 = identical.

    Accepts dense vectors or counts/prob dicts (mixed allowed).
    """
    p, q = _as_vectors(p, q, num_qubits)
    bc = float(np.sum(np.sqrt(np.clip(p, 0, None) * np.clip(q, 0, None))))
    return min(1.0, bc * bc)


def total_variation_distance(p, q, num_qubits: int | None = None) -> float:
    """TVD = 0.5 * sum |p - q|."""
    p, q = _as_vectors(p, q, num_qubits)
    return float(0.5 * np.sum(np.abs(p - q)))


def marginal_counts(counts: dict[str, int], keep: list[int]) -> dict[str, int]:
    """Marginalize counts onto qubit indices ``keep`` (qubit 0 = rightmost)."""
    out: dict[str, int] = {}
    for bits, c in counts.items():
        n = len(bits)
        sub = "".join(bits[n - 1 - q] for q in sorted(keep, reverse=True))
        out[sub] = out.get(sub, 0) + c
    return out
