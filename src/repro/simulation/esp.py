"""Analytic fidelity model: Estimated Success Probability (ESP).

For circuits too wide to simulate, fidelity is estimated analytically as the
product of per-gate and per-readout success probabilities with a decoherence
factor — the "numerical approach" used by prior work that the paper's
regression estimator is compared against in Fig. 7(b).

``esp`` returns the raw success probability; ``esp_to_hellinger`` converts it
into a Hellinger-fidelity-scale estimate assuming errors scatter outcomes
roughly uniformly (failure mass overlaps with the ideal distribution by the
uniform-overlap amount).

The math is evaluated **batched**: :func:`extract_esp_features` flattens a
circuit once into per-op index/level arrays (cached on the circuit), and
``esp_components_batch`` / ``circuit_duration_ns_batch`` score a whole
jobs-block against one noise model in vectorized passes over the
concatenated feature arrays — gate/readout terms as masked gathers plus
segment sums, and the critical-path walk as one scatter/gather round per
ASAP *level* (ops within a level are wire-disjoint by construction, so
level order reproduces the sequential walk bit for bit).  The
single-circuit functions are thin views over batches of one.  Array
primitives route through :mod:`repro.simulation.array_ops`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit
from .array_ops import ArrayBackend, make_array_backend
from .noise import NoiseModel

__all__ = [
    "CircuitEspFeatures",
    "extract_esp_features",
    "esp",
    "esp_batch",
    "esp_components",
    "esp_components_batch",
    "esp_to_hellinger",
    "esp_to_hellinger_batch",
    "estimate_fidelity_analytic",
    "estimate_fidelity_analytic_batch",
    "circuit_duration_ns",
    "circuit_duration_ns_batch",
]

# Scheduled-op kinds in the flattened feature arrays.
_KIND_UNITARY = 0
_KIND_READOUT = 1  # measure / reset / project (readout-duration ops)
_KIND_DELAY = 2
_KIND_ZERO = 3  # other non-unitary ops: zero duration, schedule sync only

#: Process-wide gate-name interning so feature arrays carry integer codes.
_GATE_CODES: dict[str, int] = {}


def _gate_code(name: str) -> int:
    code = _GATE_CODES.get(name)
    if code is None:
        code = len(_GATE_CODES)
        _GATE_CODES[name] = code
    return code


_FEATURES_KEY = "_esp_features"


@dataclass(frozen=True, eq=False)
class CircuitEspFeatures:
    """Flattened per-op arrays of one circuit for the batched ESP math.

    All qubit indices are circuit-local; ``level`` is the op's ASAP
    dependency level (1 + max level over its wires' predecessors), the
    key to vectorizing the critical-path walk: ops sharing a level are
    wire-disjoint, so each level updates the per-wire finish times in
    one gather/max/scatter round.  ``source_ops`` is the circuit's op
    list at extraction time — the cache-validity token.
    """

    source_ops: list
    num_qubits: int
    # Per scheduled (non-barrier) op, in circuit order:
    kind: np.ndarray  # int8, _KIND_*
    q0: np.ndarray  # intp, first qubit
    q1: np.ndarray  # intp, second qubit for 2q ops, else == q0
    arity: np.ndarray  # int8, number of qubits
    name_code: np.ndarray  # intp, interned gate name (-1 for non-unitary)
    delay_ns: np.ndarray  # float64, delay duration (0 elsewhere)
    level: np.ndarray  # intp, ASAP level
    num_levels: int
    # Flat wire list of every scheduled op plus per-op offsets into it:
    wires: np.ndarray  # intp
    wire_starts: np.ndarray  # intp, len == num_ops + 1
    # Barriers interleaved into the level order: ((level, wires), ...).
    barriers: tuple
    meas_qubits: np.ndarray  # intp, qubits of measure ops
    used_qubits: np.ndarray  # intp, sorted


def extract_esp_features(circuit: Circuit) -> CircuitEspFeatures:
    """Extract (and cache on ``circuit.metadata``) the ESP feature arrays.

    The cache is validated against the identity of the op list, so
    circuit copies and transforms re-extract while repeated scoring of
    the same circuit object pays the walk once.
    """
    cached = circuit.metadata.get(_FEATURES_KEY)
    if cached is not None and cached.source_ops is circuit.ops:
        return cached

    n = circuit.num_qubits
    wire_level = [0] * n
    kind: list[int] = []
    q0: list[int] = []
    q1: list[int] = []
    arity: list[int] = []
    name_code: list[int] = []
    delay_ns: list[float] = []
    level: list[int] = []
    wires: list[int] = []
    wire_starts: list[int] = [0]
    barriers: list[tuple[int, np.ndarray]] = []
    meas: list[int] = []

    for g in circuit.ops:
        if g.name == "barrier":
            bw = g.qubits if g.qubits else tuple(range(n))
            lvl = max((wire_level[q] for q in bw), default=0)
            for q in bw:
                wire_level[q] = lvl + 1
            barriers.append((lvl, np.asarray(bw, dtype=np.intp)))
            continue
        qs = g.qubits
        lvl = max(wire_level[q] for q in qs)
        for q in qs:
            wire_level[q] = lvl + 1
        if g.name == "delay":
            k, code, d = _KIND_DELAY, -1, float(g.params[0])
        elif g.name in ("measure", "reset", "project"):
            k, code, d = _KIND_READOUT, -1, 0.0
            if g.name == "measure":
                meas.append(qs[0])
        elif g.is_unitary:
            k, code, d = _KIND_UNITARY, _gate_code(g.name), 0.0
        else:
            k, code, d = _KIND_ZERO, -1, 0.0
        kind.append(k)
        q0.append(qs[0])
        q1.append(qs[1] if len(qs) == 2 else qs[0])
        arity.append(len(qs))
        name_code.append(code)
        delay_ns.append(d)
        level.append(lvl)
        wires.extend(qs)
        wire_starts.append(len(wires))

    features = CircuitEspFeatures(
        source_ops=circuit.ops,
        num_qubits=n,
        kind=np.asarray(kind, dtype=np.int8),
        q0=np.asarray(q0, dtype=np.intp),
        q1=np.asarray(q1, dtype=np.intp),
        arity=np.asarray(arity, dtype=np.int8),
        name_code=np.asarray(name_code, dtype=np.intp),
        delay_ns=np.asarray(delay_ns, dtype=np.float64),
        level=np.asarray(level, dtype=np.intp),
        num_levels=(max(level) + 1) if level else 0,
        wires=np.asarray(wires, dtype=np.intp),
        wire_starts=np.asarray(wire_starts, dtype=np.intp),
        barriers=tuple(barriers),
        meas_qubits=np.asarray(meas, dtype=np.intp),
        used_qubits=np.asarray(sorted(circuit.used_qubits()), dtype=np.intp),
    )
    circuit.metadata[_FEATURES_KEY] = features
    return features


# ----------------------------------------------------------------------
# Noise-model arrays (rebuilt per batch call: O(num_qubits + edges)).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ModelArrays:
    t1: np.ndarray
    inv_tphi: np.ndarray
    ro_err: np.ndarray
    err2: np.ndarray  # dense (n, n), symmetric
    dur2: np.ndarray
    rz_code: int


def _model_arrays(noise_model: NoiseModel) -> _ModelArrays:
    n = noise_model.num_qubits
    t1 = np.array([q.t1_us for q in noise_model.qubits])
    t2 = np.array([q.t2_us for q in noise_model.qubits])
    ro_err = np.array([q.readout_error for q in noise_model.qubits])
    err2 = np.full((n, n), noise_model.default_2q.error)
    dur2 = np.full((n, n), noise_model.default_2q.duration_ns)
    for (a, b), gn in noise_model.gates_2q.items():
        err2[a, b] = err2[b, a] = gn.error
        dur2[a, b] = dur2[b, a] = gn.duration_ns
    return _ModelArrays(
        t1=t1,
        inv_tphi=np.maximum(0.0, 1.0 / t2 - 0.5 / t1),
        ro_err=ro_err,
        err2=err2,
        dur2=dur2,
        rz_code=_gate_code("rz"),
    )


def _lookup_1q(
    out: np.ndarray,
    mask: np.ndarray,
    name_code: np.ndarray,
    q0: np.ndarray,
    noise_model: NoiseModel,
    rz_code: int,
    attr: str,
) -> None:
    """Fill ``out[mask]`` with the 1q-path gate-noise attribute, honoring
    the lookup fallback order: explicit ``(name, qubit)`` entry, else rz
    is virtual (0 error / 0 ns), else the 1q default."""
    out[mask] = getattr(noise_model.default_1q, attr)
    out[mask & (name_code == rz_code)] = 0.0
    for (name, q), gn in noise_model.gates_1q.items():
        m = mask & (name_code == _gate_code(name)) & (q0 == q)
        out[m] = getattr(gn, attr)


# ----------------------------------------------------------------------
# The batched block: concatenated features of many circuits.
# ----------------------------------------------------------------------
class _FeatureBlock:
    """Feature arrays of a jobs-block, concatenated with qubit offsets."""

    def __init__(self, feats: list[CircuitEspFeatures]) -> None:
        self.num_circuits = len(feats)
        nq = np.array([f.num_qubits for f in feats], dtype=np.intp)
        self.qubit_base = np.concatenate(([0], np.cumsum(nq)))[:-1]
        self.total_qubits = int(nq.sum())
        ops_per = np.array([len(f.kind) for f in feats], dtype=np.intp)
        self.op_circuit = np.repeat(np.arange(self.num_circuits), ops_per)

        def cat(field, dtype):
            parts = [getattr(f, field) for f in feats]
            if not parts:
                return np.zeros(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        self.kind = cat("kind", np.int8)
        self.q0 = cat("q0", np.intp)  # circuit-local: noise-model lookups
        self.q1 = cat("q1", np.intp)
        self.arity = cat("arity", np.int8)
        self.name_code = cat("name_code", np.intp)
        self.delay_ns = cat("delay_ns", np.float64)
        level = cat("level", np.intp)
        self.num_levels = max((f.num_levels for f in feats), default=0)

        # Global wire indices (into the concatenated finish array).
        wires_per = np.array([len(f.wires) for f in feats], dtype=np.intp)
        wire_circuit = np.repeat(np.arange(self.num_circuits), wires_per)
        wires_local = cat("wires", np.intp)
        wires_global = wires_local + self.qubit_base[wire_circuit]
        counts = np.concatenate(
            [np.diff(f.wire_starts) for f in feats]
            or [np.zeros(0, dtype=np.intp)]
        ).astype(np.intp, copy=False)
        wire_starts = np.concatenate(([0], np.cumsum(counts)))

        # Level-sorted op order plus its reordered flat wire list, so each
        # level is one contiguous slice for the schedule walk.
        perm = np.argsort(level, kind="stable")
        self.level_bounds = np.searchsorted(
            level[perm], np.arange(self.num_levels + 1)
        )
        self.perm = perm
        sorted_counts = counts[perm]
        self.sorted_wire_starts = np.concatenate(
            ([0], np.cumsum(sorted_counts))
        )
        total_wires = int(counts.sum())
        gather = np.repeat(wire_starts[perm], sorted_counts) + (
            np.arange(total_wires)
            - np.repeat(self.sorted_wire_starts[:-1], sorted_counts)
        )
        self.sorted_wires = wires_global[gather]

        # Barriers, tagged with their level and global wires.
        per_level: dict[int, list[np.ndarray]] = {}
        for f, base in zip(feats, self.qubit_base):
            for lvl, bw in f.barriers:
                per_level.setdefault(lvl, []).append(bw + base)
        self.barriers_at = per_level

        meas_per = np.array([len(f.meas_qubits) for f in feats], dtype=np.intp)
        self.meas_circuit = np.repeat(np.arange(self.num_circuits), meas_per)
        self.meas_qubits = cat("meas_qubits", np.intp)
        used_per = np.array([len(f.used_qubits) for f in feats], dtype=np.intp)
        self.used_circuit = np.repeat(np.arange(self.num_circuits), used_per)
        self.used_qubits = cat("used_qubits", np.intp)


def _op_durations(
    block: _FeatureBlock, noise_model: NoiseModel, arrs: _ModelArrays
) -> np.ndarray:
    """Duration of every scheduled op in the block, vectorized."""
    dur = np.zeros(len(block.kind))
    unitary = block.kind == _KIND_UNITARY
    two = unitary & (block.arity == 2)
    one = unitary & ~two
    dur[two] = arrs.dur2[block.q0[two], block.q1[two]]
    _lookup_1q(
        dur, one, block.name_code, block.q0, noise_model, arrs.rz_code,
        "duration_ns",
    )
    dur[block.kind == _KIND_READOUT] = noise_model.readout_duration_ns
    dur = np.where(block.kind == _KIND_DELAY, block.delay_ns, dur)
    return dur


def _schedule_finish(
    block: _FeatureBlock, dur: np.ndarray, backend: ArrayBackend
) -> np.ndarray:
    """Per-wire finish times after the level-ordered critical-path walk.

    Equivalent to the sequential per-op walk: levels are a topological
    order, and ops within one level are wire-disjoint, so each level's
    starts can be gathered, maxed per op, and scattered in one round.
    """
    xp = backend.xp
    finish = backend.zeros(block.total_qubits)
    dur_sorted = dur[block.perm]
    for lvl in range(block.num_levels):
        a, b = block.level_bounds[lvl], block.level_bounds[lvl + 1]
        if b > a:
            wa = block.sorted_wire_starts[a]
            wb = block.sorted_wire_starts[b]
            wires = block.sorted_wires[wa:wb]
            op_starts = block.sorted_wire_starts[a:b] - wa
            starts = backend.segment_max(finish[wires], op_starts)
            ends = starts + dur_sorted[a:b]
            counts = xp.diff(block.sorted_wire_starts[a : b + 1])
            finish[wires] = xp.repeat(ends, counts)
        for bw in block.barriers_at.get(lvl, ()):
            finish[bw] = finish[bw].max()
    return finish


def _components_block(
    circuits: list[Circuit],
    noise_model: NoiseModel,
    backend: ArrayBackend | str | None = None,
) -> dict[str, np.ndarray]:
    b = make_array_backend(backend)
    num = len(circuits)
    if num == 0:
        z = np.zeros(0)
        return {
            "gate": z, "readout": z.copy(), "decoherence": z.copy(),
            "duration_ns": z.copy(),
        }
    block = _FeatureBlock([extract_esp_features(c) for c in circuits])
    arrs = _model_arrays(noise_model)

    # Gate term: masked error gathers + a per-circuit segment sum.
    unitary = block.kind == _KIND_UNITARY
    err = np.zeros(len(block.kind))
    two = unitary & (block.arity == 2)
    err[two] = arrs.err2[block.q0[two], block.q1[two]]
    _lookup_1q(
        err, unitary & ~two, block.name_code, block.q0, noise_model,
        arrs.rz_code, "error",
    )
    with np.errstate(divide="ignore"):
        gate_terms = np.log1p(-np.minimum(err[unitary], 1.0))
    log_gate = b.to_numpy(
        b.segment_sum(gate_terms, block.op_circuit[unitary], num)
    )

    # Readout term over measure ops.
    with np.errstate(divide="ignore"):
        ro_terms = np.log1p(
            -np.minimum(arrs.ro_err[block.meas_qubits], 1.0)
        )
    log_readout = b.to_numpy(
        b.segment_sum(ro_terms, block.meas_circuit, num)
    )

    # Critical-path duration, then decoherence over the used qubits.
    dur = _op_durations(block, noise_model, arrs)
    finish = _schedule_finish(block, dur, b)
    duration_ns = b.to_numpy(b.segment_max(finish, block.qubit_base))
    weights = 0.5 / arrs.t1 + 0.5 * arrs.inv_tphi
    per_circuit = b.to_numpy(
        b.segment_sum(
            weights[block.used_qubits], block.used_circuit, num
        )
    )
    log_decoh = -(duration_ns / 1000.0) * per_circuit

    # Legacy short-circuit semantics: a certain gate error blanks the
    # other terms; a certain readout error blanks gate and decoherence.
    gate_bad = np.isneginf(log_gate)
    ro_bad = np.isneginf(log_readout) & ~gate_bad
    log_readout = np.where(gate_bad, 0.0, log_readout)
    log_gate = np.where(ro_bad, 0.0, log_gate)
    log_decoh = np.where(gate_bad | ro_bad, 0.0, log_decoh)
    return {
        "gate": log_gate,
        "readout": log_readout,
        "decoherence": log_decoh,
        "duration_ns": duration_ns,
    }


# ----------------------------------------------------------------------
# Public batched API.
# ----------------------------------------------------------------------
def esp_components_batch(
    circuits: list[Circuit],
    noise_model: NoiseModel,
    *,
    backend: ArrayBackend | str | None = None,
) -> dict[str, np.ndarray]:
    """Per-circuit log-survival contributions for a jobs-block.

    Returns ``{"gate", "readout", "decoherence", "duration_ns"}`` arrays
    aligned with ``circuits`` (``esp = exp(gate + readout + decoherence)``;
    ``duration_ns`` is the critical-path schedule length the decoherence
    term integrates over).  One vectorized pass over the block's
    concatenated feature arrays replaces per-circuit gate walks.
    """
    return _components_block(circuits, noise_model, backend)


def circuit_duration_ns_batch(
    circuits: list[Circuit],
    noise_model: NoiseModel,
    *,
    backend: ArrayBackend | str | None = None,
) -> np.ndarray:
    """Critical-path durations of a jobs-block under one noise model."""
    b = make_array_backend(backend)
    if not circuits:
        return np.zeros(0)
    block = _FeatureBlock([extract_esp_features(c) for c in circuits])
    arrs = _model_arrays(noise_model)
    dur = _op_durations(block, noise_model, arrs)
    finish = _schedule_finish(block, dur, b)
    return b.to_numpy(b.segment_max(finish, block.qubit_base))


def esp_batch(
    circuits: list[Circuit],
    noise_model: NoiseModel,
    *,
    backend: ArrayBackend | str | None = None,
) -> np.ndarray:
    """Estimated success probabilities of a jobs-block (vectorized)."""
    comps = _components_block(circuits, noise_model, backend)
    total = comps["gate"] + comps["readout"] + comps["decoherence"]
    return np.exp(total)


def esp_to_hellinger_batch(
    esp_values: np.ndarray,
    num_qubits: np.ndarray,
    support_exponent: float = 0.5,
) -> np.ndarray:
    """Vectorized :func:`esp_to_hellinger` over aligned arrays."""
    esp_values = np.clip(np.asarray(esp_values, dtype=float), 0.0, 1.0)
    n_eff = np.maximum(1, np.asarray(num_qubits))
    support_frac = 2.0 ** (
        -(1.0 - support_exponent) * np.minimum(n_eff, 60)
    )
    return np.minimum(1.0, esp_values + (1.0 - esp_values) * support_frac)


def estimate_fidelity_analytic_batch(
    circuits: list[Circuit],
    noise_model: NoiseModel,
    *,
    backend: ArrayBackend | str | None = None,
) -> np.ndarray:
    """Batched one-call analytic Hellinger-fidelity estimates."""
    widths = np.array([c.num_qubits for c in circuits], dtype=np.intp)
    return esp_to_hellinger_batch(
        esp_batch(circuits, noise_model, backend=backend), widths
    )


# ----------------------------------------------------------------------
# Single-circuit views (batches of one).
# ----------------------------------------------------------------------
def circuit_duration_ns(circuit: Circuit, noise_model: NoiseModel) -> float:
    """Critical-path duration of ``circuit`` under the model's gate times."""
    return float(circuit_duration_ns_batch([circuit], noise_model)[0])


def esp_components(circuit: Circuit, noise_model: NoiseModel) -> dict[str, float]:
    """Log-survival contributions split by error source.

    Returns ``{"gate": ..., "readout": ..., "decoherence": ...}`` with
    ``esp = exp(sum(values))``. The split is what lets the execution model
    apply error-mitigation techniques mechanistically: REM attacks the
    readout term, DD the (quasi-static share of the) decoherence term, and
    ZNE/twirling the gate term.
    """
    comps = _components_block([circuit], noise_model)
    return {
        "gate": float(comps["gate"][0]),
        "readout": float(comps["readout"][0]),
        "decoherence": float(comps["decoherence"][0]),
    }


def esp(circuit: Circuit, noise_model: NoiseModel) -> float:
    """Estimated success probability: product of gate/readout survivals
    times a critical-path decoherence factor."""
    total = sum(esp_components(circuit, noise_model).values())
    if total == -math.inf:
        return 0.0
    return float(math.exp(total))


def esp_to_hellinger(esp_value: float, num_qubits: int, support_exponent: float = 0.5) -> float:
    """Convert ESP into a Hellinger-fidelity-scale estimate.

    Model the noisy output as the mixture ``esp * ideal + (1-esp) * uniform``.
    For an ideal distribution uniform over K basis states the Hellinger
    fidelity of that mixture against the ideal is exactly
    ``esp + K (1-esp) / 2**n``. We take ``K = 2**(support_exponent * n)`` as
    the effective support of a typical benchmark circuit, so the correction
    vanishes for wide circuits and is mild for narrow ones.
    """
    esp_value = min(1.0, max(0.0, esp_value))
    n_eff = max(1, num_qubits)
    support_frac = 2.0 ** (-(1.0 - support_exponent) * min(n_eff, 60))
    return min(1.0, esp_value + (1.0 - esp_value) * support_frac)


def estimate_fidelity_analytic(circuit: Circuit, noise_model: NoiseModel) -> float:
    """One-call analytic Hellinger-fidelity estimate for any circuit size."""
    return esp_to_hellinger(esp(circuit, noise_model), circuit.num_qubits)
