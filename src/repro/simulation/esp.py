"""Analytic fidelity model: Estimated Success Probability (ESP).

For circuits too wide to simulate, fidelity is estimated analytically as the
product of per-gate and per-readout success probabilities with a decoherence
factor — the "numerical approach" used by prior work that the paper's
regression estimator is compared against in Fig. 7(b).

``esp`` returns the raw success probability; ``esp_to_hellinger`` converts it
into a Hellinger-fidelity-scale estimate assuming errors scatter outcomes
roughly uniformly (failure mass overlaps with the ideal distribution by the
uniform-overlap amount).
"""

from __future__ import annotations

import math

from ..circuits.circuit import Circuit
from .noise import NoiseModel

__all__ = [
    "esp",
    "esp_components",
    "esp_to_hellinger",
    "estimate_fidelity_analytic",
    "circuit_duration_ns",
]


def circuit_duration_ns(circuit: Circuit, noise_model: NoiseModel) -> float:
    """Critical-path duration of ``circuit`` under the model's gate times."""
    finish = [0.0] * circuit.num_qubits
    for g in circuit.ops:
        if g.name == "barrier":
            wires = g.qubits if g.qubits else tuple(range(circuit.num_qubits))
            sync = max((finish[q] for q in wires), default=0.0)
            for q in wires:
                finish[q] = sync
            continue
        if g.name == "delay":
            finish[g.qubits[0]] += g.params[0]
            continue
        if g.name in ("measure", "reset", "project"):
            dur = noise_model.readout_duration_ns
        elif g.is_unitary:
            dur = noise_model.gate_noise(g.name, g.qubits).duration_ns
        else:
            dur = 0.0
        start = max(finish[q] for q in g.qubits)
        for q in g.qubits:
            finish[q] = start + dur
    return max(finish, default=0.0)


def esp_components(circuit: Circuit, noise_model: NoiseModel) -> dict[str, float]:
    """Log-survival contributions split by error source.

    Returns ``{"gate": ..., "readout": ..., "decoherence": ...}`` with
    ``esp = exp(sum(values))``. The split is what lets the execution model
    apply error-mitigation techniques mechanistically: REM attacks the
    readout term, DD the (quasi-static share of the) decoherence term, and
    ZNE/twirling the gate term.
    """
    log_gate = 0.0
    log_readout = 0.0
    for g in circuit.ops:
        if g.is_unitary:
            err = noise_model.gate_noise(g.name, g.qubits).error
            if err >= 1.0:
                return {"gate": -math.inf, "readout": 0.0, "decoherence": 0.0}
            log_gate += math.log1p(-err)
        elif g.name == "measure":
            err = noise_model.qubits[g.qubits[0]].readout_error
            if err >= 1.0:
                return {"gate": 0.0, "readout": -math.inf, "decoherence": 0.0}
            log_readout += math.log1p(-err)
    duration_us = circuit_duration_ns(circuit, noise_model) / 1000.0
    log_decoh = 0.0
    for q in circuit.used_qubits():
        qn = noise_model.qubits[q]
        inv_tphi = max(0.0, 1.0 / qn.t2_us - 0.5 / qn.t1_us)
        log_decoh += -duration_us / qn.t1_us * 0.5
        log_decoh += -duration_us * inv_tphi * 0.5
    return {"gate": log_gate, "readout": log_readout, "decoherence": log_decoh}


def esp(circuit: Circuit, noise_model: NoiseModel) -> float:
    """Estimated success probability: product of gate/readout survivals
    times a critical-path decoherence factor."""
    total = sum(esp_components(circuit, noise_model).values())
    if total == -math.inf:
        return 0.0
    return float(math.exp(total))


def esp_to_hellinger(esp_value: float, num_qubits: int, support_exponent: float = 0.5) -> float:
    """Convert ESP into a Hellinger-fidelity-scale estimate.

    Model the noisy output as the mixture ``esp * ideal + (1-esp) * uniform``.
    For an ideal distribution uniform over K basis states the Hellinger
    fidelity of that mixture against the ideal is exactly
    ``esp + K (1-esp) / 2**n``. We take ``K = 2**(support_exponent * n)`` as
    the effective support of a typical benchmark circuit, so the correction
    vanishes for wide circuits and is mild for narrow ones.
    """
    esp_value = min(1.0, max(0.0, esp_value))
    n_eff = max(1, num_qubits)
    support_frac = 2.0 ** (-(1.0 - support_exponent) * min(n_eff, 60))
    return min(1.0, esp_value + (1.0 - esp_value) * support_frac)


def estimate_fidelity_analytic(circuit: Circuit, noise_model: NoiseModel) -> float:
    """One-call analytic Hellinger-fidelity estimate for any circuit size."""
    return esp_to_hellinger(esp(circuit, noise_model), circuit.num_qubits)
