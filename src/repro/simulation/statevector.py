"""Vectorized statevector simulator.

Gate application reshapes the 2**n amplitude vector into a tensor and
contracts the gate matrix over the target axes — no Python loop over
amplitudes, per the HPC guides. Practical up to ~20 qubits.

The contraction is written batched: :func:`apply_matrix_batched` evolves a
whole ``(batch, 2**n)`` stack of states with a single tensordot per gate
(the trajectory simulator stacks all its trajectories this way, and
:func:`apply_gate_to_matrix` treats the columns of a unitary as the
batch).  The single-state :func:`apply_matrix` is a thin view over the
batched path.  Array primitives route through
:mod:`repro.simulation.array_ops`, so a GPU backend swaps in without
touching this module.

Qubit convention: qubit 0 is the *least significant* bit of the basis-state
index (little-endian), matching how counts are reported as bitstrings with
qubit 0 rightmost.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from .array_ops import ArrayBackend, make_array_backend

__all__ = [
    "zero_state",
    "apply_gate",
    "apply_matrix",
    "apply_matrix_batched",
    "apply_gate_to_matrix",
    "simulate_statevector",
    "ideal_probabilities",
    "sample_counts",
    "expectation_z",
]

MAX_STATEVECTOR_QUBITS = 22


def zero_state(num_qubits: int) -> np.ndarray:
    """|0...0> statevector of ``num_qubits`` qubits."""
    if num_qubits > MAX_STATEVECTOR_QUBITS:
        raise ValueError(
            f"statevector simulation limited to {MAX_STATEVECTOR_QUBITS} qubits, "
            f"got {num_qubits}"
        )
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def apply_matrix_batched(
    states,
    matrix,
    qubits: tuple[int, ...],
    num_qubits: int,
    backend: ArrayBackend | str | None = None,
):
    """Apply a k-qubit ``matrix`` to ``qubits`` of a ``(batch, 2**n)`` stack.

    Each stacked state is viewed as a rank-n tensor with axis ``i``
    corresponding to qubit ``n-1-i`` (C-order: qubit 0 varies fastest);
    the batch is a leading axis.  One ``tensordot`` contracts the gate
    over the target axes of every state at once, followed by an axis
    move — the batched generalization of the single-state contraction,
    bit-identical per row to applying the gate state by state.
    """
    b = make_array_backend(backend)
    xp = b.xp
    batch = states.shape[0]
    k = len(qubits)
    tensor = states.reshape((batch,) + (2,) * num_qubits)
    # Axis of qubit q in the batch-leading C-ordered tensor:
    axes = [1 + num_qubits - 1 - q for q in qubits]
    gate_tensor = b.asarray(matrix).reshape((2,) * (2 * k))
    # tensordot contracts the *last* k axes of gate_tensor (the input
    # indices) with the target axes of the state tensor.
    moved = b.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), axes))
    # Output axes of the gate land first, in qubit order; move them back
    # (the batch axis and untouched qubit axes keep their relative order,
    # so the same positions identify the targets afterwards).
    moved = b.moveaxis(moved, range(k), axes)
    return xp.ascontiguousarray(moved).reshape(batch, -1)


def apply_matrix(
    state: np.ndarray, matrix: np.ndarray, qubits: tuple[int, ...], num_qubits: int
) -> np.ndarray:
    """Apply a k-qubit unitary ``matrix`` to ``qubits`` of one statevector.

    Thin view over :func:`apply_matrix_batched` with a batch of one.
    """
    return apply_matrix_batched(state.reshape(1, -1), matrix, qubits, num_qubits)[0]


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply a single unitary :class:`Gate` to a statevector."""
    return apply_matrix(state, gate.matrix(), gate.qubits, num_qubits)


def apply_gate_to_matrix(mat: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Left-multiply a full 2**n x 2**n matrix by a gate.

    The columns are a batch of statevectors, so one batched contraction
    replaces the former per-column Python loop.
    """
    cols = np.ascontiguousarray(mat.T)
    out = apply_matrix_batched(cols, gate.matrix(), gate.qubits, num_qubits)
    return np.ascontiguousarray(out.T)


def simulate_statevector(circuit: Circuit) -> np.ndarray:
    """Run the unitary part of ``circuit`` on |0...0>; returns the state."""
    state = zero_state(circuit.num_qubits)
    for gate in circuit.ops:
        if gate.is_unitary:
            state = apply_gate(state, gate, circuit.num_qubits)
        elif gate.name == "reset":
            state = _project_reset(state, gate.qubits[0], circuit.num_qubits)
        elif gate.name == "project":
            proj = _PROJECTORS[int(gate.params[0])]
            state = apply_matrix(state, proj, gate.qubits, circuit.num_qubits)
        # measure/barrier/delay are no-ops for pure-state evolution here
    return state


_PROJECTORS = (
    np.array([[1.0, 0.0], [0.0, 0.0]], dtype=complex),
    np.array([[0.0, 0.0], [0.0, 1.0]], dtype=complex),
)


def _project_reset(state: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Non-unitary reset: project qubit to |0> (renormalized), flip if needed."""
    tensor = state.reshape((2,) * num_qubits)
    axis = num_qubits - 1 - qubit
    zero = np.take(tensor, 0, axis=axis)
    one = np.take(tensor, 1, axis=axis)
    p0 = float(np.sum(np.abs(zero) ** 2))
    p1 = float(np.sum(np.abs(one) ** 2))
    new = np.zeros_like(tensor)
    idx = [slice(None)] * num_qubits
    idx[axis] = 0
    if p0 >= p1:
        branch, norm = zero, np.sqrt(p0) if p0 > 0 else 1.0
    else:
        branch, norm = one, np.sqrt(p1)
    new[tuple(idx)] = branch / norm
    return new.reshape(-1)


def ideal_probabilities(circuit: Circuit) -> np.ndarray:
    """Measurement probabilities of the noiseless circuit over all qubits."""
    state = simulate_statevector(circuit.without_measurements())
    return np.abs(state) ** 2


def sample_counts(
    probabilities: np.ndarray,
    shots: int,
    rng: np.random.Generator,
    num_qubits: int | None = None,
    *,
    backend: ArrayBackend | str | None = None,
) -> dict[str, int]:
    """Draw ``shots`` samples from a probability vector into a counts dict.

    The draw is one vectorized multinomial through the array backend
    (bit-identical to ``rng.multinomial`` on the NumPy backend); only the
    observed outcomes are materialized as dict entries.  Keys are
    bitstrings with qubit 0 rightmost (little-endian display).
    """
    b = make_array_backend(backend)
    n = int(np.log2(len(probabilities))) if num_qubits is None else num_qubits
    probs = np.clip(probabilities, 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise ValueError("probability vector sums to zero")
    probs = probs / total
    draws = b.to_numpy(b.multinomial(rng, shots, probs))
    observed = np.nonzero(draws)[0]
    return {format(idx, f"0{n}b"): int(draws[idx]) for idx in observed}


def expectation_z(state: np.ndarray, qubit: int, num_qubits: int) -> float:
    """<Z_qubit> for a statevector."""
    probs = np.abs(state) ** 2
    indices = np.arange(len(probs))
    bit = (indices >> qubit) & 1
    signs = 1.0 - 2.0 * bit
    return float(np.dot(signs, probs))
