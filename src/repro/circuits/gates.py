"""Standard gate library.

Defines the gate set used throughout the reproduction: names, arities,
parameter counts, unitary matrices, and algebraic helpers (inverse,
decomposition metadata). The IBM-style hardware basis is ``{rz, sx, x, cx}``
plus measurement/reset/barrier pseudo-ops; the logical gate set mirrors the
standard gates of mainstream circuit frameworks.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Gate",
    "GateSpec",
    "GATE_SPECS",
    "gate_matrix",
    "is_two_qubit",
    "is_parametric",
    "inverse_gate",
    "HARDWARE_BASIS",
    "PSEUDO_OPS",
]

#: The IBM-heron/falcon-like hardware basis used by the transpiler target.
HARDWARE_BASIS = ("rz", "sx", "x", "cx")

#: Non-unitary / structural operations that may appear in a circuit.
PSEUDO_OPS = ("measure", "reset", "barrier", "delay", "project")

_SQ2 = 1.0 / math.sqrt(2.0)

_H = np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
_T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
_TDG = np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
_SXDG = _SX.conj().T
_I2 = np.eye(2, dtype=complex)

_CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
_CZ = np.diag([1, 1, 1, -1]).astype(complex)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_ECR = _SQ2 * np.array(
    [[0, 1, 0, 1j], [1, 0, -1j, 0], [0, 1j, 0, 1], [-1j, 0, 1, 0]],
    dtype=complex,
)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(phi: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * phi / 2), 0], [0, cmath.exp(1j * phi / 2)]],
        dtype=complex,
    )


def _p(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def _u(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _rzz(theta: float) -> np.ndarray:
    e_m = cmath.exp(-1j * theta / 2)
    e_p = cmath.exp(1j * theta / 2)
    return np.diag([e_m, e_p, e_p, e_m]).astype(complex)


def _rxx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    m = np.eye(4, dtype=complex) * c
    m[0, 3] = m[3, 0] = m[1, 2] = m[2, 1] = -1j * s
    return m


def _cp(lam: float) -> np.ndarray:
    return np.diag([1, 1, 1, cmath.exp(1j * lam)]).astype(complex)


def _crz(theta: float) -> np.ndarray:
    m = np.eye(4, dtype=complex)
    m[2, 2] = cmath.exp(-1j * theta / 2)
    m[3, 3] = cmath.exp(1j * theta / 2)
    return m


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type."""

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: object  # Callable[..., np.ndarray] | np.ndarray | None
    self_inverse: bool = False
    inverse_name: str | None = None

    def matrix(self, params: tuple[float, ...] = ()) -> np.ndarray:
        """Return the unitary for this spec with ``params`` bound."""
        if self.matrix_fn is None:
            raise ValueError(f"gate {self.name!r} has no unitary matrix")
        if callable(self.matrix_fn):
            return self.matrix_fn(*params)
        return self.matrix_fn


def _const(mat: np.ndarray) -> np.ndarray:
    return mat


GATE_SPECS: dict[str, GateSpec] = {
    # --- single-qubit, constant --------------------------------------
    "id": GateSpec("id", 1, 0, _I2, self_inverse=True),
    "h": GateSpec("h", 1, 0, _H, self_inverse=True),
    "x": GateSpec("x", 1, 0, _X, self_inverse=True),
    "y": GateSpec("y", 1, 0, _Y, self_inverse=True),
    "z": GateSpec("z", 1, 0, _Z, self_inverse=True),
    "s": GateSpec("s", 1, 0, _S, inverse_name="sdg"),
    "sdg": GateSpec("sdg", 1, 0, _SDG, inverse_name="s"),
    "t": GateSpec("t", 1, 0, _T, inverse_name="tdg"),
    "tdg": GateSpec("tdg", 1, 0, _TDG, inverse_name="t"),
    "sx": GateSpec("sx", 1, 0, _SX, inverse_name="sxdg"),
    "sxdg": GateSpec("sxdg", 1, 0, _SXDG, inverse_name="sx"),
    # --- single-qubit, parametric ------------------------------------
    "rx": GateSpec("rx", 1, 1, _rx),
    "ry": GateSpec("ry", 1, 1, _ry),
    "rz": GateSpec("rz", 1, 1, _rz),
    "p": GateSpec("p", 1, 1, _p),
    "u": GateSpec("u", 1, 3, _u),
    # --- two-qubit ----------------------------------------------------
    "cx": GateSpec("cx", 2, 0, _CX, self_inverse=True),
    "cz": GateSpec("cz", 2, 0, _CZ, self_inverse=True),
    "swap": GateSpec("swap", 2, 0, _SWAP, self_inverse=True),
    "ecr": GateSpec("ecr", 2, 0, _ECR, self_inverse=True),
    "rzz": GateSpec("rzz", 2, 1, _rzz),
    "rxx": GateSpec("rxx", 2, 1, _rxx),
    "cp": GateSpec("cp", 2, 1, _cp),
    "crz": GateSpec("crz", 2, 1, _crz),
    # --- pseudo ops (no unitary) ---------------------------------------
    "measure": GateSpec("measure", 1, 0, None),
    "reset": GateSpec("reset", 1, 0, None),
    "barrier": GateSpec("barrier", 0, 0, None),
    "delay": GateSpec("delay", 1, 1, None),
    # Non-unitary projector |b><b| (param = b in {0, 1}) used by circuit
    # cutting to realize measure-and-weight channels; simulators apply it
    # WITHOUT renormalizing, so trajectory norms carry branch probabilities.
    "project": GateSpec("project", 1, 1, None),
}


@dataclass(frozen=True)
class Gate:
    """A gate instance: a named operation applied to concrete qubits.

    ``qubits`` are circuit-level indices; ``params`` are bound floats. The
    class is immutable and hashable so gates can live in DAG nodes and sets.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        spec = GATE_SPECS.get(self.name)
        if spec is None:
            raise ValueError(f"unknown gate {self.name!r}")
        if spec.name != "barrier" and len(self.qubits) != spec.num_qubits:
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if spec.num_params != len(self.params) and spec.name != "delay":
            raise ValueError(
                f"gate {self.name!r} expects {spec.num_params} params, "
                f"got {len(self.params)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in {self.name!r}: {self.qubits}")

    @property
    def spec(self) -> GateSpec:
        return GATE_SPECS[self.name]

    @property
    def is_unitary(self) -> bool:
        return self.spec.matrix_fn is not None

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    def matrix(self) -> np.ndarray:
        """The bound unitary matrix of this gate instance."""
        return self.spec.matrix(self.params)

    def remap(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each qubit ``q``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)


def gate_matrix(name: str, *params: float) -> np.ndarray:
    """Unitary matrix for gate ``name`` with ``params`` bound."""
    return GATE_SPECS[name].matrix(tuple(params))


def is_two_qubit(name: str) -> bool:
    """True when the named gate acts on exactly two qubits."""
    spec = GATE_SPECS.get(name)
    return spec is not None and spec.num_qubits == 2 and spec.matrix_fn is not None


def is_parametric(name: str) -> bool:
    """True when the named gate takes at least one angle parameter."""
    spec = GATE_SPECS.get(name)
    return spec is not None and spec.num_params > 0


def inverse_gate(gate: Gate) -> Gate:
    """Return the inverse of ``gate`` as another standard :class:`Gate`."""
    spec = gate.spec
    if not gate.is_unitary:
        raise ValueError(f"cannot invert non-unitary op {gate.name!r}")
    if spec.self_inverse:
        return gate
    if spec.inverse_name is not None:
        return Gate(spec.inverse_name, gate.qubits)
    if spec.num_params > 0:
        if gate.name == "u":
            theta, phi, lam = gate.params
            return Gate("u", gate.qubits, (-theta, -lam, -phi))
        return Gate(gate.name, gate.qubits, tuple(-p for p in gate.params))
    raise ValueError(f"no inverse rule for gate {gate.name!r}")
