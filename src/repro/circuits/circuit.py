"""Quantum circuit container.

A :class:`Circuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
operations over ``num_qubits`` wires, with convenience builder methods for
every gate in the standard library, structural metrics (depth, counts), and
algebraic operations (composition, inversion, power, remapping).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from .gates import Gate, inverse_gate

__all__ = ["Circuit"]


class Circuit:
    """An ordered sequence of gates over ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Number of wires. Must be positive.
    name:
        Optional human-readable label used in reports and registries.
    """

    __slots__ = ("num_qubits", "name", "_ops", "metadata")

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._ops: list[Gate] = []
        self.metadata: dict = {}

    # ------------------------------------------------------------------
    # core mutation
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append a gate, validating qubit indices against the register."""
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )
        self._ops.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for g in gates:
            self.append(g)
        return self

    def add(self, name: str, qubits: Iterable[int], *params: float) -> "Circuit":
        """Append gate ``name`` on ``qubits`` with bound ``params``."""
        return self.append(Gate(name, tuple(int(q) for q in qubits), tuple(params)))

    # ------------------------------------------------------------------
    # builder API (one method per standard gate)
    # ------------------------------------------------------------------
    def id(self, q: int) -> "Circuit":
        return self.add("id", [q])

    def h(self, q: int) -> "Circuit":
        return self.add("h", [q])

    def x(self, q: int) -> "Circuit":
        return self.add("x", [q])

    def y(self, q: int) -> "Circuit":
        return self.add("y", [q])

    def z(self, q: int) -> "Circuit":
        return self.add("z", [q])

    def s(self, q: int) -> "Circuit":
        return self.add("s", [q])

    def sdg(self, q: int) -> "Circuit":
        return self.add("sdg", [q])

    def t(self, q: int) -> "Circuit":
        return self.add("t", [q])

    def tdg(self, q: int) -> "Circuit":
        return self.add("tdg", [q])

    def sx(self, q: int) -> "Circuit":
        return self.add("sx", [q])

    def sxdg(self, q: int) -> "Circuit":
        return self.add("sxdg", [q])

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.add("rx", [q], theta)

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.add("ry", [q], theta)

    def rz(self, phi: float, q: int) -> "Circuit":
        return self.add("rz", [q], phi)

    def p(self, lam: float, q: int) -> "Circuit":
        return self.add("p", [q], lam)

    def u(self, theta: float, phi: float, lam: float, q: int) -> "Circuit":
        return self.add("u", [q], theta, phi, lam)

    def cx(self, c: int, t: int) -> "Circuit":
        return self.add("cx", [c, t])

    def cz(self, c: int, t: int) -> "Circuit":
        return self.add("cz", [c, t])

    def swap(self, a: int, b: int) -> "Circuit":
        return self.add("swap", [a, b])

    def ecr(self, a: int, b: int) -> "Circuit":
        return self.add("ecr", [a, b])

    def rzz(self, theta: float, a: int, b: int) -> "Circuit":
        return self.add("rzz", [a, b], theta)

    def rxx(self, theta: float, a: int, b: int) -> "Circuit":
        return self.add("rxx", [a, b], theta)

    def cp(self, lam: float, c: int, t: int) -> "Circuit":
        return self.add("cp", [c, t], lam)

    def crz(self, theta: float, c: int, t: int) -> "Circuit":
        return self.add("crz", [c, t], theta)

    def measure(self, q: int) -> "Circuit":
        return self.add("measure", [q])

    def measure_all(self) -> "Circuit":
        for q in range(self.num_qubits):
            self.measure(q)
        return self

    def reset(self, q: int) -> "Circuit":
        return self.add("reset", [q])

    def barrier(self, *qubits: int) -> "Circuit":
        return self.append(Gate("barrier", tuple(qubits)))

    def delay(self, duration_ns: float, q: int) -> "Circuit":
        return self.add("delay", [q], float(duration_ns))

    def project(self, outcome: int, q: int) -> "Circuit":
        """Non-unitary projector |outcome><outcome| (no renormalization)."""
        if outcome not in (0, 1):
            raise ValueError("projection outcome must be 0 or 1")
        return self.add("project", [q], float(outcome))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def ops(self) -> list[Gate]:
        """The gate list (mutable view; prefer :meth:`append`)."""
        return self._ops

    @property
    def gates(self) -> list[Gate]:
        """Unitary gates only (no measure/reset/barrier/delay)."""
        return [g for g in self._ops if g.is_unitary]

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._ops)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Circuit)
            and self.num_qubits == other.num_qubits
            and self._ops == other._ops
        )

    def __repr__(self) -> str:
        return (
            f"Circuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"ops={len(self._ops)}, depth={self.depth()})"
        )

    def count_ops(self) -> dict[str, int]:
        """Histogram of op names, e.g. ``{'cx': 12, 'h': 4}``."""
        counts: dict[str, int] = {}
        for g in self._ops:
            counts[g.name] = counts.get(g.name, 0) + 1
        return counts

    @property
    def num_measurements(self) -> int:
        return sum(1 for g in self._ops if g.name == "measure")

    @property
    def measured_qubits(self) -> tuple[int, ...]:
        seen: list[int] = []
        for g in self._ops:
            if g.name == "measure" and g.qubits[0] not in seen:
                seen.append(g.qubits[0])
        return tuple(seen)

    def two_qubit_gate_count(self) -> int:
        """Number of two-qubit unitary gates (the dominant noise source)."""
        return sum(1 for g in self._ops if g.is_unitary and g.num_qubits == 2)

    def depth(self, *, two_qubit_only: bool = False) -> int:
        """Circuit depth: longest path of ops through any wire.

        Barriers synchronize all listed wires (all wires when empty) without
        adding a layer themselves.
        """
        levels = [0] * self.num_qubits
        for g in self._ops:
            if g.name == "barrier":
                wires = g.qubits if g.qubits else tuple(range(self.num_qubits))
                sync = max((levels[q] for q in wires), default=0)
                for q in wires:
                    levels[q] = sync
                continue
            weight = 1
            if two_qubit_only and not (g.is_unitary and g.num_qubits == 2):
                weight = 0
            start = max(levels[q] for q in g.qubits)
            for q in g.qubits:
                levels[q] = start + weight
        return max(levels, default=0)

    def used_qubits(self) -> set[int]:
        used: set[int] = set()
        for g in self._ops:
            used.update(g.qubits)
        return used

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Circuit":
        out = Circuit(self.num_qubits, name or self.name)
        out._ops = list(self._ops)
        out.metadata = dict(self.metadata)
        return out

    def without_measurements(self) -> "Circuit":
        """Copy with measure/barrier/reset/delay ops stripped."""
        out = Circuit(self.num_qubits, self.name)
        out._ops = [g for g in self._ops if g.is_unitary]
        out.metadata = dict(self.metadata)
        return out

    def compose(self, other: "Circuit", qubits: Iterable[int] | None = None) -> "Circuit":
        """Append ``other``'s ops onto self, optionally remapped to ``qubits``."""
        if qubits is None:
            mapping = {q: q for q in range(other.num_qubits)}
        else:
            qlist = list(qubits)
            if len(qlist) != other.num_qubits:
                raise ValueError(
                    f"qubit mapping length {len(qlist)} != {other.num_qubits}"
                )
            mapping = dict(enumerate(qlist))
        for g in other._ops:
            if g.name == "barrier":
                self.append(Gate("barrier", tuple(mapping[q] for q in g.qubits)))
            else:
                self.append(g.remap(mapping))
        return self

    def inverse(self) -> "Circuit":
        """Adjoint circuit (unitary part only; measurements are dropped)."""
        out = Circuit(self.num_qubits, f"{self.name}_dg")
        out._ops = [inverse_gate(g) for g in reversed(self.gates)]
        return out

    def power(self, n: int) -> "Circuit":
        """The circuit repeated ``n`` times (``n >= 0``)."""
        if n < 0:
            raise ValueError("power requires n >= 0")
        out = Circuit(self.num_qubits, f"{self.name}^{n}")
        for _ in range(n):
            out.compose(self)
        return out

    def remap(self, mapping: dict[int, int], num_qubits: int | None = None) -> "Circuit":
        """Relabel qubits via ``mapping`` into a (possibly larger) register."""
        size = num_qubits if num_qubits is not None else self.num_qubits
        out = Circuit(size, self.name)
        for g in self._ops:
            if g.name == "barrier":
                out.append(Gate("barrier", tuple(mapping[q] for q in g.qubits)))
            else:
                out.append(g.remap(mapping))
        out.metadata = dict(self.metadata)
        return out

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def unitary(self) -> np.ndarray:
        """Dense unitary of the circuit (small circuits only, <= 12 qubits)."""
        if self.num_qubits > 12:
            raise ValueError("unitary() limited to 12 qubits")
        dim = 2**self.num_qubits
        mat = np.eye(dim, dtype=complex)
        from ..simulation.statevector import apply_gate_to_matrix

        for g in self.gates:
            mat = apply_gate_to_matrix(mat, g, self.num_qubits)
        return mat

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "ops": [
                {"name": g.name, "qubits": list(g.qubits), "params": list(g.params)}
                for g in self._ops
            ],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Circuit":
        circ = cls(data["num_qubits"], data.get("name", "circuit"))
        for op in data["ops"]:
            circ.append(
                Gate(op["name"], tuple(op["qubits"]), tuple(op.get("params", ())))
            )
        circ.metadata = dict(data.get("metadata", {}))
        return circ

    def qasm_like(self) -> str:
        """A compact OpenQASM-2-flavoured text dump (for debugging/goldens)."""
        lines = [f"// {self.name}", f"qreg q[{self.num_qubits}];"]
        for g in self._ops:
            if g.params:
                pstr = "(" + ",".join(f"{p:.6g}" for p in g.params) + ")"
            else:
                pstr = ""
            qstr = ",".join(f"q[{q}]" for q in g.qubits)
            lines.append(f"{g.name}{pstr} {qstr};")
        return "\n".join(lines)
