"""Circuit DAG representation.

Converts a :class:`~repro.circuits.circuit.Circuit` into a networkx DiGraph
whose nodes are op indices and whose edges are wire dependencies. Used by the
transpiler (layer extraction, commutation-free scheduling) and by the
numerical fidelity baseline, which traverses the DAG multiplying error terms
(the "state-of-the-art numerical approach" the paper compares against).
"""

from __future__ import annotations

import networkx as nx

from .circuit import Circuit
from .gates import Gate

__all__ = ["circuit_to_dag", "dag_layers", "dag_to_circuit", "CircuitDAG"]


class CircuitDAG:
    """A thin wrapper around the dependency DiGraph of a circuit.

    Node payload: ``graph.nodes[i]["gate"]`` is the :class:`Gate` at
    topological position ``i`` of the original op list. Edges carry the
    wire index that induces the dependency.
    """

    def __init__(self, graph: nx.DiGraph, num_qubits: int, name: str) -> None:
        self.graph = graph
        self.num_qubits = num_qubits
        self.name = name

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def gate(self, node: int) -> Gate:
        return self.graph.nodes[node]["gate"]

    def topological_gates(self) -> list[Gate]:
        return [self.gate(n) for n in nx.topological_sort(self.graph)]

    def longest_path_length(self) -> int:
        """Length (in ops) of the critical path, i.e. DAG depth."""
        if len(self) == 0:
            return 0
        return nx.dag_longest_path_length(self.graph) + 1

    def layers(self) -> list[list[Gate]]:
        """Gates grouped into parallel front layers (ASAP schedule)."""
        return dag_layers(self)


def circuit_to_dag(circuit: Circuit) -> CircuitDAG:
    """Build the wire-dependency DAG of ``circuit``.

    Barriers create dependencies across every wire they span but are not
    included as nodes themselves; they only order surrounding gates.
    """
    graph = nx.DiGraph()
    last_on_wire: dict[int, int] = {}
    # wire -> node indices a subsequent op on that wire must follow (set by
    # barriers, which synchronize every spanned wire on the last op of each).
    barrier_fence: dict[int, tuple[int, ...]] = {}
    for idx, gate in enumerate(circuit.ops):
        if gate.name == "barrier":
            wires = gate.qubits if gate.qubits else tuple(range(circuit.num_qubits))
            fence_nodes = tuple(
                last_on_wire[w] for w in wires if w in last_on_wire
            )
            for w in wires:
                barrier_fence[w] = fence_nodes
            continue
        graph.add_node(idx, gate=gate)
        for w in gate.qubits:
            pred = last_on_wire.get(w)
            if pred is not None and pred != idx:
                graph.add_edge(pred, idx, wire=w)
            for fence in barrier_fence.pop(w, ()):
                if fence != idx and fence != pred:
                    graph.add_edge(fence, idx, wire=w)
            last_on_wire[w] = idx
    return CircuitDAG(graph, circuit.num_qubits, circuit.name)


def dag_layers(dag: CircuitDAG) -> list[list[Gate]]:
    """Partition DAG nodes into ASAP layers of mutually independent gates."""
    graph = dag.graph
    level: dict[int, int] = {}
    for node in nx.topological_sort(graph):
        preds = list(graph.predecessors(node))
        level[node] = 1 + max((level[p] for p in preds), default=-1)
    if not level:
        return []
    depth = max(level.values()) + 1
    layers: list[list[Gate]] = [[] for _ in range(depth)]
    for node, lv in sorted(level.items()):
        layers[lv].append(dag.gate(node))
    return layers


def dag_to_circuit(dag: CircuitDAG) -> Circuit:
    """Reassemble a circuit from a DAG in topological order."""
    circ = Circuit(dag.num_qubits, dag.name)
    for gate in dag.topological_gates():
        circ.append(gate)
    return circ
