"""Quantum circuit intermediate representation.

The circuit substrate the rest of the reproduction builds on: gates with
unitary semantics, an ordered-op circuit container, DAG conversion, and
structural metrics.
"""

from .circuit import Circuit
from .dag import CircuitDAG, circuit_to_dag, dag_layers, dag_to_circuit
from .gates import (
    GATE_SPECS,
    HARDWARE_BASIS,
    PSEUDO_OPS,
    Gate,
    GateSpec,
    gate_matrix,
    inverse_gate,
    is_parametric,
    is_two_qubit,
)
from .metrics import CircuitMetrics, compute_metrics

__all__ = [
    "GATE_SPECS",
    "HARDWARE_BASIS",
    "PSEUDO_OPS",
    "Gate",
    "GateSpec",
    "gate_matrix",
    "inverse_gate",
    "is_parametric",
    "is_two_qubit",
    "Circuit",
    "CircuitDAG",
    "circuit_to_dag",
    "dag_layers",
    "dag_to_circuit",
    "CircuitMetrics",
    "compute_metrics",
]
