"""Structural circuit metrics used as ML features and scheduling inputs.

These are the features the paper's resource estimator trains on: width,
depth, two-qubit gate count, shot count, plus a few extras (parallelism,
critical-path gate composition) used by ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

from .circuit import Circuit

__all__ = ["CircuitMetrics", "compute_metrics"]


@dataclass(frozen=True)
class CircuitMetrics:
    """Feature bundle describing one circuit."""

    num_qubits: int
    depth: int
    two_qubit_depth: int
    size: int
    num_1q_gates: int
    num_2q_gates: int
    num_measurements: int
    parallelism: float
    #: Max degree of the 2q-interaction graph: 0 = no entanglement,
    #: <= 2 = chain/ring (routes swap-free on a path), larger = needs swaps.
    max_interaction_degree: int = 99

    @property
    def routing_class(self) -> str:
        """Coarse routing difficulty: "linear" / "sparse" / "dense"."""
        if self.max_interaction_degree <= 2:
            return "linear"
        if self.max_interaction_degree <= 4:
            return "sparse"
        return "dense"

    @property
    def fingerprint(self) -> tuple:
        """Content address: two circuits with equal structural metrics are
        interchangeable for estimation, so caches key on this tuple."""
        return (
            self.num_qubits,
            self.depth,
            self.two_qubit_depth,
            self.size,
            self.num_1q_gates,
            self.num_2q_gates,
            self.num_measurements,
            self.max_interaction_degree,
        )

    def as_dict(self) -> dict:
        return asdict(self)

    def feature_vector(self) -> list[float]:
        """Ordered numeric features for regression models."""
        return [
            float(self.num_qubits),
            float(self.depth),
            float(self.num_2q_gates),
            float(self.num_1q_gates),
            float(self.two_qubit_depth),
            float(min(self.max_interaction_degree, 8)),
        ]


def compute_metrics(circuit: Circuit) -> CircuitMetrics:
    """Compute the standard metric bundle for ``circuit``."""
    n_1q = sum(1 for g in circuit.ops if g.is_unitary and g.num_qubits == 1)
    n_2q = circuit.two_qubit_gate_count()
    depth = circuit.depth()
    size = n_1q + n_2q
    if depth > 0:
        parallelism = size / depth
    else:
        parallelism = 0.0
    degree: dict[int, int] = {}
    seen_edges: set[tuple[int, int]] = set()
    for g in circuit.ops:
        if g.is_unitary and g.num_qubits == 2:
            e = (min(g.qubits), max(g.qubits))
            if e in seen_edges:
                continue
            seen_edges.add(e)
            degree[e[0]] = degree.get(e[0], 0) + 1
            degree[e[1]] = degree.get(e[1], 0) + 1
    return CircuitMetrics(
        num_qubits=circuit.num_qubits,
        depth=depth,
        two_qubit_depth=circuit.depth(two_qubit_only=True),
        size=size,
        num_1q_gates=n_1q,
        num_2q_gates=n_2q,
        num_measurements=circuit.num_measurements,
        parallelism=parallelism,
        max_interaction_degree=max(degree.values(), default=0),
    )
